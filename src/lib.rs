//! # IPA — Invariant-Preserving Applications for weakly-consistent replicated databases
//!
//! Facade crate re-exporting the full IPA stack, a from-scratch Rust
//! reproduction of Balegas et al., *IPA: Invariant-preserving Applications
//! for Weakly-consistent Replicated Databases* (2018).
//!
//! The stack consists of:
//!
//! * [`spec`] — the first-order application specification language (§3.1).
//! * [`solver`] — a CDCL SAT solver + small-scope grounder (Z3 substitute).
//! * [`analysis`] — conflict detection, operation repair and compensation
//!   generation (the paper's Algorithm 1, §3.2–§3.4).
//! * [`crdt`] — operation-based CRDTs with IPA's specialized convergence
//!   rules: add-wins / rem-wins sets, wildcard removes, `touch`,
//!   compensation sets and escrow counters (§4.2).
//! * [`store`] — a causally-consistent replicated key-value store with
//!   highly-available transactions (SwiftCloud substitute, §4.1).
//! * [`sim`] — a deterministic discrete-event geo-replication simulator
//!   (EC2 testbed substitute, §5.2.1).
//! * [`coord`] — the coordination layer: escrow-sharded bounded
//!   counters with asynchronous rights transfer, Indigo-style
//!   reservations, and strong (primary-forwarded) coordination behind
//!   one [`BoundedCounter`] surface (§5.2.1).
//! * [`apps`] — the evaluation applications: Tournament, Twitter, Ticket
//!   and a TPC-W/TPC-C subset (§5.1.2).
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs` for the end-to-end flow: specify an
//! application, run the analysis, inspect the proposed repairs, and execute
//! the patched application on a simulated geo-replicated cluster.

pub use ipa_apps as apps;
pub use ipa_coord as coord;

// The redesigned coordination surface, foregrounded: one trait over the
// escrow, reservation, and strong backends, a deployment-shape builder,
// and the typed error/policy vocabulary the planner emits.
pub use ipa_coord::{
    BoundedCounter, CoordBackend, CoordConfig, CoordError, CounterBackend, EscrowShard, LockMode,
    ProvisioningPolicy, StrongCounter,
};
pub use ipa_core as analysis;
pub use ipa_crdt as crdt;
pub use ipa_sim as sim;
pub use ipa_solver as solver;
pub use ipa_spec as spec;
pub use ipa_store as store;
