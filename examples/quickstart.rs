//! Quickstart: specify an application, run the IPA analysis, inspect the
//! proposed repairs, and execute the patched application on a replicated
//! cluster.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use ipa::analysis::Analyzer;
use ipa::crdt::{ReplicaId, Val};
use ipa::spec::{AppSpecBuilder, ConvergencePolicy};
use ipa::store::Cluster;

fn main() {
    // ------------------------------------------------------------------
    // 1. Specify the application (the paper's Fig. 2 mini-example).
    // ------------------------------------------------------------------
    let spec = AppSpecBuilder::new("quickstart")
        .sort("Player")
        .sort("Tournament")
        .predicate_bool("player", &["Player"])
        .predicate_bool("tournament", &["Tournament"])
        .predicate_bool("enrolled", &["Player", "Tournament"])
        .rule("player", ConvergencePolicy::AddWins)
        .rule("tournament", ConvergencePolicy::AddWins)
        .rule("enrolled", ConvergencePolicy::AddWins)
        .invariant_str(
            "forall(Player: p, Tournament: t) :- enrolled(p,t) => player(p) and tournament(t)",
        )
        .operation("add_player", &[("p", "Player")], |op| {
            op.set_true("player", &["p"])
        })
        .operation("add_tourn", &[("t", "Tournament")], |op| {
            op.set_true("tournament", &["t"])
        })
        .operation("rem_tourn", &[("t", "Tournament")], |op| {
            op.set_false("tournament", &["t"])
        })
        .operation("enroll", &[("p", "Player"), ("t", "Tournament")], |op| {
            op.set_true("enrolled", &["p", "t"])
        })
        .build()
        .expect("well-formed spec");

    // ------------------------------------------------------------------
    // 2. Run the IPA analysis (conflict detection + repair).
    // ------------------------------------------------------------------
    let report = Analyzer::for_spec(&spec).analyze(&spec).expect("analysis");
    println!("{report}");
    assert!(report.is_invariant_preserving());

    // The analysis found the Fig. 2a conflict and proposes the Fig. 2b
    // repair: enroll gains `tournament(t) := true` under add-wins.
    let patched_enroll = report.patched.operation("enroll").unwrap();
    println!("patched enroll: {patched_enroll}\n");

    // ------------------------------------------------------------------
    // 3. Execute the patched semantics on a 2-replica cluster: the
    //    anomaly (enroll ∥ rem_tourn) no longer violates the invariant.
    // ------------------------------------------------------------------
    let mut cluster = Cluster::new(2);
    let kind = ipa::crdt::ObjectKind::AWSet;
    {
        let r = cluster.replica_mut(ReplicaId(0));
        let mut tx = r.begin();
        tx.ensure("players", kind).unwrap();
        tx.ensure("tournaments", kind).unwrap();
        tx.ensure("enrolled", kind).unwrap();
        tx.aw_add("players", Val::str("alice")).unwrap();
        tx.aw_add("tournaments", Val::str("open")).unwrap();
        tx.commit();
    }
    cluster.sync();

    // Concurrent: replica 0 removes the tournament while replica 1 runs
    // the PATCHED enroll (enrolled + tournament restore).
    {
        let r = cluster.replica_mut(ReplicaId(0));
        let mut tx = r.begin();
        tx.aw_remove("tournaments", &Val::str("open")).unwrap();
        tx.commit();
    }
    {
        let r = cluster.replica_mut(ReplicaId(1));
        let mut tx = r.begin();
        tx.ensure("enrolled", kind).unwrap();
        tx.aw_add("enrolled", Val::pair("alice", "open")).unwrap();
        tx.aw_add("tournaments", Val::str("open")).unwrap(); // the repair
        tx.commit();
    }
    cluster.sync();

    for id in cluster.replica_ids() {
        let rep = cluster.replica(id);
        let enrolled = rep
            .object(&"enrolled".into())
            .unwrap()
            .set_contains(&Val::pair("alice", "open"))
            .unwrap();
        let tourn_alive = rep
            .object(&"tournaments".into())
            .unwrap()
            .set_contains(&Val::str("open"))
            .unwrap();
        println!("replica {id:?}: enrolled={enrolled} tournament-exists={tourn_alive}");
        assert!(!enrolled || tourn_alive, "invariant preserved");
    }
    println!("\ninvariant preserved under concurrency — quickstart done.");
}
