//! Run the Twitter clone on the simulated 3-region deployment and compare
//! the paper's repair strategies (§5.2.3 / Fig. 6): add-wins pays on
//! writes, rem-wins pays on timeline reads.
//!
//! ```sh
//! cargo run --release --example twitter_geo
//! ```

use ipa::apps::twitter::runtime::Strategy;
use ipa::apps::twitter::TwitterWorkload;
use ipa::apps::violations::twitter_violations;
use ipa::sim::{paper_topology, SimConfig, Simulation};

fn main() {
    println!("Twitter on US-EAST / US-WEST / EU-WEST (80/80/160 ms RTTs)\n");
    for strategy in [Strategy::Causal, Strategy::AddWins, Strategy::RemWins] {
        let cfg = SimConfig {
            clients_per_region: 3,
            warmup_s: 0.5,
            duration_s: 4.0,
            seed: 7,
            ..Default::default()
        };
        let mut sim = Simulation::new(paper_topology(), cfg);
        let mut w = TwitterWorkload::with_defaults(strategy);
        sim.run(&mut w);
        sim.quiesce();

        let overall = sim.metrics.overall().expect("ops ran");
        let tweet = sim.metrics.summary("Tweet");
        let timeline = sim.metrics.summary("Timeline");
        let dangling: u64 = (0..3).map(|r| twitter_violations(sim.replica(r))).sum();
        println!("strategy {strategy}:");
        println!(
            "  {} ops, mean {:.2} ms (tweet {:.2} ms, timeline {:.2} ms)",
            overall.count,
            overall.mean_ms,
            tweet.map_or(0.0, |s| s.mean_ms),
            timeline.map_or(0.0, |s| s.mean_ms),
        );
        println!("  dangling references after convergence: {dangling}");
        match strategy {
            Strategy::Causal => {
                println!("  (unrepaired: concurrent delete/retweet races leave debris)\n")
            }
            Strategy::AddWins => {
                println!("  (writes restore users/tweets; deleted tweets can resurface)\n")
            }
            Strategy::RemWins => {
                println!("  (deletes purge concurrent additions; reads hide removed tweets)\n")
            }
        }
    }
}
