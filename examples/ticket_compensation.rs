//! The FusionTicket oversell scenario (§5.2.4): two regions concurrently
//! sell the last ticket. Under Causal the invariant silently breaks;
//! under IPA the Compensation Set repairs the violation on the next read,
//! deterministically cancelling (and reimbursing) the newest purchase.
//!
//! ```sh
//! cargo run --example ticket_compensation
//! ```

use ipa::apps::ticket::TicketApp;
use ipa::apps::Mode;
use ipa::crdt::ReplicaId;
use ipa::store::Cluster;

fn main() {
    for mode in [Mode::Causal, Mode::Ipa] {
        println!("=== {mode} ===");
        let app = TicketApp::new(mode, 1); // one seat left
        let mut cluster = Cluster::new(2);

        // Create the event everywhere.
        {
            let r = cluster.replica_mut(ReplicaId(0));
            let mut tx = r.begin();
            app.create_event(&mut tx, "finals").unwrap();
            tx.commit();
        }
        cluster.sync();

        // Both data centers sell the last seat concurrently — each sale
        // is locally admissible.
        for (region, user) in [(0u16, "alice"), (1u16, "bob")] {
            let r = cluster.replica_mut(ReplicaId(region));
            let mut tx = r.begin();
            let sold = app.buy(&mut tx, user, "finals").unwrap();
            tx.commit();
            println!("  region {region}: sold to {user}: {}", sold.is_some());
        }
        cluster.sync();

        // A read at region 0 observes the outcome.
        let r = cluster.replica_mut(ReplicaId(0));
        let mut tx = r.begin();
        let view = app.view(&mut tx, "finals").unwrap();
        tx.commit();
        cluster.sync();

        println!("  observed sold: {}", view.sold);
        println!("  oversold at read time: {}", view.oversold);
        if !view.cancelled.is_empty() {
            println!(
                "  compensation cancelled + reimbursed: {:?}",
                view.cancelled
            );
        }
        match mode {
            Mode::Causal => println!("  → the invariant is silently violated.\n"),
            _ => {
                println!("  → the read repaired the state; every replica converges to one sale.\n")
            }
        }
    }
}
