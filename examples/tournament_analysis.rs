//! Analyze the full Figure 1 Tournament specification and show the
//! counter-examples (Fig. 2-style diagrams) and the repairs the analysis
//! proposes (Fig. 3's ensure* helpers).
//!
//! ```sh
//! cargo run --release --example tournament_analysis
//! ```

use ipa::analysis::{check_pair, AnalysisConfig, Analyzer};
use ipa::apps::tournament::tournament_spec;

fn main() {
    let spec = tournament_spec();
    println!("specification:\n{spec}\n");

    // ------------------------------------------------------------------
    // Show the Fig. 2a counter-example for enroll ∥ rem_tourn.
    // ------------------------------------------------------------------
    let cfg = AnalysisConfig::tuned_for(&spec);
    let enroll = spec.operation("enroll").unwrap();
    let rem = spec.operation("rem_tourn").unwrap();
    let witness = check_pair(&spec, &cfg, enroll, rem)
        .expect("analysis")
        .expect("the paper's conflict must be found");
    println!("--- Figure 2a counter-example ---");
    println!("{witness}");

    // ------------------------------------------------------------------
    // Run the full pipeline.
    // ------------------------------------------------------------------
    let report = Analyzer::for_spec(&spec).analyze(&spec).expect("analysis");
    println!("--- analysis report ---");
    println!("{report}");

    println!("--- patched operations (the Fig. 3 recipe) ---");
    for op in &report.patched.operations {
        if !op.added_effects.is_empty() {
            println!("  {op}");
        }
    }
    println!("\nflagged pairs require coordination or a different convergence-rule choice;");
    println!(
        "the runtime resolves the flagged rem_tourn ∥ do_match pair with a rem-wins matches set."
    );
}
