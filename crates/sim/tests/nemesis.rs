//! Nemesis behaviour: hostile transport schedules (drops, duplicates,
//! delays, flapping partitions) never lose updates or double-apply
//! batches, weak operations stay available, and every run replays
//! bit-for-bit from its seeds.

use ipa_crdt::{ObjectKind, Val};
use ipa_sim::{
    paper_topology, ClientInfo, FaultPlan, OpOutcome, SimConfig, SimCtx, Simulation, Workload,
};

/// A workload that inserts unique elements into one add-wins set.
struct Inserter {
    n: u64,
}

impl Workload for Inserter {
    fn op(&mut self, ctx: &mut SimCtx<'_>, client: ClientInfo) -> OpOutcome {
        self.n += 1;
        let v = Val::str(format!("e{}", self.n));
        ctx.commit(client.region, |tx| {
            tx.ensure("set", ObjectKind::AWSet)?;
            tx.aw_add("set", v)
        })
        .expect("weak op commits locally");
        OpOutcome::ok("insert", 1, 1)
    }
}

fn cfg(seed: u64, faults: FaultPlan) -> SimConfig {
    SimConfig {
        clients_per_region: 2,
        warmup_s: 0.3,
        duration_s: 2.0,
        seed,
        faults,
        ..Default::default()
    }
}

fn set_len(sim: &Simulation, region: u16) -> usize {
    sim.replica(region)
        .object(&"set".into())
        .unwrap()
        .as_awset()
        .unwrap()
        .len()
}

#[test]
fn transport_faults_never_lose_or_double_apply_updates() {
    for intensity in [0.3, 0.7, 1.0] {
        let plan = FaultPlan::with_intensity(7, intensity);
        let mut sim = Simulation::new(paper_topology(), cfg(5, plan.clone()));
        let mut w = Inserter { n: 0 };
        sim.run(&mut w);
        assert!(
            sim.nemesis.batches_dropped > 0,
            "intensity {intensity}: nemesis was live ({plan})"
        );
        assert!(sim.nemesis.batches_duplicated > 0);
        sim.quiesce();
        for r in 0..3u16 {
            assert_eq!(
                set_len(&sim, r) as u64,
                w.n,
                "intensity {intensity}, replica {r}: updates lost under {plan}"
            );
            assert_eq!(sim.replica(r).pending_count(), 0);
        }
        assert!(
            sim.double_apply_violations().is_empty(),
            "intensity {intensity}: duplicate deliveries double-applied ({plan})"
        );
    }
}

#[test]
fn weak_ops_stay_available_under_full_nemesis() {
    let plan = FaultPlan::with_intensity(3, 1.0);
    let mut sim = Simulation::new(paper_topology(), cfg(11, plan));
    let mut w = Inserter { n: 0 };
    sim.run(&mut w);
    assert!(sim.nemesis.link_flaps > 0, "flapping nemesis was live");
    assert_eq!(
        sim.metrics.failed, 0,
        "weak ops never fail under transport faults"
    );
    assert!(sim.metrics.completed > 100);
}

#[test]
fn same_seeds_identical_schedule_different_seeds_diverge() {
    let run = |workload_seed: u64, nemesis_seed: u64| {
        let plan = FaultPlan::with_intensity(nemesis_seed, 0.8);
        let mut sim = Simulation::new(paper_topology(), cfg(workload_seed, plan));
        let mut w = Inserter { n: 0 };
        sim.run(&mut w);
        sim.quiesce();
        (
            sim.schedule_digest(),
            sim.nemesis,
            sim.metrics.completed,
            (0..3u16).map(|r| set_len(&sim, r)).collect::<Vec<_>>(),
        )
    };
    let a = run(21, 4);
    let b = run(21, 4);
    assert_eq!(
        a, b,
        "same (workload, nemesis) seeds ⇒ identical schedule and verdict"
    );
    let c = run(21, 5);
    assert_ne!(
        a.0, c.0,
        "different nemesis seed ⇒ different fault schedule"
    );
    let d = run(22, 4);
    assert_ne!(a.0, d.0, "different workload seed ⇒ different schedule");
}

#[test]
fn nemesis_leaves_workload_rng_stream_untouched() {
    // The same workload seed must issue the same operation count whether
    // or not faults are injected (fault decisions draw from their own
    // stream; only availability may change).
    let ops = |faults: FaultPlan| {
        let mut sim = Simulation::new(paper_topology(), cfg(13, faults));
        let mut w = Inserter { n: 0 };
        sim.run(&mut w);
        w.n
    };
    // Intensity below the flap threshold: link state stays identical, so
    // the workload's latency draws line up one-to-one. (Flapping changes
    // which links are up and legitimately alters the client schedule.)
    let benign = ops(FaultPlan::none());
    let hostile = ops(FaultPlan::with_intensity(9, 0.4));
    assert_eq!(benign, hostile, "fault injection perturbed the workload");
}

/// The continuous auditor hook runs during the simulation, not only at
/// the end.
#[test]
fn auditor_runs_continuously() {
    use std::cell::Cell;
    use std::rc::Rc;

    let audits = Rc::new(Cell::new(0u64));
    let seen = Rc::clone(&audits);
    let mut sim = Simulation::new(paper_topology(), cfg(17, FaultPlan::with_intensity(2, 0.5)));
    sim.set_auditor(
        0.2,
        Box::new(move |_r, replica| {
            seen.set(seen.get() + 1);
            // Trivial oracle: an AWSet of unique inserts can never hold
            // more elements than were ever inserted; emptiness is fine.
            u64::from(replica.object(&"set".into()).is_none() && replica.clock().total() > 0)
        }),
    );
    let mut w = Inserter { n: 0 };
    sim.run(&mut w);
    sim.quiesce();
    assert!(
        audits.get() >= 3 * 8,
        "auditor ran at periodic points: {}",
        audits.get()
    );
    assert!(sim.metrics.audits >= 8);
}
