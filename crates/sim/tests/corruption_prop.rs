//! Property: the replica protocol is total over the adversarial fault
//! model. For *any* seeded corruption plan — bit-flips, truncations,
//! forged sequence numbers, mutated duplicates, clock skew, plus the
//! honest drop/delay/dup/crash machinery underneath — every replica
//! ends the run converged and clean, and every corrupted delivery is
//! either repaired or still visibly quarantined. Never a panic, never
//! silent divergence: corruption is allowed to cost liveness (bounded,
//! repaired by anti-entropy), but not safety and not silence.

use ipa_crdt::{ObjectKind, Val};
use ipa_sim::{
    paper_topology, ClientInfo, CrashPlan, FaultPlan, OpOutcome, SimConfig, SimCtx, Simulation,
    Workload,
};
use proptest::prelude::*;

/// Inserts unique elements into one AWSet: converged ⇔ every replica's
/// set has all `n` elements.
struct Inserter {
    n: u64,
}

impl Workload for Inserter {
    fn op(&mut self, ctx: &mut SimCtx<'_>, client: ClientInfo) -> OpOutcome {
        self.n += 1;
        let v = Val::str(format!("e{}", self.n));
        ctx.commit(client.region, |tx| {
            tx.ensure("set", ObjectKind::AWSet)?;
            tx.aw_add("set", v)
        })
        .expect("commit");
        OpOutcome::ok("insert", 1, 1)
    }
}

fn set_size(sim: &Simulation, region: u16) -> usize {
    sim.replica(region)
        .object(&"set".into())
        .and_then(|o| o.as_awset())
        .map_or(0, |s| s.len())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_corruption_plan_converges_clean_or_surfaces_quarantine(
        seed in 0u64..10_000,
        intensity in 0.25f64..=1.0,
        crash in 0u64..2,
    ) {
        let mut faults = FaultPlan::adversarial(seed, intensity);
        if crash == 1 {
            faults.crashes.push(CrashPlan {
                region: (seed % 3) as u16,
                at_s: 0.9,
                down_s: 0.6,
            });
        }
        let mut sim = Simulation::new(
            paper_topology(),
            SimConfig {
                clients_per_region: 2,
                warmup_s: 0.2,
                duration_s: 1.8,
                seed,
                faults,
                ..Default::default()
            },
        );
        let mut w = Inserter { n: 0 };
        sim.run(&mut w);
        sim.quiesce();

        for r in 0..3u16 {
            let replica = sim.replica(r);
            // Clean: no corruption evidence is left dangling — every
            // quarantined slot was repaired by a clean copy (or closed
            // as structurally impossible).
            prop_assert_eq!(
                replica.unrepaired_quarantine(), 0,
                "replica {} holds unrepaired quarantine (seed {}, corrupted {})",
                r, seed, sim.nemesis.batches_corrupted
            );
            // Converged: all inserted elements are present everywhere.
            prop_assert_eq!(
                set_size(&sim, r), w.n as usize,
                "replica {} diverged (seed {}, intensity {})",
                r, seed, intensity
            );
        }
        // No silence: if the transport corrupted deliveries whose bytes
        // actually changed, the receivers said so. (A truncation to the
        // batch's own length is byte-identical — seal intact, applied
        // clean — so quarantine counts can undershoot corruption counts,
        // but an *armed* adversary that landed corrupt bytes and left
        // zero trace anywhere would mean receivers applied garbage.)
        let quarantined: u64 = (0..3u16)
            .map(|r| sim.replica(r).stats.batches_quarantined)
            .sum();
        prop_assert!(
            quarantined <= sim.nemesis.batches_corrupted,
            "more quarantines ({}) than corrupted deliveries ({})",
            quarantined, sim.nemesis.batches_corrupted
        );
    }
}
