//! Bounded-liveness oracle: after a fault, anti-entropy must close
//! every induced causal gap within N rounds of repair opportunity, and
//! the quiesce fixpoint must converge within N productive rounds.

use ipa_crdt::{ObjectKind, Val};
use ipa_sim::{
    paper_topology, ClientInfo, ExplicitPlan, FaultEvent, FaultPlan, OpOutcome, SimConfig, SimCtx,
    Simulation, Workload,
};

struct Inserter {
    n: u64,
}

impl Workload for Inserter {
    fn op(&mut self, ctx: &mut SimCtx<'_>, client: ClientInfo) -> OpOutcome {
        self.n += 1;
        let v = Val::str(format!("e{}", self.n));
        ctx.commit(client.region, |tx| {
            tx.ensure("set", ObjectKind::AWSet)?;
            tx.aw_add("set", v)
        })
        .expect("commit");
        OpOutcome::ok("insert", 1, 1)
    }
}

fn cfg(seed: u64, faults: FaultPlan) -> SimConfig {
    SimConfig {
        clients_per_region: 2,
        warmup_s: 0.2,
        duration_s: 1.8,
        seed,
        faults,
        ..Default::default()
    }
}

fn dropped_batch_plan(anti_entropy_s: Option<f64>) -> ExplicitPlan {
    ExplicitPlan {
        events: vec![FaultEvent::Drop {
            origin: 0,
            dest: 2,
            seq: 10,
        }],
        anti_entropy_s,
        ae_latency_ms: Vec::new(),
        skew_ms: Vec::new(),
    }
}

fn run(plan: &ExplicitPlan, bound: Option<u64>) -> Simulation {
    let mut sim = Simulation::new(paper_topology(), cfg(7, FaultPlan::none()));
    sim.set_explicit_faults(plan);
    if let Some(b) = bound {
        sim.set_liveness_bound(b);
    }
    let mut w = Inserter { n: 0 };
    sim.run(&mut w);
    sim.quiesce();
    sim
}

#[test]
fn anti_entropy_repairs_a_gap_within_a_generous_bound() {
    let sim = run(&dropped_batch_plan(Some(0.25)), Some(12));
    let l = sim.liveness();
    assert_eq!(l.tracked_gaps, 1, "the drop opened one gap");
    assert_eq!(l.repaired_gaps, 1, "anti-entropy closed it mid-run");
    assert!(
        l.max_gap_rounds <= 2,
        "one pull + delivery latency: {} rounds",
        l.max_gap_rounds
    );
    assert_eq!(sim.liveness_violations(), 0);
    assert!(
        l.quiesce_rounds == 0,
        "already converged before quiesce: {} rounds",
        l.quiesce_rounds
    );
}

#[test]
fn a_zero_bound_flags_any_unrepaired_round() {
    // Bound 0 demands instant repair — the first anti-entropy round
    // finds the gap still open (its re-send is in flight), breaching.
    let sim = run(&dropped_batch_plan(Some(0.25)), Some(0));
    assert!(sim.liveness().run_breaches >= 1, "{:?}", sim.liveness());
    assert!(sim.liveness_violations() >= 1);
}

#[test]
fn quiesce_repair_rounds_count_against_the_bound() {
    // No periodic anti-entropy: the gap survives to quiesce, whose
    // fixpoint needs ≥ 1 productive round — a violation at bound 0,
    // fine at bound 12.
    let sim = run(&dropped_batch_plan(None), Some(0));
    let l = sim.liveness();
    assert_eq!(l.run_breaches, 0, "no rounds ran, so no mid-run breach");
    assert!(l.quiesce_rounds >= 1, "{:?}", l);
    assert_eq!(sim.liveness_violations(), 1);

    let sim = run(&dropped_batch_plan(None), Some(12));
    assert_eq!(sim.liveness_violations(), 0);
}

#[test]
fn liveness_accounting_never_perturbs_the_schedule() {
    // Arming the oracle is pure observation: digests with and without a
    // bound are identical, for explicit and probabilistic runs alike.
    let explicit = dropped_batch_plan(Some(0.25));
    let a = run(&explicit, None).schedule_digest();
    let b = run(&explicit, Some(0)).schedule_digest();
    assert_eq!(a, b);

    let prob = |bound: Option<u64>| {
        let mut sim = Simulation::new(
            paper_topology(),
            cfg(11, FaultPlan::with_intensity(11, 0.8)),
        );
        if let Some(bnd) = bound {
            sim.set_liveness_bound(bnd);
        }
        let mut w = Inserter { n: 0 };
        sim.run(&mut w);
        sim.quiesce();
        sim.schedule_digest()
    };
    assert_eq!(prob(None), prob(Some(3)));
}

/// The drop plan plus a whole-run cut of the direct 0–2 link; the
/// relay path 0→1→2 stays up.
fn relay_partition_plan() -> ExplicitPlan {
    let mut plan = dropped_batch_plan(Some(0.25));
    plan.events.push(FaultEvent::Partition {
        a: 0,
        b: 2,
        at_s: 0.01,
        outage_s: 1.0e6,
    });
    plan
}

#[test]
fn relay_reachable_gaps_count_against_the_bound() {
    // Pairwise anti-entropy repairs the dropped batch through replica 1
    // even with the direct link cut, and the oracle must *time* that
    // repair: rounds advance whenever any up-path from a live holder
    // reaches the destination. (The old accounting paused the countdown
    // whenever the direct origin–dest link was down, so relay-reachable
    // gaps could idle forever without tripping any bound.)
    let sim = run(&relay_partition_plan(), Some(12));
    let l = sim.liveness();
    assert_eq!(l.tracked_gaps, 1, "{l:?}");
    assert_eq!(l.repaired_gaps, 1, "relay repair closed it mid-run: {l:?}");
    assert!(
        l.max_gap_rounds >= 1,
        "rounds advance while the relay path is up: {l:?}"
    );
    assert_eq!(sim.liveness_violations(), 0);

    // Bound 0 now breaches mid-run: the first round after the drop has
    // a live relay path, so the open gap is charged — under direct-link
    // accounting rounds stayed 0 and no mid-run breach ever fired.
    let sim = run(&relay_partition_plan(), Some(0));
    assert!(sim.liveness().run_breaches >= 1, "{:?}", sim.liveness());
}

#[test]
fn unreachable_gaps_still_pause_the_countdown() {
    // Cut both 0–2 and 1–2: no live holder can reach replica 2 at all,
    // so repair is genuinely impossible and the countdown must pause —
    // no false alarm even at bound 0 (quiesce repair still counts).
    let mut plan = dropped_batch_plan(Some(0.25));
    for a in [0u16, 1] {
        plan.events.push(FaultEvent::Partition {
            a,
            b: 2,
            at_s: 0.01,
            outage_s: 1.0e6,
        });
    }
    let sim = run(&plan, Some(0));
    let l = sim.liveness();
    assert_eq!(
        l.run_breaches, 0,
        "isolated dest pauses the countdown: {l:?}"
    );
    assert_eq!(l.max_gap_rounds, 0, "{l:?}");
}

/// A corrupted delivery is a *drop* for promise accounting: the batch
/// arrives, fails the integrity gate, and is quarantined — but the
/// transport must not count it as delivered (no in-flight promise), or
/// the bounded-liveness oracle would wait forever on a repair the
/// anti-entropy cursors believe already happened. Regression: the first
/// corruption implementation promised the delivery before corrupting
/// it, silently poisoning `AeCursors`.
#[test]
fn corrupt_delivery_is_a_tracked_gap_and_anti_entropy_repairs_it() {
    for event in [
        FaultEvent::Flip {
            origin: 0,
            dest: 2,
            seq: 10,
        },
        // keep: 0 guarantees the truncation mutates the batch (a
        // truncation to the batch's own length is byte-identical, so
        // the seal stays valid and nothing is quarantined).
        FaultEvent::Truncate {
            origin: 0,
            dest: 2,
            seq: 10,
            keep: 0,
        },
    ] {
        let plan = ExplicitPlan {
            events: vec![event],
            anti_entropy_s: Some(0.25),
            ae_latency_ms: Vec::new(),
            skew_ms: Vec::new(),
        };
        let sim = run(&plan, Some(12));
        let l = sim.liveness();
        assert_eq!(sim.nemesis.batches_corrupted, 1, "{event}");
        assert_eq!(l.tracked_gaps, 1, "corruption opened one gap: {l:?}");
        assert_eq!(l.repaired_gaps, 1, "anti-entropy re-sent clean: {l:?}");
        assert_eq!(sim.liveness_violations(), 0, "{event}: {l:?}");
        // The corrupt bytes still arrived: the destination quarantined
        // them, and the clean anti-entropy copy closed the slot.
        let dest = sim.replica(2);
        assert_eq!(dest.stats.batches_quarantined, 1, "{event}");
        assert_eq!(dest.stats.quarantine_repaired, 1, "{event}");
        assert_eq!(dest.unrepaired_quarantine(), 0, "{event}");
    }
}

#[test]
fn crash_recovery_is_tracked_as_restart_obligations() {
    let mut plan = ExplicitPlan {
        anti_entropy_s: Some(0.25),
        ..Default::default()
    };
    plan.events.push(FaultEvent::Crash {
        region: 1,
        at_s: 0.6,
        down_s: 0.5,
    });
    let sim = run(&plan, Some(12));
    let l = sim.liveness();
    assert!(
        l.tracked_gaps >= 1,
        "the restart owes its peers' progress: {l:?}"
    );
    assert_eq!(
        l.repaired_gaps, l.tracked_gaps,
        "recovery caught up within the bound: {l:?}"
    );
    assert_eq!(sim.liveness_violations(), 0);
}
