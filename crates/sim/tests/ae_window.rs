//! The in-flight send window: periodic anti-entropy must not re-ship
//! batches whose normal delivery is merely still on the wire.
//!
//! Before the window, every AE tick re-sent whatever the destination
//! had not yet *applied* — including batches scheduled to arrive a few
//! simulated milliseconds later — so a benign run with a short AE
//! period re-shipped nearly every batch. Now each node tracks what has
//! been promised to it (AE bursts as causally self-contained clock
//! joins, lone client batches as contiguous per-origin advances), and
//! AE only repairs genuine losses.

use ipa_crdt::{ObjectKind, Val};
use ipa_sim::{
    paper_topology, ClientInfo, FaultPlan, OpOutcome, SimConfig, SimCtx, Simulation, Workload,
};

struct Inserter {
    n: u64,
}

impl Workload for Inserter {
    fn op(&mut self, ctx: &mut SimCtx<'_>, client: ClientInfo) -> OpOutcome {
        self.n += 1;
        let v = Val::str(format!("e{}", self.n));
        ctx.commit(client.region, |tx| {
            tx.ensure("set", ObjectKind::AWSet)?;
            tx.aw_add("set", v)
        })
        .expect("commit at a live replica");
        OpOutcome::ok("insert", 1, 1)
    }
}

fn cfg(seed: u64, faults: FaultPlan) -> SimConfig {
    SimConfig {
        clients_per_region: 2,
        warmup_s: 0.3,
        duration_s: 3.0,
        seed,
        faults,
        ..Default::default()
    }
}

/// Benign transport, aggressive anti-entropy: with no losses, every
/// batch is already promised (its delivery is in flight under the WAN
/// RTT), so AE must send **nothing**. This is the regression pin for
/// the in-flight window — without it the 50 ms AE period re-ships
/// almost every batch mid-flight.
#[test]
fn anti_entropy_sends_nothing_on_a_lossless_transport() {
    let faults = FaultPlan {
        anti_entropy_s: Some(0.05),
        ..FaultPlan::none()
    };
    let mut sim = Simulation::new(paper_topology(), cfg(29, faults));
    let mut w = Inserter { n: 0 };
    sim.run(&mut w);
    assert!(sim.metrics.completed > 100, "the workload actually ran");
    assert_eq!(
        sim.nemesis.anti_entropy_batches, 0,
        "no losses ⇒ nothing for anti-entropy to repair"
    );
    sim.quiesce();
    for r in 1..3u16 {
        assert_eq!(
            sim.replica(r).clock(),
            sim.replica(0).clock(),
            "replica {r} converged without AE help"
        );
    }
}

/// Lossy transport: the window must not mask real losses — dropped
/// batches never arrive, their promises expire, and anti-entropy
/// re-ships them (at least one send per dropped batch, possibly more
/// when a drop also stalls causally later batches at the destination).
#[test]
fn anti_entropy_still_repairs_real_drops() {
    let mut faults = FaultPlan::with_intensity(7, 0.5);
    faults.flap = None; // isolate the drop/dup/delay path
    faults.anti_entropy_s = Some(0.1);
    let mut sim = Simulation::new(paper_topology(), cfg(31, faults));
    let mut w = Inserter { n: 0 };
    sim.run(&mut w);
    assert!(
        sim.nemesis.batches_dropped > 0,
        "the nemesis dropped batches"
    );
    assert!(
        sim.nemesis.anti_entropy_batches >= sim.nemesis.batches_dropped,
        "every drop was repaired by an AE send: {} repaired vs {} dropped",
        sim.nemesis.anti_entropy_batches,
        sim.nemesis.batches_dropped
    );
    sim.quiesce();
    let sizes: Vec<usize> = (0..3u16)
        .map(|r| {
            sim.replica(r)
                .object(&"set".into())
                .unwrap()
                .as_awset()
                .unwrap()
                .len()
        })
        .collect();
    assert_eq!(sizes[0], sizes[1], "drops healed everywhere");
    assert_eq!(sizes[1], sizes[2]);
    assert_eq!(sizes[0] as u64, w.n, "no insert lost");
}
