//! Replay-policy regressions for two carried-over bugs:
//!
//! * **Defer, don't drop**: a recorded op whose home replica is down in
//!   a *modified* fault plan defers to the region's restart instead of
//!   being silently skipped — skipping deleted writes from shrink
//!   candidates, so ddmin kept "minimal" plans that only failed because
//!   the workload lost ops, not because of the fault under test.
//! * **Op-keyed send table**: recorded send latencies are keyed by the
//!   staging op event `(client, fire µs, ordinal)`, not by the batch's
//!   `(origin, dest, seq)` — batch sequences re-pack when a shrunk
//!   trace removes earlier commits, which mis-assigned one op's
//!   recorded delays to a different op's batches.

use ipa_crdt::{ObjectKind, Val};
use ipa_sim::{
    paper_topology, AppOp, ClientInfo, ExplicitPlan, FaultEvent, FaultPlan, OpOutcome, OpTrace,
    SimConfig, SimCtx, Simulation, Workload,
};

/// The replayable unique-insert workload (same shape as the op-trace
/// suite): `decide` draws a salt from the workload RNG, `execute`
/// inserts the decided element — every executed op adds one distinct
/// element to a single add-wins set, so the converged set size counts
/// exactly how many recorded ops actually ran.
#[derive(Default)]
struct ReplayableInserter {
    n: u64,
}

impl ReplayableInserter {
    fn decide_op(&mut self, ctx: &mut SimCtx<'_>, client: ClientInfo) -> String {
        use rand::Rng;
        self.n += 1;
        let salt: u32 = ctx.rng().gen_range(0..1000);
        format!("insert c{} e{}s{salt}", client.id, self.n)
    }

    fn execute_op(&mut self, ctx: &mut SimCtx<'_>, client: ClientInfo, op: &str) -> OpOutcome {
        let mut tok = op.split_whitespace();
        assert_eq!(tok.next(), Some("insert"), "bad op {op:?}");
        let _who = tok.next().expect("client token");
        let elem = tok.next().expect("element token").to_owned();
        ctx.commit(client.region, |tx| {
            tx.ensure("set", ObjectKind::AWSet)?;
            tx.aw_add("set", Val::str(elem))
        })
        .expect("commit");
        OpOutcome::ok("insert", 1, 1)
    }
}

impl Workload for ReplayableInserter {
    fn op(&mut self, ctx: &mut SimCtx<'_>, client: ClientInfo) -> OpOutcome {
        let op = self.decide_op(ctx, client);
        self.execute_op(ctx, client, &op)
    }

    fn decide(&mut self, ctx: &mut SimCtx<'_>, client: ClientInfo) -> Option<AppOp> {
        Some(AppOp::new(self.decide_op(ctx, client)))
    }

    fn execute(&mut self, ctx: &mut SimCtx<'_>, client: ClientInfo, op: &AppOp) -> OpOutcome {
        self.execute_op(ctx, client, op.as_str())
    }
}

fn cfg(seed: u64) -> SimConfig {
    SimConfig {
        clients_per_region: 2,
        warmup_s: 0.2,
        duration_s: 1.8,
        seed,
        faults: FaultPlan::none(),
        ..Default::default()
    }
}

/// Record a benign probabilistic run's op trace.
fn record_trace(seed: u64) -> OpTrace {
    let mut sim = Simulation::new(paper_topology(), cfg(seed));
    sim.record_op_trace();
    let mut w = ReplayableInserter::default();
    sim.run(&mut w);
    sim.quiesce();
    sim.take_op_trace()
}

fn set_len(sim: &Simulation, region: u16) -> usize {
    sim.replica(region)
        .object(&"set".into())
        .expect("set exists")
        .as_awset()
        .expect("is awset")
        .len()
}

#[test]
fn crashed_home_ops_defer_to_the_restart() {
    let trace = record_trace(11);
    let total = trace.events.len();
    assert!(total > 100, "enough recorded ops to straddle the window");

    // Replay under a crash window the record run never had: region 0 is
    // down 0.5 s–0.9 s, squarely inside the recorded op schedule.
    let crash = ExplicitPlan {
        events: vec![FaultEvent::Crash {
            region: 0,
            at_s: 0.5,
            down_s: 0.4,
        }],
        anti_entropy_s: Some(0.25),
        ae_latency_ms: Vec::new(),
        skew_ms: Vec::new(),
    };
    let run = || {
        let mut sim = Simulation::new(paper_topology(), cfg(11));
        sim.set_explicit_faults(&crash);
        sim.set_explicit_ops(&trace);
        let mut w = ReplayableInserter::default();
        sim.run(&mut w);
        sim.quiesce();
        sim
    };
    let sim = run();
    assert!(
        sim.metrics.failed > 0,
        "the crash window must actually hit recorded ops"
    );
    // Every recorded op still executed: the ops that found their home
    // replica down re-fired at the restart (the old skip policy lost
    // them, shrinking the converged set).
    for r in 0..3u16 {
        assert_eq!(
            set_len(&sim, r),
            total,
            "all {total} recorded inserts survive the added crash window"
        );
    }
    assert_eq!(
        run().schedule_digest(),
        sim.schedule_digest(),
        "deferred replay is deterministic"
    );
}

#[test]
fn ops_stay_skipped_when_the_region_never_restarts() {
    let trace = record_trace(11);
    let total = trace.events.len();
    // Region 0 crashes and stays down past the run's end: there is no
    // restart to defer to, so its clients' remaining ops are skipped
    // (quiesce restarts everyone, but the ops are gone — exactly the
    // pre-defer behavior, still correct when recovery is impossible).
    let crash = ExplicitPlan {
        events: vec![FaultEvent::Crash {
            region: 0,
            at_s: 0.5,
            down_s: 1.0e6,
        }],
        anti_entropy_s: Some(0.25),
        ae_latency_ms: Vec::new(),
        skew_ms: Vec::new(),
    };
    let mut sim = Simulation::new(paper_topology(), cfg(11));
    sim.set_explicit_faults(&crash);
    sim.set_explicit_ops(&trace);
    let mut w = ReplayableInserter::default();
    sim.run(&mut w);
    sim.quiesce();
    assert!(sim.metrics.failed > 0);
    let lost = total - set_len(&sim, 0);
    assert!(lost > 0, "region 0's post-crash ops cannot execute");
}

/// Pinned digest of the shrunk-candidate replay below. The constant
/// seals the op-keyed send table: under the old `(origin, dest, seq)`
/// keying, removing client 0's events re-packed region 0's batch
/// sequences, so client 1's surviving ops looked up — and got — client
/// 0's recorded delays, perturbing the schedule away from this value.
const SHRUNK_CANDIDATE_DIGEST: u64 = 0x3a6a_ce03_8bf2_5bb9;

#[test]
fn shrunk_traces_keep_send_latencies_with_their_op() {
    let full = record_trace(23);
    assert!(!full.sends.is_empty());

    // A ddmin-style candidate: client 0's events removed, the *full*
    // send table kept (exactly what the joint shrinker feeds sealed
    // runs mid-minimization).
    let mut candidate = full.clone();
    candidate.events.retain(|e| e.client != 0);
    assert!(
        candidate.events.len() < full.events.len(),
        "client 0 executed ops"
    );

    // The reference: same surviving events, send table filtered to
    // those ops' own entries — stale entries cannot be mis-assigned if
    // they are not there at all.
    let mut reference = candidate.clone();
    reference.sends.retain(|s| s.client != 0);
    assert!(reference.sends.len() < candidate.sends.len());

    let run = |t: &OpTrace| {
        let mut sim = Simulation::new(paper_topology(), cfg(23));
        sim.set_explicit_ops(t);
        let mut w = ReplayableInserter::default();
        sim.run(&mut w);
        sim.quiesce();
        sim.schedule_digest()
    };
    let cand = run(&candidate);
    assert_eq!(
        cand,
        run(&reference),
        "a surviving op replays with its own recorded delays — stale \
         entries for removed ops must never be consulted"
    );
    assert_eq!(
        cand, SHRUNK_CANDIDATE_DIGEST,
        "pinned shrunk-candidate schedule moved — send-table keying \
         regressed (got {cand:#018x})"
    );
}
