//! Shrinker properties over real sealed simulations:
//!
//! * a recorded fault trace replays the original probabilistic run
//!   bit-identically (the "seal" — same schedule digest);
//! * a plan with one injected culprit fault shrinks to exactly that
//!   fault, and replaying the minimized plan reproduces the identical
//!   violation (same digest);
//! * every candidate the shrinker keeps fails the same oracle check;
//! * shrinking is deterministic from the `(workload seed, fault seed)`
//!   pair.

use ipa_crdt::{ObjectKind, ReplicaId, Val};
use ipa_sim::{
    paper_topology, shrink_plan, ClientInfo, CrashPlan, ExplicitPlan, FaultEvent, FaultPlan,
    OpOutcome, RunVerdict, ShrinkBudget, SimConfig, SimCtx, Simulation, Workload,
};

/// Deterministic unique-insert workload (independent of fault plans:
/// every op succeeds locally, so the client schedule shape is fixed by
/// the workload seed alone).
struct Inserter {
    n: u64,
}

impl Workload for Inserter {
    fn op(&mut self, ctx: &mut SimCtx<'_>, client: ClientInfo) -> OpOutcome {
        self.n += 1;
        let v = Val::str(format!("e{}", self.n));
        ctx.commit(client.region, |tx| {
            tx.ensure("set", ObjectKind::AWSet)?;
            tx.aw_add("set", v)
        })
        .expect("commit");
        OpOutcome::ok("insert", 1, 1)
    }
}

fn cfg(seed: u64, faults: FaultPlan) -> SimConfig {
    SimConfig {
        clients_per_region: 2,
        warmup_s: 0.2,
        duration_s: 1.8,
        seed,
        faults,
        ..Default::default()
    }
}

/// Run one sealed (explicit-plan) simulation; returns it pre-quiesce so
/// oracles can inspect the un-repaired end-of-run state.
fn run_explicit(workload_seed: u64, plan: &ExplicitPlan) -> Simulation {
    let mut sim = Simulation::new(paper_topology(), cfg(workload_seed, FaultPlan::none()));
    sim.set_explicit_faults(plan);
    let mut w = Inserter { n: 0 };
    sim.run(&mut w);
    sim
}

#[test]
fn recorded_trace_replays_bit_identically() {
    for (workload_seed, fault_seed, intensity, crashy) in
        [(11u64, 11u64, 0.5, false), (97, 3007, 1.0, true)]
    {
        let mut plan = FaultPlan::with_intensity(fault_seed, intensity);
        if crashy {
            plan.crashes.push(CrashPlan {
                region: (fault_seed % 3) as u16,
                at_s: 0.9,
                down_s: 0.8,
            });
        }
        let mut sim = Simulation::new(paper_topology(), cfg(workload_seed, plan));
        sim.record_fault_trace();
        let mut w = Inserter { n: 0 };
        sim.run(&mut w);
        sim.quiesce();
        let trace = sim.take_fault_trace();
        assert!(!trace.events.is_empty());

        let mut replay = run_explicit(workload_seed, &trace);
        replay.quiesce();
        assert_eq!(
            replay.schedule_digest(),
            sim.schedule_digest(),
            "sealed replay must reproduce the probabilistic run exactly \
             (seeds {workload_seed}/{fault_seed})"
        );
        assert_eq!(replay.nemesis, sim.nemesis);

        // And the text format round-trips the whole trace losslessly.
        let parsed: ExplicitPlan = trace.to_string().parse().expect("parse");
        assert_eq!(parsed, trace);
    }
}

/// The targeted oracle used by the culprit tests: the run fails iff
/// `dest` never applied `origin`'s batch `seq` by end-of-run (a dropped
/// batch with anti-entropy effectively disabled stays missing).
fn missing_batch_verdict(sim: &Simulation, origin: u16, dest: u16, seq: u64) -> Option<RunVerdict> {
    (sim.replica(dest).clock().get(ReplicaId(origin)) < seq).then(|| RunVerdict {
        check: format!("missing-batch r{origin}:{seq}@r{dest}"),
        digest: sim.schedule_digest(),
    })
}

#[test]
fn single_culprit_shrinks_to_exactly_that_fault() {
    let workload_seed = 11;
    // A plan with one real culprit (the drop) buried in noise: 120
    // delay/duplicate events that never block causal delivery for long.
    let culprit = FaultEvent::Drop {
        origin: 0,
        dest: 2,
        seq: 40,
    };
    let mut plan = ExplicitPlan {
        // Anti-entropy never fires inside the window, so the dropped
        // batch stays missing (the liveness-style failure mode).
        anti_entropy_s: None,
        ..Default::default()
    };
    for i in 0..120u64 {
        let (origin, dest) = (
            [0u16, 1, 2][(i % 3) as usize],
            [1u16, 2, 0][(i % 3) as usize],
        );
        plan.events.push(if i % 2 == 0 {
            FaultEvent::Delay {
                origin,
                dest,
                seq: i / 3 + 1,
                extra_ms: 25.0,
            }
        } else {
            FaultEvent::Duplicate {
                origin,
                dest,
                seq: i / 3 + 1,
                dup_delay_ms: 40.0,
            }
        });
        if i == 60 {
            plan.events.push(culprit);
        }
    }
    let original_events = plan.events.len();

    let outcome = shrink_plan(&plan, ShrinkBudget::default(), |candidate| {
        let sim = run_explicit(workload_seed, candidate);
        missing_batch_verdict(&sim, 0, 2, 40)
    })
    .expect("the full plan fails: the culprit drop is in it");

    assert_eq!(
        outcome.plan.events,
        vec![culprit],
        "ddmin must isolate the culprit:\n{}",
        outcome.plan
    );
    assert!(
        outcome.shrunk_events() * 10 <= original_events,
        "{} of {} events is not ≤ 10%",
        outcome.shrunk_events(),
        original_events
    );

    // The printed repro replays the identical violation: parse the
    // minimized plan back from its text form and re-run it.
    let reparsed: ExplicitPlan = outcome.plan.to_string().parse().expect("parse");
    let sim = run_explicit(workload_seed, &reparsed);
    let verdict = missing_batch_verdict(&sim, 0, 2, 40).expect("still violates");
    assert_eq!(verdict.check, outcome.check);
    assert_eq!(
        verdict.digest, outcome.digest,
        "replaying the minimized plan reproduces the same schedule digest"
    );
}

#[test]
fn every_kept_candidate_fails_the_same_check() {
    // Two distinct failure modes in one plan: drops on 0→2 and on 1→0.
    // The oracle reports whichever it sees, preferring the 0→2 check;
    // the shrinker locks onto the *initial* check and must never keep a
    // candidate that only fails the other one.
    let mut plan = ExplicitPlan {
        anti_entropy_s: None,
        ..Default::default()
    };
    for seq in [20u64, 30, 40] {
        plan.events.push(FaultEvent::Drop {
            origin: 0,
            dest: 2,
            seq,
        });
        plan.events.push(FaultEvent::Drop {
            origin: 1,
            dest: 0,
            seq,
        });
    }
    let workload_seed = 23;
    let mut kept_checks = Vec::new();
    let outcome = shrink_plan(&plan, ShrinkBudget::default(), |candidate| {
        let sim = run_explicit(workload_seed, candidate);
        let verdict =
            missing_batch_verdict(&sim, 0, 2, 20).or_else(|| missing_batch_verdict(&sim, 1, 0, 20));
        if let Some(v) = &verdict {
            kept_checks.push(v.check.clone());
        }
        verdict
    })
    .expect("fails");
    assert_eq!(outcome.check, "missing-batch r0:20@r2");
    // Every failing verdict the shrinker accepted (kept) matches the
    // target check; verdicts for the other check were rejected, so the
    // minimized plan must still fail the original check.
    let sim = run_explicit(workload_seed, &outcome.plan);
    assert!(missing_batch_verdict(&sim, 0, 2, 20).is_some());
    assert!(
        outcome.plan.events.len() <= 2,
        "the unrelated 1→0 drops must be gone:\n{}",
        outcome.plan
    );
}

#[test]
fn shrinking_is_deterministic_from_the_seed_pair() {
    // The advertised CI workflow: record the trace of a probabilistic
    // (workload seed, fault seed) run, derive the failure from the trace
    // itself, shrink. Both full passes must agree bit for bit.
    let (workload_seed, fault_seed) = (37u64, 41u64);
    let shrink_once = || {
        let mut plan = FaultPlan::with_intensity(fault_seed, 0.3);
        // Defer anti-entropy past the window so drops stay unrepaired.
        plan.anti_entropy_s = Some(3600.0);
        let mut sim = Simulation::new(paper_topology(), cfg(workload_seed, plan));
        sim.record_fault_trace();
        let mut w = Inserter { n: 0 };
        sim.run(&mut w);
        let trace = sim.take_fault_trace();
        // The failure to minimize: the last batch the nemesis dropped.
        let &FaultEvent::Drop { origin, dest, seq } = trace
            .events
            .iter()
            .rev()
            .find(|e| matches!(e, FaultEvent::Drop { .. }))
            .expect("intensity 0.3 drops something")
        else {
            unreachable!()
        };
        let outcome = shrink_plan(&trace, ShrinkBudget::default(), |candidate| {
            let sim = run_explicit(workload_seed, candidate);
            missing_batch_verdict(&sim, origin, dest, seq)
        })
        .expect("the recorded trace contains the culprit drop");
        (outcome.plan.to_string(), outcome.digest, outcome.runs)
    };
    let a = shrink_once();
    let b = shrink_once();
    assert_eq!(a, b, "same seed pair ⇒ same minimized plan, digest, cost");
    // And the minimized plan is tiny: the culprit drop alone suffices.
    let plan: ExplicitPlan = a.0.parse().expect("parse");
    assert!(
        plan.events.len() <= 2,
        "expected (near-)singleton plan:\n{}",
        a.0
    );
}

/// Tie-break re-pin: explicit-plan replays schedule their nemesis
/// windows (cuts, crashes, restarts) at a dedicated same-microsecond
/// rank, in `(time, payload)`-sorted order — a stable `(time, class,
/// payload)` tie-break that closed the PR-4 event-queue follow-up.
/// These digests pin the explicit event loop's output; a future change
/// to the tie-break (or to explicit scheduling in general) shifts them
/// and must be re-pinned intentionally.
#[test]
fn explicit_plan_digests_stay_pinned() {
    // A hand-written plan whose windows collide in virtual time: two
    // cuts and a crash at the same microsecond (1.000000s), plus
    // transport faults. The stable tie-break orders the windows by
    // (time, class, payload) regardless of their line order in the
    // plan, so both permutations must produce the identical digest.
    let text_a = "ae 0.25\n\
                  cut 0-1 1.0 0.3\n\
                  cut 0-2 1.0 0.2\n\
                  crash 1 1.0 0.5\n\
                  drop 0->2 5\n\
                  delay 1->0 7 42.5\n\
                  dup 2->1 3 40\n";
    let text_b = "ae 0.25\n\
                  dup 2->1 3 40\n\
                  crash 1 1.0 0.5\n\
                  drop 0->2 5\n\
                  cut 0-2 1.0 0.2\n\
                  cut 0-1 1.0 0.3\n\
                  delay 1->0 7 42.5\n";
    let run_digest = |text: &str| {
        let plan: ExplicitPlan = text.parse().expect("parse");
        let mut sim = run_explicit(11, &plan);
        sim.quiesce();
        sim.schedule_digest()
    };
    let (a, b) = (run_digest(text_a), run_digest(text_b));
    assert_eq!(a, b, "window order in the plan text must not matter");
    // Re-pinned once for the in-flight send-window fix: anti-entropy no
    // longer re-ships batches whose delivery is still in flight or
    // already buffered awaiting causal predecessors, so every AE-era
    // schedule (and thus its digest) changed.
    assert_eq!(
        a, 0xa54741ef367d3aa4,
        "explicit collision-plan digest drifted: 0x{a:016x}"
    );

    // And the recorded-trace seal digests for two probed configs.
    for (workload_seed, fault_seed, intensity, want) in [
        (11u64, 11u64, 0.5, 0x173347a1a85d25b6u64),
        (97, 3007, 1.0, 0xb4f72990169527f0),
    ] {
        let plan = FaultPlan::with_intensity(fault_seed, intensity);
        let mut sim = Simulation::new(paper_topology(), cfg(workload_seed, plan));
        sim.record_fault_trace();
        let mut w = Inserter { n: 0 };
        sim.run(&mut w);
        sim.quiesce();
        let trace = sim.take_fault_trace();
        let mut replay = run_explicit(workload_seed, &trace);
        replay.quiesce();
        let got = replay.schedule_digest();
        assert_eq!(
            got, want,
            "sealed-replay digest drifted for ({workload_seed},{fault_seed}): \
             0x{got:016x} != 0x{want:016x}"
        );
    }
}
