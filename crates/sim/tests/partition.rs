//! Partition behaviour: batches committed while a link is down are
//! deferred, replicas diverge during the cut, and convergence is restored
//! once in-flight traffic drains.

use ipa_crdt::{ObjectKind, Val};
use ipa_sim::{
    two_region_topology, ClientInfo, OpOutcome, SimConfig, SimCtx, Simulation, Workload,
};

struct PartitionedInserter {
    cut_at_op: u64,
    heal_at_op: u64,
    ops: u64,
}

impl Workload for PartitionedInserter {
    fn op(&mut self, ctx: &mut SimCtx<'_>, client: ClientInfo) -> OpOutcome {
        self.ops += 1;
        if self.ops == self.cut_at_op {
            ctx.set_link(0, 1, false);
        }
        if self.ops == self.heal_at_op {
            ctx.set_link(0, 1, true);
        }
        let v = Val::str(format!("e{}", self.ops));
        ctx.commit(client.region, |tx| {
            tx.ensure("set", ObjectKind::AWSet)?;
            tx.aw_add("set", v)
        })
        .expect("weak ops stay available during the partition");
        OpOutcome::ok("insert", 1, 1)
    }
}

#[test]
fn weak_ops_available_during_partition_and_converge_after() {
    let cfg = SimConfig {
        clients_per_region: 2,
        warmup_s: 0.2,
        duration_s: 3.0,
        seed: 99,
        ..Default::default()
    };
    let mut sim = Simulation::new(two_region_topology(), cfg);
    let mut w = PartitionedInserter {
        cut_at_op: 50,
        heal_at_op: 400,
        ops: 0,
    };
    sim.run(&mut w);
    assert!(
        w.ops > 500,
        "clients kept running through the cut: {}",
        w.ops
    );
    assert_eq!(sim.metrics.failed, 0, "weak operations never fail");
    // Drain everything (including the deferred partition-era batches).
    sim.quiesce();
    let n0 = sim
        .replica(0)
        .object(&"set".into())
        .unwrap()
        .as_awset()
        .unwrap()
        .len();
    let n1 = sim
        .replica(1)
        .object(&"set".into())
        .unwrap()
        .as_awset()
        .unwrap()
        .len();
    assert_eq!(n0, n1, "replicas reconcile after the partition heals");
    assert_eq!(n0 as u64, w.ops, "no update was lost");
}
