//! Partition behaviour: batches committed while a link is down are
//! deferred, replicas diverge during the cut, and convergence is restored
//! once in-flight traffic drains — with the continuous invariant oracle
//! active at every audit point of the run.

use ipa_crdt::{ObjectKind, Val};
use ipa_sim::{
    two_region_topology, ClientInfo, OpOutcome, SimConfig, SimCtx, Simulation, Workload,
};
use std::cell::Cell;
use std::rc::Rc;

struct PartitionedInserter {
    cut_at_op: u64,
    heal_at_op: u64,
    ops: Rc<Cell<u64>>,
}

impl Workload for PartitionedInserter {
    fn op(&mut self, ctx: &mut SimCtx<'_>, client: ClientInfo) -> OpOutcome {
        self.ops.set(self.ops.get() + 1);
        let ops = self.ops.get();
        if ops == self.cut_at_op {
            ctx.set_link(0, 1, false);
        }
        if ops == self.heal_at_op {
            ctx.set_link(0, 1, true);
        }
        let v = Val::str(format!("e{ops}"));
        ctx.commit(client.region, |tx| {
            tx.ensure("set", ObjectKind::AWSet)?;
            tx.aw_add("set", v)
        })
        .expect("weak ops stay available during the partition");
        OpOutcome::ok("insert", 1, 1)
    }
}

#[test]
fn weak_ops_available_during_partition_and_converge_after() {
    let cfg = SimConfig {
        clients_per_region: 2,
        warmup_s: 0.2,
        duration_s: 3.0,
        seed: 99,
        ..Default::default()
    };
    let mut sim = Simulation::new(two_region_topology(), cfg);
    let ops = Rc::new(Cell::new(0u64));
    let mut w = PartitionedInserter {
        cut_at_op: 50,
        heal_at_op: 400,
        ops: Rc::clone(&ops),
    };
    // Continuous oracle (audited throughout the run, partition included):
    // a replica can never hold more unique inserts than were ever issued
    // — each excess element counts as a violated invariant instance.
    let issued = Rc::clone(&ops);
    sim.set_auditor(
        0.1,
        Box::new(move |_region, replica| {
            let len = replica
                .object(&"set".into())
                .map(|o| o.as_awset().unwrap().len() as u64)
                .unwrap_or(0);
            len.saturating_sub(issued.get())
        }),
    );
    sim.run(&mut w);
    assert!(
        ops.get() > 500,
        "clients kept running through the cut: {}",
        ops.get()
    );
    assert_eq!(sim.metrics.failed, 0, "weak operations never fail");
    // Drain everything (including the deferred partition-era batches).
    sim.quiesce();
    assert!(sim.metrics.audits > 10, "oracle audited throughout the run");
    assert_eq!(
        sim.metrics.audit_violations, 0,
        "no replica ever observed phantom inserts (first violation at {:?} ms)",
        sim.metrics.first_audit_violation_ms
    );
    let n0 = sim
        .replica(0)
        .object(&"set".into())
        .unwrap()
        .as_awset()
        .unwrap()
        .len();
    let n1 = sim
        .replica(1)
        .object(&"set".into())
        .unwrap()
        .as_awset()
        .unwrap()
        .len();
    assert_eq!(n0, n1, "replicas reconcile after the partition heals");
    assert_eq!(n0 as u64, ops.get(), "no update was lost");
}
