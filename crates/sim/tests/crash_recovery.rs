//! Crash/restart nemesis: a replica killed mid-stream loses its volatile
//! state (outbox + pending buffer), refuses clients while down, and on
//! restart rebuilds through anti-entropy — with no update lost, no batch
//! double-applied, and causal stability (hence GC) still advancing.

use ipa_crdt::{ObjectKind, Val};
use ipa_sim::{
    paper_topology, ClientInfo, CrashPlan, FaultPlan, OpOutcome, SimConfig, SimCtx, Simulation,
    Workload,
};

struct Inserter {
    n: u64,
}

impl Workload for Inserter {
    fn op(&mut self, ctx: &mut SimCtx<'_>, client: ClientInfo) -> OpOutcome {
        self.n += 1;
        let v = Val::str(format!("e{}", self.n));
        ctx.commit(client.region, |tx| {
            tx.ensure("set", ObjectKind::AWSet)?;
            tx.aw_add("set", v)
        })
        .expect("commit at a live replica");
        OpOutcome::ok("insert", 1, 1)
    }
}

fn crash_cfg(seed: u64) -> SimConfig {
    let mut faults = FaultPlan::none();
    // Kill replica 1 mid-stream, twice, with a second-long outage each.
    faults.crashes.push(CrashPlan {
        region: 1,
        at_s: 0.8,
        down_s: 1.0,
    });
    faults.crashes.push(CrashPlan {
        region: 1,
        at_s: 3.0,
        down_s: 0.7,
    });
    SimConfig {
        clients_per_region: 2,
        warmup_s: 0.3,
        duration_s: 4.5,
        seed,
        faults,
        ..Default::default()
    }
}

#[test]
fn crashed_replica_recovers_without_loss_or_double_apply() {
    let mut sim = Simulation::new(paper_topology(), crash_cfg(41));
    let mut w = Inserter { n: 0 };
    sim.run(&mut w);

    assert_eq!(sim.nemesis.crashes, 2, "both scheduled crashes fired");
    assert!(
        sim.nemesis.batches_lost_in_crash > 0 || sim.nemesis.batches_refused_down > 0,
        "the crash actually destroyed volatile state or refused traffic"
    );
    assert!(
        sim.metrics.failed > 0,
        "clients homed at the crashed region fail while it is down"
    );
    assert!(
        sim.nemesis.anti_entropy_batches > 0,
        "recovery ran anti-entropy"
    );

    sim.quiesce();
    let sizes: Vec<usize> = (0..3u16)
        .map(|r| {
            sim.replica(r)
                .object(&"set".into())
                .unwrap()
                .as_awset()
                .unwrap()
                .len()
        })
        .collect();
    assert_eq!(sizes[0], sizes[1], "crashed replica caught back up");
    assert_eq!(sizes[1], sizes[2]);
    assert_eq!(sizes[0] as u64, w.n, "every surviving commit replicated");
    for r in 0..3u16 {
        assert_eq!(sim.replica(r).pending_count(), 0, "pending buffer rebuilt");
    }
    assert!(
        sim.double_apply_violations().is_empty(),
        "updates_applied never double-counts across redeliveries"
    );
}

#[test]
fn stability_and_gc_still_advance_after_recovery() {
    let mut sim = Simulation::new(paper_topology(), crash_cfg(43));
    let mut w = Inserter { n: 0 };
    sim.run(&mut w);
    sim.quiesce();
    for r in 0..3u16 {
        assert!(
            sim.replica(r).stats.gc_runs > 0,
            "replica {r} kept garbage-collecting"
        );
    }
    // After quiescence every replica holds the same clock; one more
    // commit round at each replica pushes the stability frontier past
    // the crash window, so the durable logs compact.
    let log_before: usize = (0..3u16).map(|r| sim.replica(r).log_len()).sum();
    for r in 0..3u16 {
        let replica = sim.replica_mut(r);
        let mut tx = replica.begin();
        tx.ensure("ack", ObjectKind::PNCounter).unwrap();
        tx.counter_add("ack", 1).unwrap();
        tx.commit();
    }
    sim.sync_all();
    let ids: Vec<ipa_crdt::ReplicaId> = (0..3u16).map(ipa_crdt::ReplicaId).collect();
    for r in 0..3u16 {
        sim.replica_mut(r).run_gc(&ids);
    }
    let log_after: usize = (0..3u16).map(|r| sim.replica(r).log_len()).sum();
    assert!(
        log_after < log_before,
        "stability frontier advanced and compacted the logs: {log_before} -> {log_after}"
    );
}

#[test]
fn crash_runs_replay_from_seed() {
    let run = |seed| {
        let mut sim = Simulation::new(paper_topology(), crash_cfg(seed));
        let mut w = Inserter { n: 0 };
        sim.run(&mut w);
        sim.quiesce();
        (sim.schedule_digest(), sim.nemesis, sim.metrics.completed)
    };
    assert_eq!(run(47), run(47), "same seed ⇒ identical crash schedule");
    assert_ne!(run(47).0, run(48).0);
}
