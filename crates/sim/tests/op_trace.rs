//! Op-trace properties over real simulations:
//!
//! * a recorded op trace replays the original probabilistic run
//!   bit-identically with the workload RNG never drawn (the op seal) —
//!   with the nemesis kept probabilistic *and* with the fault trace
//!   sealed too;
//! * recording is pure observation: it never perturbs the schedule;
//! * recording and replay are deterministic from the
//!   `(workload seed, fault seed)` pair;
//! * the trace text roundtrips exactly (integer-µs times and delays);
//! * joint shrinking over a real sealed runner isolates the op that
//!   commits a dropped batch.

use ipa_crdt::{ObjectKind, Val};
use ipa_sim::{
    paper_topology, shrink_joint, AppOp, ClientInfo, CrashPlan, ExplicitPlan, FaultEvent,
    FaultPlan, OpOutcome, OpTrace, RunVerdict, ShrinkBudget, SimConfig, SimCtx, Simulation,
    Workload,
};

/// A replayable unique-insert workload: `decide` draws a value index
/// from the workload RNG (so replay genuinely proves RNG-freedom),
/// `execute` inserts the decided element into a per-client add-wins set.
#[derive(Default)]
struct ReplayableInserter {
    n: u64,
}

impl ReplayableInserter {
    fn decide_op(&mut self, ctx: &mut SimCtx<'_>, client: ClientInfo) -> String {
        use rand::Rng;
        self.n += 1;
        let salt: u32 = ctx.rng().gen_range(0..1000);
        format!("insert c{} e{}s{salt}", client.id, self.n)
    }

    fn execute_op(&mut self, ctx: &mut SimCtx<'_>, client: ClientInfo, op: &str) -> OpOutcome {
        let mut tok = op.split_whitespace();
        assert_eq!(tok.next(), Some("insert"), "bad op {op:?}");
        let _who = tok.next().expect("client token");
        let elem = tok.next().expect("element token").to_owned();
        ctx.commit(client.region, |tx| {
            tx.ensure("set", ObjectKind::AWSet)?;
            tx.aw_add("set", Val::str(elem))
        })
        .expect("commit");
        OpOutcome::ok("insert", 1, 1)
    }
}

impl Workload for ReplayableInserter {
    fn op(&mut self, ctx: &mut SimCtx<'_>, client: ClientInfo) -> OpOutcome {
        let op = self.decide_op(ctx, client);
        self.execute_op(ctx, client, &op)
    }

    fn decide(&mut self, ctx: &mut SimCtx<'_>, client: ClientInfo) -> Option<AppOp> {
        Some(AppOp::new(self.decide_op(ctx, client)))
    }

    fn execute(&mut self, ctx: &mut SimCtx<'_>, client: ClientInfo, op: &AppOp) -> OpOutcome {
        self.execute_op(ctx, client, op.as_str())
    }
}

fn cfg(seed: u64, faults: FaultPlan) -> SimConfig {
    SimConfig {
        clients_per_region: 2,
        warmup_s: 0.2,
        duration_s: 1.8,
        seed,
        faults,
        ..Default::default()
    }
}

/// The probed fault configs: benign, mid-intensity, hot + crash.
fn probed_plans(fault_seed: u64) -> Vec<FaultPlan> {
    let mut crashy = FaultPlan::with_intensity(fault_seed, 1.0);
    crashy.crashes.push(CrashPlan {
        region: (fault_seed % 3) as u16,
        at_s: 0.9,
        down_s: 0.8,
    });
    vec![
        FaultPlan::none(),
        FaultPlan::with_intensity(fault_seed, 0.5),
        crashy,
    ]
}

/// Run one probabilistic simulation, optionally recording traces.
fn run_probabilistic(
    seed: u64,
    faults: &FaultPlan,
    record: bool,
) -> (Simulation, Option<(ExplicitPlan, OpTrace)>) {
    let mut sim = Simulation::new(paper_topology(), cfg(seed, faults.clone()));
    if record {
        sim.record_fault_trace();
        sim.record_op_trace();
    }
    let mut w = ReplayableInserter::default();
    sim.run(&mut w);
    sim.quiesce();
    let traces = record.then(|| {
        let f = sim.take_fault_trace();
        let o = sim.take_op_trace();
        (f, o)
    });
    (sim, traces)
}

#[test]
fn recording_never_perturbs_the_schedule() {
    for (seed, fault_seed) in [(11u64, 11u64), (97, 3007)] {
        for faults in probed_plans(fault_seed) {
            let (plain, _) = run_probabilistic(seed, &faults, false);
            let (recorded, traces) = run_probabilistic(seed, &faults, true);
            assert_eq!(
                plain.schedule_digest(),
                recorded.schedule_digest(),
                "recording must be pure observation (seeds {seed}/{fault_seed}, {faults})"
            );
            let (_, ops) = traces.expect("recorded");
            assert!(!ops.events.is_empty());
            assert!(!ops.sends.is_empty());
        }
    }
}

#[test]
fn op_seal_is_bit_exact_on_every_probed_config() {
    for (seed, fault_seed) in [(11u64, 11u64), (23, 713), (97, 3007)] {
        for faults in probed_plans(fault_seed) {
            let (orig, traces) = run_probabilistic(seed, &faults, true);
            let (fault_trace, op_trace) = traces.expect("recorded");

            // Ops sealed, nemesis still probabilistic: the nemesis RNG
            // stream is independent of the workload's, so the replay
            // draws the identical fault decisions.
            let mut replay = Simulation::new(paper_topology(), cfg(seed, faults.clone()));
            replay.set_explicit_ops(&op_trace);
            let mut w = ReplayableInserter::default();
            replay.run(&mut w);
            replay.quiesce();
            assert_eq!(
                replay.schedule_digest(),
                orig.schedule_digest(),
                "ops-only seal (seeds {seed}/{fault_seed}, {faults})"
            );
            assert_eq!(replay.nemesis, orig.nemesis);

            // Fully sealed: explicit faults + explicit ops — neither
            // RNG is ever drawn, and the digest still matches.
            let mut sealed = Simulation::new(paper_topology(), cfg(seed, FaultPlan::none()));
            sealed.set_explicit_faults(&fault_trace);
            sealed.set_explicit_ops(&op_trace);
            let mut w = ReplayableInserter::default();
            sealed.run(&mut w);
            sealed.quiesce();
            assert_eq!(
                sealed.schedule_digest(),
                orig.schedule_digest(),
                "full seal (seeds {seed}/{fault_seed}, {faults})"
            );
            assert_eq!(sealed.nemesis, orig.nemesis);
        }
    }
}

#[test]
fn recorded_traces_roundtrip_as_text_exactly() {
    let faults = FaultPlan::with_intensity(11, 0.5);
    let (_, traces) = run_probabilistic(11, &faults, true);
    let (_, ops) = traces.expect("recorded");
    let text = ops.to_string();
    let back: OpTrace = text.parse().expect("parse");
    assert_eq!(back, ops, "trace text roundtrips field-exactly");
    assert_eq!(back.to_string(), text, "rendering is idempotent");
    // Times and delays are integer microseconds end to end, so there is
    // no float channel to lose precision through.
    for e in &ops.events {
        assert!(text.contains(&format!("op {} {} ", e.client, e.at_us)));
    }
}

#[test]
fn recording_and_replay_are_deterministic_from_the_seed_pair() {
    let (seed, fault_seed) = (37u64, 41u64);
    let faults = FaultPlan::with_intensity(fault_seed, 0.5);
    let (a_sim, a) = run_probabilistic(seed, &faults, true);
    let (b_sim, b) = run_probabilistic(seed, &faults, true);
    let (af, ao) = a.expect("recorded");
    let (bf, bo) = b.expect("recorded");
    assert_eq!(a_sim.schedule_digest(), b_sim.schedule_digest());
    assert_eq!(af, bf, "fault traces agree");
    assert_eq!(ao, bo, "op traces agree");

    let replay_digest = |ops: &OpTrace, plan: &ExplicitPlan| {
        let mut sim = Simulation::new(paper_topology(), cfg(seed, FaultPlan::none()));
        sim.set_explicit_faults(plan);
        sim.set_explicit_ops(ops);
        let mut w = ReplayableInserter::default();
        sim.run(&mut w);
        sim.quiesce();
        sim.schedule_digest()
    };
    assert_eq!(replay_digest(&ao, &af), replay_digest(&bo, &bf));
}

/// Joint shrinking against a real sealed runner: a batch dropped with
/// anti-entropy disabled stays missing, and the minimized pair must
/// contain (essentially) just the drop and the ops the failure needs —
/// an actual near-unit-test counterexample.
#[test]
fn joint_shrink_isolates_the_dropped_batch_and_its_op() {
    let seed = 11u64;
    // Record a benign run to get a full op trace, then fail it with a
    // single injected drop of an early batch from replica 0 to 2.
    let (_, traces) = run_probabilistic(seed, &FaultPlan::none(), true);
    let (_, op_trace) = traces.expect("recorded");
    assert!(
        op_trace.events.len() >= 100,
        "enough ops to make shrinking meaningful: {}",
        op_trace.events.len()
    );
    let culprit = FaultEvent::Drop {
        origin: 0,
        dest: 2,
        seq: 3,
    };
    let faults = ExplicitPlan {
        events: vec![culprit],
        anti_entropy_s: Some(0.25),
        ae_latency_ms: Vec::new(),
        skew_ms: Vec::new(),
    };

    // The bounded-liveness oracle at bound 0 is the check: a gap is
    // registered only when a *sent* batch is dropped, so the failure
    // needs both the drop event and the op that commits replica 0's
    // third batch — the shrinker cannot cheat by deleting everything
    // (no ops ⇒ no send ⇒ no gap ⇒ green).
    let runner = |f: &ExplicitPlan, o: &OpTrace| -> Option<RunVerdict> {
        let mut sim = Simulation::new(paper_topology(), cfg(seed, FaultPlan::none()));
        sim.set_explicit_faults(f);
        sim.set_explicit_ops(o);
        sim.set_liveness_bound(0);
        let mut w = ReplayableInserter::default();
        sim.run(&mut w);
        (sim.liveness_violations() > 0).then(|| RunVerdict {
            check: "bounded-liveness".into(),
            digest: sim.schedule_digest(),
        })
    };

    let out = shrink_joint(&faults, &op_trace, ShrinkBudget::default(), runner)
        .expect("the pair fails: the dropped batch opens a liveness gap");
    assert_eq!(out.check, "bounded-liveness");
    assert_eq!(out.faults.events, vec![culprit], "{}", out.faults);
    assert!(
        out.op_events() * 10 <= out.original_op_events,
        "{} of {} op events is not ≤ 10%",
        out.op_events(),
        out.original_op_events
    );
    // Replaying the minimized pair (through its text form) reproduces
    // the identical violation and digest.
    let f: ExplicitPlan = out.faults.to_string().parse().expect("parse");
    let o: OpTrace = out.ops.to_string().parse().expect("parse");
    let verdict = runner(&f, &o).expect("still fails");
    assert_eq!(verdict.digest, out.digest);
}
