//! Inter-region latency model.

use rand::Rng;

/// A region (data center) index; doubles as the store's replica id.
pub type Region = u16;

/// Pairwise network latency: a base RTT matrix plus multiplicative jitter,
/// and per-link partition switches (for availability experiments).
#[derive(Clone, Debug)]
pub struct LatencyModel {
    /// Round-trip times in milliseconds, `rtt[a][b]`.
    rtt_ms: Vec<Vec<f64>>,
    /// Uniform jitter fraction (e.g. 0.1 → ±10 %).
    jitter: f64,
    /// `true` when the link is cut.
    down: Vec<Vec<bool>>,
}

impl LatencyModel {
    /// Build from a symmetric RTT matrix (ms).
    pub fn new(rtt_ms: Vec<Vec<f64>>, jitter: f64) -> LatencyModel {
        let n = rtt_ms.len();
        for row in &rtt_ms {
            assert_eq!(row.len(), n, "latency matrix must be square");
        }
        LatencyModel {
            rtt_ms,
            jitter,
            down: vec![vec![false; n]; n],
        }
    }

    pub fn regions(&self) -> usize {
        self.rtt_ms.len()
    }

    /// Base RTT between two regions (no jitter).
    pub fn base_rtt(&self, a: Region, b: Region) -> f64 {
        self.rtt_ms[a as usize][b as usize]
    }

    /// Sampled RTT with jitter.
    pub fn rtt(&self, a: Region, b: Region, rng: &mut impl Rng) -> f64 {
        jittered(self.base_rtt(a, b), self.jitter, rng)
    }

    /// Sampled one-way delay with jitter (half the RTT).
    pub fn one_way(&self, a: Region, b: Region, rng: &mut impl Rng) -> f64 {
        jittered(self.base_rtt(a, b) / 2.0, self.jitter, rng)
    }

    /// Is the link currently usable?
    pub fn link_up(&self, a: Region, b: Region) -> bool {
        !self.down[a as usize][b as usize]
    }

    /// Cut or heal a link (both directions).
    pub fn set_link(&mut self, a: Region, b: Region, up: bool) {
        self.down[a as usize][b as usize] = !up;
        self.down[b as usize][a as usize] = !up;
    }
}

fn jittered(base: f64, jitter: f64, rng: &mut impl Rng) -> f64 {
    if base <= 0.0 || jitter <= 0.0 {
        return base.max(0.0);
    }
    let factor = 1.0 + rng.gen_range(-jitter..jitter);
    (base * factor).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> LatencyModel {
        LatencyModel::new(
            vec![
                vec![0.5, 80.0, 80.0],
                vec![80.0, 0.5, 160.0],
                vec![80.0, 160.0, 0.5],
            ],
            0.1,
        )
    }

    #[test]
    fn base_and_jittered_rtts() {
        let m = model();
        assert_eq!(m.base_rtt(0, 1), 80.0);
        assert_eq!(m.base_rtt(1, 2), 160.0);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let r = m.rtt(0, 1, &mut rng);
            assert!((72.0..=88.0).contains(&r), "{r}");
            let ow = m.one_way(1, 2, &mut rng);
            assert!((72.0..=88.0).contains(&ow), "{ow}");
        }
    }

    #[test]
    fn determinism_per_seed() {
        let m = model();
        let a: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..10).map(|_| m.rtt(0, 2, &mut rng)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..10).map(|_| m.rtt(0, 2, &mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn partitions() {
        let mut m = model();
        assert!(m.link_up(0, 1));
        m.set_link(0, 1, false);
        assert!(!m.link_up(0, 1));
        assert!(!m.link_up(1, 0));
        assert!(m.link_up(0, 2));
        m.set_link(0, 1, true);
        assert!(m.link_up(0, 1));
    }
}
