//! Latency and throughput accounting.

use std::collections::BTreeMap;
use std::fmt;

/// Aggregated statistics for one operation label.
#[derive(Clone, Debug, PartialEq)]
pub struct LatencySummary {
    pub count: usize,
    pub mean_ms: f64,
    pub p50_ms: f64,
    pub p95_ms: f64,
    pub p99_ms: f64,
    /// 99.9th percentile — the open-loop load sweep's tail metric
    /// (meaningful only with thousands of samples per point).
    pub p999_ms: f64,
    pub std_ms: f64,
}

/// Collects per-operation latencies (simulated ms) inside a measurement
/// window, plus success/failure counts.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    samples: BTreeMap<String, Vec<f64>>,
    pub completed: u64,
    pub failed: u64,
    /// Invariant violations observed by the workload (Fig. 7 red dots).
    pub violations: u64,
    /// Violated invariant instances counted by the continuous oracle
    /// across all audit points (nemesis runs).
    pub audit_violations: u64,
    /// Number of oracle audit points taken.
    pub audits: u64,
    /// Simulated time of the first audit that observed a violation.
    pub first_audit_violation_ms: Option<f64>,
    window_start_s: f64,
    window_end_s: f64,
}

impl Metrics {
    pub fn new() -> Self {
        Self::default()
    }

    /// Define the measurement window (seconds of simulated time);
    /// `record` calls outside it are ignored by throughput computation
    /// (callers should simply not record during warm-up).
    pub fn set_window(&mut self, start_s: f64, end_s: f64) {
        self.window_start_s = start_s;
        self.window_end_s = end_s;
    }

    pub fn window_secs(&self) -> f64 {
        (self.window_end_s - self.window_start_s).max(f64::EPSILON)
    }

    pub fn record(&mut self, label: &str, latency_ms: f64) {
        self.samples
            .entry(label.to_owned())
            .or_default()
            .push(latency_ms);
        self.completed += 1;
    }

    pub fn record_failure(&mut self) {
        self.failed += 1;
    }

    pub fn record_violations(&mut self, n: u64) {
        self.violations += n;
    }

    /// Record one oracle audit point (continuous invariant checking).
    pub fn record_audit(&mut self, violations: u64, at_ms: f64) {
        self.audits += 1;
        self.audit_violations += violations;
        if violations > 0 && self.first_audit_violation_ms.is_none() {
            self.first_audit_violation_ms = Some(at_ms);
        }
    }

    /// Fraction of attempted operations that completed (1.0 when nothing
    /// failed; the availability axis of the nemesis figure).
    pub fn availability(&self) -> f64 {
        let attempts = self.completed + self.failed;
        if attempts == 0 {
            return 1.0;
        }
        self.completed as f64 / attempts as f64
    }

    /// Throughput over the window (transactions per simulated second).
    pub fn throughput(&self) -> f64 {
        self.completed as f64 / self.window_secs()
    }

    pub fn labels(&self) -> impl Iterator<Item = &str> {
        self.samples.keys().map(String::as_str)
    }

    /// Summary for one label.
    pub fn summary(&self, label: &str) -> Option<LatencySummary> {
        let xs = self.samples.get(label)?;
        summarize(xs)
    }

    /// Summary across all labels.
    pub fn overall(&self) -> Option<LatencySummary> {
        self.overall_with(&mut Vec::new())
    }

    /// [`Metrics::overall`] flattening into a caller-provided scratch
    /// buffer, so sweeps computing one summary per point reuse a single
    /// warmed allocation instead of re-growing a fresh vector each time.
    pub fn overall_with(&self, scratch: &mut Vec<f64>) -> Option<LatencySummary> {
        scratch.clear();
        scratch.extend(self.samples.values().flatten().copied());
        if scratch.is_empty() {
            return None;
        }
        scratch.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        summarize_sorted(scratch)
    }
}

fn summarize(xs: &[f64]) -> Option<LatencySummary> {
    if xs.is_empty() {
        return None;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    summarize_sorted(&sorted)
}

fn summarize_sorted(sorted: &[f64]) -> Option<LatencySummary> {
    if sorted.is_empty() {
        return None;
    }
    let n = sorted.len();
    let mean = sorted.iter().sum::<f64>() / n as f64;
    let var = sorted.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
    let pct = |p: f64| sorted[(((n - 1) as f64) * p).floor() as usize];
    Some(LatencySummary {
        count: n,
        mean_ms: mean,
        p50_ms: pct(0.50),
        p95_ms: pct(0.95),
        p99_ms: pct(0.99),
        p999_ms: pct(0.999),
        std_ms: var.sqrt(),
    })
}

impl fmt::Display for LatencySummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={:>6}  mean={:>8.2}ms  p50={:>8.2}ms  p95={:>8.2}ms  p99={:>8.2}ms  σ={:>7.2}ms",
            self.count, self.mean_ms, self.p50_ms, self.p95_ms, self.p99_ms, self.std_ms
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summaries_and_percentiles() {
        let mut m = Metrics::new();
        m.set_window(0.0, 10.0);
        for i in 1..=100 {
            m.record("op", i as f64);
        }
        let s = m.summary("op").unwrap();
        assert_eq!(s.count, 100);
        assert!((s.mean_ms - 50.5).abs() < 1e-9);
        assert_eq!(s.p50_ms, 50.0);
        assert_eq!(s.p95_ms, 95.0);
        assert_eq!(s.p99_ms, 99.0);
        assert_eq!(s.p999_ms, 99.0, "floor((n-1)·0.999) with n=100");
        assert!(s.std_ms > 28.0 && s.std_ms < 30.0);
        assert_eq!(m.throughput(), 10.0);
    }

    #[test]
    fn overall_merges_labels() {
        let mut m = Metrics::new();
        m.set_window(0.0, 1.0);
        m.record("a", 10.0);
        m.record("b", 20.0);
        let o = m.overall().unwrap();
        assert_eq!(o.count, 2);
        assert_eq!(o.mean_ms, 15.0);
        assert!(m.summary("missing").is_none());
    }

    #[test]
    fn failures_and_violations_counted() {
        let mut m = Metrics::new();
        m.record_failure();
        m.record_violations(3);
        assert_eq!(m.failed, 1);
        assert_eq!(m.violations, 3);
    }

    #[test]
    fn audits_and_availability() {
        let mut m = Metrics::new();
        assert_eq!(m.availability(), 1.0, "vacuously available");
        m.record_audit(0, 100.0);
        m.record_audit(2, 250.0);
        m.record_audit(1, 400.0);
        assert_eq!(m.audits, 3);
        assert_eq!(m.audit_violations, 3);
        assert_eq!(m.first_audit_violation_ms, Some(250.0));
        m.record("op", 1.0);
        m.record("op", 1.0);
        m.record("op", 1.0);
        m.record_failure();
        assert_eq!(m.availability(), 0.75);
    }
}
