//! The simulation driver: event loop, clients, and the workload
//! interface.

use crate::fault::FaultPlan;
use crate::latency::{LatencyModel, Region};
use crate::metrics::Metrics;
use crate::server::{ServerQueue, ServiceCosts};
use crate::shrink::{ExplicitPlan, FaultEvent};
use crate::time::SimTime;
use crate::trace::{AppOp, OpEvent, OpTrace, SendRec, SETUP_CLIENT};
use ipa_crdt::ReplicaId;
use ipa_store::{
    anti_entropy_fixpoint_nodes, AeCursors, CommitInfo, Node, Replica, StoreError, Transaction,
    Transport, UpdateBatch,
};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// Simulation parameters.
#[derive(Clone, Debug)]
pub struct SimConfig {
    pub clients_per_region: usize,
    /// Mean client think time between operations (exponential-ish via
    /// uniform jitter).
    pub think_time_ms: f64,
    /// Client ↔ local server round trip (same availability zone).
    pub client_rtt_ms: f64,
    /// Warm-up before measurements start (simulated seconds).
    pub warmup_s: f64,
    /// Measured duration after warm-up (simulated seconds).
    pub duration_s: f64,
    pub seed: u64,
    pub costs: ServiceCosts,
    /// Stability GC period (None disables).
    pub gc_interval_s: Option<f64>,
    /// Nemesis schedule: transport faults, flapping partitions, replica
    /// crashes. [`FaultPlan::none`] reproduces the benign transport.
    pub faults: FaultPlan,
    /// Shard count for every replica's object table (key space is
    /// hash-partitioned; see `ipa_store::DEFAULT_SHARDS`). The
    /// simulation applies shards in fixed index order, so the event
    /// schedule — and every digest pin — is shard-count-invariant.
    pub shards: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            clients_per_region: 4,
            think_time_ms: 10.0,
            client_rtt_ms: 1.0,
            warmup_s: 2.0,
            duration_s: 10.0,
            seed: 42,
            costs: ServiceCosts::default(),
            gc_interval_s: Some(1.0),
            faults: FaultPlan::none(),
            shards: ipa_store::DEFAULT_SHARDS,
        }
    }
}

/// What the nemesis actually did during a run (observability; every
/// count is deterministic per `(seed, faults)`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NemesisStats {
    pub batches_dropped: u64,
    pub batches_duplicated: u64,
    pub batches_delayed: u64,
    pub crashes: u64,
    /// Volatile batches (outbox + pending) wiped by crashes.
    pub batches_lost_in_crash: u64,
    /// Batches arriving at a down replica (lost).
    pub batches_refused_down: u64,
    pub link_flaps: u64,
    /// Batches re-sent by periodic / restart anti-entropy.
    pub anti_entropy_batches: u64,
    /// Batches delivered corrupted (bit-flipped, truncated, forged, or
    /// mutated duplicates). Zero unless the plan arms corruption.
    pub batches_corrupted: u64,
}

/// Captures every fault the nemesis RNG materializes, so a failing
/// probabilistic run can be re-expressed as an [`ExplicitPlan`] and
/// handed to the shrinker. Recording is pure observation: it draws no
/// RNG and never perturbs the schedule.
#[derive(Debug, Default)]
struct TraceRecorder {
    events: Vec<FaultEvent>,
    /// Cut windows awaiting their heal: `(a, b, cut_at_s)`.
    open_cuts: Vec<(Region, Region, f64)>,
    /// Crashes awaiting their restart: `(region, at_s)`.
    open_crashes: Vec<(Region, f64)>,
    ae_latency_ms: Vec<(u64, Region, Region, f64)>,
}

/// Downtime recorded for a crash whose restart never fired inside the
/// run window (effectively "down forever" — quiesce restarts everyone).
const OPEN_ENDED_S: f64 = 1.0e6;

/// Captures every executed client operation (and every staged send's
/// latency draw), so a failing run's workload can be re-expressed as an
/// [`OpTrace`] and shrunk alongside its fault plan. Pure observation:
/// recording draws no RNG and never perturbs the schedule.
#[derive(Debug, Default)]
struct OpRecorder {
    events: Vec<OpEvent>,
    sends: Vec<SendRec>,
}

/// Indexed form of an [`OpTrace`]: per-client FIFO queues of `(fire
/// time, op)` plus the recorded send-delay table keyed by staging op
/// event (`(client, fire µs, ordinal)`). When installed, every client
/// fires at its recorded times and executes its recorded ops — the
/// workload RNG is never drawn.
#[derive(Debug)]
struct ExplicitOps {
    by_client: Vec<VecDeque<(u64, AppOp)>>,
    sends: HashMap<(u64, u64, u32), u64>,
}

/// Indexed form of an [`ExplicitPlan`]: when installed, every fault
/// decision is a table lookup and the nemesis RNG is never drawn — the
/// run is a pure function of `(workload seed, plan)`.
#[derive(Debug)]
struct ExplicitNemesis {
    drops: HashSet<(Region, Region, u64)>,
    delays: HashMap<(Region, Region, u64), f64>,
    dups: HashMap<(Region, Region, u64), f64>,
    /// Adversarial per-batch corruption: bit-flips, truncations, forged
    /// sequence numbers, mutated duplicates.
    flips: HashSet<(Region, Region, u64)>,
    truncs: HashMap<(Region, Region, u64), u64>,
    forges: HashMap<(Region, Region, u64), u64>,
    mutdups: HashMap<(Region, Region, u64), f64>,
    cuts: Vec<(Region, Region, f64, f64)>,
    crashes: Vec<(Region, f64, f64)>,
    ae_latency_ms: HashMap<(u64, Region, Region), f64>,
    anti_entropy_s: Option<f64>,
    /// Per-origin honest clock drift in milliseconds.
    skew_ms: Vec<(Region, f64)>,
}

impl ExplicitNemesis {
    fn index(plan: &ExplicitPlan) -> ExplicitNemesis {
        let mut ex = ExplicitNemesis {
            drops: HashSet::new(),
            delays: HashMap::new(),
            dups: HashMap::new(),
            flips: HashSet::new(),
            truncs: HashMap::new(),
            forges: HashMap::new(),
            mutdups: HashMap::new(),
            cuts: Vec::new(),
            crashes: Vec::new(),
            ae_latency_ms: plan
                .ae_latency_ms
                .iter()
                .map(|&(r, s, d, ms)| ((r, s, d), ms))
                .collect(),
            anti_entropy_s: plan.anti_entropy_s,
            skew_ms: plan.skew_ms.clone(),
        };
        for e in &plan.events {
            match *e {
                FaultEvent::Drop { origin, dest, seq } => {
                    ex.drops.insert((origin, dest, seq));
                }
                FaultEvent::Delay {
                    origin,
                    dest,
                    seq,
                    extra_ms,
                } => {
                    ex.delays.insert((origin, dest, seq), extra_ms);
                }
                FaultEvent::Duplicate {
                    origin,
                    dest,
                    seq,
                    dup_delay_ms,
                } => {
                    ex.dups.insert((origin, dest, seq), dup_delay_ms);
                }
                FaultEvent::Partition {
                    a,
                    b,
                    at_s,
                    outage_s,
                } => {
                    ex.cuts.push((a, b, at_s, outage_s));
                }
                FaultEvent::Crash {
                    region,
                    at_s,
                    down_s,
                } => {
                    ex.crashes.push((region, at_s, down_s));
                }
                FaultEvent::Flip { origin, dest, seq } => {
                    ex.flips.insert((origin, dest, seq));
                }
                FaultEvent::Truncate {
                    origin,
                    dest,
                    seq,
                    keep,
                } => {
                    ex.truncs.insert((origin, dest, seq), keep);
                }
                FaultEvent::Forge {
                    origin,
                    dest,
                    seq,
                    back,
                } => {
                    ex.forges.insert((origin, dest, seq), back);
                }
                FaultEvent::MutDup {
                    origin,
                    dest,
                    seq,
                    dup_delay_ms,
                } => {
                    ex.mutdups.insert((origin, dest, seq), dup_delay_ms);
                }
            }
        }
        ex
    }
}

/// A fault-induced causal gap under repair: replica `dest` is missing
/// `origin`'s batch `seq` (it was dropped, refused while down, or lost
/// in a crash). The bounded-liveness oracle requires anti-entropy to
/// close every gap within N rounds of repair opportunity.
#[derive(Clone, Copy, Debug)]
struct Gap {
    dest: Region,
    origin: Region,
    seq: u64,
    /// Anti-entropy rounds elapsed while repair was possible (the
    /// direct link up, the replica alive). Reset by heals and restarts:
    /// each network transition grants a fresh window.
    rounds: u64,
}

/// Bounded-liveness accounting: "after the last injected fault, every
/// replica converges within N anti-entropy rounds — not just at
/// quiesce". Tracked per fault-induced gap during the run, plus the
/// number of productive repair rounds the quiesce fixpoint needed.
#[derive(Clone, Copy, Debug, Default)]
pub struct LivenessStats {
    /// Gaps ever tracked (drops, refused-while-down, restart catch-up).
    pub tracked_gaps: u64,
    /// Gaps repaired by anti-entropy (clock caught up).
    pub repaired_gaps: u64,
    /// Most repair-eligible rounds any gap stayed open.
    pub max_gap_rounds: u64,
    /// Gaps that outlived the bound mid-run (counted once per gap).
    pub run_breaches: u64,
    /// Productive anti-entropy rounds the quiesce fixpoint executed.
    pub quiesce_rounds: u64,
    /// The configured bound (None = accounting only, never a violation).
    pub bound: Option<u64>,
}

impl LivenessStats {
    /// Violations of the bounded-liveness oracle: mid-run gaps that
    /// outlived the bound, plus one if quiescence itself needed more
    /// than N repair rounds. Always zero when no bound is configured.
    pub fn violations(&self) -> u64 {
        let Some(bound) = self.bound else {
            return 0;
        };
        self.run_breaches + u64::from(self.quiesce_rounds > bound)
    }
}

/// Continuous invariant oracle: called for every live replica at each
/// audit point; returns the number of violated invariant instances
/// observed in that replica's materialized state.
pub type Auditor = Box<dyn Fn(Region, &Replica) -> u64>;

/// A closed-loop client bound to its home region.
#[derive(Clone, Copy, Debug)]
pub struct ClientInfo {
    pub id: usize,
    pub region: Region,
}

/// What one executed operation looked like (drives timing & metrics).
#[derive(Clone, Debug)]
pub struct OpOutcome {
    pub label: &'static str,
    /// Distinct objects touched (service-cost model input).
    pub objects: usize,
    /// Total updates executed.
    pub updates: usize,
    /// Extra WAN delay the operation had to pay before completing
    /// (e.g. forwarding to the primary, fetching a reservation).
    pub extra_wan_ms: f64,
    /// False when the operation could not execute (e.g. partitioned
    /// coordination) — counted as a failure and retried after a backoff.
    pub ok: bool,
    /// Invariant violations the workload observed while executing.
    pub violations: u64,
}

impl OpOutcome {
    pub fn ok(label: &'static str, objects: usize, updates: usize) -> OpOutcome {
        OpOutcome {
            label,
            objects,
            updates,
            extra_wan_ms: 0.0,
            ok: true,
            violations: 0,
        }
    }

    pub fn with_wan(mut self, ms: f64) -> OpOutcome {
        self.extra_wan_ms += ms;
        self
    }

    pub fn unavailable(label: &'static str) -> OpOutcome {
        OpOutcome {
            label,
            objects: 0,
            updates: 0,
            extra_wan_ms: 0.0,
            ok: false,
            violations: 0,
        }
    }
}

/// The application under simulation.
///
/// The workload layer is decide/execute-split: `decide` draws the next
/// operation from the workload RNG as serialized text, `execute` runs a
/// decided (or replayed) operation deterministically. Workloads that
/// implement the pair are *replayable*: the driver can record every
/// executed op as an [`OpTrace`] event and later replay the trace with
/// [`Simulation::set_explicit_ops`] without drawing the workload RNG at
/// all. `op` is the closed-loop composition; simple test workloads may
/// implement only `op` and remain non-replayable.
pub trait Workload {
    /// Execute one client operation: run transactions through
    /// [`SimCtx::commit`], pay coordination delays via
    /// [`OpOutcome::with_wan`], and report what happened. Replayable
    /// workloads implement this as `decide` + `execute`, preserving the
    /// exact RNG draw order of the fused version.
    fn op(&mut self, ctx: &mut SimCtx<'_>, client: ClientInfo) -> OpOutcome;

    /// One-time setup before clients start (seed data).
    fn setup(&mut self, _ctx: &mut SimCtx<'_>) {}

    /// Draw the next operation for this client from the workload RNG
    /// *without executing it*, as a serialized [`AppOp`] line. `None`
    /// means the workload is not replayable ([`Simulation::record_op_trace`]
    /// refuses to run it).
    fn decide(&mut self, _ctx: &mut SimCtx<'_>, _client: ClientInfo) -> Option<AppOp> {
        None
    }

    /// Execute a decided or replayed operation. Must be a pure function
    /// of `(op, replica state, workload state)` — no RNG — so that a
    /// recorded trace replays bit-identically and shrunk traces stay
    /// deterministic.
    fn execute(&mut self, _ctx: &mut SimCtx<'_>, _client: ClientInfo, op: &AppOp) -> OpOutcome {
        panic!(
            "this workload is not replayable (no execute impl) — cannot run op {:?}",
            op.as_str()
        )
    }
}

/// The workload's view of the simulation during one operation.
pub struct SimCtx<'a> {
    now: SimTime,
    latency: &'a mut LatencyModel,
    nodes: &'a mut [Node],
    rng: &'a mut StdRng,
    /// Replication staged by commits in this op: (dest, arrival, batch).
    /// The payload is `Arc`-shared across destinations.
    staged: Vec<(Region, SimTime, Arc<UpdateBatch>)>,
    /// Recorded send delays, installed during explicit-op replay:
    /// staged deliveries use the recorded `(client, fire µs, ordinal)`
    /// delay (base latency fallback) instead of drawing the workload
    /// RNG. Keying by staging op — not by the batch's `(origin, dest,
    /// seq)` — keeps delays glued to their op when a shrunk trace
    /// re-packs batch sequences.
    replay_sends: Option<&'a HashMap<(u64, u64, u32), u64>>,
    /// The executing client ([`SETUP_CLIENT`] during `Workload::setup`);
    /// with `self.now`, the send-table key prefix for this op.
    replay_client: u64,
}

impl<'a> SimCtx<'a> {
    pub fn now(&self) -> SimTime {
        self.now
    }

    pub fn regions(&self) -> usize {
        self.nodes.len()
    }

    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    pub fn replica(&mut self, region: Region) -> &mut Replica {
        self.nodes[region as usize].replica_mut()
    }

    /// Sampled round trip between regions (jitter-free base during
    /// explicit-op replay, which never draws the workload RNG).
    pub fn rtt(&mut self, a: Region, b: Region) -> f64 {
        if self.replay_sends.is_some() {
            return self.latency.base_rtt(a, b);
        }
        self.latency.rtt(a, b, self.rng)
    }

    pub fn base_rtt(&self, a: Region, b: Region) -> f64 {
        self.latency.base_rtt(a, b)
    }

    pub fn link_up(&self, a: Region, b: Region) -> bool {
        self.latency.link_up(a, b)
    }

    pub fn set_link(&mut self, a: Region, b: Region, up: bool) {
        self.latency.set_link(a, b, up);
    }

    /// Run a transaction on a region's replica and stage its batch for
    /// asynchronous replication with per-link latency. Returns the
    /// closure's value alongside the commit info.
    pub fn commit<T>(
        &mut self,
        region: Region,
        f: impl FnOnce(&mut Transaction<'_>) -> Result<T, StoreError>,
    ) -> Result<(T, CommitInfo), StoreError> {
        let (value, info) = {
            let replica = self.nodes[region as usize].replica_mut();
            let mut tx = replica.begin();
            let value = f(&mut tx)?;
            (value, tx.commit())
        };
        // Stage replication of everything committed at this replica.
        let batches = self.nodes[region as usize].replica_mut().take_outbox();
        let n = self.nodes.len() as u16;
        for batch in batches {
            for dest in 0..n {
                if dest == region {
                    continue;
                }
                // Explicit-op replay: the send delay is the recorded one
                // (exact µs — the seal) or the jitter-free base latency
                // for sends a shrunk trace no longer records; the
                // workload RNG is never drawn. The partition check stays
                // first so candidate replays honor *their own* fault
                // plan's cut windows; the seal is unaffected — a batch
                // recorded while its link was down recorded this same
                // heal delay.
                if let Some(sends) = self.replay_sends {
                    let key = (
                        self.replay_client,
                        self.now.as_micros(),
                        self.staged.len() as u32,
                    );
                    let delay = if !self.latency.link_up(region, dest) {
                        SimTime::from_secs(3600.0)
                    } else {
                        match sends.get(&key) {
                            Some(&us) => SimTime(us),
                            None => SimTime::from_ms(self.latency.base_rtt(region, dest) / 2.0),
                        }
                    };
                    self.staged
                        .push((dest, self.now + delay, Arc::clone(&batch)));
                    continue;
                }
                if !self.latency.link_up(region, dest) {
                    // Partitioned: deliver when the link heals — modeled
                    // as a long delay re-checked by the driver.
                    let delay = SimTime::from_secs(3600.0);
                    self.staged
                        .push((dest, self.now + delay, Arc::clone(&batch)));
                    continue;
                }
                let ow = self.latency.one_way(region, dest, self.rng);
                self.staged
                    .push((dest, self.now + SimTime::from_ms(ow), Arc::clone(&batch)));
            }
        }
        Ok((value, info))
    }
}

/// The operation surface an application needs from its host transport —
/// exactly what the four IPA workloads and the coordination layer
/// (escrow, reservations, strong ops) consume per operation. [`SimCtx`]
/// implements it for the deterministic simulation; the threaded harness
/// in `ipa-apps` implements it over a live [`ipa_store::ThreadedCluster`].
/// Code written against `OpCtx` runs unmodified on either transport.
pub trait OpCtx {
    /// Number of regions (= replicas) in the deployment.
    fn regions(&self) -> usize;

    /// The workload RNG. Only `decide` paths may draw from it —
    /// `execute` must stay RNG-free so recorded traces replay exactly.
    fn rng(&mut self) -> &mut StdRng;

    /// Sampled round trip between two regions in milliseconds (zero on
    /// transports that don't model WAN latency).
    fn rtt(&mut self, a: Region, b: Region) -> f64;

    /// Is the link between the two regions currently usable? Partitioned
    /// coordination must fail fast rather than block.
    fn link_up(&self, a: Region, b: Region) -> bool;

    /// Is the region's replica accepting transactions? Crashed replicas
    /// must be skipped by remote coordination (escrow donor selection,
    /// strong forwarding) — committing "at" a crashed replica would leak
    /// state into its downtime. Transports without a fault injector keep
    /// the default (always up).
    fn node_up(&self, _region: Region) -> bool {
        true
    }

    /// Simulated time of the executing operation in microseconds (zero
    /// on transports without a virtual clock). Provisioning policies key
    /// their proactive-rebalance windows off this, which keeps them
    /// deterministic under the simulator.
    fn now_us(&self) -> u64 {
        0
    }

    /// Run a transaction on a region's replica and hand its batch to the
    /// transport for asynchronous replication.
    fn commit<T>(
        &mut self,
        region: Region,
        f: impl FnOnce(&mut Transaction<'_>) -> Result<T, StoreError>,
    ) -> Result<(T, CommitInfo), StoreError>;
}

impl OpCtx for SimCtx<'_> {
    fn regions(&self) -> usize {
        SimCtx::regions(self)
    }

    fn rng(&mut self) -> &mut StdRng {
        SimCtx::rng(self)
    }

    fn rtt(&mut self, a: Region, b: Region) -> f64 {
        SimCtx::rtt(self, a, b)
    }

    fn link_up(&self, a: Region, b: Region) -> bool {
        SimCtx::link_up(self, a, b)
    }

    fn node_up(&self, region: Region) -> bool {
        !self.nodes[region as usize].is_down()
    }

    fn now_us(&self) -> u64 {
        self.now.as_micros()
    }

    fn commit<T>(
        &mut self,
        region: Region,
        f: impl FnOnce(&mut Transaction<'_>) -> Result<T, StoreError>,
    ) -> Result<(T, CommitInfo), StoreError> {
        SimCtx::commit(self, region, f)
    }
}

#[derive(Clone, Debug)]
enum Event {
    ClientReady(usize),
    BatchArrive {
        dest: Region,
        batch: Arc<UpdateBatch>,
    },
    Gc,
    /// Nemesis: cut a random link (and schedule its heal).
    Flap,
    /// Explicit nemesis: cut this specific link for the given outage.
    Cut(Region, Region, f64),
    /// Nemesis: heal the given link.
    FlapHeal(Region, Region),
    /// Nemesis: crash a replica (volatile state lost).
    Crash(Region),
    /// Nemesis: restart a crashed replica and run recovery anti-entropy.
    Restart(Region),
    /// Periodic pairwise anti-entropy (drop/crash repair).
    AntiEntropy,
    /// Continuous invariant-oracle audit point.
    Audit,
}

/// Same-microsecond tie-break class. Probabilistic runs schedule
/// everything at `RANK_DEFAULT`, so their order is `(time, seq)` —
/// byte-identical to the pre-rank event loop (the digest-stability pins
/// prove it). Explicit-plan replays schedule their upfront nemesis
/// windows (cuts, crashes, restarts) at `RANK_WINDOW`, in `(time,
/// payload)`-sorted insertion order: a stable `(time, class, payload)`
/// tie-break that mirrors where those events sat in the probabilistic
/// run's seq order (windows are scheduled upfront or a full flap period
/// ahead, so they carry the smallest seq at their timestamp) and — being
/// a pure function of plan *content* — is immune to ddmin reordering.
const RANK_WINDOW: u8 = 0;
const RANK_DEFAULT: u8 = 1;

#[derive(Clone, Debug)]
struct Scheduled {
    at: SimTime,
    /// Tie-break class at equal `at` (before `seq`).
    rank: u8,
    seq: u64,
    ev: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.rank == other.rank && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.rank, self.seq).cmp(&(other.at, other.rank, other.seq))
    }
}

/// The discrete-event simulation: regional replicas + servers + clients.
pub struct Simulation {
    cfg: SimConfig,
    latency: LatencyModel,
    nodes: Vec<Node>,
    servers: Vec<ServerQueue>,
    clients: Vec<ClientInfo>,
    queue: BinaryHeap<Reverse<Scheduled>>,
    seq: u64,
    now: SimTime,
    rng: StdRng,
    /// Independent nemesis stream: fault decisions never perturb the
    /// workload's RNG, so the same `cfg.seed` drives the same client
    /// schedule under any fault plan.
    nemesis_rng: StdRng,
    /// Per-peer anti-entropy cursors carried across periodic rounds and
    /// the quiesce fixpoint: pairs whose last pull drained and whose
    /// inputs (peer clock, source log version) are unchanged skip the
    /// pull. Never changes which batches are sent, so schedule digests
    /// are unaffected.
    ae_cursors: AeCursors,
    /// FNV-1a fold of every processed event — two runs with equal seeds
    /// produce equal digests (the determinism oracle).
    digest: u64,
    auditor: Option<(Auditor, f64)>,
    /// Fault-trace recorder (None unless enabled; pure observation).
    trace: Option<TraceRecorder>,
    /// Op-trace recorder (None unless enabled; pure observation).
    op_rec: Option<OpRecorder>,
    /// Explicit nemesis replay (None = probabilistic `cfg.faults`).
    explicit: Option<ExplicitNemesis>,
    /// Explicit workload replay (None = RNG-driven closed-loop clients).
    explicit_ops: Option<ExplicitOps>,
    /// Anti-entropy round counter (periodic + restart recovery), keying
    /// recorded send latencies and the liveness gap accounting.
    ae_round: u64,
    /// Open fault-induced gaps the liveness oracle is timing.
    gaps: Vec<Gap>,
    liveness: LivenessStats,
    pub nemesis: NemesisStats,
    pub metrics: Metrics,
}

impl Simulation {
    pub fn new(latency: LatencyModel, cfg: SimConfig) -> Simulation {
        let regions = latency.regions() as u16;
        let nodes: Vec<Node> = (0..regions)
            .map(|r| Node::with_shards(ReplicaId(r), cfg.shards))
            .collect();
        let servers = (0..regions).map(|_| ServerQueue::new()).collect();
        let mut clients = Vec::with_capacity(cfg.clients_per_region * regions as usize);
        for region in 0..regions {
            for _ in 0..cfg.clients_per_region {
                clients.push(ClientInfo {
                    id: clients.len(),
                    region,
                });
            }
        }
        let rng = StdRng::seed_from_u64(cfg.seed);
        let nemesis_rng = StdRng::seed_from_u64(cfg.faults.seed ^ 0x6e65_6d65_7369_7321);
        let mut metrics = Metrics::new();
        metrics.set_window(cfg.warmup_s, cfg.warmup_s + cfg.duration_s);
        Simulation {
            cfg,
            latency,
            nodes,
            servers,
            clients,
            queue: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            rng,
            nemesis_rng,
            ae_cursors: AeCursors::new(),
            digest: 0xcbf2_9ce4_8422_2325,
            auditor: None,
            trace: None,
            op_rec: None,
            explicit: None,
            explicit_ops: None,
            ae_round: 0,
            gaps: Vec::new(),
            liveness: LivenessStats::default(),
            nemesis: NemesisStats::default(),
            metrics,
        }
    }

    /// Record every materialized fault as an explicit event, retrievable
    /// after the run via [`Simulation::take_fault_trace`]. Recording
    /// draws no RNG and cannot perturb the schedule.
    pub fn record_fault_trace(&mut self) {
        self.trace = Some(TraceRecorder::default());
    }

    /// The recorded fault trace as a replayable [`ExplicitPlan`]. Cut
    /// windows and crashes still open at the end of the run are closed
    /// with an effectively-infinite duration (matching their observed
    /// behavior: never healed / restarted inside the window).
    pub fn take_fault_trace(&mut self) -> ExplicitPlan {
        let tr = self.trace.take().expect("record_fault_trace was enabled");
        let mut events = tr.events;
        for (a, b, at_s) in tr.open_cuts {
            events.push(FaultEvent::Partition {
                a,
                b,
                at_s,
                outage_s: OPEN_ENDED_S,
            });
        }
        for (region, at_s) in tr.open_crashes {
            events.push(FaultEvent::Crash {
                region,
                at_s,
                down_s: OPEN_ENDED_S,
            });
        }
        ExplicitPlan {
            events,
            anti_entropy_s: self.cfg.faults.effective_anti_entropy_s(),
            ae_latency_ms: tr.ae_latency_ms,
            skew_ms: self.cfg.faults.skew_ms.clone(),
        }
    }

    /// Replay an explicit fault plan instead of the probabilistic
    /// `cfg.faults`: every drop/delay/duplicate is a per-batch table
    /// lookup, partitions and crashes are fixed windows, anti-entropy
    /// sends use recorded (or jitter-free base) latencies — the nemesis
    /// RNG is never drawn, so the run is a pure function of
    /// `(cfg.seed, plan)`. Call before [`Simulation::run`].
    pub fn set_explicit_faults(&mut self, plan: &ExplicitPlan) {
        debug_assert!(
            self.cfg.faults.is_none(),
            "explicit replay ignores cfg.faults; configure FaultPlan::none()"
        );
        self.explicit = Some(ExplicitNemesis::index(plan));
    }

    /// Record every executed client op (and every staged send's latency
    /// draw) as an explicit event, retrievable after the run via
    /// [`Simulation::take_op_trace`]. Recording draws no RNG and cannot
    /// perturb the schedule; it requires a replayable workload
    /// ([`Workload::decide`] returning `Some`).
    pub fn record_op_trace(&mut self) {
        self.op_rec = Some(OpRecorder::default());
    }

    /// The recorded workload as a replayable [`OpTrace`].
    pub fn take_op_trace(&mut self) -> OpTrace {
        let rec = self.op_rec.take().expect("record_op_trace was enabled");
        OpTrace {
            events: rec.events,
            sends: rec.sends,
        }
    }

    /// Replay a recorded op trace instead of the RNG-driven closed-loop
    /// clients: every client fires at its recorded virtual times and
    /// executes its recorded ops through [`Workload::execute`], staged
    /// sends use recorded (or jitter-free base) latencies, and the
    /// workload RNG is never drawn — the run is a pure function of
    /// `(trace, fault schedule)`. Call before [`Simulation::run`].
    pub fn set_explicit_ops(&mut self, trace: &OpTrace) {
        let mut by_client: Vec<VecDeque<(u64, AppOp)>> =
            (0..self.clients.len()).map(|_| VecDeque::new()).collect();
        for e in &trace.events {
            assert!(
                e.client < by_client.len(),
                "op trace client {} out of range (config has {} clients)",
                e.client,
                by_client.len()
            );
            by_client[e.client].push_back((e.at_us, e.op.clone()));
        }
        self.explicit_ops = Some(ExplicitOps {
            by_client,
            sends: trace
                .sends
                .iter()
                .map(|s| ((s.client, s.at_us, s.ordinal), s.delay_us))
                .collect(),
        });
    }

    /// Arm the bounded-liveness oracle: every fault-induced causal gap
    /// must be repaired within `rounds` anti-entropy rounds of repair
    /// opportunity, and the quiesce fixpoint must converge within
    /// `rounds` productive rounds. Violations are reported by
    /// [`Simulation::liveness_violations`].
    pub fn set_liveness_bound(&mut self, rounds: u64) {
        self.liveness.bound = Some(rounds);
    }

    pub fn liveness(&self) -> &LivenessStats {
        &self.liveness
    }

    /// Bounded-liveness violations so far (0 when no bound is armed).
    pub fn liveness_violations(&self) -> u64 {
        self.liveness.violations()
    }

    /// Install a continuous invariant oracle, audited for every live
    /// replica each `interval_s` of simulated time and once more at
    /// [`Simulation::quiesce`]. Violations accumulate in
    /// [`Metrics::audit_violations`].
    pub fn set_auditor(&mut self, interval_s: f64, auditor: Auditor) {
        self.auditor = Some((auditor, interval_s));
    }

    /// Audit every live replica now; records and returns the violation
    /// count (0 when no auditor is installed).
    pub fn audit_now(&mut self) -> u64 {
        let Some((auditor, _)) = &self.auditor else {
            return 0;
        };
        let mut violations = 0;
        for (r, node) in self.nodes.iter().enumerate() {
            if !node.is_down() {
                violations += auditor(r as Region, node.replica());
            }
        }
        self.metrics.record_audit(violations, self.now.as_ms());
        violations
    }

    /// Is the replica currently crashed by the nemesis?
    pub fn is_down(&self, region: Region) -> bool {
        self.nodes[region as usize].is_down()
    }

    /// Deterministic digest of the processed event schedule. Equal seeds
    /// (workload and nemesis) yield equal digests; any divergence means
    /// the run is not reproducible.
    pub fn schedule_digest(&self) -> u64 {
        self.digest
    }

    fn fold_digest(&mut self, words: [u64; 4]) {
        for w in words {
            self.digest ^= w;
            self.digest = self.digest.wrapping_mul(0x100_0000_01b3);
        }
    }

    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    pub fn replica(&self, region: Region) -> &Replica {
        self.nodes[region as usize].replica()
    }

    /// Direct mutable access for post-run maintenance (e.g. running the
    /// applications' read-side compensations to a fixpoint).
    pub fn replica_mut(&mut self, region: Region) -> &mut Replica {
        self.nodes[region as usize].replica_mut()
    }

    pub fn regions(&self) -> usize {
        self.nodes.len()
    }

    /// Drain every outbox and deliver all batches instantly (post-run
    /// helper; ignores link latency like [`Simulation::quiesce`]).
    pub fn sync_all(&mut self) {
        loop {
            let mut moved = false;
            for i in 0..self.nodes.len() {
                let batches = self.nodes[i].replica_mut().take_outbox();
                for batch in batches {
                    for d in 0..self.nodes.len() {
                        if d != i {
                            self.nodes[d].replica_mut().receive(Arc::clone(&batch));
                            moved = true;
                        }
                    }
                }
            }
            if !moved {
                break;
            }
        }
    }

    /// Instant pairwise anti-entropy to a fixpoint: re-delivers every
    /// logged batch some replica is missing (drop and crash repair).
    /// Records the productive round count for the liveness oracle.
    fn anti_entropy_fixpoint(&mut self) {
        self.liveness.quiesce_rounds =
            anti_entropy_fixpoint_nodes(&mut self.nodes, &mut self.ae_cursors);
    }

    /// The periodic anti-entropy interval for this run's nemesis mode.
    fn ae_interval(&self) -> Option<f64> {
        match &self.explicit {
            Some(ex) => ex.anti_entropy_s,
            None => self.cfg.faults.effective_anti_entropy_s(),
        }
    }

    pub fn num_clients(&self) -> usize {
        self.clients.len()
    }

    fn schedule(&mut self, at: SimTime, ev: Event) {
        self.schedule_ranked(at, RANK_DEFAULT, ev);
    }

    fn schedule_ranked(&mut self, at: SimTime, rank: u8, ev: Event) {
        self.seq += 1;
        self.queue.push(Reverse(Scheduled {
            at,
            rank,
            seq: self.seq,
            ev,
        }));
    }

    /// Schedule staged deliveries, applying per-link nemesis faults:
    /// drops vanish (repaired later by anti-entropy), duplicates arrive
    /// twice, delayed batches arrive out of order into the causal buffer,
    /// and — when the plan arms corruption — batches arrive bit-flipped,
    /// truncated, seq-forged, or shadowed by a mutated duplicate.
    /// Under an explicit plan the same faults come from per-batch table
    /// lookups instead of the nemesis RNG.
    fn flush_staged(&mut self, staged: Vec<(Region, SimTime, Arc<UpdateBatch>)>) {
        // A send that survives the fault table is *promised* to its
        // destination until it lands: the destination's in-flight window
        // keeps anti-entropy from re-shipping it meanwhile. Dropped
        // batches and partition-stalled sends (the 3600 s heal delay)
        // are deliberately NOT promised — those are exactly the sends
        // anti-entropy must repair. A corrupted main delivery joins that
        // set: the bytes arrive but the receiver quarantines them, so
        // for promise and liveness accounting the send *is* a drop.
        let stall = self.now + SimTime::from_secs(3600.0);
        for (dest, at, batch) in staged {
            let origin = batch.origin.0;
            let seq = batch.seq;
            // Honest per-origin clock skew: the origin's drift shifts
            // both its batch timestamp and the virtual send time, and
            // the origin reseals — a skewed batch is never quarantined.
            // Observation-free (no clone, no RNG) when no skew is armed.
            let skew = match &self.explicit {
                Some(ex) => ex
                    .skew_ms
                    .iter()
                    .find(|&&(r, _)| r == origin)
                    .map_or(0.0, |&(_, ms)| ms),
                None => self.cfg.faults.skew_of(origin),
            };
            let (batch, at) = if skew != 0.0 {
                let mut b = UpdateBatch::clone(&batch);
                let shift_us = (skew * 1000.0) as i64;
                b.lamport = if shift_us >= 0 {
                    b.lamport.saturating_add(shift_us as u64)
                } else {
                    b.lamport.saturating_sub(shift_us.unsigned_abs())
                };
                b.reseal();
                let at_us = at.as_micros() as i64 + shift_us;
                let floor = self.now.as_micros() as i64;
                (Arc::new(b), SimTime(at_us.max(floor) as u64))
            } else {
                (batch, at)
            };
            if self.explicit.is_some() {
                let key = (origin, dest, seq);
                let ex = self.explicit.as_ref().expect("checked");
                if ex.drops.contains(&key) {
                    self.nemesis.batches_dropped += 1;
                    self.note_gap(dest, origin, seq);
                    continue;
                }
                let delay = ex.delays.get(&key).copied();
                let dup = ex.dups.get(&key).copied();
                let flip = ex.flips.contains(&key);
                let trunc = ex.truncs.get(&key).copied();
                let forge = ex.forges.get(&key).copied();
                let mutdup = ex.mutdups.get(&key).copied();
                let mut at = at;
                if let Some(extra) = delay {
                    at += SimTime::from_ms(extra);
                    self.nemesis.batches_delayed += 1;
                }
                if let Some(dup_delay) = dup {
                    self.nemesis.batches_duplicated += 1;
                    self.schedule(
                        at + SimTime::from_ms(dup_delay),
                        Event::BatchArrive {
                            dest,
                            batch: Arc::clone(&batch),
                        },
                    );
                }
                if let Some(dup_delay) = mutdup {
                    // The clean delivery below keeps its promise; only
                    // the mutated shadow copy is extra.
                    self.deliver_corrupted(
                        dest,
                        at + SimTime::from_ms(dup_delay),
                        Arc::new(Self::bitflip(&batch)),
                    );
                }
                if flip || trunc.is_some() || forge.is_some() {
                    let corrupted = if flip {
                        Self::bitflip(&batch)
                    } else if let Some(keep) = trunc {
                        Self::truncate_updates(&batch, keep)
                    } else {
                        Self::forge_seq(&batch, forge.expect("checked"))
                    };
                    self.deliver_corrupted(dest, at, Arc::new(corrupted));
                    self.note_gap(dest, origin, seq);
                    continue;
                }
                if at < stall {
                    self.nodes[dest as usize].note_inflight_single(
                        batch.origin,
                        seq,
                        at.as_micros(),
                    );
                }
                self.schedule(at, Event::BatchArrive { dest, batch });
                continue;
            }
            let link = self.cfg.faults.link(origin, dest);
            let mut at = at;
            if !link.is_none() {
                if self.nemesis_rng.gen_bool(link.drop_p) {
                    self.nemesis.batches_dropped += 1;
                    if let Some(tr) = &mut self.trace {
                        tr.events.push(FaultEvent::Drop { origin, dest, seq });
                    }
                    self.note_gap(dest, origin, seq);
                    continue;
                }
                if self.nemesis_rng.gen_bool(link.delay_p) {
                    let extra = self.nemesis_rng.gen_range(0.0..link.delay_ms.max(0.001));
                    at += SimTime::from_ms(extra);
                    self.nemesis.batches_delayed += 1;
                    if let Some(tr) = &mut self.trace {
                        tr.events.push(FaultEvent::Delay {
                            origin,
                            dest,
                            seq,
                            extra_ms: extra,
                        });
                    }
                }
                if self.nemesis_rng.gen_bool(link.dup_p) {
                    self.nemesis.batches_duplicated += 1;
                    if let Some(tr) = &mut self.trace {
                        tr.events.push(FaultEvent::Duplicate {
                            origin,
                            dest,
                            seq,
                            dup_delay_ms: link.dup_delay_ms,
                        });
                    }
                    self.schedule(
                        at + SimTime::from_ms(link.dup_delay_ms),
                        Event::BatchArrive {
                            dest,
                            batch: Arc::clone(&batch),
                        },
                    );
                }
            }
            // Adversarial corruption draws: strictly gated behind
            // `corruption_armed()` so benign plans never touch the
            // nemesis RNG stream here (every digest pin depends on it).
            if self.cfg.faults.corruption_armed() {
                let c = self.cfg.faults.corruption;
                let flip = self.nemesis_rng.gen_bool(c.flip_p);
                let trunc = self.nemesis_rng.gen_bool(c.truncate_p);
                let forge = self.nemesis_rng.gen_bool(c.forge_seq_p);
                let mutdup = self.nemesis_rng.gen_bool(c.mutate_dup_p);
                if mutdup {
                    if let Some(tr) = &mut self.trace {
                        tr.events.push(FaultEvent::MutDup {
                            origin,
                            dest,
                            seq,
                            dup_delay_ms: c.mutate_dup_delay_ms,
                        });
                    }
                    self.deliver_corrupted(
                        dest,
                        at + SimTime::from_ms(c.mutate_dup_delay_ms),
                        Arc::new(Self::bitflip(&batch)),
                    );
                }
                if flip || trunc || forge {
                    // First class drawn wins the main delivery; the true
                    // payload is lost on this link (drop-equivalent for
                    // promise + liveness accounting), anti-entropy repairs.
                    let corrupted = if flip {
                        if let Some(tr) = &mut self.trace {
                            tr.events.push(FaultEvent::Flip { origin, dest, seq });
                        }
                        Self::bitflip(&batch)
                    } else if trunc {
                        let keep = (batch.updates.len() / 2) as u64;
                        if let Some(tr) = &mut self.trace {
                            tr.events.push(FaultEvent::Truncate {
                                origin,
                                dest,
                                seq,
                                keep,
                            });
                        }
                        Self::truncate_updates(&batch, keep)
                    } else {
                        let back = self.nemesis_rng.gen_range(1..=4u64);
                        if let Some(tr) = &mut self.trace {
                            tr.events.push(FaultEvent::Forge {
                                origin,
                                dest,
                                seq,
                                back,
                            });
                        }
                        Self::forge_seq(&batch, back)
                    };
                    self.deliver_corrupted(dest, at, Arc::new(corrupted));
                    self.note_gap(dest, origin, seq);
                    continue;
                }
            }
            if at < stall {
                self.nodes[dest as usize].note_inflight_single(batch.origin, seq, at.as_micros());
            }
            self.schedule(at, Event::BatchArrive { dest, batch });
        }
    }

    /// Schedule a corrupted delivery: counted, folded into the digest as
    /// its own event class (8), never promised to the destination's
    /// in-flight window. Only reachable when a plan arms corruption, so
    /// benign digests are untouched.
    fn deliver_corrupted(&mut self, dest: Region, at: SimTime, batch: Arc<UpdateBatch>) {
        self.nemesis.batches_corrupted += 1;
        self.fold_digest([8, at.as_micros(), u64::from(dest), batch.seq]);
        self.schedule(at, Event::BatchArrive { dest, batch });
    }

    /// Adversarial bit-flip: mutate a checksummed envelope field without
    /// resealing, so the stored seal no longer matches and the receiver
    /// quarantines on the integrity check.
    fn bitflip(batch: &UpdateBatch) -> UpdateBatch {
        let mut b = batch.clone();
        b.lamport ^= 1;
        b
    }

    /// Adversarial truncation: lose the tail of the update list without
    /// resealing (the seal covers the update count and keys).
    fn truncate_updates(batch: &UpdateBatch, keep: u64) -> UpdateBatch {
        let mut b = batch.clone();
        b.updates.truncate(keep as usize);
        b
    }

    /// Forged (stale) sequence number. The forger reseals consistently —
    /// a non-equivocating adversary — so the checksum passes and the
    /// batch is caught by the structural well-formedness check instead
    /// (its own clock still names the original commit number).
    fn forge_seq(batch: &UpdateBatch, back: u64) -> UpdateBatch {
        let mut b = batch.clone();
        b.seq = b.seq.saturating_sub(back);
        b.reseal();
        b
    }

    /// Register a fault-induced causal gap for liveness accounting.
    fn note_gap(&mut self, dest: Region, origin: Region, seq: u64) {
        self.liveness.tracked_gaps += 1;
        self.gaps.push(Gap {
            dest,
            origin,
            seq,
            rounds: 0,
        });
    }

    /// One liveness probe after an anti-entropy round: close repaired
    /// gaps, advance the round count of gaps that had a repair
    /// opportunity, and convert bound-exceeding gaps into breaches.
    fn liveness_probe(&mut self) {
        let mut i = 0;
        while i < self.gaps.len() {
            let g = self.gaps[i];
            if self.nodes[g.dest as usize]
                .replica()
                .clock()
                .get(ReplicaId(g.origin))
                >= g.seq
            {
                self.liveness.repaired_gaps += 1;
                self.liveness.max_gap_rounds = self.liveness.max_gap_rounds.max(g.rounds);
                self.gaps.swap_remove(i);
                continue;
            }
            // No repair opportunity this round: the countdown only
            // pauses when *no* up-path from any live holder of the
            // batch reaches the destination. Pausing on the direct
            // link alone let relay-reachable gaps (origin—dest cut,
            // but origin→relay→dest fully up) idle forever without
            // tripping the bound — anti-entropy is pairwise, so a
            // two-hop repair is exactly what the oracle must time.
            if !self.repair_opportunity(&g) {
                i += 1;
                continue;
            }
            let g = &mut self.gaps[i];
            g.rounds += 1;
            self.liveness.max_gap_rounds = self.liveness.max_gap_rounds.max(g.rounds);
            if let Some(bound) = self.liveness.bound {
                if g.rounds > bound {
                    self.liveness.run_breaches += 1;
                    self.gaps.swap_remove(i);
                    continue;
                }
            }
            i += 1;
        }
    }

    /// Does `g.dest` have any usable repair path this round? True when
    /// some live replica whose applied clock durably covers the missing
    /// batch (`clock[origin] >= seq`) can reach `dest` transitively
    /// through up links and live relays — pairwise anti-entropy moves
    /// the batch one hop per round along exactly such a path. False
    /// when the destination is down, no live replica holds the batch,
    /// or every path is severed (then the countdown pauses: repair is
    /// genuinely impossible, not merely slow).
    fn repair_opportunity(&self, g: &Gap) -> bool {
        let dest = g.dest as usize;
        if self.nodes[dest].is_down() {
            return false;
        }
        let n = self.nodes.len();
        // Multi-source BFS from every live holder of the batch.
        let mut reached = vec![false; n];
        let mut frontier: VecDeque<usize> = VecDeque::new();
        for (i, node) in self.nodes.iter().enumerate() {
            if i != dest
                && !node.is_down()
                && node.replica().clock().get(ReplicaId(g.origin)) >= g.seq
            {
                reached[i] = true;
                frontier.push_back(i);
            }
        }
        while let Some(i) = frontier.pop_front() {
            for (j, node) in self.nodes.iter().enumerate() {
                if reached[j] || node.is_down() || !self.latency.link_up(i as Region, j as Region) {
                    continue;
                }
                if j == dest {
                    return true;
                }
                reached[j] = true;
                frontier.push_back(j);
            }
        }
        false
    }

    /// Every gap gets a fresh repair window when the network transitions
    /// (a heal or a restart changes which pulls are possible).
    fn reset_gap_windows(&mut self) {
        for g in &mut self.gaps {
            g.rounds = 0;
        }
    }

    /// A restarted replica owes everything its live peers applied while
    /// it was down: one liveness gap per origin, up to the highest
    /// component any peer has durably logged.
    fn note_restart_obligations(&mut self, region: Region) {
        let own = self.nodes[region as usize].replica().clock().clone();
        let mut target = ipa_crdt::VClock::new();
        for (i, node) in self.nodes.iter().enumerate() {
            if i != region as usize && !node.is_down() {
                target.merge(node.replica().clock());
            }
        }
        for (origin, seq) in target.iter() {
            if seq > own.get(origin) {
                self.note_gap(region, origin.0, seq);
            }
        }
    }

    /// One pairwise anti-entropy round at simulated time `self.now`:
    /// every live replica pulls what it is missing from every live,
    /// reachable peer's durable log, paying one-way link latency. Under
    /// an explicit plan the latency is the recorded one (or jitter-free
    /// base) instead of a nemesis-RNG draw. Returns the number of
    /// batches put on the wire.
    ///
    /// The pull's `since` frontier is the destination's applied clock
    /// joined with its [`InFlightWindow`](ipa_store::InFlightWindow) —
    /// batches already on the wire toward it (from client replication or
    /// an earlier round) are *promised* and not re-sent. Without the
    /// window, any round firing while sends were still in flight
    /// (AE interval < one-way latency) re-shipped the same batches every
    /// tick; the receiver deduplicated them, so the bug was invisible to
    /// every state oracle and only showed up as inflated
    /// `anti_entropy_batches` counts and wasted simulated bandwidth.
    fn anti_entropy_round(&mut self) -> usize {
        self.ae_round += 1;
        let round = self.ae_round;
        let now_us = self.now.as_micros();
        let mut sent = 0;
        let n = self.nodes.len();
        for dst in 0..n {
            if self.nodes[dst].is_down() {
                continue;
            }
            for src in 0..n {
                if src == dst || self.nodes[src].is_down() {
                    continue;
                }
                if !self.latency.link_up(src as Region, dst as Region) {
                    continue;
                }
                let since = self.nodes[dst].ae_since(now_us);
                let version = self.nodes[src].replica().log_version();
                let (d, s) = (self.nodes[dst].id(), self.nodes[src].id());
                if !self.ae_cursors.should_pull(d, s, &since, version) {
                    continue;
                }
                let missing = self.nodes[src].replica_mut().batches_since(&since);
                self.ae_cursors
                    .record(d, s, since, version, missing.is_empty());
                if missing.is_empty() {
                    continue;
                }
                let (src_r, dst_r) = (src as Region, dst as Region);
                let ow = if let Some(ex) = &self.explicit {
                    ex.ae_latency_ms
                        .get(&(round, src_r, dst_r))
                        .copied()
                        .unwrap_or_else(|| self.latency.base_rtt(src_r, dst_r) / 2.0)
                } else {
                    let ow = self.latency.one_way(src_r, dst_r, &mut self.nemesis_rng);
                    if let Some(tr) = &mut self.trace {
                        tr.ae_latency_ms.push((round, src_r, dst_r, ow));
                    }
                    ow
                };
                let at = self.now + SimTime::from_ms(ow);
                // Promise this burst to the destination until it lands:
                // later rounds pull relative to the promised frontier.
                // (Joining full batch clocks is sound for a *burst* —
                // every causal predecessor of a logged batch is either
                // already applied at dst, in this same burst, or promised
                // earlier.)
                let mut promised = ipa_crdt::VClock::new();
                for batch in &missing {
                    promised.merge(&batch.clock);
                }
                self.nodes[dst].note_inflight_burst(promised, at.as_micros());
                for batch in missing {
                    self.nemesis.anti_entropy_batches += 1;
                    sent += 1;
                    self.schedule(
                        at,
                        Event::BatchArrive {
                            dest: dst as Region,
                            batch,
                        },
                    );
                }
            }
        }
        self.liveness_probe();
        sent
    }

    /// Run the workload to completion of the configured window.
    pub fn run(&mut self, workload: &mut dyn Workload) {
        // Setup phase (outside measurements, at t=0).
        let staged = {
            let mut ctx = SimCtx {
                now: self.now,
                latency: &mut self.latency,
                nodes: &mut self.nodes,
                rng: &mut self.rng,
                staged: Vec::new(),
                replay_sends: self.explicit_ops.as_ref().map(|x| &x.sends),
                replay_client: SETUP_CLIENT,
            };
            workload.setup(&mut ctx);
            std::mem::take(&mut ctx.staged)
        };
        self.record_staged_sends(&staged, SETUP_CLIENT);
        self.flush_staged(staged);

        if self.explicit_ops.is_some() {
            // Explicit-op replay: each client fires at its first
            // recorded op time (in a full trace those are exactly the
            // stagger times below; in a shrunk trace, the earliest
            // surviving op).
            let firsts: Vec<(usize, u64)> = self
                .explicit_ops
                .as_ref()
                .expect("checked")
                .by_client
                .iter()
                .enumerate()
                .filter_map(|(c, q)| q.front().map(|&(at_us, _)| (c, at_us)))
                .collect();
            for (c, at_us) in firsts {
                self.schedule(SimTime(at_us), Event::ClientReady(c));
            }
        } else {
            // Stagger client starts to avoid a synchronized burst.
            for c in 0..self.clients.len() {
                let at = SimTime::from_ms(0.1 * c as f64 + 1.0);
                self.schedule(at, Event::ClientReady(c));
            }
        }
        if let Some(gc) = self.cfg.gc_interval_s {
            self.schedule(SimTime::from_secs(gc), Event::Gc);
        }
        // Nemesis schedule: crashes/restarts are fixed points in virtual
        // time; flapping and anti-entropy are periodic. An explicit plan
        // replaces all three with its own fixed windows, scheduled in
        // `(time, payload)`-sorted order at the window tie-break rank —
        // the stable `(time, class, payload)` order that makes same-µs
        // collisions independent of plan-line order and of where the
        // probabilistic run's flap chain happened to sit in the seq
        // stream.
        if let Some(ex) = &self.explicit {
            let mut crashes = ex.crashes.clone();
            crashes.sort_by(|x, y| {
                (x.1, x.0, x.2)
                    .partial_cmp(&(y.1, y.0, y.2))
                    .expect("finite times")
            });
            let mut cuts = ex.cuts.clone();
            cuts.sort_by(|x, y| {
                (x.2, x.0, x.1, x.3)
                    .partial_cmp(&(y.2, y.0, y.1, y.3))
                    .expect("finite times")
            });
            let ae = ex.anti_entropy_s;
            for (region, at_s, down_s) in crashes {
                self.schedule_ranked(SimTime::from_secs(at_s), RANK_WINDOW, Event::Crash(region));
                self.schedule_ranked(
                    SimTime::from_secs(at_s + down_s),
                    RANK_WINDOW,
                    Event::Restart(region),
                );
            }
            for (a, b, at_s, outage_s) in cuts {
                self.schedule_ranked(
                    SimTime::from_secs(at_s),
                    RANK_WINDOW,
                    Event::Cut(a, b, outage_s),
                );
            }
            if let Some(ae) = ae {
                self.schedule(SimTime::from_secs(ae), Event::AntiEntropy);
            }
        } else {
            for crash in self.cfg.faults.crashes.clone() {
                self.schedule(SimTime::from_secs(crash.at_s), Event::Crash(crash.region));
                self.schedule(
                    SimTime::from_secs(crash.at_s + crash.down_s),
                    Event::Restart(crash.region),
                );
            }
            if let Some(flap) = self.cfg.faults.flap {
                self.schedule(SimTime::from_secs(flap.period_s), Event::Flap);
            }
            if let Some(ae) = self.cfg.faults.effective_anti_entropy_s() {
                self.schedule(SimTime::from_secs(ae), Event::AntiEntropy);
            }
        }
        if let Some((_, interval)) = &self.auditor {
            self.schedule(SimTime::from_secs(*interval), Event::Audit);
        }

        let warmup_end = SimTime::from_secs(self.cfg.warmup_s);
        let end = SimTime::from_secs(self.cfg.warmup_s + self.cfg.duration_s);

        while let Some(Reverse(next)) = self.queue.pop() {
            if next.at > end {
                // Keep the event for `quiesce` (dropping an in-flight
                // replication batch here would strand its causal
                // successors forever).
                self.queue.push(Reverse(next));
                break;
            }
            self.now = next.at;
            match next.ev {
                Event::BatchArrive { dest, batch } => {
                    self.fold_digest([1, next.at.as_micros(), u64::from(dest), batch.seq]);
                    let node = &mut self.nodes[dest as usize];
                    if node.is_down() {
                        // A down replica refuses traffic; anti-entropy
                        // re-sends after the restart. (No gap is noted
                        // here: the restart registers one obligation per
                        // origin covering everything missed while down.)
                        self.nemesis.batches_refused_down += 1;
                    } else {
                        node.replica_mut().receive(batch);
                    }
                }
                Event::Gc => {
                    let ids: Vec<ReplicaId> = self.nodes.iter().map(Node::id).collect();
                    for node in &mut self.nodes {
                        if !node.is_down() {
                            node.replica_mut().run_gc(&ids);
                        }
                    }
                    if let Some(gc) = self.cfg.gc_interval_s {
                        let at = self.now + SimTime::from_secs(gc);
                        self.schedule(at, Event::Gc);
                    }
                }
                Event::Flap => {
                    let flap = self.cfg.faults.flap.expect("flap event without plan");
                    let n = self.nodes.len() as u16;
                    if n >= 2 {
                        let a = self.nemesis_rng.gen_range(0..n);
                        let mut b = self.nemesis_rng.gen_range(0..n - 1);
                        if b >= a {
                            b += 1;
                        }
                        if self.latency.link_up(a, b) {
                            self.latency.set_link(a, b, false);
                            self.nemesis.link_flaps += 1;
                            self.fold_digest([2, next.at.as_micros(), u64::from(a), u64::from(b)]);
                            if let Some(tr) = &mut self.trace {
                                tr.open_cuts.push((a, b, self.now.as_secs()));
                            }
                            self.schedule(
                                self.now + SimTime::from_secs(flap.outage_s),
                                Event::FlapHeal(a, b),
                            );
                        }
                    }
                    self.schedule(self.now + SimTime::from_secs(flap.period_s), Event::Flap);
                }
                Event::Cut(a, b, outage_s) => {
                    // The explicit-plan analog of a materialized flap:
                    // same digest fold, heal scheduled from here (exactly
                    // when the probabilistic path allocated it).
                    if self.latency.link_up(a, b) {
                        self.latency.set_link(a, b, false);
                        self.nemesis.link_flaps += 1;
                        self.fold_digest([2, next.at.as_micros(), u64::from(a), u64::from(b)]);
                        self.schedule(
                            self.now + SimTime::from_secs(outage_s),
                            Event::FlapHeal(a, b),
                        );
                    }
                }
                Event::FlapHeal(a, b) => {
                    self.latency.set_link(a, b, true);
                    self.fold_digest([3, next.at.as_micros(), u64::from(a), u64::from(b)]);
                    if let Some(tr) = &mut self.trace {
                        if let Some(pos) =
                            tr.open_cuts.iter().position(|&(x, y, _)| (x, y) == (a, b))
                        {
                            let (_, _, at_s) = tr.open_cuts.remove(pos);
                            tr.events.push(FaultEvent::Partition {
                                a,
                                b,
                                at_s,
                                outage_s: self.now.as_secs() - at_s,
                            });
                        }
                    }
                    self.reset_gap_windows();
                }
                Event::Crash(region) => {
                    // Node-level crash: wipes volatile replica state AND
                    // voids the in-flight window (promised batches will
                    // be refused while down — anti-entropy must re-earn
                    // them after the restart).
                    let lost = self.nodes[region as usize].crash();
                    self.nemesis.crashes += 1;
                    self.nemesis.batches_lost_in_crash += lost as u64;
                    self.fold_digest([4, next.at.as_micros(), u64::from(region), lost as u64]);
                    if let Some(tr) = &mut self.trace {
                        tr.open_crashes.push((region, self.now.as_secs()));
                    }
                    // Gaps at a down replica cannot be repaired; restart
                    // re-registers everything it must catch up on.
                    self.gaps.retain(|g| g.dest != region);
                }
                Event::Restart(region) => {
                    self.nodes[region as usize].restart();
                    self.fold_digest([5, next.at.as_micros(), u64::from(region), 0]);
                    if let Some(tr) = &mut self.trace {
                        if let Some(pos) = tr.open_crashes.iter().position(|&(r, _)| r == region) {
                            let (_, at_s) = tr.open_crashes.remove(pos);
                            tr.events.push(FaultEvent::Crash {
                                region,
                                at_s,
                                down_s: self.now.as_secs() - at_s,
                            });
                        }
                    }
                    // Liveness: the restarted replica owes every batch
                    // its live peers applied while it was down.
                    self.note_restart_obligations(region);
                    self.reset_gap_windows();
                    // Recovery: one immediate anti-entropy round pulls the
                    // gap from peers and pushes the survivor log back out.
                    self.anti_entropy_round();
                }
                Event::AntiEntropy => {
                    self.anti_entropy_round();
                    if let Some(ae) = self.ae_interval() {
                        self.schedule(self.now + SimTime::from_secs(ae), Event::AntiEntropy);
                    }
                }
                Event::Audit => {
                    let violations = self.audit_now();
                    self.fold_digest([6, next.at.as_micros(), violations, 0]);
                    if let Some((_, interval)) = &self.auditor {
                        let at = self.now + SimTime::from_secs(*interval);
                        self.schedule(at, Event::Audit);
                    }
                }
                Event::ClientReady(c) => {
                    let client = self.clients[c];
                    // Explicit-op replay: take this client's next
                    // recorded op off its queue (the chain fires at
                    // exactly the recorded virtual times).
                    let replay_op: Option<AppOp> = match &mut self.explicit_ops {
                        Some(ops) => {
                            let Some((at_us, op)) = ops.by_client[c].pop_front() else {
                                continue;
                            };
                            debug_assert_eq!(
                                at_us,
                                next.at.as_micros(),
                                "replayed op fired off its recorded schedule"
                            );
                            Some(op)
                        }
                        None => None,
                    };
                    if self.nodes[client.region as usize].is_down() {
                        // Home replica is down: the op fails fast and the
                        // client retries after a think-time backoff. In
                        // replay (this only happens under a *modified*
                        // fault plan — at record time the op executed, so
                        // the region was up) the recorded op *defers to
                        // the restart* when the crash window closes
                        // inside the run: dropping it silently deleted
                        // writes from shrink candidates, so ddmin kept
                        // "minimal" plans that only failed because the
                        // workload lost ops, not because of the fault
                        // under test. With no restart scheduled the op is
                        // skipped as before (the region never comes back).
                        if self.now >= warmup_end {
                            self.metrics.record_failure();
                        }
                        if self.explicit_ops.is_some() {
                            if let (Some(op), Some(restart_at)) =
                                (replay_op, self.next_restart_after(client.region))
                            {
                                let ops = self.explicit_ops.as_mut().expect("checked");
                                ops.by_client[c].push_front((restart_at.as_micros(), op));
                                self.schedule(restart_at, Event::ClientReady(c));
                            } else {
                                self.schedule_next_replay_op(c);
                            }
                        } else {
                            let think = self.think_time();
                            let at = self.now + SimTime::from_ms(self.cfg.think_time_ms) + think;
                            self.schedule(at, Event::ClientReady(c));
                        }
                        continue;
                    }
                    let (outcome, decided, staged) = {
                        let mut ctx = SimCtx {
                            now: self.now,
                            latency: &mut self.latency,
                            nodes: &mut self.nodes,
                            rng: &mut self.rng,
                            staged: Vec::new(),
                            replay_sends: self.explicit_ops.as_ref().map(|x| &x.sends),
                            replay_client: c as u64,
                        };
                        let (outcome, decided) = match &replay_op {
                            // Replay: execute the recorded op; no RNG.
                            Some(op) => (workload.execute(&mut ctx, client, op), None),
                            // Record: decide (the only RNG draws), then
                            // execute — same stream as the fused op().
                            None if self.op_rec.is_some() => {
                                let op = workload.decide(&mut ctx, client).expect(
                                    "record_op_trace requires a replayable workload \
                                     (Workload::decide returning Some)",
                                );
                                (workload.execute(&mut ctx, client, &op), Some(op))
                            }
                            None => (workload.op(&mut ctx, client), None),
                        };
                        let staged = std::mem::take(&mut ctx.staged);
                        (outcome, decided, staged)
                    };
                    if let Some(op) = decided {
                        self.op_rec
                            .as_mut()
                            .expect("recording is on")
                            .events
                            .push(OpEvent {
                                client: c,
                                at_us: next.at.as_micros(),
                                op,
                            });
                    }
                    self.record_staged_sends(&staged, c as u64);
                    self.flush_staged(staged);
                    self.fold_digest([7, next.at.as_micros(), c as u64, u64::from(outcome.ok)]);
                    let region = client.region as usize;
                    let completion = if outcome.ok {
                        let to_server = self.cfg.client_rtt_ms / 2.0;
                        let service = self
                            .cfg
                            .costs
                            .service_ms(outcome.objects.max(1), outcome.updates.max(1));
                        let served = self.servers[region]
                            .serve(self.now + SimTime::from_ms(to_server), service);
                        served
                            + SimTime::from_ms(outcome.extra_wan_ms)
                            + SimTime::from_ms(self.cfg.client_rtt_ms / 2.0)
                    } else {
                        // Failed (unavailable): back off one think time.
                        self.now + SimTime::from_ms(self.cfg.think_time_ms)
                    };
                    if self.now >= warmup_end {
                        if outcome.ok {
                            self.metrics
                                .record(outcome.label, completion.ms_since(self.now));
                        } else {
                            self.metrics.record_failure();
                        }
                        self.metrics.record_violations(outcome.violations);
                    }
                    if self.explicit_ops.is_some() {
                        // The next recorded op already knows its time;
                        // the workload RNG is not consulted for think
                        // times (or anything else) during replay.
                        self.schedule_next_replay_op(c);
                    } else {
                        let think = self.think_time();
                        self.schedule(completion + think, Event::ClientReady(c));
                    }
                }
            }
        }
        self.now = end;
    }

    /// Chain a replayed client to its next recorded op, if any. A
    /// deferred op can leave the client past later recorded times; the
    /// serial client then fires them as soon as it is free (never
    /// scheduling into the past). Sealed full-trace replays never
    /// defer, so there the recorded times are used verbatim.
    fn schedule_next_replay_op(&mut self, c: usize) {
        let now = self.now;
        let Some(ops) = &mut self.explicit_ops else {
            return;
        };
        if let Some(front) = ops.by_client[c].front_mut() {
            if SimTime(front.0) < now {
                front.0 = now.as_micros();
            }
            let at = SimTime(front.0);
            self.schedule(at, Event::ClientReady(c));
        }
    }

    /// The earliest pending restart of `region` in the event queue
    /// (None when the region stays down for the rest of the run).
    fn next_restart_after(&self, region: Region) -> Option<SimTime> {
        self.queue
            .iter()
            .filter_map(|Reverse(s)| match s.ev {
                Event::Restart(r) if r == region => Some(s.at),
                _ => None,
            })
            .min()
    }

    /// Record every staged delivery's send latency, keyed by the op
    /// that staged it (op-trace recording; pure observation). The
    /// ordinal is the send's index within this op's staged vector —
    /// replay stages the same sends in the same order, so the key is
    /// reconstructed exactly.
    fn record_staged_sends(&mut self, staged: &[(Region, SimTime, Arc<UpdateBatch>)], client: u64) {
        let Some(rec) = &mut self.op_rec else { return };
        let now_us = self.now.as_micros();
        for (ordinal, (_dest, at, _batch)) in staged.iter().enumerate() {
            rec.sends.push(SendRec {
                client,
                at_us: now_us,
                ordinal: ordinal as u32,
                delay_us: at.as_micros() - now_us,
            });
        }
    }

    fn think_time(&mut self) -> SimTime {
        let base = self.cfg.think_time_ms;
        if base <= 0.0 {
            return SimTime::ZERO;
        }
        // Uniform jitter in [0.5, 1.5] × base keeps clients desynchronized.
        let f = self.rng.gen_range(0.5..1.5);
        SimTime::from_ms(base * f)
    }

    /// Let in-flight replication drain after the run: restarts any
    /// still-crashed replica, delivers every pending batch immediately
    /// (ignoring link latency), repairs nemesis losses through instant
    /// anti-entropy, and runs one final oracle audit.
    pub fn quiesce(&mut self) {
        for node in &mut self.nodes {
            node.restart();
        }
        let mut remaining: Vec<Scheduled> = self.queue.drain().map(|Reverse(s)| s).collect();
        remaining.sort();
        for s in remaining {
            if let Event::BatchArrive { dest, batch } = s.ev {
                self.nodes[dest as usize].replica_mut().receive(batch);
            }
        }
        self.anti_entropy_fixpoint();
        self.audit_now();
    }

    /// Post-quiescence idempotence check: delivery under faults must not
    /// have double-applied any batch at any replica. Returns the regions
    /// violating the oracle (empty = consistent).
    pub fn double_apply_violations(&self) -> Vec<Region> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| !n.replica().applied_consistent())
            .map(|(i, _)| i as Region)
            .collect()
    }
}

/// The deterministic discrete-event simulation as a [`Transport`]
/// implementation — the reference member of the transport matrix. It
/// additionally guarantees what the contract does not require:
/// bit-identical schedules per seed ([`Simulation::schedule_digest`]).
///
/// Sends made through this impl (ship, anti-entropy) use jitter-free
/// base link latency so they stay off the workload and nemesis RNG
/// streams; driving the sim through [`Simulation::run`] is unaffected.
impl Transport for Simulation {
    fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn with_node<R>(&mut self, node: ReplicaId, f: impl FnOnce(&mut Replica) -> R) -> R {
        f(self.nodes[node.0 as usize].replica_mut())
    }

    fn ship(&mut self, node: ReplicaId) {
        let origin = node.0;
        let batches = self.nodes[origin as usize].replica_mut().take_outbox();
        let n = self.nodes.len() as u16;
        let now = self.now;
        let mut staged = Vec::new();
        for batch in batches {
            for dest in 0..n {
                if dest == origin {
                    continue;
                }
                let delay = if self.latency.link_up(origin, dest) {
                    SimTime::from_ms(self.latency.base_rtt(origin, dest) / 2.0)
                } else {
                    SimTime::from_secs(3600.0)
                };
                staged.push((dest, now + delay, Arc::clone(&batch)));
            }
        }
        self.flush_staged(staged);
    }

    fn set_link(&mut self, a: ReplicaId, b: ReplicaId, up: bool) {
        self.latency.set_link(a.0, b.0, up);
    }

    fn crash(&mut self, node: ReplicaId) {
        let lost = self.nodes[node.0 as usize].crash();
        self.nemesis.crashes += 1;
        self.nemesis.batches_lost_in_crash += lost as u64;
        self.gaps.retain(|g| g.dest != node.0);
    }

    fn restart(&mut self, node: ReplicaId) {
        self.nodes[node.0 as usize].restart();
        self.note_restart_obligations(node.0);
        self.reset_gap_windows();
    }

    fn anti_entropy(&mut self) -> usize {
        self.anti_entropy_round()
    }

    fn quiesce_transport(&mut self) -> u64 {
        self.quiesce();
        self.liveness.quiesce_rounds
    }

    fn converged(&mut self) -> bool {
        let in_flight = self
            .queue
            .iter()
            .any(|Reverse(s)| matches!(s.ev, Event::BatchArrive { .. }));
        let first = self.nodes[0].replica().clock();
        !in_flight && self.nodes.iter().all(|n| n.replica().clock() == first)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::paper_topology;
    use ipa_crdt::{ObjectKind, Val};

    /// A workload that inserts unique elements into one add-wins set.
    struct Inserter {
        n: u64,
    }

    impl Workload for Inserter {
        fn op(&mut self, ctx: &mut SimCtx<'_>, client: ClientInfo) -> OpOutcome {
            self.n += 1;
            let v = Val::str(format!("e{}", self.n));
            ctx.commit(client.region, |tx| {
                tx.ensure("set", ObjectKind::AWSet)?;
                tx.aw_add("set", v)
            })
            .expect("commit");
            OpOutcome::ok("insert", 1, 1)
        }
    }

    fn small_cfg(seed: u64) -> SimConfig {
        SimConfig {
            clients_per_region: 2,
            warmup_s: 0.5,
            duration_s: 2.0,
            seed,
            ..Default::default()
        }
    }

    #[test]
    fn simulation_runs_and_replicates() {
        let mut sim = Simulation::new(paper_topology(), small_cfg(1));
        let mut w = Inserter { n: 0 };
        sim.run(&mut w);
        sim.quiesce();
        assert!(
            sim.metrics.completed > 50,
            "completed: {}",
            sim.metrics.completed
        );
        // All replicas converged on the same set.
        let sizes: Vec<usize> = (0..3u16)
            .map(|r| {
                sim.replica(r)
                    .object(&"set".into())
                    .unwrap()
                    .as_awset()
                    .unwrap()
                    .len()
            })
            .collect();
        assert_eq!(sizes[0], sizes[1]);
        assert_eq!(sizes[1], sizes[2]);
        assert_eq!(sizes[0] as u64, w.n);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut sim = Simulation::new(paper_topology(), small_cfg(seed));
            let mut w = Inserter { n: 0 };
            sim.run(&mut w);
            (
                sim.metrics.completed,
                sim.metrics.overall().unwrap().mean_ms,
            )
        };
        let a = run(7);
        let b = run(7);
        let c = run(8);
        assert_eq!(a, b, "same seed, same run");
        assert_ne!(a, c, "different seed, different run");
    }

    #[test]
    fn latency_reflects_local_service_only_for_weak_ops() {
        let mut sim = Simulation::new(paper_topology(), small_cfg(3));
        let mut w = Inserter { n: 0 };
        sim.run(&mut w);
        let s = sim.metrics.overall().unwrap();
        // Local ops: a few ms (client RTT + service), no WAN round trips.
        assert!(s.mean_ms < 20.0, "mean {}", s.mean_ms);
    }

    #[test]
    fn saturation_raises_latency() {
        let lat = |clients: usize| {
            let cfg = SimConfig {
                clients_per_region: clients,
                think_time_ms: 1.0,
                warmup_s: 0.5,
                duration_s: 2.0,
                seed: 5,
                ..Default::default()
            };
            let mut sim = Simulation::new(paper_topology(), cfg);
            let mut w = Inserter { n: 0 };
            sim.run(&mut w);
            (
                sim.metrics.throughput(),
                sim.metrics.overall().unwrap().mean_ms,
            )
        };
        let (tp_low, ms_low) = lat(1);
        let (tp_high, ms_high) = lat(64);
        assert!(tp_high > tp_low, "throughput grows with clients");
        assert!(
            ms_high > ms_low * 3.0,
            "queueing delay appears under saturation: {ms_low} vs {ms_high}"
        );
    }

    #[test]
    fn adversarial_faults_quarantine_but_never_diverge() {
        let cfg = SimConfig {
            faults: FaultPlan::adversarial(9, 1.0),
            ..small_cfg(9)
        };
        let mut sim = Simulation::new(paper_topology(), cfg);
        let mut w = Inserter { n: 0 };
        sim.run(&mut w);
        sim.quiesce();
        assert!(
            sim.nemesis.batches_corrupted > 0,
            "adversarial plan injected corruption"
        );
        let quarantined: u64 = (0..3u16)
            .map(|r| sim.replica(r).stats.batches_quarantined)
            .sum();
        assert!(quarantined > 0, "receivers quarantined corrupt input");
        for r in 0..3u16 {
            assert_eq!(
                sim.replica(r).unrepaired_quarantine(),
                0,
                "quiesce repaired every quarantined slot at replica {r}"
            );
        }
        // Convergence despite corruption: every insert survives because
        // a corrupted delivery is drop-equivalent and anti-entropy
        // re-ships the clean copy from the origin's durable log.
        let sizes: Vec<usize> = (0..3u16)
            .map(|r| {
                sim.replica(r)
                    .object(&"set".into())
                    .unwrap()
                    .as_awset()
                    .unwrap()
                    .len()
            })
            .collect();
        assert_eq!(sizes[0], sizes[1]);
        assert_eq!(sizes[1], sizes[2]);
        assert_eq!(sizes[0] as u64, w.n);
    }

    #[test]
    fn honest_skew_is_never_quarantined_and_still_converges() {
        let faults = FaultPlan {
            skew_ms: vec![(0, 25.0), (2, -10.0)],
            ..FaultPlan::none()
        };
        assert!(faults.is_none(), "skew alone is not hostile");
        let cfg = SimConfig {
            faults,
            ..small_cfg(4)
        };
        let mut sim = Simulation::new(paper_topology(), cfg);
        let mut w = Inserter { n: 0 };
        sim.run(&mut w);
        sim.quiesce();
        assert_eq!(sim.nemesis.batches_corrupted, 0);
        for r in 0..3u16 {
            assert_eq!(
                sim.replica(r).stats.batches_quarantined,
                0,
                "skewed batches reseal and pass the integrity gate"
            );
        }
        let sizes: Vec<usize> = (0..3u16)
            .map(|r| {
                sim.replica(r)
                    .object(&"set".into())
                    .unwrap()
                    .as_awset()
                    .unwrap()
                    .len()
            })
            .collect();
        assert_eq!(sizes[0] as u64, w.n);
        assert_eq!(sizes[1] as u64, w.n);
        assert_eq!(sizes[2] as u64, w.n);
    }

    #[test]
    fn recorded_adversarial_trace_replays_with_identical_corruption() {
        let cfg = SimConfig {
            faults: FaultPlan::adversarial(11, 1.0),
            ..small_cfg(11)
        };
        let mut sim = Simulation::new(paper_topology(), cfg);
        sim.record_fault_trace();
        let mut w = Inserter { n: 0 };
        sim.run(&mut w);
        let corrupted = sim.nemesis.batches_corrupted;
        assert!(corrupted > 0, "adversarial plan fired");
        let plan = sim.take_fault_trace();
        assert!(!plan.skew_ms.is_empty(), "recorded plan carries the skew");

        // The v3 plan text round-trips the new event classes.
        let parsed: ExplicitPlan = plan.to_string().parse().expect("v3 plan parses");
        assert_eq!(parsed.events.len(), plan.events.len());
        assert_eq!(parsed.skew_ms.len(), plan.skew_ms.len());

        // Replaying the sealed plan reproduces the same corruption
        // without ever drawing the nemesis RNG.
        let mut replay = Simulation::new(paper_topology(), small_cfg(11));
        replay.set_explicit_faults(&parsed);
        let mut w = Inserter { n: 0 };
        replay.run(&mut w);
        assert_eq!(replay.nemesis.batches_corrupted, corrupted);
        assert_eq!(replay.nemesis.batches_dropped, sim.nemesis.batches_dropped);
    }

    #[test]
    fn unavailable_ops_are_counted_as_failures() {
        struct AlwaysFail;
        impl Workload for AlwaysFail {
            fn op(&mut self, _ctx: &mut SimCtx<'_>, _c: ClientInfo) -> OpOutcome {
                OpOutcome::unavailable("nope")
            }
        }
        let mut sim = Simulation::new(paper_topology(), small_cfg(1));
        sim.run(&mut AlwaysFail);
        assert_eq!(sim.metrics.completed, 0);
        assert!(sim.metrics.failed > 0);
    }
}
