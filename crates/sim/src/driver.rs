//! The simulation driver: event loop, clients, and the workload
//! interface.

use crate::latency::{LatencyModel, Region};
use crate::metrics::Metrics;
use crate::server::{ServerQueue, ServiceCosts};
use crate::time::SimTime;
use ipa_crdt::ReplicaId;
use ipa_store::{CommitInfo, Replica, StoreError, Transaction, UpdateBatch};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulation parameters.
#[derive(Clone, Debug)]
pub struct SimConfig {
    pub clients_per_region: usize,
    /// Mean client think time between operations (exponential-ish via
    /// uniform jitter).
    pub think_time_ms: f64,
    /// Client ↔ local server round trip (same availability zone).
    pub client_rtt_ms: f64,
    /// Warm-up before measurements start (simulated seconds).
    pub warmup_s: f64,
    /// Measured duration after warm-up (simulated seconds).
    pub duration_s: f64,
    pub seed: u64,
    pub costs: ServiceCosts,
    /// Stability GC period (None disables).
    pub gc_interval_s: Option<f64>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            clients_per_region: 4,
            think_time_ms: 10.0,
            client_rtt_ms: 1.0,
            warmup_s: 2.0,
            duration_s: 10.0,
            seed: 42,
            costs: ServiceCosts::default(),
            gc_interval_s: Some(1.0),
        }
    }
}

/// A closed-loop client bound to its home region.
#[derive(Clone, Copy, Debug)]
pub struct ClientInfo {
    pub id: usize,
    pub region: Region,
}

/// What one executed operation looked like (drives timing & metrics).
#[derive(Clone, Debug)]
pub struct OpOutcome {
    pub label: &'static str,
    /// Distinct objects touched (service-cost model input).
    pub objects: usize,
    /// Total updates executed.
    pub updates: usize,
    /// Extra WAN delay the operation had to pay before completing
    /// (e.g. forwarding to the primary, fetching a reservation).
    pub extra_wan_ms: f64,
    /// False when the operation could not execute (e.g. partitioned
    /// coordination) — counted as a failure and retried after a backoff.
    pub ok: bool,
    /// Invariant violations the workload observed while executing.
    pub violations: u64,
}

impl OpOutcome {
    pub fn ok(label: &'static str, objects: usize, updates: usize) -> OpOutcome {
        OpOutcome {
            label,
            objects,
            updates,
            extra_wan_ms: 0.0,
            ok: true,
            violations: 0,
        }
    }

    pub fn with_wan(mut self, ms: f64) -> OpOutcome {
        self.extra_wan_ms += ms;
        self
    }

    pub fn unavailable(label: &'static str) -> OpOutcome {
        OpOutcome {
            label,
            objects: 0,
            updates: 0,
            extra_wan_ms: 0.0,
            ok: false,
            violations: 0,
        }
    }
}

/// The application under simulation.
pub trait Workload {
    /// Execute one client operation: run transactions through
    /// [`SimCtx::commit`], pay coordination delays via
    /// [`OpOutcome::with_wan`], and report what happened.
    fn op(&mut self, ctx: &mut SimCtx<'_>, client: ClientInfo) -> OpOutcome;

    /// One-time setup before clients start (seed data).
    fn setup(&mut self, _ctx: &mut SimCtx<'_>) {}
}

/// The workload's view of the simulation during one operation.
pub struct SimCtx<'a> {
    now: SimTime,
    latency: &'a mut LatencyModel,
    replicas: &'a mut [Replica],
    rng: &'a mut StdRng,
    /// Replication staged by commits in this op: (dest, arrival, batch).
    staged: Vec<(Region, SimTime, UpdateBatch)>,
}

impl<'a> SimCtx<'a> {
    pub fn now(&self) -> SimTime {
        self.now
    }

    pub fn regions(&self) -> usize {
        self.replicas.len()
    }

    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    pub fn replica(&mut self, region: Region) -> &mut Replica {
        &mut self.replicas[region as usize]
    }

    /// Sampled round trip between regions.
    pub fn rtt(&mut self, a: Region, b: Region) -> f64 {
        self.latency.rtt(a, b, self.rng)
    }

    pub fn base_rtt(&self, a: Region, b: Region) -> f64 {
        self.latency.base_rtt(a, b)
    }

    pub fn link_up(&self, a: Region, b: Region) -> bool {
        self.latency.link_up(a, b)
    }

    pub fn set_link(&mut self, a: Region, b: Region, up: bool) {
        self.latency.set_link(a, b, up);
    }

    /// Run a transaction on a region's replica and stage its batch for
    /// asynchronous replication with per-link latency. Returns the
    /// closure's value alongside the commit info.
    pub fn commit<T>(
        &mut self,
        region: Region,
        f: impl FnOnce(&mut Transaction<'_>) -> Result<T, StoreError>,
    ) -> Result<(T, CommitInfo), StoreError> {
        let (value, info) = {
            let replica = &mut self.replicas[region as usize];
            let mut tx = replica.begin();
            let value = f(&mut tx)?;
            (value, tx.commit())
        };
        // Stage replication of everything committed at this replica.
        let batches = self.replicas[region as usize].take_outbox();
        let n = self.replicas.len() as u16;
        for batch in batches {
            for dest in 0..n {
                if dest == region {
                    continue;
                }
                if !self.latency.link_up(region, dest) {
                    // Partitioned: deliver when the link heals — modeled
                    // as a long delay re-checked by the driver.
                    let delay = SimTime::from_secs(3600.0);
                    self.staged.push((dest, self.now + delay, batch.clone()));
                    continue;
                }
                let ow = self.latency.one_way(region, dest, self.rng);
                self.staged
                    .push((dest, self.now + SimTime::from_ms(ow), batch.clone()));
            }
        }
        Ok((value, info))
    }
}

#[derive(Clone, Debug)]
enum Event {
    ClientReady(usize),
    BatchArrive {
        dest: Region,
        batch: Box<UpdateBatch>,
    },
    Gc,
}

#[derive(Clone, Debug)]
struct Scheduled {
    at: SimTime,
    seq: u64,
    ev: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The discrete-event simulation: regional replicas + servers + clients.
pub struct Simulation {
    cfg: SimConfig,
    latency: LatencyModel,
    replicas: Vec<Replica>,
    servers: Vec<ServerQueue>,
    clients: Vec<ClientInfo>,
    queue: BinaryHeap<Reverse<Scheduled>>,
    seq: u64,
    now: SimTime,
    rng: StdRng,
    pub metrics: Metrics,
}

impl Simulation {
    pub fn new(latency: LatencyModel, cfg: SimConfig) -> Simulation {
        let regions = latency.regions() as u16;
        let replicas = (0..regions).map(|r| Replica::new(ReplicaId(r))).collect();
        let servers = (0..regions).map(|_| ServerQueue::new()).collect();
        let mut clients = Vec::with_capacity(cfg.clients_per_region * regions as usize);
        for region in 0..regions {
            for _ in 0..cfg.clients_per_region {
                clients.push(ClientInfo {
                    id: clients.len(),
                    region,
                });
            }
        }
        let rng = StdRng::seed_from_u64(cfg.seed);
        let mut metrics = Metrics::new();
        metrics.set_window(cfg.warmup_s, cfg.warmup_s + cfg.duration_s);
        Simulation {
            cfg,
            latency,
            replicas,
            servers,
            clients,
            queue: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            rng,
            metrics,
        }
    }

    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    pub fn replica(&self, region: Region) -> &Replica {
        &self.replicas[region as usize]
    }

    /// Direct mutable access for post-run maintenance (e.g. running the
    /// applications' read-side compensations to a fixpoint).
    pub fn replica_mut(&mut self, region: Region) -> &mut Replica {
        &mut self.replicas[region as usize]
    }

    pub fn regions(&self) -> usize {
        self.replicas.len()
    }

    /// Drain every outbox and deliver all batches instantly (post-run
    /// helper; ignores link latency like [`Simulation::quiesce`]).
    pub fn sync_all(&mut self) {
        loop {
            let mut moved = false;
            for i in 0..self.replicas.len() {
                let batches = self.replicas[i].take_outbox();
                for batch in batches {
                    for d in 0..self.replicas.len() {
                        if d != i {
                            self.replicas[d].receive(batch.clone());
                            moved = true;
                        }
                    }
                }
            }
            if !moved {
                break;
            }
        }
    }

    pub fn num_clients(&self) -> usize {
        self.clients.len()
    }

    fn schedule(&mut self, at: SimTime, ev: Event) {
        self.seq += 1;
        self.queue.push(Reverse(Scheduled {
            at,
            seq: self.seq,
            ev,
        }));
    }

    fn flush_staged(&mut self, staged: Vec<(Region, SimTime, UpdateBatch)>) {
        for (dest, at, batch) in staged {
            self.schedule(
                at,
                Event::BatchArrive {
                    dest,
                    batch: Box::new(batch),
                },
            );
        }
    }

    /// Run the workload to completion of the configured window.
    pub fn run(&mut self, workload: &mut dyn Workload) {
        // Setup phase (outside measurements, at t=0).
        {
            let mut ctx = SimCtx {
                now: self.now,
                latency: &mut self.latency,
                replicas: &mut self.replicas,
                rng: &mut self.rng,
                staged: Vec::new(),
            };
            workload.setup(&mut ctx);
            let staged = std::mem::take(&mut ctx.staged);
            self.flush_staged(staged);
        }

        // Stagger client starts to avoid a synchronized burst.
        for c in 0..self.clients.len() {
            let at = SimTime::from_ms(0.1 * c as f64 + 1.0);
            self.schedule(at, Event::ClientReady(c));
        }
        if let Some(gc) = self.cfg.gc_interval_s {
            self.schedule(SimTime::from_secs(gc), Event::Gc);
        }

        let warmup_end = SimTime::from_secs(self.cfg.warmup_s);
        let end = SimTime::from_secs(self.cfg.warmup_s + self.cfg.duration_s);

        while let Some(Reverse(next)) = self.queue.pop() {
            if next.at > end {
                // Keep the event for `quiesce` (dropping an in-flight
                // replication batch here would strand its causal
                // successors forever).
                self.queue.push(Reverse(next));
                break;
            }
            self.now = next.at;
            match next.ev {
                Event::BatchArrive { dest, batch } => {
                    self.replicas[dest as usize].receive(*batch);
                }
                Event::Gc => {
                    let ids: Vec<ReplicaId> = self.replicas.iter().map(Replica::id).collect();
                    for r in &mut self.replicas {
                        r.run_gc(&ids);
                    }
                    if let Some(gc) = self.cfg.gc_interval_s {
                        let at = self.now + SimTime::from_secs(gc);
                        self.schedule(at, Event::Gc);
                    }
                }
                Event::ClientReady(c) => {
                    let client = self.clients[c];
                    let outcome = {
                        let mut ctx = SimCtx {
                            now: self.now,
                            latency: &mut self.latency,
                            replicas: &mut self.replicas,
                            rng: &mut self.rng,
                            staged: Vec::new(),
                        };
                        let outcome = workload.op(&mut ctx, client);
                        let staged = std::mem::take(&mut ctx.staged);
                        self.flush_staged(staged);
                        outcome
                    };
                    let region = client.region as usize;
                    let completion = if outcome.ok {
                        let to_server = self.cfg.client_rtt_ms / 2.0;
                        let service = self
                            .cfg
                            .costs
                            .service_ms(outcome.objects.max(1), outcome.updates.max(1));
                        let served = self.servers[region]
                            .serve(self.now + SimTime::from_ms(to_server), service);
                        served
                            + SimTime::from_ms(outcome.extra_wan_ms)
                            + SimTime::from_ms(self.cfg.client_rtt_ms / 2.0)
                    } else {
                        // Failed (unavailable): back off one think time.
                        self.now + SimTime::from_ms(self.cfg.think_time_ms)
                    };
                    if self.now >= warmup_end {
                        if outcome.ok {
                            self.metrics
                                .record(outcome.label, completion.ms_since(self.now));
                        } else {
                            self.metrics.record_failure();
                        }
                        self.metrics.record_violations(outcome.violations);
                    }
                    let think = self.think_time();
                    self.schedule(completion + think, Event::ClientReady(c));
                }
            }
        }
        self.now = end;
    }

    fn think_time(&mut self) -> SimTime {
        let base = self.cfg.think_time_ms;
        if base <= 0.0 {
            return SimTime::ZERO;
        }
        // Uniform jitter in [0.5, 1.5] × base keeps clients desynchronized.
        let f = self.rng.gen_range(0.5..1.5);
        SimTime::from_ms(base * f)
    }

    /// Let in-flight replication drain after the run (delivers every
    /// pending batch immediately, ignoring link latency).
    pub fn quiesce(&mut self) {
        let mut remaining: Vec<Scheduled> = self.queue.drain().map(|Reverse(s)| s).collect();
        remaining.sort();
        for s in remaining {
            if let Event::BatchArrive { dest, batch } = s.ev {
                self.replicas[dest as usize].receive(*batch);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::paper_topology;
    use ipa_crdt::{ObjectKind, Val};

    /// A workload that inserts unique elements into one add-wins set.
    struct Inserter {
        n: u64,
    }

    impl Workload for Inserter {
        fn op(&mut self, ctx: &mut SimCtx<'_>, client: ClientInfo) -> OpOutcome {
            self.n += 1;
            let v = Val::str(format!("e{}", self.n));
            ctx.commit(client.region, |tx| {
                tx.ensure("set", ObjectKind::AWSet)?;
                tx.aw_add("set", v)
            })
            .expect("commit");
            OpOutcome::ok("insert", 1, 1)
        }
    }

    fn small_cfg(seed: u64) -> SimConfig {
        SimConfig {
            clients_per_region: 2,
            warmup_s: 0.5,
            duration_s: 2.0,
            seed,
            ..Default::default()
        }
    }

    #[test]
    fn simulation_runs_and_replicates() {
        let mut sim = Simulation::new(paper_topology(), small_cfg(1));
        let mut w = Inserter { n: 0 };
        sim.run(&mut w);
        sim.quiesce();
        assert!(
            sim.metrics.completed > 50,
            "completed: {}",
            sim.metrics.completed
        );
        // All replicas converged on the same set.
        let sizes: Vec<usize> = (0..3u16)
            .map(|r| {
                sim.replica(r)
                    .object(&"set".into())
                    .unwrap()
                    .as_awset()
                    .unwrap()
                    .len()
            })
            .collect();
        assert_eq!(sizes[0], sizes[1]);
        assert_eq!(sizes[1], sizes[2]);
        assert_eq!(sizes[0] as u64, w.n);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut sim = Simulation::new(paper_topology(), small_cfg(seed));
            let mut w = Inserter { n: 0 };
            sim.run(&mut w);
            (
                sim.metrics.completed,
                sim.metrics.overall().unwrap().mean_ms,
            )
        };
        let a = run(7);
        let b = run(7);
        let c = run(8);
        assert_eq!(a, b, "same seed, same run");
        assert_ne!(a, c, "different seed, different run");
    }

    #[test]
    fn latency_reflects_local_service_only_for_weak_ops() {
        let mut sim = Simulation::new(paper_topology(), small_cfg(3));
        let mut w = Inserter { n: 0 };
        sim.run(&mut w);
        let s = sim.metrics.overall().unwrap();
        // Local ops: a few ms (client RTT + service), no WAN round trips.
        assert!(s.mean_ms < 20.0, "mean {}", s.mean_ms);
    }

    #[test]
    fn saturation_raises_latency() {
        let lat = |clients: usize| {
            let cfg = SimConfig {
                clients_per_region: clients,
                think_time_ms: 1.0,
                warmup_s: 0.5,
                duration_s: 2.0,
                seed: 5,
                ..Default::default()
            };
            let mut sim = Simulation::new(paper_topology(), cfg);
            let mut w = Inserter { n: 0 };
            sim.run(&mut w);
            (
                sim.metrics.throughput(),
                sim.metrics.overall().unwrap().mean_ms,
            )
        };
        let (tp_low, ms_low) = lat(1);
        let (tp_high, ms_high) = lat(64);
        assert!(tp_high > tp_low, "throughput grows with clients");
        assert!(
            ms_high > ms_low * 3.0,
            "queueing delay appears under saturation: {ms_low} vs {ms_high}"
        );
    }

    #[test]
    fn unavailable_ops_are_counted_as_failures() {
        struct AlwaysFail;
        impl Workload for AlwaysFail {
            fn op(&mut self, _ctx: &mut SimCtx<'_>, _c: ClientInfo) -> OpOutcome {
                OpOutcome::unavailable("nope")
            }
        }
        let mut sim = Simulation::new(paper_topology(), small_cfg(1));
        sim.run(&mut AlwaysFail);
        assert_eq!(sim.metrics.completed, 0);
        assert!(sim.metrics.failed > 0);
    }
}
