//! Recorded, replayable client-op traces.
//!
//! A probabilistic run's workload schedule is an opaque function of
//! `SimConfig::seed`: the RNG picks every operation, think time, and
//! link-latency jitter, so a red run's counterexample carries hundreds
//! of client ops that have nothing to do with the failure. This module
//! makes the *workload* explicit the same way `shrink::ExplicitPlan`
//! made the nemesis explicit:
//!
//! 1. **Record** — re-run the failing seed pair with
//!    [`crate::Simulation::record_op_trace`] enabled. Every executed
//!    client operation is captured as a `(client, virtual-time, app-op)`
//!    [`OpEvent`], and every staged replication send's latency draw is
//!    captured keyed by the op that staged it.
//! 2. **Seal** — replay the trace through
//!    [`crate::Simulation::set_explicit_ops`]: clients fire at the
//!    recorded times and execute the recorded ops, sends use the
//!    recorded latencies, and the workload RNG is never drawn — the run
//!    is a pure function of `(OpTrace, fault schedule)` and reproduces
//!    the original `schedule_digest` bit for bit.
//! 3. **Shrink** — [`crate::shrink_joint`] delta-debugs op events and
//!    fault events together, keeping only candidates that fail the same
//!    oracle check.
//!
//! The trace serializes to a line-oriented text format
//! (`OpTrace::to_string` via [`Display`](std::fmt::Display) /
//! [`OpTrace::from_str`]) that CI uploads as
//! the `ops-<app>-<seed>.txt` artifact next to the minimized fault plan.
//! Times and send delays are integer microseconds — [`crate::SimTime`]'s
//! native unit — so the roundtrip is exact by construction.

use crate::shrink::PlanParseError;
use std::fmt;
use std::str::FromStr;

/// First line of every serialized [`OpTrace`] (the replay path sniffs
/// artifacts by this header to tell op traces from fault plans). v2
/// keys recorded sends by the staging op event instead of the batch's
/// `(origin, dest, seq)` — batch sequences re-pack when a shrunk trace
/// removes commits, which silently re-assigned recorded latencies to
/// the wrong batches.
pub const OP_TRACE_HEADER: &str = "# ipa-nemesis op trace v2";

/// Sentinel client id keying sends staged by [`crate::Workload::setup`]
/// (which runs once, before any client exists).
pub const SETUP_CLIENT: u64 = u64::MAX;

/// One serialized application operation: a single whitespace-separated
/// token line produced by the app's op enum `Display` and parsed back by
/// its `FromStr` (e.g. `enroll p4 t7`). The simulator treats it as
/// opaque text, which keeps `OpTrace` application-agnostic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AppOp(String);

impl AppOp {
    /// Wrap a serialized op. Panics on embedded newlines — an op is one
    /// trace line by contract.
    pub fn new(op: impl Into<String>) -> AppOp {
        let op = op.into();
        assert!(
            !op.is_empty() && !op.contains('\n'),
            "an AppOp is one non-empty trace line: {op:?}"
        );
        AppOp(op)
    }

    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for AppOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// One executed client operation: who, when (virtual µs), what.
#[derive(Clone, Debug, PartialEq)]
pub struct OpEvent {
    pub client: usize,
    /// Virtual time the operation executed, in integer microseconds
    /// (exactly [`crate::SimTime::as_micros`] of the `ClientReady` that
    /// ran it).
    pub at_us: u64,
    pub op: AppOp,
}

/// One recorded replication-send latency, keyed by the op event that
/// staged it: `(client, op fire time, ordinal within that op's staged
/// sends)`. The key survives trace shrinking — unlike the batch's
/// origin sequence, which re-packs when earlier commits are removed —
/// so a surviving op always replays with its *own* recorded delays.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SendRec {
    /// Executing client ([`SETUP_CLIENT`] for workload setup).
    pub client: u64,
    /// Fire time of the staging op, integer µs (0 for setup).
    pub at_us: u64,
    /// Index of this send among everything the op staged.
    pub ordinal: u32,
    /// Recorded delay from staging to arrival, integer µs.
    pub delay_us: u64,
}

/// The recorded client-op schedule of one run, replayable without the
/// workload RNG. `events` is in global execution order (per client that
/// is also time order); `sends` carries the replication-send latency
/// of every staged batch delivery, keyed by the staging op event.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct OpTrace {
    pub events: Vec<OpEvent>,
    /// Per staged delivery (client commits and setup). Replay uses the
    /// recorded delay when present and the jitter-free base link
    /// latency otherwise, so a full-trace replay reproduces arrival
    /// times exactly while shrunk candidates stay deterministic.
    pub sends: Vec<SendRec>,
}

impl OpTrace {
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of distinct clients that executed at least one op.
    pub fn clients(&self) -> usize {
        let mut seen: Vec<usize> = self.events.iter().map(|e| e.client).collect();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }

    /// One-line description for failure banners.
    pub fn summary(&self) -> String {
        if self.events.is_empty() {
            return "no ops".to_owned();
        }
        format!(
            "{} ops by {} clients ({} recorded sends)",
            self.events.len(),
            self.clients(),
            self.sends.len()
        )
    }
}

impl fmt::Display for OpTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{OP_TRACE_HEADER}")?;
        for e in &self.events {
            writeln!(f, "op {} {} {}", e.client, e.at_us, e.op)?;
        }
        for s in &self.sends {
            if s.client == SETUP_CLIENT {
                writeln!(f, "send setup {} {} {}", s.at_us, s.ordinal, s.delay_us)?;
            } else {
                writeln!(
                    f,
                    "send {} {} {} {}",
                    s.client, s.at_us, s.ordinal, s.delay_us
                )?;
            }
        }
        Ok(())
    }
}

impl FromStr for OpTrace {
    type Err = PlanParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut trace = OpTrace::default();
        for (i, raw) in s.lines().enumerate() {
            let line = raw.trim();
            let err = |message: String| PlanParseError {
                line: i + 1,
                message,
            };
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut tok = line.split_whitespace();
            let kind = tok.next().unwrap_or_default();
            match kind {
                "op" => {
                    let client = tok.next().ok_or_else(|| err("truncated op".into()))?;
                    let at = tok.next().ok_or_else(|| err("truncated op".into()))?;
                    let rest = tok.collect::<Vec<_>>().join(" ");
                    if rest.is_empty() {
                        return Err(err("op line has no app-op".into()));
                    }
                    trace.events.push(OpEvent {
                        client: client
                            .parse()
                            .map_err(|_| err(format!("bad client {client:?}")))?,
                        at_us: at.parse().map_err(|_| err(format!("bad time {at:?}")))?,
                        op: AppOp::new(rest),
                    });
                }
                "send" => {
                    let client = tok.next().ok_or_else(|| err("truncated send".into()))?;
                    let client = if client == "setup" {
                        SETUP_CLIENT
                    } else {
                        client
                            .parse()
                            .map_err(|_| err(format!("bad send client {client:?}")))?
                    };
                    let at = tok.next().ok_or_else(|| err("truncated send".into()))?;
                    let ordinal = tok.next().ok_or_else(|| err("truncated send".into()))?;
                    let us = tok.next().ok_or_else(|| err("truncated send".into()))?;
                    trace.sends.push(SendRec {
                        client,
                        at_us: at.parse().map_err(|_| err(format!("bad time {at:?}")))?,
                        ordinal: ordinal
                            .parse()
                            .map_err(|_| err(format!("bad ordinal {ordinal:?}")))?,
                        delay_us: us.parse().map_err(|_| err(format!("bad delay {us:?}")))?,
                    });
                }
                other => return Err(err(format!("unknown directive {other:?}"))),
            }
        }
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> OpTrace {
        OpTrace {
            events: vec![
                OpEvent {
                    client: 0,
                    at_us: 1_000,
                    op: AppOp::new("enroll p4 t7"),
                },
                OpEvent {
                    client: 3,
                    at_us: 1_300,
                    op: AppOp::new("status t0"),
                },
                OpEvent {
                    client: 0,
                    at_us: 27_451,
                    op: AppOp::new("match p1 p2 t7"),
                },
            ],
            sends: vec![
                SendRec {
                    client: SETUP_CLIENT,
                    at_us: 0,
                    ordinal: 0,
                    delay_us: 40_123,
                },
                SendRec {
                    client: 0,
                    at_us: 1_000,
                    ordinal: 1,
                    delay_us: 80_001,
                },
                SendRec {
                    client: 3,
                    at_us: 1_300,
                    ordinal: 0,
                    delay_us: 3_600_000_000,
                },
            ],
        }
    }

    #[test]
    fn trace_text_roundtrips_exactly() {
        let trace = sample();
        let text = trace.to_string();
        let back: OpTrace = text.parse().expect("parse");
        assert_eq!(back, trace, "text:\n{text}");
        assert_eq!(back.to_string(), text, "rendering is idempotent");
        assert!(text.starts_with(OP_TRACE_HEADER));
        assert!(text.contains("send setup 0 0 40123"), "text:\n{text}");
    }

    #[test]
    fn summary_counts_ops_and_clients() {
        assert_eq!(sample().summary(), "3 ops by 2 clients (3 recorded sends)");
        assert_eq!(OpTrace::default().summary(), "no ops");
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = "op 0 100 status t0\nwarp 9".parse::<OpTrace>().unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("warp"), "{err}");
        let err = "op 0 100".parse::<OpTrace>().unwrap_err();
        assert_eq!(err.line, 1);
        let err = "send x 4 0 10".parse::<OpTrace>().unwrap_err();
        assert!(err.message.contains("client"), "{err}");
        let err = "send 0 4 0".parse::<OpTrace>().unwrap_err();
        assert!(err.message.contains("truncated"), "{err}");
    }

    #[test]
    fn multi_token_app_ops_survive() {
        let trace: OpTrace = "op 11 42 match p1 p2 t3\n".parse().expect("parse");
        assert_eq!(trace.events[0].op.as_str(), "match p1 p2 t3");
        assert_eq!(trace.events[0].client, 11);
        assert_eq!(trace.events[0].at_us, 42);
    }

    #[test]
    #[should_panic(expected = "one non-empty trace line")]
    fn app_ops_reject_newlines() {
        AppOp::new("a\nb");
    }
}
