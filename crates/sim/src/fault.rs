//! Deterministic fault injection (the "nemesis"): per-link transport
//! faults, flapping partitions, and replica crash/restart schedules.
//!
//! A [`FaultPlan`] plus the simulation seed fully determines every fault
//! decision — the nemesis draws from its own RNG stream (seeded from
//! [`FaultPlan::seed`]), so pure transport faults leave the *workload's*
//! schedule untouched (crashes and flaps necessarily alter it: they
//! change which ops run and which links are up, but deterministically),
//! and any red run reproduces from the two integers printed with the
//! failure.
//!
//! Fault model:
//!
//! * **drop** — an update batch silently vanishes on one link; the
//!   periodic anti-entropy pass ([`FaultPlan::anti_entropy_s`]) repairs
//!   the gap from the peers' durable logs.
//! * **duplicate** — a batch is delivered twice (possibly far apart);
//!   delivery is idempotent, so state and `ReplicaStats` must not
//!   double-count.
//! * **reorder / delay** — extra per-batch latency beyond the jittered
//!   link RTT, forcing out-of-order arrival into the causal buffer.
//! * **flapping partitions** — the nemesis periodically cuts a random
//!   link and heals it after an outage window.
//! * **crash/restart** — a replica loses its volatile state (outbox and
//!   pending buffer), rejects client operations while down, and on
//!   restart rebuilds through anti-entropy with every reachable peer.

use crate::latency::Region;
use std::fmt;

/// Per-link fault probabilities and magnitudes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkFaults {
    /// Probability a batch is dropped on this link.
    pub drop_p: f64,
    /// Probability a batch is duplicated (second copy arrives
    /// `dup_delay_ms` later).
    pub dup_p: f64,
    pub dup_delay_ms: f64,
    /// Probability a batch is delayed by up to `delay_ms` extra
    /// (uniform), enough to reorder it behind its successors.
    pub delay_p: f64,
    pub delay_ms: f64,
}

impl LinkFaults {
    pub const NONE: LinkFaults = LinkFaults {
        drop_p: 0.0,
        dup_p: 0.0,
        dup_delay_ms: 40.0,
        delay_p: 0.0,
        delay_ms: 200.0,
    };

    pub fn is_none(&self) -> bool {
        self.drop_p <= 0.0 && self.dup_p <= 0.0 && self.delay_p <= 0.0
    }
}

impl Default for LinkFaults {
    fn default() -> Self {
        LinkFaults::NONE
    }
}

/// Flapping-partition nemesis: every `period_s` cut one random link for
/// `outage_s` simulated seconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FlapPlan {
    pub period_s: f64,
    pub outage_s: f64,
}

/// One scheduled replica crash.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CrashPlan {
    pub region: Region,
    /// Crash time (simulated seconds).
    pub at_s: f64,
    /// Downtime before the restart event.
    pub down_s: f64,
}

/// The full nemesis schedule for one simulation run.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed of the nemesis RNG stream (independent of the workload's).
    pub seed: u64,
    /// Faults applied to every link without an override.
    pub link_defaults: LinkFaults,
    /// Per-link overrides, symmetric: `(a, b, faults)`.
    pub per_link: Vec<(Region, Region, LinkFaults)>,
    pub flap: Option<FlapPlan>,
    pub crashes: Vec<CrashPlan>,
    /// Periodic anti-entropy interval (repairs drops and crash losses).
    /// Defaults on whenever any fault is configured.
    pub anti_entropy_s: Option<f64>,
}

impl FaultPlan {
    /// No faults at all — the benign transport the seed tests assume.
    pub fn none() -> FaultPlan {
        FaultPlan {
            seed: 0,
            link_defaults: LinkFaults::NONE,
            per_link: Vec::new(),
            flap: None,
            crashes: Vec::new(),
            anti_entropy_s: None,
        }
    }

    /// A canonical hostile plan scaled by `intensity` in `[0, 1]`:
    /// intensity 0 is fault-free; intensity 1 drops/dups/delays roughly a
    /// quarter of all batches and flaps a link every simulated second.
    pub fn with_intensity(seed: u64, intensity: f64) -> FaultPlan {
        let i = intensity.clamp(0.0, 1.0);
        if i == 0.0 {
            return FaultPlan::none();
        }
        FaultPlan {
            seed,
            link_defaults: LinkFaults {
                drop_p: 0.25 * i,
                dup_p: 0.25 * i,
                dup_delay_ms: 40.0,
                delay_p: 0.25 * i,
                delay_ms: 150.0 + 250.0 * i,
            },
            per_link: Vec::new(),
            flap: (i >= 0.5).then_some(FlapPlan {
                period_s: 1.0,
                outage_s: 0.3 * i,
            }),
            crashes: Vec::new(),
            anti_entropy_s: Some(0.25),
        }
    }

    /// Do any transport faults, flaps, or crashes apply?
    pub fn is_none(&self) -> bool {
        self.link_defaults.is_none()
            && self.per_link.iter().all(|(_, _, f)| f.is_none())
            && self.flap.is_none()
            && self.crashes.is_empty()
    }

    /// The faults on link `a → b` (symmetric; last matching override
    /// wins).
    pub fn link(&self, a: Region, b: Region) -> LinkFaults {
        let mut out = self.link_defaults;
        for &(x, y, f) in &self.per_link {
            if (x, y) == (a, b) || (x, y) == (b, a) {
                out = f;
            }
        }
        out
    }

    /// Effective anti-entropy interval: the configured one, or a default
    /// 250 ms whenever any fault could lose a batch.
    pub fn effective_anti_entropy_s(&self) -> Option<f64> {
        match self.anti_entropy_s {
            Some(s) => Some(s),
            None if !self.is_none() => Some(0.25),
            None => None,
        }
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl fmt::Display for FaultPlan {
    /// One-line reproduction record: printed with any nemesis failure so
    /// the schedule replays locally from the seed.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_none() {
            return write!(f, "FaultPlan{{none}}");
        }
        let l = self.link_defaults;
        write!(
            f,
            "FaultPlan{{seed={} drop={:.3} dup={:.3} delay={:.3}x{:.0}ms",
            self.seed, l.drop_p, l.dup_p, l.delay_p, l.delay_ms
        )?;
        if let Some(flap) = self.flap {
            write!(f, " flap={}s/{}s", flap.period_s, flap.outage_s)?;
        }
        for c in &self.crashes {
            write!(f, " crash(r{}@{}s+{}s)", c.region, c.at_s, c.down_s)?;
        }
        if let Some(ae) = self.effective_anti_entropy_s() {
            write!(f, " ae={ae}s")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_is_none() {
        assert!(FaultPlan::none().is_none());
        assert!(FaultPlan::default().is_none());
        assert_eq!(FaultPlan::none().effective_anti_entropy_s(), None);
    }

    #[test]
    fn intensity_scales_probabilities() {
        let low = FaultPlan::with_intensity(1, 0.2);
        let high = FaultPlan::with_intensity(1, 1.0);
        assert!(low.link_defaults.drop_p < high.link_defaults.drop_p);
        assert!(low.flap.is_none());
        assert!(high.flap.is_some());
        assert!(!low.is_none());
        assert!(FaultPlan::with_intensity(1, 0.0).is_none());
    }

    #[test]
    fn per_link_override_wins_symmetrically() {
        let mut plan = FaultPlan::none();
        let hostile = LinkFaults {
            drop_p: 0.5,
            ..LinkFaults::NONE
        };
        plan.per_link.push((0, 1, hostile));
        assert_eq!(plan.link(0, 1).drop_p, 0.5);
        assert_eq!(plan.link(1, 0).drop_p, 0.5);
        assert_eq!(plan.link(0, 2).drop_p, 0.0);
    }

    #[test]
    fn crashes_make_the_plan_hostile_and_print() {
        let mut plan = FaultPlan::none();
        plan.crashes.push(CrashPlan {
            region: 1,
            at_s: 0.5,
            down_s: 1.0,
        });
        assert!(!plan.is_none());
        assert_eq!(plan.effective_anti_entropy_s(), Some(0.25));
        let s = plan.to_string();
        assert!(s.contains("crash(r1@0.5s+1s)"), "{s}");
    }
}
