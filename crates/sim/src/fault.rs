//! Deterministic fault injection (the "nemesis"): per-link transport
//! faults, flapping partitions, and replica crash/restart schedules.
//!
//! A [`FaultPlan`] plus the simulation seed fully determines every fault
//! decision — the nemesis draws from its own RNG stream (seeded from
//! [`FaultPlan::seed`]), so pure transport faults leave the *workload's*
//! schedule untouched (crashes and flaps necessarily alter it: they
//! change which ops run and which links are up, but deterministically),
//! and any red run reproduces from the two integers printed with the
//! failure.
//!
//! Fault model:
//!
//! * **drop** — an update batch silently vanishes on one link; the
//!   periodic anti-entropy pass ([`FaultPlan::anti_entropy_s`]) repairs
//!   the gap from the peers' durable logs.
//! * **duplicate** — a batch is delivered twice (possibly far apart);
//!   delivery is idempotent, so state and `ReplicaStats` must not
//!   double-count.
//! * **reorder / delay** — extra per-batch latency beyond the jittered
//!   link RTT, forcing out-of-order arrival into the causal buffer.
//! * **flapping partitions** — the nemesis periodically cuts a random
//!   link and heals it after an outage window.
//! * **crash/restart** — a replica loses its volatile state (outbox and
//!   pending buffer), rejects client operations while down, and on
//!   restart rebuilds through anti-entropy with every reachable peer.

use crate::latency::Region;
use std::fmt;

/// Per-link fault probabilities and magnitudes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkFaults {
    /// Probability a batch is dropped on this link.
    pub drop_p: f64,
    /// Probability a batch is duplicated (second copy arrives
    /// `dup_delay_ms` later).
    pub dup_p: f64,
    pub dup_delay_ms: f64,
    /// Probability a batch is delayed by up to `delay_ms` extra
    /// (uniform), enough to reorder it behind its successors.
    pub delay_p: f64,
    pub delay_ms: f64,
}

impl LinkFaults {
    pub const NONE: LinkFaults = LinkFaults {
        drop_p: 0.0,
        dup_p: 0.0,
        dup_delay_ms: 40.0,
        delay_p: 0.0,
        delay_ms: 200.0,
    };

    pub fn is_none(&self) -> bool {
        self.drop_p <= 0.0 && self.dup_p <= 0.0 && self.delay_p <= 0.0
    }
}

impl Default for LinkFaults {
    fn default() -> Self {
        LinkFaults::NONE
    }
}

/// Adversarial (but non-equivocating) corruption faults, applied
/// per-batch on top of the honest link faults. Every class mutates a
/// batch *without* resealing its integrity checksum, so a healthy
/// replica quarantines it on receipt; the honest copy of the data stays
/// in the origin's durable log and anti-entropy repairs the gap.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CorruptionFaults {
    /// Probability a batch's payload is bit-flipped in flight.
    pub flip_p: f64,
    /// Probability a batch's update vector is truncated in flight.
    pub truncate_p: f64,
    /// Probability a batch's sequence number is forged to a stale value.
    pub forge_seq_p: f64,
    /// Probability a *mutated* duplicate is delivered alongside the
    /// clean batch, `mutate_dup_delay_ms` later.
    pub mutate_dup_p: f64,
    pub mutate_dup_delay_ms: f64,
}

impl CorruptionFaults {
    pub const NONE: CorruptionFaults = CorruptionFaults {
        flip_p: 0.0,
        truncate_p: 0.0,
        forge_seq_p: 0.0,
        mutate_dup_p: 0.0,
        mutate_dup_delay_ms: 40.0,
    };

    pub fn is_none(&self) -> bool {
        self.flip_p <= 0.0
            && self.truncate_p <= 0.0
            && self.forge_seq_p <= 0.0
            && self.mutate_dup_p <= 0.0
    }
}

impl Default for CorruptionFaults {
    fn default() -> Self {
        CorruptionFaults::NONE
    }
}

/// Flapping-partition nemesis: every `period_s` cut one random link for
/// `outage_s` simulated seconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FlapPlan {
    pub period_s: f64,
    pub outage_s: f64,
}

/// One scheduled replica crash.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CrashPlan {
    pub region: Region,
    /// Crash time (simulated seconds).
    pub at_s: f64,
    /// Downtime before the restart event.
    pub down_s: f64,
}

/// The full nemesis schedule for one simulation run.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Seed of the nemesis RNG stream (independent of the workload's).
    pub seed: u64,
    /// Faults applied to every link without an override.
    pub link_defaults: LinkFaults,
    /// Per-link overrides, symmetric: `(a, b, faults)`.
    pub per_link: Vec<(Region, Region, LinkFaults)>,
    pub flap: Option<FlapPlan>,
    pub crashes: Vec<CrashPlan>,
    /// Periodic anti-entropy interval (repairs drops and crash losses).
    /// Defaults on whenever any fault is configured.
    pub anti_entropy_s: Option<f64>,
    /// Adversarial corruption faults (off on every honest plan; arming
    /// any class makes the run hostile and default-enables anti-entropy,
    /// which is what repairs quarantined input).
    pub corruption: CorruptionFaults,
    /// Per-replica clock skew: `(region, offset_ms)` — bounded drift
    /// applied to the region's outbound batch timestamps and arrival
    /// times. Skew is *honest* (the skewed replica reseals what it
    /// sends), so skewed batches must never be quarantined.
    pub skew_ms: Vec<(Region, f64)>,
}

impl FaultPlan {
    /// No faults at all — the benign transport the seed tests assume.
    pub fn none() -> FaultPlan {
        FaultPlan {
            seed: 0,
            link_defaults: LinkFaults::NONE,
            per_link: Vec::new(),
            flap: None,
            crashes: Vec::new(),
            anti_entropy_s: None,
            corruption: CorruptionFaults::NONE,
            skew_ms: Vec::new(),
        }
    }

    /// A canonical hostile plan scaled by `intensity` in `[0, 1]`:
    /// intensity 0 is fault-free; intensity 1 drops/dups/delays roughly a
    /// quarter of all batches and flaps a link every simulated second.
    pub fn with_intensity(seed: u64, intensity: f64) -> FaultPlan {
        let i = intensity.clamp(0.0, 1.0);
        if i == 0.0 {
            return FaultPlan::none();
        }
        FaultPlan {
            seed,
            link_defaults: LinkFaults {
                drop_p: 0.25 * i,
                dup_p: 0.25 * i,
                dup_delay_ms: 40.0,
                delay_p: 0.25 * i,
                delay_ms: 150.0 + 250.0 * i,
            },
            per_link: Vec::new(),
            flap: (i >= 0.5).then_some(FlapPlan {
                period_s: 1.0,
                outage_s: 0.3 * i,
            }),
            crashes: Vec::new(),
            anti_entropy_s: Some(0.25),
            corruption: CorruptionFaults::NONE,
            skew_ms: Vec::new(),
        }
    }

    /// A canonical *adversarial* plan: the honest faults of
    /// [`FaultPlan::with_intensity`] plus every corruption class armed at
    /// `intensity`-scaled probabilities and a bounded per-replica clock
    /// skew. This is the plan the adversarial soak cells and the
    /// corruption proptests run.
    pub fn adversarial(seed: u64, intensity: f64) -> FaultPlan {
        let i = intensity.clamp(0.0, 1.0);
        let mut plan = FaultPlan::with_intensity(seed, i);
        plan.seed = seed;
        plan.corruption = CorruptionFaults {
            flip_p: 0.10 * i,
            truncate_p: 0.05 * i,
            forge_seq_p: 0.05 * i,
            mutate_dup_p: 0.05 * i,
            mutate_dup_delay_ms: 40.0,
        };
        // Bounded drift: region 1 runs ~15·i ms fast, region 2 ~10·i ms
        // slow (clamped to zero delay on arrival; lamport shifts track
        // the fast clock).
        plan.skew_ms = vec![(1, 15.0 * i), (2, -10.0 * i)];
        if plan.anti_entropy_s.is_none() {
            plan.anti_entropy_s = Some(0.25);
        }
        plan
    }

    /// Do any transport faults, flaps, crashes, or corruption apply?
    /// (Clock skew alone does not make a plan hostile: it loses nothing,
    /// so it needs no anti-entropy default.)
    pub fn is_none(&self) -> bool {
        self.link_defaults.is_none()
            && self.per_link.iter().all(|(_, _, f)| f.is_none())
            && self.flap.is_none()
            && self.crashes.is_empty()
            && self.corruption.is_none()
    }

    /// Is any corruption class armed? The driver's injection draws are
    /// strictly gated on this, so benign plans leave the nemesis RNG
    /// stream — and with it every schedule digest — untouched.
    pub fn corruption_armed(&self) -> bool {
        !self.corruption.is_none()
    }

    /// The clock-skew offset for `region` (0 when unlisted).
    pub fn skew_of(&self, region: Region) -> f64 {
        self.skew_ms
            .iter()
            .find(|&&(r, _)| r == region)
            .map(|&(_, ms)| ms)
            .unwrap_or(0.0)
    }

    /// The faults on link `a → b` (symmetric; last matching override
    /// wins).
    pub fn link(&self, a: Region, b: Region) -> LinkFaults {
        let mut out = self.link_defaults;
        for &(x, y, f) in &self.per_link {
            if (x, y) == (a, b) || (x, y) == (b, a) {
                out = f;
            }
        }
        out
    }

    /// Effective anti-entropy interval: the configured one, or a default
    /// 250 ms whenever any fault could lose a batch.
    pub fn effective_anti_entropy_s(&self) -> Option<f64> {
        match self.anti_entropy_s {
            Some(s) => Some(s),
            None if !self.is_none() => Some(0.25),
            None => None,
        }
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl fmt::Display for FaultPlan {
    /// One-line reproduction record: printed with any nemesis failure so
    /// the schedule replays locally from the seed.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_none() {
            return write!(f, "FaultPlan{{none}}");
        }
        let l = self.link_defaults;
        write!(
            f,
            "FaultPlan{{seed={} drop={:.3} dup={:.3} delay={:.3}x{:.0}ms",
            self.seed, l.drop_p, l.dup_p, l.delay_p, l.delay_ms
        )?;
        if let Some(flap) = self.flap {
            write!(f, " flap={}s/{}s", flap.period_s, flap.outage_s)?;
        }
        for c in &self.crashes {
            write!(f, " crash(r{}@{}s+{}s)", c.region, c.at_s, c.down_s)?;
        }
        if !self.corruption.is_none() {
            let c = self.corruption;
            write!(
                f,
                " corrupt(flip={:.3} trunc={:.3} forge={:.3} mutdup={:.3})",
                c.flip_p, c.truncate_p, c.forge_seq_p, c.mutate_dup_p
            )?;
        }
        for &(r, ms) in &self.skew_ms {
            write!(f, " skew(r{r}{ms:+}ms)")?;
        }
        if let Some(ae) = self.effective_anti_entropy_s() {
            write!(f, " ae={ae}s")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_is_none() {
        assert!(FaultPlan::none().is_none());
        assert!(FaultPlan::default().is_none());
        assert_eq!(FaultPlan::none().effective_anti_entropy_s(), None);
    }

    #[test]
    fn intensity_scales_probabilities() {
        let low = FaultPlan::with_intensity(1, 0.2);
        let high = FaultPlan::with_intensity(1, 1.0);
        assert!(low.link_defaults.drop_p < high.link_defaults.drop_p);
        assert!(low.flap.is_none());
        assert!(high.flap.is_some());
        assert!(!low.is_none());
        assert!(FaultPlan::with_intensity(1, 0.0).is_none());
    }

    #[test]
    fn per_link_override_wins_symmetrically() {
        let mut plan = FaultPlan::none();
        let hostile = LinkFaults {
            drop_p: 0.5,
            ..LinkFaults::NONE
        };
        plan.per_link.push((0, 1, hostile));
        assert_eq!(plan.link(0, 1).drop_p, 0.5);
        assert_eq!(plan.link(1, 0).drop_p, 0.5);
        assert_eq!(plan.link(0, 2).drop_p, 0.0);
    }

    #[test]
    fn adversarial_plans_arm_corruption_and_skew() {
        assert!(!FaultPlan::none().corruption_armed());
        assert!(!FaultPlan::with_intensity(7, 0.8).corruption_armed());
        let plan = FaultPlan::adversarial(7, 0.8);
        assert!(plan.corruption_armed());
        assert!(!plan.is_none(), "armed corruption is hostile");
        assert_eq!(plan.effective_anti_entropy_s(), Some(0.25));
        assert!(plan.skew_of(1) > 0.0);
        assert!(plan.skew_of(2) < 0.0);
        assert_eq!(plan.skew_of(0), 0.0);
        let s = plan.to_string();
        assert!(s.contains("corrupt(flip="), "{s}");
        assert!(s.contains("skew(r1+12ms)"), "{s}");

        // Corruption alone (no honest link faults) still counts hostile.
        let mut only = FaultPlan::none();
        only.corruption.flip_p = 0.1;
        assert!(!only.is_none());
        assert_eq!(only.effective_anti_entropy_s(), Some(0.25));
    }

    #[test]
    fn crashes_make_the_plan_hostile_and_print() {
        let mut plan = FaultPlan::none();
        plan.crashes.push(CrashPlan {
            region: 1,
            at_s: 0.5,
            down_s: 1.0,
        });
        assert!(!plan.is_none());
        assert_eq!(plan.effective_anti_entropy_s(), Some(0.25));
        let s = plan.to_string();
        assert!(s.contains("crash(r1@0.5s+1s)"), "{s}");
    }
}
