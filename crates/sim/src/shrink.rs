//! Schedule minimization: a deterministic delta-debugger over explicit
//! fault plans.
//!
//! A red nemesis run is reproducible from two integers, but the
//! *probabilistic* [`crate::FaultPlan`] it reproduces materializes
//! hundreds of concrete faults — far too many to reason about. This
//! module makes every failure small:
//!
//! 1. **Record** — re-run the failing `(workload seed, fault seed)` pair
//!    with [`crate::Simulation::record_fault_trace`] enabled. Every fault
//!    the nemesis RNG materializes (per-batch drops/delays/duplicates,
//!    partition windows, crash/restart pairs, anti-entropy send
//!    latencies) is captured as an explicit [`FaultEvent`].
//! 2. **Seal** — replay the trace through
//!    [`crate::Simulation::set_explicit_faults`]: the nemesis RNG is
//!    never drawn, every fault comes from the trace, so the run is a
//!    pure function of `(workload seed, ExplicitPlan)`.
//! 3. **Shrink** — [`shrink_plan`] greedily removes fault events
//!    (chunked ddmin, the vendored-proptest discipline applied to an
//!    explicit plan instead of a generator tree), then shrinks the
//!    surviving events' numeric fields (delays, outage windows,
//!    downtimes), re-running the sealed simulation after each candidate
//!    and keeping the smallest plan that still fails the *same* oracle
//!    check.
//!
//! The minimized plan serializes to a line-oriented text format
//! (`ExplicitPlan::to_string` via [`Display`](std::fmt::Display) /
//! [`ExplicitPlan::from_str`]) that CI
//! uploads as an artifact and `tests/nemesis_soak.rs` replays via
//! `IPA_NEMESIS_REPLAY=<file>`.
//!
//! [`shrink_joint`] extends the same discipline to the *workload*: given
//! a recorded [`OpTrace`] alongside the fault trace, it interleaves a
//! chunked ddmin over op events with the fault-event ddmin, so the final
//! counterexample names the two or three client operations that matter,
//! not just the faults.

use crate::latency::Region;
use crate::trace::OpTrace;
use std::fmt;
use std::str::FromStr;

/// One concrete, materialized fault. Transport faults are keyed by the
/// batch they hit — `(origin, dest, seq)` — which is stable across
/// replays because the workload RNG stream is independent of the
/// nemesis.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultEvent {
    /// The batch `origin → dest` with origin-sequence `seq` vanishes.
    Drop {
        origin: Region,
        dest: Region,
        seq: u64,
    },
    /// The batch arrives `extra_ms` later than its link latency.
    Delay {
        origin: Region,
        dest: Region,
        seq: u64,
        extra_ms: f64,
    },
    /// A second copy of the batch arrives `dup_delay_ms` after the first.
    Duplicate {
        origin: Region,
        dest: Region,
        seq: u64,
        dup_delay_ms: f64,
    },
    /// Link `a ↔ b` is cut at `at_s` and heals `outage_s` later.
    Partition {
        a: Region,
        b: Region,
        at_s: f64,
        outage_s: f64,
    },
    /// Replica `region` crashes at `at_s` (volatile state lost) and
    /// restarts `down_s` later.
    Crash {
        region: Region,
        at_s: f64,
        down_s: f64,
    },
    /// The batch's payload is bit-flipped in flight (lamport corrupted,
    /// seal not recomputed) — the receiver quarantines it.
    Flip {
        origin: Region,
        dest: Region,
        seq: u64,
    },
    /// The batch's update vector is truncated to its first `keep`
    /// updates in flight.
    Truncate {
        origin: Region,
        dest: Region,
        seq: u64,
        keep: u64,
    },
    /// The batch's sequence number is forged `back` steps stale (and the
    /// forgery resealed — caught structurally, not by checksum).
    Forge {
        origin: Region,
        dest: Region,
        seq: u64,
        back: u64,
    },
    /// A *mutated* duplicate of the batch arrives `dup_delay_ms` after
    /// the clean copy.
    MutDup {
        origin: Region,
        dest: Region,
        seq: u64,
        dup_delay_ms: f64,
    },
}

impl FaultEvent {
    /// Event-class label (used for summaries and chunk ordering).
    pub fn class(&self) -> &'static str {
        match self {
            FaultEvent::Drop { .. } => "drop",
            FaultEvent::Delay { .. } => "delay",
            FaultEvent::Duplicate { .. } => "dup",
            FaultEvent::Partition { .. } => "cut",
            FaultEvent::Crash { .. } => "crash",
            FaultEvent::Flip { .. } => "flip",
            FaultEvent::Truncate { .. } => "trunc",
            FaultEvent::Forge { .. } => "forge",
            FaultEvent::MutDup { .. } => "mutdup",
        }
    }
}

impl fmt::Display for FaultEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FaultEvent::Drop { origin, dest, seq } => write!(f, "drop {origin}->{dest} {seq}"),
            FaultEvent::Delay {
                origin,
                dest,
                seq,
                extra_ms,
            } => write!(f, "delay {origin}->{dest} {seq} {extra_ms}"),
            FaultEvent::Duplicate {
                origin,
                dest,
                seq,
                dup_delay_ms,
            } => write!(f, "dup {origin}->{dest} {seq} {dup_delay_ms}"),
            FaultEvent::Partition {
                a,
                b,
                at_s,
                outage_s,
            } => {
                write!(f, "cut {a}-{b} {at_s} {outage_s}")
            }
            FaultEvent::Crash {
                region,
                at_s,
                down_s,
            } => {
                write!(f, "crash {region} {at_s} {down_s}")
            }
            FaultEvent::Flip { origin, dest, seq } => write!(f, "flip {origin}->{dest} {seq}"),
            FaultEvent::Truncate {
                origin,
                dest,
                seq,
                keep,
            } => write!(f, "trunc {origin}->{dest} {seq} {keep}"),
            FaultEvent::Forge {
                origin,
                dest,
                seq,
                back,
            } => write!(f, "forge {origin}->{dest} {seq} {back}"),
            FaultEvent::MutDup {
                origin,
                dest,
                seq,
                dup_delay_ms,
            } => write!(f, "mutdup {origin}->{dest} {seq} {dup_delay_ms}"),
        }
    }
}

/// A fully explicit nemesis schedule: every fault is an event, nothing
/// is drawn from an RNG. Replaying the same plan under the same workload
/// seed yields the same schedule digest, bit for bit.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ExplicitPlan {
    pub events: Vec<FaultEvent>,
    /// Periodic anti-entropy interval (`None` disables repair — useful
    /// for constructing liveness counterexamples in tests).
    pub anti_entropy_s: Option<f64>,
    /// Recorded anti-entropy send latencies, keyed by
    /// `(round index, src, dst)`. Replay uses the recorded value when
    /// present and the jitter-free base link latency otherwise, so a
    /// full-trace replay reproduces the original arrival times exactly
    /// while shrunk candidates stay deterministic.
    pub ae_latency_ms: Vec<(u64, Region, Region, f64)>,
    /// Per-replica clock skew table `(region, offset_ms)` — plan-level
    /// (not an event: skew is a property of a replica's clock for the
    /// whole run, mirrored from [`crate::FaultPlan::skew_ms`]).
    pub skew_ms: Vec<(Region, f64)>,
}

impl ExplicitPlan {
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events per class, for failure banners.
    pub fn summary(&self) -> String {
        let mut counts: [(&str, usize); 9] = [
            ("drop", 0),
            ("delay", 0),
            ("dup", 0),
            ("cut", 0),
            ("crash", 0),
            ("flip", 0),
            ("trunc", 0),
            ("forge", 0),
            ("mutdup", 0),
        ];
        for e in &self.events {
            let c = e.class();
            for slot in counts.iter_mut() {
                if slot.0 == c {
                    slot.1 += 1;
                }
            }
        }
        let parts: Vec<String> = counts
            .iter()
            .filter(|(_, n)| *n > 0)
            .map(|(c, n)| format!("{n} {c}"))
            .collect();
        if parts.is_empty() {
            "no faults".to_owned()
        } else {
            format!("{} events: {}", self.events.len(), parts.join(", "))
        }
    }
}

impl fmt::Display for ExplicitPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# ipa-nemesis explicit fault plan v3")?;
        match self.anti_entropy_s {
            Some(s) => writeln!(f, "ae {s}")?,
            None => writeln!(f, "ae off")?,
        }
        for &(region, ms) in &self.skew_ms {
            writeln!(f, "skew {region} {ms}")?;
        }
        for e in &self.events {
            writeln!(f, "{e}")?;
        }
        for &(round, src, dst, ms) in &self.ae_latency_ms {
            writeln!(f, "ael {round} {src}->{dst} {ms}")?;
        }
        Ok(())
    }
}

/// A malformed plan line (file + env-var replay paths surface this).
#[derive(Clone, Debug, PartialEq)]
pub struct PlanParseError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for PlanParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "plan line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for PlanParseError {}

fn parse_link(tok: &str, sep: &str) -> Option<(Region, Region)> {
    let (a, b) = tok.split_once(sep)?;
    Some((a.parse().ok()?, b.parse().ok()?))
}

impl FromStr for ExplicitPlan {
    type Err = PlanParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut plan = ExplicitPlan::default();
        for (i, raw) in s.lines().enumerate() {
            let line = raw.trim();
            let err = |message: String| PlanParseError {
                line: i + 1,
                message,
            };
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut tok = line.split_whitespace();
            let kind = tok.next().unwrap_or_default();
            let mut next = || tok.next().ok_or_else(|| err(format!("truncated {kind}")));
            match kind {
                "ae" => {
                    let v = next()?;
                    plan.anti_entropy_s = if v == "off" {
                        None
                    } else {
                        Some(
                            v.parse()
                                .map_err(|_| err(format!("bad ae interval {v:?}")))?,
                        )
                    };
                }
                "drop" | "delay" | "dup" | "flip" | "trunc" | "forge" | "mutdup" => {
                    let link = next()?;
                    let (origin, dest) = parse_link(link, "->")
                        .ok_or_else(|| err(format!("bad link {link:?} (want o->d)")))?;
                    let seq = next()?;
                    let seq = seq.parse().map_err(|_| err(format!("bad seq {seq:?}")))?;
                    plan.events.push(match kind {
                        "drop" => FaultEvent::Drop { origin, dest, seq },
                        "flip" => FaultEvent::Flip { origin, dest, seq },
                        "delay" => {
                            let ms = next()?;
                            FaultEvent::Delay {
                                origin,
                                dest,
                                seq,
                                extra_ms: ms.parse().map_err(|_| err(format!("bad ms {ms:?}")))?,
                            }
                        }
                        "trunc" => {
                            let keep = next()?;
                            FaultEvent::Truncate {
                                origin,
                                dest,
                                seq,
                                keep: keep
                                    .parse()
                                    .map_err(|_| err(format!("bad keep {keep:?}")))?,
                            }
                        }
                        "forge" => {
                            let back = next()?;
                            FaultEvent::Forge {
                                origin,
                                dest,
                                seq,
                                back: back
                                    .parse()
                                    .map_err(|_| err(format!("bad back {back:?}")))?,
                            }
                        }
                        "mutdup" => {
                            let ms = next()?;
                            FaultEvent::MutDup {
                                origin,
                                dest,
                                seq,
                                dup_delay_ms: ms
                                    .parse()
                                    .map_err(|_| err(format!("bad ms {ms:?}")))?,
                            }
                        }
                        _ => {
                            let ms = next()?;
                            FaultEvent::Duplicate {
                                origin,
                                dest,
                                seq,
                                dup_delay_ms: ms
                                    .parse()
                                    .map_err(|_| err(format!("bad ms {ms:?}")))?,
                            }
                        }
                    });
                }
                "skew" => {
                    let region = next()?;
                    let ms = next()?;
                    plan.skew_ms.push((
                        region
                            .parse()
                            .map_err(|_| err(format!("bad region {region:?}")))?,
                        ms.parse().map_err(|_| err(format!("bad ms {ms:?}")))?,
                    ));
                }
                "cut" => {
                    let link = next()?;
                    let (a, b) = parse_link(link, "-")
                        .ok_or_else(|| err(format!("bad link {link:?} (want a-b)")))?;
                    let at = next()?;
                    let outage = next()?;
                    plan.events.push(FaultEvent::Partition {
                        a,
                        b,
                        at_s: at.parse().map_err(|_| err(format!("bad time {at:?}")))?,
                        outage_s: outage
                            .parse()
                            .map_err(|_| err(format!("bad outage {outage:?}")))?,
                    });
                }
                "crash" => {
                    let region = next()?;
                    let at = next()?;
                    let down = next()?;
                    plan.events.push(FaultEvent::Crash {
                        region: region
                            .parse()
                            .map_err(|_| err(format!("bad region {region:?}")))?,
                        at_s: at.parse().map_err(|_| err(format!("bad time {at:?}")))?,
                        down_s: down
                            .parse()
                            .map_err(|_| err(format!("bad down {down:?}")))?,
                    });
                }
                "ael" => {
                    let round = next()?;
                    let link = next()?;
                    let (src, dst) = parse_link(link, "->")
                        .ok_or_else(|| err(format!("bad link {link:?} (want s->d)")))?;
                    let ms = next()?;
                    plan.ae_latency_ms.push((
                        round
                            .parse()
                            .map_err(|_| err(format!("bad round {round:?}")))?,
                        src,
                        dst,
                        ms.parse().map_err(|_| err(format!("bad ms {ms:?}")))?,
                    ));
                }
                other => return Err(err(format!("unknown directive {other:?}"))),
            }
        }
        Ok(plan)
    }
}

/// What a single sealed run reported: the name of the oracle check that
/// failed and the run's schedule digest.
#[derive(Clone, Debug, PartialEq)]
pub struct RunVerdict {
    pub check: String,
    pub digest: u64,
}

/// The result of a shrink: the minimal plan found, the check it still
/// fails, and the digest of its (deterministic) replay.
#[derive(Clone, Debug)]
pub struct ShrinkOutcome {
    pub plan: ExplicitPlan,
    /// The oracle check every kept candidate failed (identical to the
    /// original failure's).
    pub check: String,
    /// Schedule digest of the minimized plan's replay — replaying the
    /// plan must reproduce exactly this digest.
    pub digest: u64,
    /// Sealed simulations executed (the shrink budget spent).
    pub runs: usize,
    pub original_events: usize,
}

impl ShrinkOutcome {
    pub fn shrunk_events(&self) -> usize {
        self.plan.events.len()
    }
}

/// Budget for one shrink session: a hard cap on sealed re-runs.
#[derive(Clone, Copy, Debug)]
pub struct ShrinkBudget {
    pub max_runs: usize,
}

impl Default for ShrinkBudget {
    fn default() -> Self {
        // Mirrors the vendored proptest shrink loop's 500-step greedy
        // discipline; each step here is a full sealed simulation.
        ShrinkBudget { max_runs: 500 }
    }
}

/// Delta-debug `initial` against the caller's sealed runner.
///
/// `run` executes one sealed simulation of a candidate plan and returns
/// `Some(verdict)` when an oracle check fails (`None` = the candidate
/// passes, so it is rejected). The shrinker only keeps candidates that
/// fail the *same* check as the initial plan.
///
/// Returns `None` when the initial plan does not fail at all (nothing to
/// shrink). The whole procedure is deterministic: same initial plan +
/// same (deterministic) runner ⇒ same outcome.
pub fn shrink_plan(
    initial: &ExplicitPlan,
    budget: ShrinkBudget,
    mut run: impl FnMut(&ExplicitPlan) -> Option<RunVerdict>,
) -> Option<ShrinkOutcome> {
    let mut runs = 1usize;
    let base = run(initial)?;
    let target = base.check.clone();
    let mut best = initial.clone();
    let mut best_digest = base.digest;

    let mut try_candidate = |candidate: &ExplicitPlan, runs: &mut usize| -> Option<u64> {
        if *runs >= budget.max_runs {
            return None;
        }
        *runs += 1;
        match run(candidate) {
            Some(v) if v.check == target => Some(v.digest),
            _ => None,
        }
    };

    // Phase 1 — chunked ddmin over whole events. Event order inside the
    // plan is semantically irrelevant (transport faults key on batches,
    // windows and crashes on virtual time), so removing any subsequence
    // is a valid candidate.
    {
        let mut events = std::mem::take(&mut best.events);
        let (ae, latencies) = (best.anti_entropy_s, best.ae_latency_ms.clone());
        let skew = best.skew_ms.clone();
        if let Some(digest) = ddmin_events(
            &mut events,
            &mut runs,
            budget.max_runs,
            |candidate, runs| {
                let plan = ExplicitPlan {
                    events: candidate.clone(),
                    anti_entropy_s: ae,
                    ae_latency_ms: latencies.clone(),
                    skew_ms: skew.clone(),
                };
                try_candidate(&plan, runs)
            },
        ) {
            best_digest = digest;
        }
        best.events = events;
    }

    // Phase 2 — per-event field shrinking.
    shrink_fault_fields(
        &mut best,
        &mut best_digest,
        &mut runs,
        budget.max_runs,
        &mut try_candidate,
    );

    // Phase 3 — drop the recorded anti-entropy latency table. Its round
    // keys describe the *full* trace; once events are gone the rounds
    // shift and stale entries would misdescribe the replay. If the
    // failure survives on jitter-free base latencies (it almost always
    // does), the minimized artifact stays honest and much smaller. The
    // full-trace case keeps the table: it is what makes the seal
    // bit-identical to the probabilistic original.
    if best.events.len() < initial.events.len() && !best.ae_latency_ms.is_empty() {
        let mut candidate = best.clone();
        candidate.ae_latency_ms.clear();
        if let Some(digest) = try_candidate(&candidate, &mut runs) {
            best = candidate;
            best_digest = digest;
        }
    }

    Some(ShrinkOutcome {
        plan: best,
        check: target,
        digest: best_digest,
        runs,
        original_events: initial.events.len(),
    })
}

/// One chunked-ddmin pass to a fixpoint over `events`: try removing
/// chunks (halving the chunk size down to 1, restarting from the top
/// while whole passes make progress), keeping a removal whenever `fails`
/// still reproduces the target failure on the remainder. Returns the
/// digest of the last kept candidate, if any was kept. `fails` is
/// expected to enforce the run budget (via the shared `runs` counter)
/// exactly like [`shrink_plan`]'s `try_candidate`.
fn ddmin_events<T: Clone>(
    events: &mut Vec<T>,
    runs: &mut usize,
    max_runs: usize,
    mut fails: impl FnMut(&Vec<T>, &mut usize) -> Option<u64>,
) -> Option<u64> {
    let mut best_digest = None;
    loop {
        let before = events.len();
        let mut chunk = before.div_ceil(2).max(1);
        while chunk >= 1 {
            let mut i = 0;
            while i < events.len() && *runs < max_runs {
                let mut candidate = events.clone();
                let end = (i + chunk).min(candidate.len());
                candidate.drain(i..end);
                if let Some(digest) = fails(&candidate, runs) {
                    *events = candidate;
                    best_digest = Some(digest);
                    // Re-test the same position: the next chunk slid in.
                } else {
                    i += chunk;
                }
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }
        if events.len() == before || *runs >= max_runs {
            break;
        }
        // Removing events can unlock further removals (a delay only
        // mattered because a later drop depended on its reordering);
        // iterate to a fixpoint like the proptest loop does.
    }
    best_digest
}

/// Per-event field shrinking: halve the surviving events' magnitudes
/// toward zero while the failure persists (integer-style halving on
/// floats, cut off once the step stops being meaningful).
fn shrink_fault_fields(
    best: &mut ExplicitPlan,
    best_digest: &mut u64,
    runs: &mut usize,
    max_runs: usize,
    try_candidate: &mut impl FnMut(&ExplicitPlan, &mut usize) -> Option<u64>,
) {
    let mut changed = true;
    while changed && *runs < max_runs {
        changed = false;
        for i in 0..best.events.len() {
            loop {
                let mut candidate = best.clone();
                let shrunk = match &mut candidate.events[i] {
                    FaultEvent::Delay { extra_ms, .. } => halve(extra_ms, 1.0),
                    FaultEvent::Duplicate { dup_delay_ms, .. } => halve(dup_delay_ms, 1.0),
                    FaultEvent::Partition { outage_s, .. } => halve(outage_s, 0.01),
                    FaultEvent::Crash { down_s, .. } => halve(down_s, 0.01),
                    FaultEvent::Drop { .. } | FaultEvent::Flip { .. } => false,
                    FaultEvent::Truncate { keep, .. } => halve_u64(keep, 0),
                    FaultEvent::Forge { back, .. } => halve_u64(back, 1),
                    FaultEvent::MutDup { dup_delay_ms, .. } => halve(dup_delay_ms, 1.0),
                };
                if !shrunk || *runs >= max_runs {
                    break;
                }
                if let Some(digest) = try_candidate(&candidate, runs) {
                    *best = candidate;
                    *best_digest = digest;
                    changed = true;
                } else {
                    break;
                }
            }
        }
    }
}

/// The result of a joint shrink: the minimal `(fault plan, op trace)`
/// pair found, the check it still fails, and the digest of its sealed
/// replay.
#[derive(Clone, Debug)]
pub struct JointOutcome {
    pub faults: ExplicitPlan,
    pub ops: OpTrace,
    /// The oracle check every kept candidate failed (identical to the
    /// original failure's).
    pub check: String,
    /// Schedule digest of the minimized pair's sealed replay.
    pub digest: u64,
    /// Sealed simulations executed (the shrink budget spent).
    pub runs: usize,
    pub original_fault_events: usize,
    pub original_op_events: usize,
}

impl JointOutcome {
    pub fn fault_events(&self) -> usize {
        self.faults.events.len()
    }

    pub fn op_events(&self) -> usize {
        self.ops.events.len()
    }
}

/// Jointly delta-debug a fault plan *and* the op trace that triggered it
/// against the caller's sealed runner: a chunked ddmin over op events
/// interleaved with the fault-event ddmin of [`shrink_plan`], iterated
/// to a joint fixpoint, then the fault field shrinks and latency-table
/// drops. Only candidates failing the *same* oracle check as the
/// initial pair are kept, so the minimized artifact reproduces the
/// original violation, not a different one.
///
/// Op events go first in every round: each removed op makes all later
/// sealed runs cheaper, and removing ops frequently unlocks fault
/// removals (a drop keyed to a batch the shrunk trace no longer commits
/// can finally go) and vice versa — hence the interleaving.
///
/// Returns `None` when the initial pair does not fail at all. Fully
/// deterministic: same inputs + deterministic runner ⇒ same outcome.
pub fn shrink_joint(
    initial_faults: &ExplicitPlan,
    initial_ops: &OpTrace,
    budget: ShrinkBudget,
    run: impl FnMut(&ExplicitPlan, &OpTrace) -> Option<RunVerdict>,
) -> Option<JointOutcome> {
    shrink_joint_with(initial_faults, initial_ops, budget, |_| Vec::new(), run)
}

/// [`shrink_joint`] plus a *field-level weakening lattice* over op
/// events: `weaken(op)` returns strictly weaker replacement ops (fewer
/// or smaller writes — e.g. tournament's `match p q t` weakens to
/// `enroll p t`, any write weakens to its read-only counterpart), tried
/// in order whenever whole-event removal has hit its fixpoint. A kept
/// weakening often unlocks further event removals (the batch a fault was
/// keyed to no longer exists), so weakening is interleaved with the
/// ddmin rounds until the pair is jointly stable.
///
/// The lattice lives with the caller because the op grammar is
/// app-specific; the shrinker only requires that replacements parse as
/// valid trace lines and are *weaker* (so the minimized counterexample
/// never gains behavior the original schedule lacked).
pub fn shrink_joint_with(
    initial_faults: &ExplicitPlan,
    initial_ops: &OpTrace,
    budget: ShrinkBudget,
    weaken: impl Fn(&str) -> Vec<String>,
    mut run: impl FnMut(&ExplicitPlan, &OpTrace) -> Option<RunVerdict>,
) -> Option<JointOutcome> {
    let mut runs = 1usize;
    let base = run(initial_faults, initial_ops)?;
    let target = base.check.clone();
    let mut best_f = initial_faults.clone();
    let mut best_o = initial_ops.clone();
    let mut best_digest = base.digest;

    let mut try_candidate = |f: &ExplicitPlan, o: &OpTrace, runs: &mut usize| -> Option<u64> {
        if *runs >= budget.max_runs {
            return None;
        }
        *runs += 1;
        match run(f, o) {
            Some(v) if v.check == target => Some(v.digest),
            _ => None,
        }
    };

    // Interleaved event minimization to a joint fixpoint.
    loop {
        let shape = (best_f.events.len(), best_o.events.len());

        {
            let mut op_events = std::mem::take(&mut best_o.events);
            let sends = best_o.sends.clone();
            if let Some(digest) = ddmin_events(
                &mut op_events,
                &mut runs,
                budget.max_runs,
                |candidate, runs| {
                    let ops = OpTrace {
                        events: candidate.clone(),
                        sends: sends.clone(),
                    };
                    try_candidate(&best_f, &ops, runs)
                },
            ) {
                best_digest = digest;
            }
            best_o.events = op_events;
        }

        {
            let mut fault_events = std::mem::take(&mut best_f.events);
            let (ae, latencies) = (best_f.anti_entropy_s, best_f.ae_latency_ms.clone());
            let skew = best_f.skew_ms.clone();
            if let Some(digest) = ddmin_events(
                &mut fault_events,
                &mut runs,
                budget.max_runs,
                |candidate, runs| {
                    let plan = ExplicitPlan {
                        events: candidate.clone(),
                        anti_entropy_s: ae,
                        ae_latency_ms: latencies.clone(),
                        skew_ms: skew.clone(),
                    };
                    try_candidate(&plan, &best_o, runs)
                },
            ) {
                best_digest = digest;
            }
            best_f.events = fault_events;
        }

        // Weakening pass: replace surviving ops with lattice-weaker
        // variants while the same check still fails. A weakened op can
        // itself weaken further (`match` → `enroll` → `status`), so each
        // slot descends its chain to a fixpoint.
        let mut weakened = false;
        for i in 0..best_o.events.len() {
            loop {
                let mut descended = false;
                for w in weaken(best_o.events[i].op.as_str()) {
                    if runs >= budget.max_runs {
                        break;
                    }
                    let mut candidate = best_o.clone();
                    candidate.events[i].op = crate::trace::AppOp::new(w);
                    if let Some(digest) = try_candidate(&best_f, &candidate, &mut runs) {
                        best_o = candidate;
                        best_digest = digest;
                        descended = true;
                        weakened = true;
                        break;
                    }
                }
                if !descended {
                    break;
                }
            }
        }

        if ((best_f.events.len(), best_o.events.len()) == shape && !weakened)
            || runs >= budget.max_runs
        {
            break;
        }
    }

    // Fault field shrinks (delays, outages, downtimes), judged against
    // the current minimal op trace.
    {
        let ops = best_o.clone();
        let mut fails = |f: &ExplicitPlan, runs: &mut usize| try_candidate(f, &ops, runs);
        shrink_fault_fields(
            &mut best_f,
            &mut best_digest,
            &mut runs,
            budget.max_runs,
            &mut fails,
        );
    }

    // Latency-table drops: once events were removed, the recorded tables
    // describe a schedule that no longer exists (AE rounds shift, batch
    // sequences re-pack), so try the jitter-free base latencies. The
    // full-trace case keeps both tables — they are the seal.
    if best_f.events.len() < initial_faults.events.len() && !best_f.ae_latency_ms.is_empty() {
        let mut candidate = best_f.clone();
        candidate.ae_latency_ms.clear();
        if let Some(digest) = try_candidate(&candidate, &best_o, &mut runs) {
            best_f = candidate;
            best_digest = digest;
        }
    }
    if best_o.events.len() < initial_ops.events.len() && !best_o.sends.is_empty() {
        let mut candidate = best_o.clone();
        candidate.sends.clear();
        if let Some(digest) = try_candidate(&best_f, &candidate, &mut runs) {
            best_o = candidate;
            best_digest = digest;
        }
    }

    Some(JointOutcome {
        faults: best_f,
        ops: best_o,
        check: target,
        digest: best_digest,
        runs,
        original_fault_events: initial_faults.events.len(),
        original_op_events: initial_ops.events.len(),
    })
}

/// Halve toward zero; `false` once the value is at or below the floor
/// (no meaningful shrink left).
fn halve(v: &mut f64, floor: f64) -> bool {
    if *v <= floor {
        return false;
    }
    *v /= 2.0;
    if *v < floor {
        *v = floor;
    }
    true
}

/// Integer halving toward `floor` (truncation keep-counts, forgery
/// distances).
fn halve_u64(v: &mut u64, floor: u64) -> bool {
    if *v <= floor {
        return false;
    }
    *v /= 2;
    if *v < floor {
        *v = floor;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_plan() -> ExplicitPlan {
        ExplicitPlan {
            events: vec![
                FaultEvent::Drop {
                    origin: 0,
                    dest: 2,
                    seq: 17,
                },
                FaultEvent::Delay {
                    origin: 1,
                    dest: 0,
                    seq: 23,
                    extra_ms: 35.25,
                },
                FaultEvent::Duplicate {
                    origin: 0,
                    dest: 1,
                    seq: 9,
                    dup_delay_ms: 40.0,
                },
                FaultEvent::Partition {
                    a: 0,
                    b: 2,
                    at_s: 1.0,
                    outage_s: 0.3,
                },
                FaultEvent::Crash {
                    region: 1,
                    at_s: 0.9,
                    down_s: 0.8,
                },
                FaultEvent::Flip {
                    origin: 2,
                    dest: 0,
                    seq: 4,
                },
                FaultEvent::Truncate {
                    origin: 1,
                    dest: 2,
                    seq: 6,
                    keep: 3,
                },
                FaultEvent::Forge {
                    origin: 0,
                    dest: 1,
                    seq: 11,
                    back: 4,
                },
                FaultEvent::MutDup {
                    origin: 2,
                    dest: 1,
                    seq: 8,
                    dup_delay_ms: 25.5,
                },
            ],
            anti_entropy_s: Some(0.25),
            ae_latency_ms: vec![(3, 0, 2, 40.125)],
            skew_ms: vec![(1, 15.0), (2, -10.0)],
        }
    }

    #[test]
    fn plan_text_roundtrips_exactly() {
        let plan = sample_plan();
        let text = plan.to_string();
        let back: ExplicitPlan = text.parse().expect("parse");
        assert_eq!(back, plan, "text:\n{text}");
        // Idempotent: rendering the parsed plan is byte-identical.
        assert_eq!(back.to_string(), text);
    }

    #[test]
    fn ae_off_and_comments_parse() {
        let text = "# comment\n\nae off\ndrop 1->0 4\n";
        let plan: ExplicitPlan = text.parse().expect("parse");
        assert_eq!(plan.anti_entropy_s, None);
        assert_eq!(plan.events.len(), 1);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = "ae 0.25\nwarp 9".parse::<ExplicitPlan>().unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("warp"), "{err}");
        let err = "drop 0->x 4".parse::<ExplicitPlan>().unwrap_err();
        assert_eq!(err.line, 1);
    }

    #[test]
    fn summary_counts_classes() {
        assert_eq!(
            sample_plan().summary(),
            "9 events: 1 drop, 1 delay, 1 dup, 1 cut, 1 crash, 1 flip, 1 trunc, 1 forge, 1 mutdup"
        );
        assert_eq!(ExplicitPlan::default().summary(), "no faults");
    }

    #[test]
    fn corruption_field_shrinking_halves_keep_and_back() {
        // Oracle: fails while a trunc keeps ≥ 1 update and the forge
        // reaches ≥ 2 back — both fields must shrink to their smallest
        // failing values (keep 1, back 2).
        let plan = ExplicitPlan {
            events: vec![
                FaultEvent::Truncate {
                    origin: 0,
                    dest: 1,
                    seq: 3,
                    keep: 16,
                },
                FaultEvent::Forge {
                    origin: 1,
                    dest: 2,
                    seq: 9,
                    back: 8,
                },
            ],
            ..Default::default()
        };
        let out = shrink_plan(&plan, ShrinkBudget::default(), |p| {
            let t = p
                .events
                .iter()
                .any(|e| matches!(e, FaultEvent::Truncate { keep, .. } if *keep >= 1));
            let g = p
                .events
                .iter()
                .any(|e| matches!(e, FaultEvent::Forge { back, .. } if *back >= 2));
            (t && g).then(|| RunVerdict {
                check: "corrupt".into(),
                digest: 1,
            })
        })
        .expect("fails");
        let FaultEvent::Truncate { keep, .. } = out.plan.events[0] else {
            panic!("trunc survived: {}", out.plan);
        };
        let FaultEvent::Forge { back, .. } = out.plan.events[1] else {
            panic!("forge survived: {}", out.plan);
        };
        assert_eq!(keep, 1, "16 → 8 → 4 → 2 → 1, then stuck");
        assert_eq!(back, 2, "8 → 4 → 2, then stuck");
    }

    /// A synthetic "oracle": fails iff the plan still contains the
    /// culprit drop; digest = number of events (detectably changing).
    fn culprit_runner(plan: &ExplicitPlan) -> Option<RunVerdict> {
        let has_culprit = plan.events.iter().any(|e| {
            matches!(
                e,
                FaultEvent::Drop {
                    origin: 0,
                    dest: 2,
                    seq: 17
                }
            )
        });
        has_culprit.then(|| RunVerdict {
            check: "culprit".into(),
            digest: plan.events.len() as u64,
        })
    }

    #[test]
    fn ddmin_isolates_a_single_culprit() {
        let mut plan = ExplicitPlan {
            anti_entropy_s: Some(0.25),
            ..Default::default()
        };
        for seq in 0..60 {
            plan.events.push(FaultEvent::Delay {
                origin: (seq % 3) as Region,
                dest: ((seq + 1) % 3) as Region,
                seq,
                extra_ms: 20.0,
            });
        }
        plan.events.insert(
            37,
            FaultEvent::Drop {
                origin: 0,
                dest: 2,
                seq: 17,
            },
        );
        let out = shrink_plan(&plan, ShrinkBudget::default(), culprit_runner).expect("fails");
        assert_eq!(out.plan.events.len(), 1, "{}", out.plan);
        assert_eq!(
            out.plan.events[0],
            FaultEvent::Drop {
                origin: 0,
                dest: 2,
                seq: 17
            }
        );
        assert_eq!(out.check, "culprit");
        assert_eq!(out.original_events, 61);
        assert!(
            out.runs <= 60,
            "ddmin is logarithmic-ish: {} runs",
            out.runs
        );
    }

    #[test]
    fn shrink_refuses_a_passing_plan() {
        let plan = sample_plan();
        assert!(shrink_plan(&plan, ShrinkBudget::default(), |_| None).is_none());
    }

    #[test]
    fn field_shrinking_halves_magnitudes_while_failing() {
        // Oracle: fails while the delay is ≥ 4 ms; the culprit event must
        // survive with its delay halved down to the smallest failing step.
        let plan = ExplicitPlan {
            events: vec![FaultEvent::Delay {
                origin: 0,
                dest: 1,
                seq: 5,
                extra_ms: 64.0,
            }],
            ..Default::default()
        };
        let out = shrink_plan(&plan, ShrinkBudget::default(), |p| {
            let failing = p
                .events
                .iter()
                .any(|e| matches!(e, FaultEvent::Delay { extra_ms, .. } if *extra_ms >= 4.0));
            failing.then(|| RunVerdict {
                check: "delay".into(),
                digest: 1,
            })
        })
        .expect("fails");
        let FaultEvent::Delay { extra_ms, .. } = out.plan.events[0] else {
            panic!("delay survived: {}", out.plan);
        };
        assert_eq!(extra_ms, 4.0, "halved 64 → 32 → 16 → 8 → 4, then stuck");
    }

    #[test]
    fn shrink_is_deterministic() {
        let mut plan = ExplicitPlan::default();
        for seq in 0..40 {
            plan.events.push(if seq % 7 == 3 {
                FaultEvent::Drop {
                    origin: 0,
                    dest: 2,
                    seq: 17,
                }
            } else {
                FaultEvent::Duplicate {
                    origin: (seq % 3) as Region,
                    dest: ((seq + 2) % 3) as Region,
                    seq,
                    dup_delay_ms: 40.0,
                }
            });
        }
        let a = shrink_plan(&plan, ShrinkBudget::default(), culprit_runner).unwrap();
        let b = shrink_plan(&plan, ShrinkBudget::default(), culprit_runner).unwrap();
        assert_eq!(a.plan, b.plan);
        assert_eq!(a.runs, b.runs);
        assert_eq!(a.digest, b.digest);
    }

    /// A synthetic joint oracle: fails iff the culprit drop AND the
    /// culprit op are both present (the shape of a real red cell — the
    /// violating schedule needs the op that commits the batch and the
    /// fault that loses it).
    fn joint_culprit_runner(faults: &ExplicitPlan, ops: &OpTrace) -> Option<RunVerdict> {
        let has_drop = faults.events.iter().any(|e| {
            matches!(
                e,
                FaultEvent::Drop {
                    origin: 0,
                    dest: 2,
                    seq: 17
                }
            )
        });
        let has_op = ops
            .events
            .iter()
            .any(|e| e.op.as_str() == "enroll p9 t17" && e.client == 4);
        (has_drop && has_op).then(|| RunVerdict {
            check: "joint-culprit".into(),
            digest: (faults.events.len() * 1000 + ops.events.len()) as u64,
        })
    }

    fn noisy_joint_inputs() -> (ExplicitPlan, OpTrace) {
        let mut faults = ExplicitPlan {
            anti_entropy_s: Some(0.25),
            ae_latency_ms: vec![(1, 0, 1, 40.5), (2, 1, 2, 39.25)],
            ..Default::default()
        };
        for seq in 0..50u64 {
            faults.events.push(if seq == 33 {
                FaultEvent::Drop {
                    origin: 0,
                    dest: 2,
                    seq: 17,
                }
            } else {
                FaultEvent::Delay {
                    origin: (seq % 3) as Region,
                    dest: ((seq + 1) % 3) as Region,
                    seq,
                    extra_ms: 25.0,
                }
            });
        }
        let mut ops = OpTrace::default();
        for i in 0..200u64 {
            ops.events.push(crate::trace::OpEvent {
                client: (i % 6) as usize,
                at_us: 1_000 + i * 97,
                op: crate::trace::AppOp::new(if i == 117 {
                    "enroll p9 t17".to_owned()
                } else {
                    format!("status t{}", i % 12)
                }),
            });
            if i == 117 {
                // Fix the culprit's client so the oracle can key on it.
                ops.events.last_mut().unwrap().client = 4;
            }
        }
        ops.sends = (0..60)
            .map(|i| crate::trace::SendRec {
                client: i % 6,
                at_us: 1_000 + i * 97,
                ordinal: 0,
                delay_us: 40_000 + i,
            })
            .collect();
        (faults, ops)
    }

    #[test]
    fn joint_shrink_isolates_the_op_and_fault_culprits() {
        let (faults, ops) = noisy_joint_inputs();
        let out = shrink_joint(&faults, &ops, ShrinkBudget::default(), joint_culprit_runner)
            .expect("the full pair fails");
        assert_eq!(out.check, "joint-culprit");
        assert_eq!(out.faults.events.len(), 1, "{}", out.faults);
        assert_eq!(out.ops.events.len(), 1, "{}", out.ops);
        assert_eq!(out.ops.events[0].op.as_str(), "enroll p9 t17");
        assert_eq!(out.ops.events[0].client, 4);
        assert_eq!(out.original_fault_events, 50);
        assert_eq!(out.original_op_events, 200);
        // Both recorded latency tables went with the removed events.
        assert!(out.faults.ae_latency_ms.is_empty());
        assert!(out.ops.sends.is_empty());
        assert!(
            out.ops.events.len() * 10 <= out.original_op_events,
            "≤10% of op events survive"
        );
    }

    #[test]
    fn joint_shrink_is_deterministic_and_budgeted() {
        let (faults, ops) = noisy_joint_inputs();
        let shrink = |budget| {
            let out = shrink_joint(&faults, &ops, budget, joint_culprit_runner).unwrap();
            (
                out.faults.to_string(),
                out.ops.to_string(),
                out.digest,
                out.runs,
            )
        };
        let a = shrink(ShrinkBudget::default());
        let b = shrink(ShrinkBudget::default());
        assert_eq!(a, b, "same inputs ⇒ same minimized pair, digest, cost");
        let capped = shrink_joint(
            &faults,
            &ops,
            ShrinkBudget { max_runs: 10 },
            joint_culprit_runner,
        )
        .unwrap();
        assert!(capped.runs <= 10);
    }

    #[test]
    fn weakening_lattice_descends_ops_to_their_weakest_failing_form() {
        // Synthetic oracle: the violation needs p9 *enrolled* in t17 —
        // `match p9 q1 t17` is sufficient but stronger than necessary,
        // `status t17` is too weak. The lattice mirrors the tournament
        // app's: match → enroll (per entity) → status.
        let weaken = |op: &str| -> Vec<String> {
            match op.split_whitespace().collect::<Vec<_>>().as_slice() {
                ["match", p, q, t] => vec![format!("enroll {p} {t}"), format!("enroll {q} {t}")],
                ["enroll", _, t] => vec![format!("status {t}")],
                _ => Vec::new(),
            }
        };
        let fails = |_: &ExplicitPlan, ops: &OpTrace| -> Option<RunVerdict> {
            ops.events
                .iter()
                .any(|e| matches!(e.op.as_str(), "match p9 q1 t17" | "enroll p9 t17"))
                .then(|| RunVerdict {
                    check: "needs-p9".into(),
                    digest: ops.events.len() as u64,
                })
        };
        let mut ops = OpTrace::default();
        for i in 0..24u64 {
            ops.events.push(crate::trace::OpEvent {
                client: (i % 6) as usize,
                at_us: 1_000 + i * 97,
                op: crate::trace::AppOp::new(if i == 13 {
                    "match p9 q1 t17".to_owned()
                } else {
                    format!("status t{}", i % 4)
                }),
            });
        }
        let out = shrink_joint_with(
            &ExplicitPlan::default(),
            &ops,
            ShrinkBudget::default(),
            weaken,
            fails,
        )
        .expect("the full pair fails");
        assert_eq!(out.ops.events.len(), 1, "{}", out.ops);
        assert_eq!(
            out.ops.events[0].op.as_str(),
            "enroll p9 t17",
            "match weakened one rung (enroll q1 and status are too weak)"
        );
        assert_eq!(out.check, "needs-p9");
    }

    #[test]
    fn joint_shrink_refuses_a_passing_pair() {
        let (faults, ops) = noisy_joint_inputs();
        assert!(shrink_joint(&faults, &ops, ShrinkBudget::default(), |_, _| None).is_none());
    }

    #[test]
    fn budget_caps_the_run_count() {
        let mut plan = ExplicitPlan::default();
        for seq in 0..100 {
            plan.events.push(FaultEvent::Drop {
                origin: 0,
                dest: 2,
                seq,
            });
        }
        // Every candidate containing seq 17 fails, so shrinking has many
        // live moves; the budget must still bound total work.
        let budget = ShrinkBudget { max_runs: 10 };
        let out = shrink_plan(&plan, budget, |p| {
            p.events
                .iter()
                .any(|e| matches!(e, FaultEvent::Drop { seq: 17, .. }))
                .then(|| RunVerdict {
                    check: "c".into(),
                    digest: p.events.len() as u64,
                })
        })
        .unwrap();
        assert!(out.runs <= 10);
        assert!(out.plan.events.len() < plan.events.len(), "some progress");
    }
}
