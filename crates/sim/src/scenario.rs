//! Pre-built topologies matching the paper's deployment (§5.2.1).

use crate::latency::LatencyModel;

/// Region indices for the paper's three-data-center deployment.
pub const US_EAST: u16 = 0;
pub const US_WEST: u16 = 1;
pub const EU_WEST: u16 = 2;

/// The paper's EC2 topology: "mean latency around 80 milliseconds between
/// US-EAST and US-WEST and US-EAST and EU-WEST, and 160 between EU-WEST
/// and US-WEST", with a 1 ms intra-region RTT and ±10 % jitter.
pub fn paper_topology() -> LatencyModel {
    LatencyModel::new(
        vec![
            vec![1.0, 80.0, 80.0],
            vec![80.0, 1.0, 160.0],
            vec![80.0, 160.0, 1.0],
        ],
        0.10,
    )
}

/// A two-region topology for microbenchmarks and reservation-contention
/// experiments (one 80 ms WAN link).
pub fn two_region_topology() -> LatencyModel {
    LatencyModel::new(vec![vec![1.0, 80.0], vec![80.0, 1.0]], 0.10)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_topology_matches_measurements() {
        let t = paper_topology();
        assert_eq!(t.regions(), 3);
        assert_eq!(t.base_rtt(US_EAST, US_WEST), 80.0);
        assert_eq!(t.base_rtt(US_EAST, EU_WEST), 80.0);
        assert_eq!(t.base_rtt(US_WEST, EU_WEST), 160.0);
        assert_eq!(t.base_rtt(US_EAST, US_EAST), 1.0);
    }

    #[test]
    fn two_region_topology_shape() {
        let t = two_region_topology();
        assert_eq!(t.regions(), 2);
        assert_eq!(t.base_rtt(0, 1), 80.0);
    }
}
