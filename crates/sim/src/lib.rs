//! # ipa-sim — deterministic discrete-event geo-replication simulator
//!
//! The EC2-testbed substitute for the paper's evaluation (§5.2.1): three
//! data centers (US-EAST, US-WEST, EU-WEST) with the paper's measured
//! round-trip times (80 ms / 80 ms / 160 ms), closed-loop clients
//! co-located with their regional replica, FIFO service queues that
//! saturate under load (producing the latency/throughput knees of
//! Figures 4 and 7), and asynchronous replication of `ipa-store` update
//! batches with per-link latency and jitter.
//!
//! Everything is driven by a seeded RNG and a virtual clock: runs are
//! reproducible bit-for-bit, and "latency" numbers are in simulated
//! milliseconds — directly comparable to the paper's figures.
//!
//! The simulator is a framework: applications implement [`Workload`] and
//! use [`SimCtx`] to run transactions against regional replicas, pay WAN
//! delays for whatever coordination their consistency mode requires, and
//! count invariant violations. `ipa-coord` builds the Strong and Indigo
//! baselines on top; `ipa-apps` provides the paper's four applications.

pub mod driver;
pub mod fault;
pub mod latency;
pub mod metrics;
pub mod scenario;
pub mod server;
pub mod shrink;
pub mod time;
pub mod trace;

pub use driver::{
    Auditor, ClientInfo, LivenessStats, NemesisStats, OpCtx, OpOutcome, SimConfig, SimCtx,
    Simulation, Workload,
};
pub use fault::{CorruptionFaults, CrashPlan, FaultPlan, FlapPlan, LinkFaults};
pub use latency::{LatencyModel, Region};
pub use metrics::{LatencySummary, Metrics};
pub use scenario::{paper_topology, two_region_topology};
pub use server::ServerQueue;
pub use shrink::{
    shrink_joint, shrink_joint_with, shrink_plan, ExplicitPlan, FaultEvent, JointOutcome,
    PlanParseError, RunVerdict, ShrinkBudget, ShrinkOutcome,
};
pub use time::SimTime;
pub use trace::{AppOp, OpEvent, OpTrace, SendRec, OP_TRACE_HEADER, SETUP_CLIENT};
