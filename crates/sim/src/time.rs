//! Virtual time: microsecond-resolution simulated clock values.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time (microseconds since simulation start).
/// Integer microseconds keep the event queue totally ordered and the
/// simulation deterministic.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Debug)]
pub struct SimTime(pub u64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);

    pub fn from_ms(ms: f64) -> SimTime {
        SimTime((ms.max(0.0) * 1000.0).round() as u64)
    }

    pub fn from_secs(s: f64) -> SimTime {
        Self::from_ms(s * 1000.0)
    }

    pub fn as_ms(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    pub fn as_secs(self) -> f64 {
        self.as_ms() / 1000.0
    }

    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Saturating difference in milliseconds.
    pub fn ms_since(self, earlier: SimTime) -> f64 {
        (self.0.saturating_sub(earlier.0)) as f64 / 1000.0
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_ms())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        let t = SimTime::from_ms(80.5);
        assert_eq!(t.as_micros(), 80_500);
        assert!((t.as_ms() - 80.5).abs() < 1e-9);
        assert!((SimTime::from_secs(2.0).as_secs() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn arithmetic_and_ordering() {
        let a = SimTime::from_ms(10.0);
        let b = SimTime::from_ms(15.0);
        assert!(a < b);
        assert_eq!((a + b).as_ms(), 25.0);
        assert_eq!((b - a).as_ms(), 5.0);
        assert_eq!((a - b).0, 0, "saturating subtraction");
        assert_eq!(b.ms_since(a), 5.0);
    }

    #[test]
    fn negative_ms_clamps_to_zero() {
        assert_eq!(SimTime::from_ms(-3.0), SimTime::ZERO);
    }
}
