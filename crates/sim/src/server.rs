//! Replica service-time model: a FIFO queue with per-update costs.
//!
//! Each regional server processes transactions sequentially; an operation
//! arriving while the server is busy queues behind it. This produces the
//! saturation behaviour of the paper's throughput/latency curves: latency
//! is flat until the offered load approaches the service capacity, then
//! grows sharply (Fig. 4, Fig. 7).
//!
//! Cost constants are calibrated against the paper's microbenchmarks
//! (Fig. 8): one update to one object costs a few dozen microseconds
//! beyond the base transaction cost, while each *additional object*
//! touched costs ~1.2 ms (read + write on storage), which puts the
//! IPA-vs-Strong crossover at ≈64 objects exactly as the paper reports.

use crate::time::SimTime;

/// Service-cost parameters (milliseconds).
#[derive(Clone, Copy, Debug)]
pub struct ServiceCosts {
    /// Fixed transaction overhead.
    pub base_ms: f64,
    /// Marginal cost per update on an already-touched object.
    pub per_update_ms: f64,
    /// Marginal cost per distinct object touched (first object included
    /// in the base cost).
    pub per_object_ms: f64,
}

impl Default for ServiceCosts {
    fn default() -> Self {
        // Calibration (Fig. 8): 1 update ≈ 2.8 ms total service (28×
        // speed-up vs an 80 ms Strong round-trip); 2048 updates on one
        // object ≈ 40 ms; 64 objects ≈ 80 ms ≈ the Strong RTT.
        ServiceCosts {
            base_ms: 2.8,
            per_update_ms: 0.018,
            per_object_ms: 1.25,
        }
    }
}

impl ServiceCosts {
    /// Service time of a transaction touching `objects` distinct objects
    /// with `updates` total updates.
    pub fn service_ms(&self, objects: usize, updates: usize) -> f64 {
        let extra_objects = objects.saturating_sub(1) as f64;
        let extra_updates = updates.saturating_sub(objects.max(1)) as f64;
        self.base_ms + extra_objects * self.per_object_ms + extra_updates * self.per_update_ms
    }
}

/// FIFO server queue for one region.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServerQueue {
    busy_until: SimTime,
    pub served: u64,
}

impl ServerQueue {
    pub fn new() -> Self {
        Self::default()
    }

    /// Serve a request arriving at `now` taking `service_ms`:
    /// returns the completion time.
    pub fn serve(&mut self, now: SimTime, service_ms: f64) -> SimTime {
        let start = self.busy_until.max(now);
        let done = start + SimTime::from_ms(service_ms);
        self.busy_until = done;
        self.served += 1;
        done
    }

    /// Current queueing delay for a request arriving at `now`.
    pub fn queue_delay_ms(&self, now: SimTime) -> f64 {
        self.busy_until.ms_since(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn costs_match_figure8_calibration() {
        let c = ServiceCosts::default();
        // One object, one update: the 28× point against an 80 ms RTT.
        let single = c.service_ms(1, 1);
        assert!((2.0..4.0).contains(&single), "{single}");
        assert!((80.0 / single) > 20.0 && (80.0 / single) < 40.0);
        // 2048 updates on one object ≈ 40 ms (paper: "still about 40ms").
        let big = c.service_ms(1, 2048);
        assert!((35.0..45.0).contains(&big), "{big}");
        // 64 objects ≈ Strong's 80 ms round-trip (the crossover).
        let wide = c.service_ms(64, 64);
        assert!((70.0..95.0).contains(&wide), "{wide}");
    }

    #[test]
    fn fifo_queueing() {
        let mut q = ServerQueue::new();
        let t0 = SimTime::from_ms(0.0);
        let d1 = q.serve(t0, 10.0);
        assert_eq!(d1.as_ms(), 10.0);
        // Second request at t=0 queues behind the first.
        let d2 = q.serve(t0, 10.0);
        assert_eq!(d2.as_ms(), 20.0);
        // A request after the queue drained starts immediately.
        let d3 = q.serve(SimTime::from_ms(50.0), 5.0);
        assert_eq!(d3.as_ms(), 55.0);
        assert_eq!(q.served, 3);
    }

    #[test]
    fn queue_delay_reporting() {
        let mut q = ServerQueue::new();
        q.serve(SimTime::ZERO, 30.0);
        assert_eq!(q.queue_delay_ms(SimTime::from_ms(10.0)), 20.0);
        assert_eq!(q.queue_delay_ms(SimTime::from_ms(40.0)), 0.0);
    }
}
