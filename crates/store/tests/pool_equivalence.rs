//! The persistent shard-worker pool is a dispatch choice, never a
//! semantic one: pool-applied batches must produce identical durable
//! logs, object state, and `ReplicaStats` deltas to the inline
//! single-shard apply path, under random batch shapes — including
//! batches below the dispatch threshold (which apply inline even with
//! the pool enabled) and pool shutdown/restart mid-stream (dispatch-mode
//! toggles tear workers down and respawn them lazily).

use ipa_crdt::{ObjectKind, ReplicaId, Val};
use ipa_store::{Replica, Transaction, UpdateBatch, PARALLEL_APPLY_MIN_UPDATES};
use proptest::prelude::*;
use std::sync::Arc;

/// Every object kind, cycled across the key space (mirrors the
/// shard-equivalence suite so the pool replays a mixed population).
const KINDS: [ObjectKind; 8] = [
    ObjectKind::AWSet,
    ObjectKind::RWSet,
    ObjectKind::AWMap,
    ObjectKind::PNCounter,
    ObjectKind::BCounter {
        floor: 0,
        initial: 10,
    },
    ObjectKind::LWW,
    ObjectKind::MV,
    ObjectKind::CompSet { capacity: 6 },
];

const NUM_KEYS: u8 = 16;

fn key_name(key: u8) -> String {
    format!("k{key}")
}

fn kind_of_key(key: u8) -> ObjectKind {
    KINDS[(key % 8) as usize]
}

/// One update against `key`'s kind; failures (bounded-counter floor,
/// compensation-set capacity) are legal no-ops.
fn apply_op(tx: &mut Transaction<'_>, key: u8, val: u8) {
    let name = key_name(key);
    let kind = kind_of_key(key);
    tx.ensure(name.as_str(), kind).unwrap();
    let v = Val::str(format!("v{val}"));
    match kind {
        ObjectKind::AWSet => {
            if val % 5 == 4 {
                tx.aw_remove(name.as_str(), &v).unwrap();
            } else {
                tx.aw_add(name.as_str(), v).unwrap();
            }
        }
        ObjectKind::RWSet => {
            if val % 5 == 4 {
                tx.rw_remove(name.as_str(), v).unwrap();
            } else {
                tx.rw_add(name.as_str(), v).unwrap();
            }
        }
        ObjectKind::AWMap => {
            if val % 5 == 4 {
                tx.map_remove(name.as_str(), &Val::str(format!("f{}", val % 3)))
                    .unwrap();
            } else {
                tx.map_put(name.as_str(), Val::str(format!("f{}", val % 3)), v)
                    .unwrap();
            }
        }
        ObjectKind::PNCounter => {
            tx.counter_add(name.as_str(), i64::from(val) - 7).unwrap();
        }
        ObjectKind::BCounter { .. } => {
            if val.is_multiple_of(3) {
                let _ = tx.bcounter_dec(name.as_str(), u64::from(val % 4));
            } else {
                tx.bcounter_inc(name.as_str(), u64::from(val % 4)).unwrap();
            }
        }
        ObjectKind::LWW => {
            tx.lww_write(name.as_str(), v).unwrap();
        }
        ObjectKind::MV => {
            tx.mv_write(name.as_str(), v).unwrap();
        }
        ObjectKind::CompSet { .. } => {
            let _ = tx.compset_add(name.as_str(), v);
        }
    }
}

/// Commit the op stream at a single-shard origin in `chunk`-sized
/// transactions (chunks past the dispatch threshold become the wide
/// batches the pool actually handles); return the replicated batches.
fn commit_stream(ops: &[(u8, u8)], chunk: usize) -> Vec<Arc<UpdateBatch>> {
    let mut origin = Replica::with_shards(ReplicaId(0), 1);
    for txn_ops in ops.chunks(chunk.max(1)) {
        let mut tx = origin.begin();
        for &(key, val) in txn_ops {
            apply_op(&mut tx, key % NUM_KEYS, val);
        }
        tx.commit();
    }
    origin.take_outbox()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn pool_apply_matches_the_inline_oracle(
        ops in prop::collection::vec(((0u8..NUM_KEYS), (0u8..=255)), 1..600),
        chunk in 1usize..600,
        toggles in prop::collection::vec(0u8..=1, 0..8),
    ) {
        let batches = commit_stream(&ops, chunk);
        prop_assert!(!batches.is_empty());

        // Oracle: inline single-shard apply — exactly the pre-pool path.
        let mut oracle = Replica::with_shards(ReplicaId(1), 1);
        for b in &batches {
            oracle.receive(Arc::clone(b));
        }

        // Pool replica: dispatch toggled mid-stream per the generated
        // schedule (false tears the worker pool down, true respawns it
        // lazily on the next wide batch), always re-enabled for the
        // remainder once the schedule runs out.
        let mut pooled = Replica::with_shards(ReplicaId(1), 4);
        pooled.set_parallel_apply(true);
        for (i, b) in batches.iter().enumerate() {
            if let Some(&t) = toggles.get(i) {
                let on = t == 1;
                pooled.set_parallel_apply(on);
                prop_assert!(on || !pooled.pool_active(),
                    "disabling dispatch must tear the pool down");
            }
            pooled.receive(Arc::clone(b));
        }
        pooled.set_parallel_apply(true);

        prop_assert_eq!(pooled.clock(), oracle.clock());
        prop_assert_eq!(pooled.object_count(), oracle.object_count());
        prop_assert!(pooled.applied_consistent());
        for key in 0..NUM_KEYS {
            let name = key_name(key);
            let k = name.as_str().into();
            prop_assert_eq!(pooled.object(&k), oracle.object(&k), "object {}", name);
            prop_assert_eq!(pooled.kind_of(&k), oracle.kind_of(&k), "kind {}", name);
        }
        // Durable logs are batch-for-batch identical.
        let (a, b) = (oracle.log_snapshot(), pooled.log_snapshot());
        prop_assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(&**x, &**y, "log divergence");
        }
        // ReplicaStats deltas are dispatch-invariant...
        prop_assert_eq!(pooled.stats.batches_received, oracle.stats.batches_received);
        prop_assert_eq!(pooled.stats.batches_applied, oracle.stats.batches_applied);
        prop_assert_eq!(pooled.stats.updates_applied, oracle.stats.updates_applied);
        prop_assert_eq!(pooled.stats.batches_quarantined, 0u64);
        // ...except the pool's own telemetry, which only ever counts
        // wide batches and one job per non-empty shard per batch.
        prop_assert!(oracle.stats.pool_batches == 0 && oracle.stats.pool_dispatches == 0);
        prop_assert!(pooled.stats.pool_batches <= batches.len() as u64);
        prop_assert!(pooled.stats.pool_dispatches >= pooled.stats.pool_batches);
        prop_assert!(
            pooled.stats.pool_dispatches <= pooled.stats.pool_batches * 4,
            "at most one job per shard per pool batch"
        );
    }
}

/// Deterministic teardown/respawn walk: the pool is lazy, dies with the
/// mode, and comes back on the next wide batch — with identical state
/// throughout.
#[test]
fn pool_shutdown_and_restart_mid_stream() {
    // Chunks of 2× the threshold: even after the ops that legally no-op
    // (bounded-counter floor, compensation-set capacity), each batch
    // lands well past `PARALLEL_APPLY_MIN_UPDATES` and dispatches.
    let wide: Vec<(u8, u8)> = (0..PARALLEL_APPLY_MIN_UPDATES as u16 * 4)
        .map(|i| ((i % u16::from(NUM_KEYS)) as u8, (i % 251) as u8))
        .collect();
    let batches = commit_stream(&wide, PARALLEL_APPLY_MIN_UPDATES * 2);
    assert!(batches.len() >= 2);
    assert!(batches
        .iter()
        .all(|b| b.updates.len() >= PARALLEL_APPLY_MIN_UPDATES));

    let mut oracle = Replica::with_shards(ReplicaId(1), 1);
    let mut pooled = Replica::with_shards(ReplicaId(1), 4);
    pooled.set_parallel_apply(true);
    assert!(!pooled.pool_active(), "pool spawn is lazy");

    oracle.receive(Arc::clone(&batches[0]));
    pooled.receive(Arc::clone(&batches[0]));
    assert!(pooled.pool_active(), "first wide batch spawns the workers");
    assert_eq!(pooled.stats.pool_batches, 1);

    pooled.set_parallel_apply(false);
    assert!(!pooled.pool_active(), "mode change joins the workers");

    pooled.set_parallel_apply(true);
    oracle.receive(Arc::clone(&batches[1]));
    pooled.receive(Arc::clone(&batches[1]));
    assert!(pooled.pool_active(), "respawned on the next wide batch");
    assert_eq!(pooled.stats.pool_batches, 2);

    assert_eq!(pooled.clock(), oracle.clock());
    assert_eq!(pooled.stats.updates_applied, oracle.stats.updates_applied);
    for key in 0..NUM_KEYS {
        let name = key_name(key);
        let k = name.as_str().into();
        assert_eq!(pooled.object(&k), oracle.object(&k), "object {name}");
    }
}
