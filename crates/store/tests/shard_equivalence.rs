//! Sharding is a local layout choice, never a semantic one: applying
//! the same batch stream to replicas with 1, 2, 4, or 8 shards (and
//! with the parallel apply path enabled) must produce identical
//! observable state, identical durable logs, and identical global
//! counters. The single-shard replica is the oracle — it is exactly the
//! pre-sharding data path.

use ipa_crdt::{ObjectKind, ReplicaId, Val};
use ipa_store::{Replica, Transaction, UpdateBatch};
use proptest::prelude::*;
use std::sync::Arc;

/// Every object kind, cycled across the key space so each shard count
/// splits a mixed population.
const KINDS: [ObjectKind; 8] = [
    ObjectKind::AWSet,
    ObjectKind::RWSet,
    ObjectKind::AWMap,
    ObjectKind::PNCounter,
    ObjectKind::BCounter {
        floor: 0,
        initial: 10,
    },
    ObjectKind::LWW,
    ObjectKind::MV,
    ObjectKind::CompSet { capacity: 6 },
];

const NUM_KEYS: u8 = 16;

fn key_name(key: u8) -> String {
    format!("k{key}")
}

fn kind_of_key(key: u8) -> ObjectKind {
    KINDS[(key % 8) as usize]
}

/// One update against `key`'s kind; failures (bounded-counter floor,
/// compensation-set capacity) are legal no-ops — the origin decides
/// what ends up in the batch, receivers only replay it.
fn apply_op(tx: &mut Transaction<'_>, key: u8, val: u8) {
    let name = key_name(key);
    let kind = kind_of_key(key);
    tx.ensure(name.as_str(), kind).unwrap();
    let v = Val::str(format!("v{val}"));
    match kind {
        ObjectKind::AWSet => {
            if val % 5 == 4 {
                tx.aw_remove(name.as_str(), &v).unwrap();
            } else {
                tx.aw_add(name.as_str(), v).unwrap();
            }
        }
        ObjectKind::RWSet => {
            if val % 5 == 4 {
                tx.rw_remove(name.as_str(), v).unwrap();
            } else {
                tx.rw_add(name.as_str(), v).unwrap();
            }
        }
        ObjectKind::AWMap => {
            if val % 5 == 4 {
                tx.map_remove(name.as_str(), &Val::str(format!("f{}", val % 3)))
                    .unwrap();
            } else {
                tx.map_put(name.as_str(), Val::str(format!("f{}", val % 3)), v)
                    .unwrap();
            }
        }
        ObjectKind::PNCounter => {
            tx.counter_add(name.as_str(), i64::from(val) - 7).unwrap();
        }
        ObjectKind::BCounter { .. } => {
            if val.is_multiple_of(3) {
                let _ = tx.bcounter_dec(name.as_str(), u64::from(val % 4));
            } else {
                tx.bcounter_inc(name.as_str(), u64::from(val % 4)).unwrap();
            }
        }
        ObjectKind::LWW => {
            tx.lww_write(name.as_str(), v).unwrap();
        }
        ObjectKind::MV => {
            tx.mv_write(name.as_str(), v).unwrap();
        }
        ObjectKind::CompSet { .. } => {
            let _ = tx.compset_add(name.as_str(), v);
        }
    }
}

/// Commit the op stream at a single-shard origin in `chunk`-sized
/// transactions; return the replicated batches.
fn commit_stream(ops: &[(u8, u8)], chunk: usize) -> Vec<Arc<UpdateBatch>> {
    let mut origin = Replica::with_shards(ReplicaId(0), 1);
    for txn_ops in ops.chunks(chunk.max(1)) {
        let mut tx = origin.begin();
        for &(key, val) in txn_ops {
            apply_op(&mut tx, key % NUM_KEYS, val);
        }
        tx.commit();
    }
    origin.take_outbox()
}

fn materialize(batches: &[Arc<UpdateBatch>], shards: usize, parallel: bool) -> Replica {
    let mut r = Replica::with_shards(ReplicaId(1), shards);
    r.set_parallel_apply(parallel);
    for b in batches {
        r.receive(Arc::clone(b));
    }
    r
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sharded_apply_matches_the_single_shard_oracle(
        ops in prop::collection::vec(((0u8..NUM_KEYS), (0u8..=255)), 1..300),
        chunk in 1usize..300,
    ) {
        let batches = commit_stream(&ops, chunk);
        prop_assert!(!batches.is_empty());

        let oracle = materialize(&batches, 1, false);
        for (shards, parallel) in [(2, false), (4, false), (8, false), (4, true), (8, true)] {
            let got = materialize(&batches, shards, parallel);
            prop_assert_eq!(got.shard_count(), shards);
            prop_assert_eq!(got.clock(), oracle.clock(), "clock ({shards} shards)");
            prop_assert_eq!(got.object_count(), oracle.object_count(),
                "object count ({} shards)", shards);
            prop_assert!(got.applied_consistent());
            for key in 0..NUM_KEYS {
                let name = key_name(key);
                let k = name.as_str().into();
                prop_assert_eq!(got.object(&k), oracle.object(&k),
                    "object {} ({} shards, parallel={})", name, shards, parallel);
                prop_assert_eq!(got.kind_of(&k), oracle.kind_of(&k),
                    "kind {} ({} shards)", name, shards);
            }
            // Durable logs are batch-for-batch identical.
            let (a, b) = (oracle.log_snapshot(), got.log_snapshot());
            prop_assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                prop_assert_eq!(&**x, &**y, "log divergence ({} shards)", shards);
            }
            // Global counters are shard-count- and path-invariant.
            let total = |r: &Replica| {
                r.shard_stats().iter().map(|s| s.updates_applied).sum::<u64>()
            };
            prop_assert_eq!(total(&got), total(&oracle));
            prop_assert_eq!(got.stats.batches_applied, oracle.stats.batches_applied);
        }
    }
}
