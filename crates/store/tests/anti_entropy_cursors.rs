//! Anti-entropy cursor coverage: the per-peer cursors (and the indexed
//! per-origin log segments underneath them) must never change *what* a
//! pull returns — only what it costs. Three hostile shapes:
//!
//! * a pull interrupted by a crash (the puller loses its buffered half
//!   and must be repaired by later cursor-carrying rounds),
//! * GC compacting a log prefix while a peer's cursor still points
//!   before it,
//! * a seeded property test comparing every cursor-based pull against a
//!   full-scan oracle over the application-order log snapshot — the
//!   exact set *and order* the legacy implementation returned.

use ipa_crdt::{ObjectKind, ReplicaId};
use ipa_store::{anti_entropy_round_with, AeCursors, Replica};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn r(i: u16) -> ReplicaId {
    ReplicaId(i)
}

fn commit_counter(replica: &mut Replica, key: &str, delta: i64) {
    let mut tx = replica.begin();
    tx.ensure(key, ObjectKind::PNCounter).unwrap();
    tx.counter_add(key, delta).unwrap();
    tx.commit();
}

fn converged(replicas: &[Replica]) -> bool {
    replicas
        .iter()
        .all(|x| x.clock() == replicas[0].clock() && x.pending_count() == 0)
}

#[test]
fn crash_mid_pull_recovers_through_later_rounds() {
    let mut replicas = vec![Replica::new(r(0)), Replica::new(r(1))];
    for i in 0..10 {
        commit_counter(&mut replicas[0], "c", i);
    }
    // The direct replication traffic is lost entirely (partition).
    replicas[0].take_outbox();

    // A pull starts: the source serves the full gap and the cursor
    // records it, but only the second half ever arrives — out of order,
    // so every delivered batch buffers as non-deliverable.
    let mut cursors = AeCursors::new();
    let since = replicas[1].clock().clone();
    let version = replicas[0].log_version();
    assert!(cursors.should_pull(r(1), r(0), &since, version));
    let missing = replicas[0].batches_since(&since);
    cursors.record(r(1), r(0), since, version, missing.is_empty());
    assert_eq!(missing.len(), 10);
    for b in &missing[5..] {
        assert_eq!(
            replicas[1].receive(Arc::clone(b)),
            0,
            "buffered, not applied"
        );
    }
    assert_eq!(replicas[1].pending_count(), 5);

    // Mid-pull crash: the buffered half is gone.
    replicas[1].crash();
    assert_eq!(replicas[1].pending_count(), 0);
    assert_eq!(replicas[1].clock().total(), 0);

    // Cursor-carrying rounds repair from the durable log: the crashed
    // puller's clock still says it has nothing, so the cursor must not
    // skip the pair.
    let applied = anti_entropy_round_with(&mut replicas, &mut cursors);
    assert_eq!(applied, 10, "restart pull re-serves the full gap");
    assert!(converged(&replicas));
    assert!(replicas[1].applied_consistent());
    // One more round discovers the drained state (it still probes);
    // after that the pair is skipped without touching the log.
    assert_eq!(anti_entropy_round_with(&mut replicas, &mut cursors), 0);
    let probes = replicas[0].stats.anti_entropy_scanned;
    assert_eq!(anti_entropy_round_with(&mut replicas, &mut cursors), 0);
    assert_eq!(
        replicas[0].stats.anti_entropy_scanned, probes,
        "drained round skipped the pull without probing the log"
    );
}

#[test]
fn gc_compaction_before_the_cursor_is_crossed_safely() {
    let ids = [r(0), r(1), r(2)];
    let mut replicas: Vec<Replica> = ids.iter().map(|&i| Replica::new(i)).collect();
    let mut cursors = AeCursors::new();

    // Replica 0 commits a burst; everyone syncs, then acknowledges with
    // a commit of their own (whose clock therefore covers the burst) and
    // syncs again — advancing the stability frontier past the burst.
    // Direct traffic is dropped throughout; cursors drive the exchange.
    for i in 0..5 {
        commit_counter(&mut replicas[0], "c", i);
    }
    replicas[0].take_outbox();
    while anti_entropy_round_with(&mut replicas, &mut cursors) > 0 {}
    commit_counter(&mut replicas[1], "ack1", 1);
    commit_counter(&mut replicas[2], "ack2", 1);
    replicas[1].take_outbox();
    replicas[2].take_outbox();
    while anti_entropy_round_with(&mut replicas, &mut cursors) > 0 {}
    assert!(converged(&replicas));

    // Compact: the synced burst is causally stable everywhere.
    let before = replicas[0].log_len();
    for x in replicas.iter_mut() {
        x.run_gc(&ids);
    }
    assert!(
        replicas[0].log_len() < before,
        "stable prefix compacted: {} -> {}",
        before,
        replicas[0].log_len()
    );

    // New commits after compaction: peers' cursors predate the
    // compaction (their recorded log version is stale), and the seek
    // must serve exactly the new tail from the shortened segments.
    for i in 0..3 {
        commit_counter(&mut replicas[0], "c", 100 + i);
    }
    replicas[0].take_outbox();
    let base = replicas[1].stats.batches_received;
    let applied = anti_entropy_round_with(&mut replicas, &mut cursors);
    assert_eq!(applied, 6, "both peers pulled exactly the 3 new batches");
    assert_eq!(
        replicas[1].stats.batches_received - base,
        3,
        "no compacted batch was re-sent"
    );
    while anti_entropy_round_with(&mut replicas, &mut cursors) > 0 {}
    assert!(converged(&replicas));
    for x in &replicas {
        assert!(x.applied_consistent());
    }
}

/// Full-scan oracle: what the legacy implementation returned for a pull
/// — every logged batch whose origin sequence exceeds the requester's
/// clock, in application order.
fn full_scan_oracle(src: &Replica, since: &ipa_crdt::VClock) -> Vec<(ReplicaId, u64)> {
    src.log_snapshot()
        .iter()
        .filter(|b| b.clock.get(b.origin) > since.get(b.origin))
        .map(|b| (b.origin, b.seq))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Across seeds: interleaved commits, lossy direct delivery, and
    /// occasional GC; every cursor-based pull must return exactly the
    /// sequence the full-scan oracle computes, every cursor skip must
    /// coincide with an empty oracle, and the cluster must converge.
    #[test]
    fn cursor_pulls_deliver_exactly_the_full_scan_set(seed in 0u64..5_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ids = [r(0), r(1), r(2)];
        let mut replicas: Vec<Replica> = ids.iter().map(|&i| Replica::new(i)).collect();
        for step in 0..40 {
            let who = rng.gen_range(0..replicas.len());
            commit_counter(&mut replicas[who], "c", step);
            for b in replicas[who].take_outbox() {
                for (dst, replica) in replicas.iter_mut().enumerate() {
                    // 40% of direct deliveries are dropped.
                    if dst != who && rng.gen_bool(0.6) {
                        replica.receive(Arc::clone(&b));
                    }
                }
            }
            if rng.gen_bool(0.15) {
                let gc = rng.gen_range(0..replicas.len());
                replicas[gc].run_gc(&ids);
            }
        }

        // Cursor-driven repair to fixpoint, checking every pull (and
        // every skip) against the oracle.
        let mut cursors = AeCursors::new();
        loop {
            let mut applied = 0;
            for dst in 0..replicas.len() {
                for src in 0..replicas.len() {
                    if src == dst {
                        continue;
                    }
                    let since = replicas[dst].clock().clone();
                    let version = replicas[src].log_version();
                    let expected = full_scan_oracle(&replicas[src], &since);
                    let (d, s) = (replicas[dst].id(), replicas[src].id());
                    if cursors.should_pull(d, s, &since, version) {
                        let pulled = replicas[src].batches_since(&since);
                        let got: Vec<(ReplicaId, u64)> =
                            pulled.iter().map(|b| (b.origin, b.seq)).collect();
                        prop_assert_eq!(&got, &expected, "pull != full scan (seed {})", seed);
                        cursors.record(d, s, since, version, got.is_empty());
                        for b in pulled {
                            applied += replicas[dst].receive(b);
                        }
                    } else {
                        prop_assert!(
                            expected.is_empty(),
                            "cursor skipped a pair the oracle says has {} batches (seed {})",
                            expected.len(),
                            seed
                        );
                    }
                }
            }
            if applied == 0 {
                break;
            }
        }
        prop_assert!(converged(&replicas), "seed {} did not converge", seed);
        for x in &replicas {
            prop_assert!(x.applied_consistent());
        }
    }
}
