//! End-to-end store properties: replicas converge under arbitrary
//! interleavings of commits and deliveries, and causal order is never
//! violated.

use ipa_crdt::{ObjectKind, ReplicaId, Val, ValPattern};
use ipa_store::{Replica, UpdateBatch};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use std::sync::Arc;

#[derive(Clone, Debug)]
enum Step {
    /// Replica commits a transaction doing one of a few update shapes.
    Commit { replica: u8, shape: u8, item: u8 },
    /// Deliver one queued batch to a replica (if any).
    Deliver { to: u8 },
    /// Deliver everything everywhere.
    Flush,
}

fn arb_steps() -> impl Strategy<Value = Vec<Step>> {
    let step = prop_oneof![
        ((0u8..3), (0u8..5), (0u8..4)).prop_map(|(replica, shape, item)| Step::Commit {
            replica,
            shape,
            item
        }),
        (0u8..3).prop_map(|to| Step::Deliver { to }),
        Just(Step::Flush),
    ];
    prop::collection::vec(step, 1..40)
}

struct Net {
    replicas: Vec<Replica>,
    /// Per-destination queues of undelivered batches (payload shared).
    queues: Vec<Vec<Arc<UpdateBatch>>>,
}

impl Net {
    fn new(n: u16) -> Net {
        Net {
            replicas: (0..n).map(|i| Replica::new(ReplicaId(i))).collect(),
            queues: (0..n).map(|_| Vec::new()).collect(),
        }
    }

    fn pump_outboxes(&mut self) {
        let n = self.replicas.len();
        for i in 0..n {
            for b in self.replicas[i].take_outbox() {
                for (j, q) in self.queues.iter_mut().enumerate() {
                    if j != i {
                        q.push(b.clone());
                    }
                }
            }
        }
    }

    fn deliver_one(&mut self, to: usize, rng: &mut StdRng) {
        self.pump_outboxes();
        if self.queues[to].is_empty() {
            return;
        }
        let idx = rng.gen_range(0..self.queues[to].len());
        let b = self.queues[to].swap_remove(idx);
        self.replicas[to].receive(b);
    }

    fn flush(&mut self) {
        loop {
            self.pump_outboxes();
            let mut moved = false;
            for to in 0..self.replicas.len() {
                for b in std::mem::take(&mut self.queues[to]) {
                    self.replicas[to].receive(b);
                    moved = true;
                }
            }
            if !moved {
                break;
            }
        }
    }
}

fn run_commit(r: &mut Replica, shape: u8, item: u8) {
    let v = Val::str(format!("e{item}"));
    let pair = Val::pair(format!("p{item}"), format!("t{}", item % 2));
    let mut tx = r.begin();
    tx.ensure("aw", ObjectKind::AWSet).unwrap();
    tx.ensure("rw", ObjectKind::RWSet).unwrap();
    tx.ensure("cnt", ObjectKind::PNCounter).unwrap();
    match shape {
        0 => tx.aw_add("aw", v).unwrap(),
        1 => tx.aw_remove("aw", &v).unwrap(),
        2 => tx.rw_add("rw", pair).unwrap(),
        3 => tx
            .rw_remove_matching(
                "rw",
                ValPattern::pair(ValPattern::Any, ValPattern::exact(format!("t{}", item % 2))),
            )
            .unwrap(),
        _ => tx.counter_add("cnt", i64::from(item) - 1).unwrap(),
    }
    tx.commit();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn replicas_converge_after_flush(steps in arb_steps(), seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = Net::new(3);
        for step in &steps {
            match step {
                Step::Commit { replica, shape, item } => {
                    run_commit(&mut net.replicas[*replica as usize % 3], *shape, *item);
                }
                Step::Deliver { to } => net.deliver_one(*to as usize % 3, &mut rng),
                Step::Flush => net.flush(),
            }
        }
        net.flush();
        // All replicas reached the same clock, nothing pending.
        let c0 = net.replicas[0].clock().clone();
        for r in &net.replicas {
            prop_assert_eq!(r.clock(), &c0);
            prop_assert_eq!(r.pending_count(), 0);
        }
        // Observable state converged. An absent object is equivalent to an
        // empty one (objects ensured but never written replicate lazily).
        for key in ["aw", "rw"] {
            let read = |r: &Replica| -> Vec<Val> {
                r.object(&key.into())
                    .map(|o| match key {
                        "aw" => o.as_awset().unwrap().elements().cloned().collect(),
                        _ => o.as_rwset().unwrap().elements().cloned().collect(),
                    })
                    .unwrap_or_default()
            };
            let base = read(&net.replicas[0]);
            for r in &net.replicas[1..] {
                prop_assert_eq!(read(r), base.clone(), "divergence on {}", key);
            }
        }
        let cnt = |r: &Replica| -> i64 {
            r.object(&"cnt".into()).map(|o| o.as_pncounter().unwrap().value()).unwrap_or(0)
        };
        let cnt0 = cnt(&net.replicas[0]);
        for r in &net.replicas[1..] {
            prop_assert_eq!(cnt(r), cnt0);
        }
    }

    #[test]
    fn gc_preserves_observable_state(steps in arb_steps()) {
        let mut net = Net::new(3);
        for step in &steps {
            if let Step::Commit { replica, shape, item } = step {
                run_commit(&mut net.replicas[*replica as usize % 3], *shape, *item);
            }
        }
        net.flush();
        let ids: Vec<ReplicaId> = net.replicas.iter().map(|r| r.id()).collect();
        let before: Option<Vec<Val>> = net.replicas[0]
            .object(&"rw".into())
            .map(|o| o.as_rwset().unwrap().elements().cloned().collect());
        for r in &mut net.replicas {
            r.run_gc(&ids);
        }
        let after: Option<Vec<Val>> = net.replicas[0]
            .object(&"rw".into())
            .map(|o| o.as_rwset().unwrap().elements().cloned().collect());
        prop_assert_eq!(before, after, "GC must not change observable membership");
    }
}
