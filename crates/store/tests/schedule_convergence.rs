//! Store-level schedule exploration: for **every** `ObjectKind`, a
//! cluster whose traffic is delivered under a hostile seeded schedule —
//! random reordering, drops, duplicates — must converge to the same
//! observable state it reaches under benign delivery, and no batch may
//! ever double-apply.

use ipa_crdt::{ObjectKind, ReplicaId, Val};
use ipa_store::{Cluster, DeliveryFaults, Schedule};

const KINDS: &[ObjectKind] = &[
    ObjectKind::AWSet,
    ObjectKind::RWSet,
    ObjectKind::AWMap,
    ObjectKind::PNCounter,
    ObjectKind::BCounter {
        floor: 0,
        initial: 50,
    },
    ObjectKind::LWW,
    ObjectKind::MV,
    ObjectKind::CompSet { capacity: 3 },
];

fn kind_name(kind: ObjectKind) -> &'static str {
    match kind {
        ObjectKind::AWSet => "awset",
        ObjectKind::RWSet => "rwset",
        ObjectKind::AWMap => "awmap",
        ObjectKind::PNCounter => "pncounter",
        ObjectKind::BCounter { .. } => "bcounter",
        ObjectKind::LWW => "lww",
        ObjectKind::MV => "mv",
        ObjectKind::CompSet { .. } => "compset",
    }
}

/// One round of writes for `kind` at replica `r`. `phase` 0 populates,
/// phase 1 mixes removals/overwrites so concurrent conflict resolution
/// is actually exercised.
fn commit_round(cluster: &mut Cluster, kind: ObjectKind, r: u16, phase: usize) {
    let key = kind_name(kind);
    let replica = cluster.replica_mut(ReplicaId(r));
    let mut tx = replica.begin();
    tx.ensure(key, kind).unwrap();
    for i in 0..3u16 {
        let elem = Val::str(format!("e{i}"));
        match (kind, phase) {
            (ObjectKind::AWSet, 0) => tx.aw_add(key, Val::str(format!("e{r}-{i}"))).unwrap(),
            (ObjectKind::AWSet, _) => {
                // Re-add a shared element at some replicas, remove it at
                // others: add-wins must decide identically everywhere.
                if r == 0 {
                    tx.aw_remove(key, &elem).unwrap()
                } else {
                    tx.aw_add(key, elem).unwrap()
                }
            }
            (ObjectKind::RWSet, 0) => tx.rw_add(key, Val::pair(format!("p{r}"), "t")).unwrap(),
            (ObjectKind::RWSet, _) => {
                if r == 0 {
                    tx.rw_remove(key, Val::pair(format!("p{}", (r + 1) % 3), "t"))
                        .unwrap()
                } else {
                    tx.rw_add(key, Val::pair(format!("p{r}"), "t")).unwrap()
                }
            }
            (ObjectKind::AWMap, 0) => tx
                .map_put(key, elem, Val::str(format!("payload-{r}-{i}")))
                .unwrap(),
            (ObjectKind::AWMap, _) => {
                if r == 0 {
                    tx.map_remove(key, &elem).unwrap()
                } else {
                    tx.map_touch(key, elem).unwrap()
                }
            }
            (ObjectKind::PNCounter, _) => tx
                .counter_add(key, i64::from(r) + i64::from(i) - 2)
                .unwrap(),
            (ObjectKind::BCounter { .. }, 0) => tx.bcounter_inc(key, u64::from(r) + 1).unwrap(),
            (ObjectKind::BCounter { .. }, _) => {
                // Rights start at replica 0 (creation owner).
                if r == 0 {
                    tx.bcounter_dec(key, 1).unwrap()
                } else {
                    tx.bcounter_inc(key, 1).unwrap()
                }
            }
            (ObjectKind::LWW, _) => tx
                .lww_write(key, Val::str(format!("w{phase}-{r}-{i}")))
                .unwrap(),
            (ObjectKind::MV, _) => tx
                .mv_write(key, Val::str(format!("w{phase}-{r}-{i}")))
                .unwrap(),
            (ObjectKind::CompSet { .. }, _) => tx
                .compset_add(key, Val::str(format!("u{phase}-{r}-{i}")))
                .unwrap(),
        }
    }
    tx.commit();
}

/// Deterministic projection of the observable state of `kind` at one
/// replica (state internals like entry order may legitimately differ).
fn observe(cluster: &Cluster, kind: ObjectKind, r: u16) -> String {
    let key = kind_name(kind);
    let obj = cluster
        .replica(ReplicaId(r))
        .object(&key.into())
        .unwrap_or_else(|| panic!("replica {r} never materialized {key}"));
    match kind {
        ObjectKind::AWSet => {
            let mut e: Vec<String> = obj
                .as_awset()
                .unwrap()
                .elements()
                .map(|v| format!("{v:?}"))
                .collect();
            e.sort();
            format!("{e:?}")
        }
        ObjectKind::RWSet => {
            let mut e: Vec<String> = obj
                .as_rwset()
                .unwrap()
                .elements()
                .map(|v| format!("{v:?}"))
                .collect();
            e.sort();
            format!("{e:?}")
        }
        ObjectKind::AWMap => {
            let m = obj.as_awmap().unwrap();
            let mut e: Vec<String> = m.keys().map(|k| format!("{k:?}={:?}", m.get(k))).collect();
            e.sort();
            format!("{e:?}")
        }
        ObjectKind::PNCounter => obj.as_pncounter().unwrap().value().to_string(),
        ObjectKind::BCounter { .. } => obj.as_bcounter().unwrap().value().to_string(),
        ObjectKind::LWW => format!("{:?}", obj.as_lww().unwrap().get()),
        ObjectKind::MV => {
            let mut e: Vec<String> = obj
                .as_mv()
                .unwrap()
                .values()
                .map(|v| format!("{v:?}"))
                .collect();
            e.sort();
            format!("{e:?}")
        }
        ObjectKind::CompSet { .. } => {
            // Probe a clone: `read` runs the compensation, which must
            // resolve identically at every converged replica.
            let mut probe = obj.as_compset().unwrap().clone();
            let read = probe.read();
            let mut e: Vec<String> = read.elements.iter().map(|v| format!("{v:?}")).collect();
            e.sort();
            let mut c: Vec<String> = read.cancelled.iter().map(|v| format!("{v:?}")).collect();
            c.sort();
            format!("kept={e:?} cancelled={c:?}")
        }
    }
}

/// Build the workload for one kind: populate, replicate benignly, then a
/// conflicting round left undelivered (the hostile schedule's payload).
fn build(kind: ObjectKind) -> Cluster {
    let mut cluster = Cluster::new(3);
    for r in 0..3 {
        commit_round(&mut cluster, kind, r, 0);
    }
    cluster.sync();
    for r in 0..3 {
        commit_round(&mut cluster, kind, r, 1);
    }
    cluster
}

#[test]
fn every_object_kind_converges_under_hostile_schedules() {
    for &kind in KINDS {
        // Benign reference outcome.
        let mut reference = build(kind);
        reference.sync();
        let expected = observe(&reference, kind, 0);

        for seed in [1u64, 7, 42, 1337] {
            let mut cluster = build(kind);
            let faults = DeliveryFaults {
                drop_p: 0.25,
                dup_p: 0.25,
            };
            let report = Schedule::from_seed(seed).run(&mut cluster, faults);
            assert!(
                cluster.converged(),
                "{}/seed {seed}: cluster did not converge ({report:?})",
                kind_name(kind)
            );
            for r in 0..3u16 {
                assert_eq!(
                    observe(&cluster, kind, r),
                    expected,
                    "{}/seed {seed}: replica {r} diverged from the benign outcome",
                    kind_name(kind)
                );
                assert!(
                    cluster.replica(ReplicaId(r)).applied_consistent(),
                    "{}/seed {seed}: replica {r} double-applied a batch",
                    kind_name(kind)
                );
            }
        }
    }
}

#[test]
fn hostile_schedules_replay_from_seed() {
    for &kind in KINDS {
        let faults = DeliveryFaults {
            drop_p: 0.3,
            dup_p: 0.2,
        };
        let a = Schedule::from_seed(99).run(&mut build(kind), faults);
        let b = Schedule::from_seed(99).run(&mut build(kind), faults);
        assert_eq!(
            a,
            b,
            "{}: same seed must replay the identical schedule",
            kind_name(kind)
        );
    }
}
