//! The **Transport/Node** abstraction — the contract between the
//! invariant machinery and the delivery substrate.
//!
//! Everything above this module (CRDT semantics, causal delivery,
//! anti-entropy repair, the oracle suite) is a pure function of *which
//! batches reach which replica in which order*. This module names that
//! boundary: a [`Node`] is a replica actor that owns its store shard,
//! and a [`Transport`] moves committed [`crate::UpdateBatch`]es between
//! nodes, injects partitions and crashes, and drives anti-entropy
//! repair. See `ARCHITECTURE.md` for the full layer map and the
//! determinism guarantees each implementation must (and need not)
//! provide.
//!
//! Three implementations exist:
//!
//! * [`crate::Cluster`] — synchronous, zero-latency, single-threaded;
//!   the unit-test harness.
//! * `ipa_sim::Simulation` — the deterministic discrete-event
//!   simulator: virtual time, seeded latency/jitter, a nemesis, and
//!   bit-reproducible schedule digests.
//! * [`crate::ThreadedCluster`] — real `std::thread` replicas and
//!   channels: wall-clock races, no determinism, no digests; the
//!   oracle suite is checked at quiescence instead.

use crate::replica::{AeCursors, Replica};
use ipa_crdt::{ReplicaId, VClock};

/// Per-peer **in-flight send window**: the causal frontier already
/// promised to a destination by sends that have not yet arrived.
///
/// Without it, a periodic anti-entropy round re-pulls every batch whose
/// delivery is still in flight (the destination's applied clock has not
/// advanced yet), re-sending the same payloads once per round until the
/// first copy lands. The window closes that hole: each entry records a
/// clock the destination is promised to reach and the transport time at
/// which the promise expires (the scheduled arrival). Anti-entropy
/// computes its `since` frontier as the applied clock joined with every
/// unexpired promise — plus the batches the destination already holds
/// buffered awaiting causal predecessors — so in-flight and buffered
/// batches are sent exactly once.
///
/// Expired entries are pruned lazily: once the arrival time has passed,
/// either the batch applied (the clock caught up) or it was lost
/// (refused by a down replica, dropped plan-side) — in both cases
/// anti-entropy must fall back to the authoritative applied clock.
/// Crashes clear the window wholesale: a crashed node loses its
/// volatile state, so stale promises must not mask the re-pull.
///
/// ## Two promise granularities
///
/// A promise is only as good as the causal delivery behind it, so the
/// window distinguishes:
///
/// * **Bursts** ([`InFlightWindow::note_burst`]) — an anti-entropy send
///   of *everything* the destination is missing from one source log.
///   Bursts are causally self-contained (every predecessor of a logged
///   batch is applied, in the burst, or promised earlier), so the burst
///   clock join is a sound frontier.
/// * **Singles** ([`InFlightWindow::note_single`]) — one client-
///   replication batch `(origin, seq)` traveling alone. Its causal
///   predecessors may have been dropped or refused, so a single only
///   advances the frontier *contiguously*: `since[origin]` moves from
///   `k` to `k+1` only when `(origin, k+1)` itself is promised. A hole
///   (a dropped batch) stops the advance exactly there, keeping the
///   dropped batch eligible for repair while later in-flight batches
///   are still not re-sent.
#[derive(Clone, Debug, Default)]
pub struct InFlightWindow {
    /// `(promised clock, expiry in transport-time µs)` per outstanding
    /// anti-entropy burst.
    bursts: Vec<(VClock, u64)>,
    /// `(origin, seq, expiry in transport-time µs)` per outstanding
    /// single-batch send.
    singles: Vec<(ReplicaId, u64, u64)>,
}

impl InFlightWindow {
    pub fn new() -> InFlightWindow {
        InFlightWindow::default()
    }

    /// Record an anti-entropy send burst promising `clock` by transport
    /// time `expiry_us` (the scheduled arrival of its last batch).
    pub fn note_burst(&mut self, clock: VClock, expiry_us: u64) {
        self.bursts.push((clock, expiry_us));
    }

    /// Record one in-flight client-replication batch `(origin, seq)`
    /// arriving by transport time `expiry_us`.
    pub fn note_single(&mut self, origin: ReplicaId, seq: u64, expiry_us: u64) {
        self.singles.push((origin, seq, expiry_us));
    }

    /// The effective anti-entropy frontier at `now_us`: `base` (the
    /// applied clock) joined with every unexpired burst promise, then
    /// advanced per-origin through *contiguous* unexpired single
    /// promises. Prunes expired entries as a side effect.
    pub fn effective_since(&mut self, base: &VClock, now_us: u64) -> VClock {
        self.effective_since_with(base, now_us, &[])
    }

    /// [`InFlightWindow::effective_since`] with additional `present`
    /// batches: `(origin, seq)` pairs the node already *holds* (its
    /// causal pending buffer). Present batches advance the frontier
    /// under the same contiguity rule as single promises — they apply
    /// the moment their predecessors arrive, so re-shipping them is
    /// pure waste, but a hole before them must stay visible so
    /// anti-entropy repairs the predecessor, not the buffered batch.
    pub fn effective_since_with(
        &mut self,
        base: &VClock,
        now_us: u64,
        present: &[(ReplicaId, u64)],
    ) -> VClock {
        self.bursts.retain(|&(_, expiry)| expiry > now_us);
        self.singles.retain(|&(_, _, expiry)| expiry > now_us);
        let mut since = base.clone();
        for (clock, _) in &self.bursts {
            since.merge(clock);
        }
        let mut progressed = true;
        while progressed {
            progressed = false;
            for &(origin, seq, _) in &self.singles {
                if seq == since.get(origin) + 1 {
                    since.set(origin, seq);
                    progressed = true;
                }
            }
            for &(origin, seq) in present {
                if seq == since.get(origin) + 1 {
                    since.set(origin, seq);
                    progressed = true;
                }
            }
        }
        since
    }

    /// Drop every promise (crash recovery: volatile deliveries are
    /// gone, anti-entropy must re-pull from the applied clock).
    pub fn clear(&mut self) {
        self.bursts.clear();
        self.singles.clear();
    }

    /// Number of outstanding promises (observability).
    pub fn len(&self) -> usize {
        self.bursts.len() + self.singles.len()
    }

    pub fn is_empty(&self) -> bool {
        self.bursts.is_empty() && self.singles.is_empty()
    }
}

/// A replica **actor**: the store shard plus the transport-facing state
/// every implementation needs — the crash flag and the in-flight
/// anti-entropy window. Transports own a `Vec<Node>` (or a sharded,
/// locked equivalent) and route every delivery through
/// [`Replica::receive`]; nothing else touches the shard.
#[derive(Debug)]
pub struct Node {
    replica: Replica,
    down: bool,
    inflight: InFlightWindow,
}

impl Node {
    pub fn new(id: ReplicaId) -> Node {
        Node {
            replica: Replica::new(id),
            down: false,
            inflight: InFlightWindow::new(),
        }
    }

    /// A node whose replica uses an explicit shard count (see
    /// [`Replica::with_shards`]).
    pub fn with_shards(id: ReplicaId, shards: usize) -> Node {
        Node {
            replica: Replica::with_shards(id, shards),
            down: false,
            inflight: InFlightWindow::new(),
        }
    }

    pub fn id(&self) -> ReplicaId {
        self.replica.id()
    }

    /// The store shard this actor owns.
    pub fn replica(&self) -> &Replica {
        &self.replica
    }

    pub fn replica_mut(&mut self) -> &mut Replica {
        &mut self.replica
    }

    /// Is the node currently crashed (refusing traffic)?
    pub fn is_down(&self) -> bool {
        self.down
    }

    /// Crash the actor: volatile replica state (outbox, pending causal
    /// buffer) is lost, in-flight promises are voided, and the node
    /// refuses traffic until [`Node::restart`]. Returns the number of
    /// batches lost, mirroring [`Replica::crash`].
    pub fn crash(&mut self) -> usize {
        self.down = true;
        self.inflight.clear();
        self.replica.crash()
    }

    /// Bring a crashed actor back. Durable state (objects, clocks, the
    /// applied-batch log) survived; catch-up happens through
    /// anti-entropy.
    pub fn restart(&mut self) {
        self.down = false;
    }

    /// The anti-entropy `since` frontier at transport time `now_us`:
    /// the applied clock joined with every unexpired in-flight promise
    /// (see [`InFlightWindow`]).
    pub fn ae_since(&mut self, now_us: u64) -> VClock {
        // Split borrows: the window mutates (expiry pruning) while the
        // replica only lends its clock and pending index.
        let Node {
            replica, inflight, ..
        } = self;
        inflight.effective_since_with(replica.clock(), now_us, replica.pending_ids())
    }

    /// Promise this node an anti-entropy burst reaching `clock` by
    /// transport time `expiry_us` (see [`InFlightWindow::note_burst`]).
    pub fn note_inflight_burst(&mut self, clock: VClock, expiry_us: u64) {
        self.inflight.note_burst(clock, expiry_us);
    }

    /// Promise this node the single batch `(origin, seq)` by transport
    /// time `expiry_us` (see [`InFlightWindow::note_single`]).
    pub fn note_inflight_single(&mut self, origin: ReplicaId, seq: u64, expiry_us: u64) {
        self.inflight.note_single(origin, seq, expiry_us);
    }

    /// Outstanding in-flight promises (observability).
    pub fn inflight_len(&self) -> usize {
        self.inflight.len()
    }
}

/// The pluggable replication substrate: batch fan-out, anti-entropy
/// pull, and partition/crash fault signals over a fixed set of
/// [`Node`]s.
///
/// ## Contract
///
/// Every implementation must provide:
///
/// * **Causal delivery feed** — every batch handed to a node goes
///   through [`Replica::receive`], which buffers until causal
///   predecessors arrive and deduplicates redeliveries. The transport
///   may therefore drop, duplicate, delay, and reorder freely.
/// * **Durable-log repair** — [`Transport::anti_entropy`] moves batches
///   a node is missing from some peer's durable log, and repeated
///   rounds converge the cluster as long as every batch survives in at
///   least one log ([`Transport::quiesce_transport`] runs them to the
///   fixpoint).
/// * **Fault signals** — [`Transport::set_link`] makes a pair
///   unreachable in both directions until healed;
///   [`Transport::crash`]/[`Transport::restart`] lose a node's volatile
///   state and refuse its traffic while down.
///
/// Implementations explicitly need **not** provide determinism: the
/// discrete-event sim guarantees bit-reproducible schedules (and pins
/// them with digests), while [`crate::ThreadedCluster`] races real
/// threads and promises only the contract above. Harnesses that work
/// over any `Transport` must therefore check *quiescent* properties
/// (convergence, invariants, idempotence, bounded liveness), never
/// schedules.
pub trait Transport {
    /// Number of nodes (ids are `0..node_count`).
    fn node_count(&self) -> usize;

    /// Run `f` with exclusive access to a node's replica. This is the
    /// only way through to a shard: single-threaded transports hand out
    /// the replica directly, the threaded transport locks the shard for
    /// the duration of `f` (serialization is per transaction/batch, not
    /// lock-free).
    fn with_node<R>(&mut self, node: ReplicaId, f: impl FnOnce(&mut Replica) -> R) -> R;

    /// Drain `node`'s outbox and move every committed batch toward all
    /// peers, subject to the transport's latency, partition, and fault
    /// model. Call after commits made through [`Transport::with_node`].
    fn ship(&mut self, node: ReplicaId);

    /// Cut (`up = false`) or heal (`up = true`) the pair's link in both
    /// directions. While cut, sends between the pair are lost or
    /// stalled (implementation-specific) and anti-entropy skips the
    /// pair; repair flows through third parties or after the heal.
    fn set_link(&mut self, a: ReplicaId, b: ReplicaId, up: bool);

    /// Crash a node (see [`Node::crash`]): volatile state lost, traffic
    /// refused until [`Transport::restart`].
    fn crash(&mut self, node: ReplicaId);

    /// Restart a crashed node; catch-up happens through anti-entropy.
    fn restart(&mut self, node: ReplicaId);

    /// One synchronous anti-entropy round: every live node pulls what
    /// it is missing from every live, reachable peer's durable log.
    /// Returns the number of batches applied cluster-wide.
    fn anti_entropy(&mut self) -> usize;

    /// Drive replication to quiescence: restart every crashed node,
    /// deliver or void everything outstanding, and run anti-entropy to
    /// its fixpoint. Returns the number of *productive* rounds the
    /// fixpoint needed — the bounded-liveness oracle's input.
    fn quiesce_transport(&mut self) -> u64;

    /// Are all nodes converged (equal clocks, nothing buffered)?
    /// Meaningful after [`Transport::quiesce_transport`].
    fn converged(&mut self) -> bool;
}

/// One pairwise anti-entropy round over a node set: every live node
/// pulls the batches it is missing from every live peer's durable log
/// (the [`Node`]-level analog of [`crate::anti_entropy_round_with`];
/// down nodes neither pull nor serve). Returns the number of batches
/// applied.
pub fn anti_entropy_round_nodes(nodes: &mut [Node], cursors: &mut AeCursors) -> usize {
    anti_entropy_round_nodes_with_links(nodes, cursors, |_, _| true)
}

/// [`anti_entropy_round_nodes`] restricted to reachable pairs:
/// `link_up(src, dst)` gates each pull (partition-aware transports pass
/// their link matrix).
pub fn anti_entropy_round_nodes_with_links(
    nodes: &mut [Node],
    cursors: &mut AeCursors,
    link_up: impl Fn(ReplicaId, ReplicaId) -> bool,
) -> usize {
    let mut applied = 0;
    let n = nodes.len();
    for dst in 0..n {
        if nodes[dst].is_down() {
            continue;
        }
        for src in 0..n {
            if src == dst || nodes[src].is_down() {
                continue;
            }
            if !link_up(nodes[src].id(), nodes[dst].id()) {
                continue;
            }
            let (d, s) = (nodes[dst].id(), nodes[src].id());
            let version = nodes[src].replica().log_version();
            let since = nodes[dst].replica().clock().clone();
            if !cursors.should_pull(d, s, &since, version) {
                continue;
            }
            let missing = nodes[src].replica_mut().batches_since(&since);
            cursors.record(d, s, since, version, missing.is_empty());
            for b in missing {
                applied += nodes[dst].replica_mut().receive(b);
            }
        }
    }
    applied
}

/// Run [`anti_entropy_round_nodes`] to a fixpoint; returns the number
/// of productive rounds (rounds that applied at least one batch).
pub fn anti_entropy_fixpoint_nodes(nodes: &mut [Node], cursors: &mut AeCursors) -> u64 {
    let mut rounds = 0;
    while anti_entropy_round_nodes(nodes, cursors) > 0 {
        rounds += 1;
    }
    rounds
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipa_crdt::{ObjectKind, Val};

    fn clock(entries: &[(u16, u64)]) -> VClock {
        let mut c = VClock::new();
        for &(r, v) in entries {
            c.set(ReplicaId(r), v);
        }
        c
    }

    #[test]
    fn window_joins_unexpired_promises_and_prunes_expired() {
        let mut w = InFlightWindow::new();
        w.note_burst(clock(&[(0, 3)]), 100);
        w.note_burst(clock(&[(1, 2)]), 200);
        let base = clock(&[(0, 1), (1, 1)]);
        // Both promises live at t=50.
        assert_eq!(w.effective_since(&base, 50), clock(&[(0, 3), (1, 2)]));
        // At t=100 the first promise has expired (arrival time reached).
        assert_eq!(w.effective_since(&base, 100), clock(&[(0, 1), (1, 2)]));
        assert_eq!(w.len(), 1);
        // At t=200 everything expired: back to the applied clock.
        assert_eq!(w.effective_since(&base, 200), base);
        assert!(w.is_empty());
    }

    #[test]
    fn single_promises_only_advance_contiguously() {
        let mut w = InFlightWindow::new();
        let base = clock(&[(0, 4)]);
        // 5 and 6 in flight: frontier advances through both.
        w.note_single(ReplicaId(0), 5, 100);
        w.note_single(ReplicaId(0), 6, 100);
        assert_eq!(w.effective_since(&base, 50), clock(&[(0, 6)]));
        // 8 in flight but 7 is a hole (dropped): the advance stops at 6,
        // keeping 7 (and 8, conservatively) eligible for repair.
        w.note_single(ReplicaId(0), 8, 100);
        assert_eq!(w.effective_since(&base, 50), clock(&[(0, 6)]));
        // A burst promise fills the hole: singles extend past it again.
        w.note_burst(clock(&[(0, 7)]), 100);
        assert_eq!(w.effective_since(&base, 50), clock(&[(0, 8)]));
    }

    #[test]
    fn crash_voids_promises_and_refuses_until_restart() {
        let mut node = Node::new(ReplicaId(0));
        node.note_inflight_burst(clock(&[(1, 5)]), 1_000_000);
        assert_eq!(node.inflight_len(), 1);
        node.crash();
        assert!(node.is_down());
        assert_eq!(node.inflight_len(), 0, "crash clears the window");
        assert_eq!(node.ae_since(0), VClock::new());
        node.restart();
        assert!(!node.is_down());
    }

    #[test]
    fn node_round_skips_down_nodes_and_converges_live_ones() {
        let mut nodes: Vec<Node> = (0..3).map(|i| Node::new(ReplicaId(i))).collect();
        {
            let mut tx = nodes[0].replica_mut().begin();
            tx.ensure("set", ObjectKind::AWSet).unwrap();
            tx.aw_add("set", Val::str("x")).unwrap();
            tx.commit();
            nodes[0].replica_mut().take_outbox(); // lost: AE must repair
        }
        nodes[2].crash();
        let mut cursors = AeCursors::new();
        let rounds = anti_entropy_fixpoint_nodes(&mut nodes, &mut cursors);
        assert_eq!(rounds, 1);
        assert_eq!(nodes[1].replica().clock().get(ReplicaId(0)), 1);
        assert_eq!(
            nodes[2].replica().clock().get(ReplicaId(0)),
            0,
            "down nodes do not pull"
        );
        nodes[2].restart();
        assert!(anti_entropy_fixpoint_nodes(&mut nodes, &mut cursors) >= 1);
        assert_eq!(nodes[2].replica().clock().get(ReplicaId(0)), 1);
    }
}
