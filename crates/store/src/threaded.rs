//! A **threaded in-process transport**: one `std::thread` actor per
//! replica, `mpsc` channels for delivery, wall-clock time, and real
//! races — the second [`Transport`] implementation, complementing the
//! deterministic discrete-event simulator.
//!
//! Each node is a [`Node`] behind a mutex, serviced by a **two-stage
//! delivery pipeline**: an *ingest* thread drains the node's channel and
//! runs the integrity gate (seal check + envelope well-formedness) off
//! the node lock, then forwards every message FIFO over a bounded
//! channel to an *apply* thread that takes the lock and feeds causal
//! delivery ([`Replica::receive_prevalidated`]). Seal verification of
//! the next batch thus overlaps with shard apply of the previous one,
//! and the bounded hop is the backpressure seam — a slow applier stalls
//! its ingest thread, never grows an unbounded queue. Commits happen on
//! the *caller's* thread ([`ThreadedCluster::commit_at`] locks the
//! shard, runs the transaction, then ships the outbox over the
//! channels), so concurrent clients at different regions genuinely race
//! their commits, deliveries interleave with transactions, and an
//! optional background anti-entropy ticker repairs losses while the
//! workload runs. Nothing here is deterministic; correctness is checked
//! at quiescence (convergence, invariants, idempotence, bounded
//! liveness) — see the [`Transport`] contract and `ARCHITECTURE.md`.
//!
//! Fault signals are live: [`ThreadedCluster::crash_node`] wipes the
//! shard's volatile state and makes it refuse traffic,
//! [`ThreadedCluster::set_link_up`] drops sends between a pair (repair
//! flows through anti-entropy, exactly like a lossy network).

use crate::batch::UpdateBatch;
use crate::errors::StoreError;
use crate::replica::Replica;
use crate::transport::{Node, Transport};
use crate::txn::{CommitInfo, Transaction};
use ipa_crdt::{ReplicaId, VClock};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Duration;

/// Messages a node's delivery thread services.
enum Msg {
    /// A replicated batch to feed into causal delivery.
    Deliver(Arc<UpdateBatch>),
    /// Anti-entropy pull: reply with every logged batch `since` misses.
    Pull {
        since: VClock,
        reply: mpsc::Sender<Vec<Arc<UpdateBatch>>>,
    },
    /// FIFO barrier: reply once every earlier message is processed.
    Barrier(mpsc::Sender<()>),
    Stop,
}

/// Messages the apply stage services — [`Msg`] after the ingest stage
/// ran the integrity gate. Forwarded strictly FIFO, so barriers and
/// pulls observe every delivery sent before them, exactly as with the
/// single-threaded loop this pipeline replaced.
enum ApplyMsg {
    /// A batch plus the ingest stage's integrity verdict (computed off
    /// the node lock; [`Replica::receive_prevalidated`] trusts it).
    Deliver(Arc<UpdateBatch>, bool),
    Pull {
        since: VClock,
        reply: mpsc::Sender<Vec<Arc<UpdateBatch>>>,
    },
    Barrier(mpsc::Sender<()>),
    Stop,
}

/// Depth of the bounded ingest→apply hop. Deep enough to keep the apply
/// thread fed across scheduling hiccups, shallow enough that a wedged
/// applier stalls ingest (backpressure) instead of buffering a run's
/// whole traffic.
const APPLY_PIPELINE_DEPTH: usize = 64;

/// One replica shard: the actor state plus its crash flag. The flag is
/// atomic (not under the mutex) so fault injection and down-checks
/// never wait on an in-progress transaction.
struct Shard {
    node: Mutex<Node>,
    down: AtomicBool,
}

/// Pairwise link state, symmetric, lock-free.
struct LinkMatrix {
    n: usize,
    up: Vec<AtomicBool>,
}

impl LinkMatrix {
    fn new(n: usize) -> LinkMatrix {
        LinkMatrix {
            n,
            up: (0..n * n).map(|_| AtomicBool::new(true)).collect(),
        }
    }

    fn is_up(&self, a: u16, b: u16) -> bool {
        self.up[a as usize * self.n + b as usize].load(Ordering::Relaxed)
    }

    fn set(&self, a: u16, b: u16, up: bool) {
        self.up[a as usize * self.n + b as usize].store(up, Ordering::Relaxed);
        self.up[b as usize * self.n + a as usize].store(up, Ordering::Relaxed);
    }
}

/// Observability counters for a threaded run (all monotonic).
#[derive(Debug, Default)]
pub struct ThreadedStats {
    /// Sends dropped because the pair's link was cut.
    pub dropped_partitioned: AtomicU64,
    /// Deliveries refused because the destination was down.
    pub refused_down: AtomicU64,
    /// Batches lost to crashes (volatile outbox + pending).
    pub lost_in_crash: AtomicU64,
    /// Commits refused because the origin shard was down.
    pub commits_refused: AtomicU64,
    /// Batches whose integrity gate ran on the ingest stage (off the
    /// node lock) before being forwarded to the apply stage.
    pub pipeline_prevalidated: AtomicU64,
}

/// Configuration for [`ThreadedCluster::start`].
#[derive(Clone, Copy, Debug)]
pub struct ThreadedConfig {
    /// Number of replica actors.
    pub nodes: u16,
    /// Background anti-entropy period (`None` = repair only happens at
    /// explicit [`Transport::anti_entropy`] / quiesce calls).
    pub ae_interval: Option<Duration>,
    /// Key-space shards per replica. Wide batches (anti-entropy
    /// catch-up bursts) dispatch their disjoint shards to the replica's
    /// persistent shard-worker pool; shard count never changes
    /// observable state.
    pub shards: usize,
}

impl Default for ThreadedConfig {
    fn default() -> Self {
        ThreadedConfig {
            nodes: 3,
            ae_interval: Some(Duration::from_millis(5)),
            shards: crate::replica::DEFAULT_SHARDS,
        }
    }
}

/// The threaded transport: `n` replica actors, each a mutex-guarded
/// [`Node`] with a dedicated delivery thread, plus an optional
/// anti-entropy ticker. All run-time methods take `&self` so client
/// threads can share the cluster through a plain borrow
/// (`std::thread::scope`) or an `Arc`.
pub struct ThreadedCluster {
    shards: Vec<Arc<Shard>>,
    senders: Vec<mpsc::Sender<Msg>>,
    links: Arc<LinkMatrix>,
    stats: Arc<ThreadedStats>,
    threads: Vec<JoinHandle<()>>,
    ticker_stop: Arc<AtomicBool>,
    ticker: Option<JoinHandle<()>>,
}

/// How long coordinator-side pulls and barriers wait for a node thread
/// before giving up (a node thread only stalls if wedged; the timeout
/// turns a deadlock into a visible test failure).
const REPLY_TIMEOUT: Duration = Duration::from_secs(10);

impl ThreadedCluster {
    /// Spawn the actors (and the anti-entropy ticker, if configured).
    pub fn start(cfg: ThreadedConfig) -> ThreadedCluster {
        let n = cfg.nodes;
        let links = Arc::new(LinkMatrix::new(n as usize));
        let stats = Arc::new(ThreadedStats::default());
        let mut shards = Vec::with_capacity(n as usize);
        let mut senders = Vec::with_capacity(n as usize);
        let mut threads = Vec::with_capacity(n as usize);
        let mut receivers = Vec::with_capacity(n as usize);
        for i in 0..n {
            let (tx, rx) = mpsc::channel();
            // The threaded transport is the one place parallel apply is
            // on: real threads, no schedule digests, large anti-entropy
            // bursts worth splitting across shards.
            let mut node = Node::with_shards(ReplicaId(i), cfg.shards);
            node.replica_mut().set_parallel_apply(true);
            shards.push(Arc::new(Shard {
                node: Mutex::new(node),
                down: AtomicBool::new(false),
            }));
            senders.push(tx);
            receivers.push(rx);
        }
        for (i, rx) in receivers.into_iter().enumerate() {
            let shard = Arc::clone(&shards[i]);
            let ingest_stats = Arc::clone(&stats);
            let apply_stats = Arc::clone(&stats);
            let (apply_tx, apply_rx) = mpsc::sync_channel(APPLY_PIPELINE_DEPTH);
            threads.push(std::thread::spawn(move || {
                ingest_loop(ingest_stats, rx, apply_tx)
            }));
            threads.push(std::thread::spawn(move || {
                apply_loop(shard, apply_stats, apply_rx)
            }));
        }
        let ticker_stop = Arc::new(AtomicBool::new(false));
        let ticker = cfg.ae_interval.map(|period| {
            let shards = shards.clone();
            let senders = senders.clone();
            let links = Arc::clone(&links);
            let stop = Arc::clone(&ticker_stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    std::thread::sleep(period);
                    ae_round_over_channels(&shards, &senders, &links);
                }
            })
        });
        ThreadedCluster {
            shards,
            senders,
            links,
            stats,
            threads,
            ticker_stop,
            ticker,
        }
    }

    /// Number of replica actors.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Run-time fault/delivery counters.
    pub fn stats(&self) -> &ThreadedStats {
        &self.stats
    }

    /// Is the node currently crashed?
    pub fn is_node_down(&self, node: u16) -> bool {
        self.shards[node as usize].down.load(Ordering::Relaxed)
    }

    /// Is the pair's link currently usable?
    pub fn link_is_up(&self, a: u16, b: u16) -> bool {
        self.links.is_up(a, b)
    }

    /// Cut or heal a pair's link (both directions). While cut, sends
    /// between the pair are dropped and counted; anti-entropy repairs
    /// after the heal (or through a third replica meanwhile).
    pub fn set_link_up(&self, a: u16, b: u16, up: bool) {
        self.links.set(a, b, up);
    }

    /// Crash a node on the caller's thread: refuse traffic, then wipe
    /// volatile state under the shard lock (an in-progress transaction
    /// finishes first — a crash never tears a commit).
    pub fn crash_node(&self, node: u16) {
        let shard = &self.shards[node as usize];
        shard.down.store(true, Ordering::Relaxed);
        let lost = shard.node.lock().crash();
        self.stats
            .lost_in_crash
            .fetch_add(lost as u64, Ordering::Relaxed);
    }

    /// Restart a crashed node; catch-up flows through anti-entropy.
    pub fn restart_node(&self, node: u16) {
        self.shards[node as usize].node.lock().restart();
        self.shards[node as usize]
            .down
            .store(false, Ordering::Relaxed);
    }

    /// Run `f` with the shard locked (reads, oracle audits, repairs).
    pub fn with_replica<R>(&self, node: u16, f: impl FnOnce(&mut Replica) -> R) -> R {
        f(self.shards[node as usize].node.lock().replica_mut())
    }

    /// Run a transaction at `region` on the **caller's** thread and
    /// ship the committed batches to every peer over the delivery
    /// channels. Returns [`StoreError::Unavailable`] while the shard is
    /// down. This is the client entry point: concurrent callers at
    /// different regions race their commits and deliveries for real.
    pub fn commit_at<T>(
        &self,
        region: u16,
        f: impl FnOnce(&mut Transaction<'_>) -> Result<T, StoreError>,
    ) -> Result<(T, CommitInfo), StoreError> {
        let shard = &self.shards[region as usize];
        let (value, info, batches) = {
            let mut node = shard.node.lock();
            if shard.down.load(Ordering::Relaxed) {
                self.stats.commits_refused.fetch_add(1, Ordering::Relaxed);
                return Err(StoreError::Unavailable(ReplicaId(region)));
            }
            let mut tx = node.replica_mut().begin();
            let value = f(&mut tx)?;
            let info = tx.commit();
            let batches = node.replica_mut().take_outbox();
            (value, info, batches)
        };
        // Ship outside the lock: delivery threads may already be
        // applying these batches while the committer moves on.
        for batch in batches {
            self.send_batch(region, batch);
        }
        Ok((value, info))
    }

    /// Fan a batch out toward every peer, dropping cut links.
    fn send_batch(&self, origin: u16, batch: Arc<UpdateBatch>) {
        for dest in 0..self.shards.len() as u16 {
            if dest == origin {
                continue;
            }
            if !self.links.is_up(origin, dest) {
                self.stats
                    .dropped_partitioned
                    .fetch_add(1, Ordering::Relaxed);
                continue;
            }
            // A send can only fail if the node thread stopped (Drop).
            let _ = self.senders[dest as usize].send(Msg::Deliver(Arc::clone(&batch)));
        }
    }

    /// FIFO barrier: returns once every node thread has processed all
    /// messages sent before this call.
    pub fn barrier(&self) {
        let mut waits = Vec::with_capacity(self.senders.len());
        for s in &self.senders {
            let (tx, rx) = mpsc::channel();
            if s.send(Msg::Barrier(tx)).is_ok() {
                waits.push(rx);
            }
        }
        for rx in waits {
            rx.recv_timeout(REPLY_TIMEOUT)
                .expect("node thread wedged at barrier");
        }
    }

    /// One coordinator-driven anti-entropy round: every live node pulls
    /// what it is missing from every live, reachable peer (pulls go
    /// through the peer's delivery thread; applications happen under
    /// the puller's shard lock). Returns batches applied cluster-wide.
    pub fn anti_entropy_round(&self) -> usize {
        let mut applied = 0;
        let n = self.shards.len() as u16;
        for dst in 0..n {
            if self.is_node_down(dst) {
                continue;
            }
            for src in 0..n {
                if src == dst || self.is_node_down(src) || !self.links.is_up(src, dst) {
                    continue;
                }
                let since = self.shards[dst as usize]
                    .node
                    .lock()
                    .replica()
                    .clock()
                    .clone();
                let (tx, rx) = mpsc::channel();
                if self.senders[src as usize]
                    .send(Msg::Pull { since, reply: tx })
                    .is_err()
                {
                    continue;
                }
                let Ok(missing) = rx.recv_timeout(REPLY_TIMEOUT) else {
                    continue;
                };
                if missing.is_empty() {
                    continue;
                }
                let mut node = self.shards[dst as usize].node.lock();
                for b in missing {
                    applied += node.replica_mut().receive(b);
                }
            }
        }
        applied
    }

    /// Quiesce: restart every node, heal every link, drain the
    /// channels, and pull anti-entropy to its fixpoint. Returns the
    /// number of productive rounds — the bounded-liveness oracle's
    /// input (a healthy cluster converges within its configured bound).
    pub fn quiesce(&self) -> u64 {
        let n = self.shards.len() as u16;
        for i in 0..n {
            self.restart_node(i);
            for j in 0..n {
                self.links.set(i, j, true);
            }
        }
        let mut rounds = 0;
        loop {
            self.barrier();
            let applied = self.anti_entropy_round();
            if applied > 0 {
                rounds += 1;
                continue;
            }
            // Nothing moved and the inboxes are drained: done. (A
            // second barrier guards against deliveries that raced the
            // unproductive round.)
            self.barrier();
            if self.anti_entropy_round() == 0 {
                break;
            }
            rounds += 1;
        }
        rounds
    }

    /// Equal clocks and empty causal buffers everywhere? Meaningful
    /// after [`ThreadedCluster::quiesce`].
    pub fn is_converged(&self) -> bool {
        let first = self.shards[0].node.lock().replica().clock().clone();
        self.shards.iter().all(|s| {
            let node = s.node.lock();
            *node.replica().clock() == first && node.replica().pending_count() == 0
        })
    }
}

impl Drop for ThreadedCluster {
    fn drop(&mut self) {
        self.ticker_stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.ticker.take() {
            let _ = t.join();
        }
        for s in &self.senders {
            let _ = s.send(Msg::Stop);
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Transport for ThreadedCluster {
    fn node_count(&self) -> usize {
        self.len()
    }

    fn with_node<R>(&mut self, node: ReplicaId, f: impl FnOnce(&mut Replica) -> R) -> R {
        self.with_replica(node.0, f)
    }

    fn ship(&mut self, node: ReplicaId) {
        let batches = self.with_replica(node.0, |r| r.take_outbox());
        for b in batches {
            self.send_batch(node.0, b);
        }
    }

    fn set_link(&mut self, a: ReplicaId, b: ReplicaId, up: bool) {
        self.set_link_up(a.0, b.0, up);
    }

    fn crash(&mut self, node: ReplicaId) {
        self.crash_node(node.0);
    }

    fn restart(&mut self, node: ReplicaId) {
        self.restart_node(node.0);
    }

    fn anti_entropy(&mut self) -> usize {
        self.anti_entropy_round()
    }

    fn quiesce_transport(&mut self) -> u64 {
        self.quiesce()
    }

    fn converged(&mut self) -> bool {
        self.is_converged()
    }
}

/// The ingest-stage body: drain the node's channel, run the integrity
/// gate on deliveries *off the node lock*, and forward everything FIFO
/// over the bounded hop. The send blocks when the applier falls
/// `APPLY_PIPELINE_DEPTH` messages behind — that stall is the
/// backpressure contract, propagating to senders only through channel
/// buffering, never through loss.
fn ingest_loop(
    stats: Arc<ThreadedStats>,
    rx: mpsc::Receiver<Msg>,
    apply: mpsc::SyncSender<ApplyMsg>,
) {
    for msg in rx {
        let forward = match msg {
            Msg::Deliver(batch) => {
                let valid = batch.integrity_ok() && batch.well_formed();
                stats.pipeline_prevalidated.fetch_add(1, Ordering::Relaxed);
                ApplyMsg::Deliver(batch, valid)
            }
            Msg::Pull { since, reply } => ApplyMsg::Pull { since, reply },
            Msg::Barrier(reply) => ApplyMsg::Barrier(reply),
            Msg::Stop => {
                let _ = apply.send(ApplyMsg::Stop);
                break;
            }
        };
        if apply.send(forward).is_err() {
            break;
        }
    }
}

/// The apply-stage body: feed prevalidated batches into causal delivery
/// under the shard lock. The down-check happens *here*, at apply time —
/// a batch still queued in the pipeline when its node crashes is
/// refused exactly like one still in a dead process's socket buffer,
/// and anti-entropy replays it from a peer's durable log after restart.
/// A down shard serves empty pulls, like a dead process.
fn apply_loop(shard: Arc<Shard>, stats: Arc<ThreadedStats>, rx: mpsc::Receiver<ApplyMsg>) {
    for msg in rx {
        match msg {
            ApplyMsg::Deliver(batch, valid) => {
                if shard.down.load(Ordering::Relaxed) {
                    stats.refused_down.fetch_add(1, Ordering::Relaxed);
                } else {
                    shard
                        .node
                        .lock()
                        .replica_mut()
                        .receive_prevalidated(batch, valid);
                }
            }
            ApplyMsg::Pull { since, reply } => {
                let batches = if shard.down.load(Ordering::Relaxed) {
                    Vec::new()
                } else {
                    shard.node.lock().replica_mut().batches_since(&since)
                };
                let _ = reply.send(batches);
            }
            ApplyMsg::Barrier(reply) => {
                let _ = reply.send(());
            }
            ApplyMsg::Stop => break,
        }
    }
}

/// One background anti-entropy round over the delivery channels (the
/// ticker's body): pulls race with live commits, so a node may receive
/// a batch twice — causal delivery deduplicates, and the double-apply
/// oracle checks that it did.
fn ae_round_over_channels(
    shards: &[Arc<Shard>],
    senders: &[mpsc::Sender<Msg>],
    links: &LinkMatrix,
) {
    let n = shards.len() as u16;
    for dst in 0..n {
        if shards[dst as usize].down.load(Ordering::Relaxed) {
            continue;
        }
        for src in 0..n {
            if src == dst
                || shards[src as usize].down.load(Ordering::Relaxed)
                || !links.is_up(src, dst)
            {
                continue;
            }
            let since = shards[dst as usize].node.lock().replica().clock().clone();
            let (tx, rx) = mpsc::channel();
            if senders[src as usize]
                .send(Msg::Pull { since, reply: tx })
                .is_err()
            {
                continue;
            }
            let Ok(missing) = rx.recv_timeout(REPLY_TIMEOUT) else {
                continue;
            };
            for b in missing {
                let _ = senders[dst as usize].send(Msg::Deliver(b));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipa_crdt::{ObjectKind, Val};

    fn no_ticker(n: u16) -> ThreadedCluster {
        ThreadedCluster::start(ThreadedConfig {
            nodes: n,
            ae_interval: None,
            ..Default::default()
        })
    }

    #[test]
    fn concurrent_commits_converge() {
        let cluster = no_ticker(3);
        std::thread::scope(|s| {
            for region in 0..3u16 {
                let cluster = &cluster;
                s.spawn(move || {
                    for k in 0..20 {
                        cluster
                            .commit_at(region, |tx| {
                                tx.ensure("set", ObjectKind::AWSet)?;
                                tx.aw_add("set", Val::str(format!("r{region}-{k}")))
                            })
                            .expect("commit");
                    }
                });
            }
        });
        cluster.quiesce();
        assert!(cluster.is_converged());
        for r in 0..3u16 {
            let len = cluster.with_replica(r, |rep| {
                rep.object(&"set".into()).unwrap().as_awset().unwrap().len()
            });
            assert_eq!(len, 60, "replica {r} sees every insert");
            assert!(
                cluster.with_replica(r, |rep| rep.applied_consistent()),
                "no double-apply at replica {r}"
            );
        }
    }

    #[test]
    fn crash_loses_volatile_state_and_anti_entropy_repairs() {
        let cluster = no_ticker(2);
        cluster
            .commit_at(0, |tx| {
                tx.ensure("c", ObjectKind::PNCounter)?;
                tx.counter_add("c", 5)
            })
            .expect("commit");
        cluster.barrier();
        cluster.crash_node(1);
        assert!(cluster.is_node_down(1));
        assert!(matches!(
            cluster.commit_at(1, |tx| tx.counter_add("c", 1)),
            Err(StoreError::Unavailable(_))
        ));
        // Commits toward the crashed node are refused and must be
        // repaired by anti-entropy after the restart.
        cluster
            .commit_at(0, |tx| tx.counter_add("c", 2))
            .expect("commit");
        cluster.barrier();
        cluster.restart_node(1);
        cluster.quiesce();
        assert!(cluster.is_converged());
        let v = cluster.with_replica(1, |r| {
            r.object(&"c".into())
                .unwrap()
                .as_pncounter()
                .unwrap()
                .value()
        });
        assert_eq!(v, 7);
    }

    #[test]
    fn partitioned_sends_drop_and_heal_via_anti_entropy() {
        let cluster = no_ticker(3);
        cluster.set_link_up(0, 1, false);
        cluster
            .commit_at(0, |tx| {
                tx.ensure("c", ObjectKind::PNCounter)?;
                tx.counter_add("c", 3)
            })
            .expect("commit");
        cluster.barrier();
        assert!(cluster.stats().dropped_partitioned.load(Ordering::Relaxed) >= 1);
        cluster.set_link_up(0, 1, true);
        cluster.quiesce();
        assert!(cluster.is_converged());
        let v = cluster.with_replica(1, |r| {
            r.object(&"c".into())
                .unwrap()
                .as_pncounter()
                .unwrap()
                .value()
        });
        assert_eq!(v, 3);
    }

    #[test]
    fn pipeline_prevalidates_every_delivery() {
        let cluster = no_ticker(2);
        for k in 0..10 {
            cluster
                .commit_at(0, |tx| {
                    tx.ensure("c", ObjectKind::PNCounter)?;
                    tx.counter_add("c", k)
                })
                .expect("commit");
        }
        cluster.barrier();
        // Every batch shipped toward node 1 crossed the ingest stage's
        // integrity gate before reaching the apply stage.
        assert!(
            cluster
                .stats()
                .pipeline_prevalidated
                .load(Ordering::Relaxed)
                >= 10
        );
        cluster.quiesce();
        assert!(cluster.is_converged());
    }

    #[test]
    fn crash_with_queued_pipeline_loses_nothing_durable() {
        let cluster = no_ticker(2);
        let n: i64 = 150;
        for _ in 0..n {
            cluster
                .commit_at(0, |tx| {
                    tx.ensure("c", ObjectKind::PNCounter)?;
                    tx.counter_add("c", 1)
                })
                .expect("commit");
        }
        // Crash node 1 with deliveries still racing through its ingest →
        // apply pipeline (no barrier: whatever is queued at the crash is
        // refused at apply time, like bytes in a dead process's socket
        // buffer). The durable half of the story lives at node 0.
        cluster.crash_node(1);
        cluster.restart_node(1);
        cluster.quiesce();
        assert!(cluster.is_converged());
        // Recovery replays node 0's durable log; nothing it held is
        // lost, and node 1 reaches exactly the state a synchronous
        // (pipeline-free) replay of that log reaches.
        let logged = cluster.with_replica(0, |r| r.batches_since(&VClock::new()));
        let mut sync = Replica::new(ReplicaId(9));
        for b in logged {
            sync.receive(b);
        }
        let sync_v = sync
            .object(&"c".into())
            .unwrap()
            .as_pncounter()
            .unwrap()
            .value();
        let (v, clock) = cluster.with_replica(1, |r| {
            (
                r.object(&"c".into())
                    .unwrap()
                    .as_pncounter()
                    .unwrap()
                    .value(),
                r.clock().clone(),
            )
        });
        assert_eq!(v, n, "recovered replica holds every durable commit");
        assert_eq!(sync_v, v, "pipelined recovery matches synchronous replay");
        assert_eq!(clock, *sync.clock());
        assert!(cluster.with_replica(1, |r| r.applied_consistent()));
    }

    #[test]
    fn background_ticker_repairs_without_explicit_rounds() {
        let cluster = ThreadedCluster::start(ThreadedConfig {
            nodes: 2,
            ae_interval: Some(Duration::from_millis(1)),
            ..Default::default()
        });
        // Cut the only link: the commit's direct send drops, so only
        // the ticker can repair once healed.
        cluster.set_link_up(0, 1, false);
        cluster
            .commit_at(0, |tx| {
                tx.ensure("c", ObjectKind::PNCounter)?;
                tx.counter_add("c", 1)
            })
            .expect("commit");
        cluster.set_link_up(0, 1, true);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            let caught_up = cluster.with_replica(1, |r| r.clock().get(ReplicaId(0)) == 1);
            if caught_up {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "ticker never repaired the dropped batch"
            );
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}
