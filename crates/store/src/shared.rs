//! Thread-safe replica handle for multi-threaded load generators.

use crate::replica::Replica;
use ipa_crdt::ReplicaId;
use parking_lot::Mutex;
use std::sync::Arc;

/// An `Arc<Mutex<Replica>>` wrapper: the benchmark harness's
/// multi-threaded drivers clone handles across worker threads while the
/// discrete-event simulator uses plain [`Replica`]s single-threaded.
#[derive(Clone)]
pub struct SharedReplica {
    inner: Arc<Mutex<Replica>>,
    id: ReplicaId,
}

impl SharedReplica {
    pub fn new(id: ReplicaId) -> SharedReplica {
        SharedReplica {
            inner: Arc::new(Mutex::new(Replica::new(id))),
            id,
        }
    }

    pub fn id(&self) -> ReplicaId {
        self.id
    }

    /// Run a closure with exclusive access to the replica.
    pub fn with<R>(&self, f: impl FnOnce(&mut Replica) -> R) -> R {
        f(&mut self.inner.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipa_crdt::{ObjectKind, Val};
    use std::thread;

    #[test]
    fn concurrent_commits_from_threads() {
        let shared = SharedReplica::new(ReplicaId(0));
        let mut handles = Vec::new();
        for t in 0..4 {
            let s = shared.clone();
            handles.push(thread::spawn(move || {
                for i in 0..25 {
                    s.with(|r| {
                        let mut tx = r.begin();
                        tx.ensure("set", ObjectKind::AWSet).unwrap();
                        tx.aw_add("set", Val::str(format!("{t}-{i}"))).unwrap();
                        tx.commit();
                    });
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        shared.with(|r| {
            assert_eq!(
                r.object(&"set".into()).unwrap().as_awset().unwrap().len(),
                100
            );
            assert_eq!(r.stats.commits, 100);
        });
    }
}
