//! # ipa-store — a causally-consistent replicated key-value store
//!
//! The SwiftCloud substitute (§4.1 of the IPA paper): a multi-replica
//! key-value store providing the three features IPA-patched applications
//! require —
//!
//! 1. **Causal consistency**: update batches replicate asynchronously and
//!    are buffered at the receiver until every causal predecessor has been
//!    applied ([`Replica::receive`]).
//! 2. **Highly available transactions**: a [`Transaction`] reads a
//!    snapshot of its origin replica (with read-your-writes), buffers
//!    updates, and commits them atomically into one replicated batch —
//!    no cross-replica coordination on the critical path.
//! 3. **Per-object conflict resolution**: each key holds an
//!    [`ipa_crdt::Object`] whose kind (add-wins, rem-wins, …) the
//!    application chooses — the convergence rules the IPA analysis
//!    relies on.
//!
//! The store also tracks **causal stability** (Baquero-style: an update is
//! stable once every replica's *received frontier* dominates it) and
//! drives the CRDTs' tombstone garbage collection ([`Replica::run_gc`]).

pub mod batch;
pub mod cluster;
pub mod errors;
pub mod key;
mod pool;
pub mod replica;
pub mod schedule;
pub mod shared;
pub mod threaded;
pub mod transport;
pub mod txn;

pub use batch::UpdateBatch;
pub use cluster::Cluster;
pub use errors::StoreError;
pub use key::Key;
pub use replica::{
    anti_entropy_fixpoint_with, anti_entropy_round, anti_entropy_round_with, AeCursors,
    ApplyDispatch, Replica, ReplicaStats, ShardStats, DEFAULT_SHARDS, PARALLEL_APPLY_MIN_UPDATES,
};
pub use schedule::{CausalItem, DeliveryFaults, Schedule, ScheduleReport};
pub use shared::SharedReplica;
pub use threaded::{ThreadedCluster, ThreadedConfig, ThreadedStats};
pub use transport::{
    anti_entropy_fixpoint_nodes, anti_entropy_round_nodes, anti_entropy_round_nodes_with_links,
    InFlightWindow, Node, Transport,
};
pub use txn::{CommitInfo, Transaction};
