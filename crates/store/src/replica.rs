//! A single data-center replica: object storage, causal delivery,
//! stability tracking and garbage collection.
//!
//! The replication data path is log-structured: the durable batch log is
//! segmented per origin and indexed by origin sequence, so an
//! anti-entropy pull seeks straight to the requester's causal gap in
//! O(origins) and pays only for the batches it returns — never a scan of
//! the whole log. The pending (not-yet-deliverable) buffer is likewise
//! indexed by `(origin, seq)`, making duplicate detection O(1) and the
//! delivery drain O(origins) per applied batch.
//!
//! Object storage is **sharded**: the key space is partitioned by a
//! stable hash ([`DEFAULT_SHARDS`] ways by default) and each shard owns
//! its own object map, kind map, and apply counters. `apply_batch`
//! splits a batch into per-shard same-key runs; deterministic transports
//! apply shards in fixed index order, the threaded transport hands wide
//! batches to a **persistent shard-worker pool** — one long-lived thread
//! per shard, fed over bounded channels with park/unpark completion
//! ([`Replica::set_parallel_apply`], [`ApplyDispatch`]) — both produce
//! identical state, logs, and counters, because shards are disjoint by
//! construction and the dispatcher blocks until every worker finishes.

use crate::batch::UpdateBatch;
use crate::errors::StoreError;
use crate::key::Key;
use crate::txn::Transaction;
use ipa_crdt::{BCounterOp, Object, ObjectKind, ObjectOp, ReplicaId, Tag, VClock};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;

/// Counters exposed for tests and the benchmark harness.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReplicaStats {
    pub commits: u64,
    pub batches_received: u64,
    pub batches_applied: u64,
    pub updates_applied: u64,
    pub gc_runs: u64,
    /// Crash/restart cycles this replica went through (nemesis).
    pub crashes: u64,
    /// Batches handed out through anti-entropy pulls.
    pub anti_entropy_sent: u64,
    /// Log entries examined while serving anti-entropy pulls (segment
    /// probes + returned batches). The full-scan implementation this
    /// replaced examined the entire log per pull; the benchmark tracks
    /// the ratio.
    pub anti_entropy_scanned: u64,
    /// Object-table hash lookups performed by the apply path (one per
    /// same-key run of a batch, plus one kind-map touch per object
    /// creation). The pre-cache implementation paid two lookups and two
    /// key clones per *update*; the benchmark tracks the ratio against
    /// `2 × updates_applied`.
    pub apply_table_lookups: u64,
    /// Stability-frontier folds actually computed — by [`Replica::run_gc`]
    /// or [`Replica::stability_frontier_cached`]. The fold is
    /// event-driven: it only runs when a clock advanced since the last
    /// fold (or the replica set changed), so on an idle replica
    /// `gc_runs` keeps counting while this counter stands still.
    pub frontier_folds: u64,
    /// Batches refused by the integrity gate in [`Replica::receive`]:
    /// failed checksum or structurally unsound envelope. Quarantined
    /// input is never applied and never panics the replica; the oracles
    /// read this family to distinguish "survived an adversarial
    /// transport" from "never saw one". Zero on every benign run.
    pub batches_quarantined: u64,
    /// Quarantines whose stored seal mismatched the envelope (bit-flip,
    /// truncation, payload mutation).
    pub quarantine_checksum: u64,
    /// Quarantines that passed the seal but were structurally unsound
    /// (forged/stale sequence number disagreeing with the batch clock).
    pub quarantine_malformed: u64,
    /// Quarantined `(origin, seq)` slots for which a clean copy has since
    /// applied (anti-entropy repair closing the gap corruption opened).
    pub quarantine_repaired: u64,
    /// Escrow rights-transfer updates applied whose source is this
    /// replica (rights leaving: this replica was the donor).
    pub rights_transfers_out: u64,
    /// Escrow rights-transfer updates applied whose destination is this
    /// replica (rights arriving: this replica was the recipient).
    pub rights_transfers_in: u64,
    /// Total rights units moved out by the transfers counted in
    /// [`ReplicaStats::rights_transfers_out`].
    pub rights_units_out: u64,
    /// Total rights units moved in by the transfers counted in
    /// [`ReplicaStats::rights_transfers_in`].
    pub rights_units_in: u64,
    /// Bounded-counter decrements refused locally for lack of escrow
    /// rights (the starvation signal the provisioning policies watch).
    pub escrow_dec_denied: u64,
    /// Stability-frontier folds served from the escrow-path cache
    /// without recomputing (no clock advanced since the last fold).
    pub frontier_cache_hits: u64,
    /// Batches handed to the persistent shard-worker pool (wide batches
    /// under [`ApplyDispatch::Pool`]; narrow batches apply inline and are
    /// not counted here). Deterministic given the delivered batch
    /// sequence — CI guards this, never wall-clock.
    pub pool_batches: u64,
    /// Per-shard jobs dispatched to pool workers (one per non-empty
    /// shard per pool batch), so `pool_dispatches / pool_batches` is the
    /// mean shard fan-out.
    pub pool_dispatches: u64,
}

/// Per-shard apply counters: deterministic functions of the delivered
/// batch sequence, independent of shard count and of the
/// sequential-vs-parallel apply path — CI guards these, never wall-clock.
#[derive(Clone, Copy, Debug, Default)]
pub struct ShardStats {
    /// Same-key runs applied on this shard (one object resolution each).
    pub runs_applied: u64,
    /// Individual updates applied on this shard.
    pub updates_applied: u64,
    /// Object/kind-map hash lookups on this shard.
    pub table_lookups: u64,
    /// Most same-key runs a single batch ever queued on this shard — the
    /// per-batch apply-queue depth high-water mark.
    pub max_batch_runs: u64,
    /// Most same-key runs a single *pool-dispatched* batch ever queued on
    /// this shard — the worker-queue depth high-water mark. Zero unless
    /// this replica ran [`ApplyDispatch::Pool`] over wide batches; CI
    /// guards its cross-shard balance.
    pub pool_queued_hwm: u64,
}

/// One key-space partition: the object map, kind map, and apply counters
/// owned exclusively by that shard. `apply_batch` splits every batch into
/// per-shard runs, so two shards are never touched by the same update and
/// the pool's workers may apply them concurrently.
#[derive(Debug, Default)]
pub(crate) struct ShardTable {
    objects: HashMap<Key, Object>,
    /// The declared kind of each key (shipped with updates so receivers
    /// can instantiate missing objects deterministically).
    kinds: HashMap<Key, ObjectKind>,
    stats: ShardStats,
}

/// Default number of key-space shards per replica.
pub const DEFAULT_SHARDS: usize = 4;

/// Batches below this update count apply inline (sequentially) even when
/// pool dispatch is enabled. Sized from measurement, not folklore: on
/// the reference runner the legacy scoped spawn+join dispatch cost
/// ≈130 µs per wide batch at 4 shards (the old floor of 256 updates was
/// sized to amortize exactly that), while the pool's channel-send +
/// park/unpark handoff measures ≈5 µs per dispatched batch in steady
/// state (≈20 µs worst-case when all worker wakeups contend on one
/// core) — a ~26× cheaper dispatch. Inline apply runs ≈57 ns per
/// counter update, so below ~64 updates a shard's run is shorter than
/// the worker wakeup that delivers it and dispatch cannot win; from 64
/// updates up the handoff stays under ~10% of batch apply time and the
/// pool's shard parallelism can pay for itself. Hence 64 — a 4× lower
/// floor than the spawn-era value.
pub const PARALLEL_APPLY_MIN_UPDATES: usize = 64;

/// How a replica applies the per-shard runs of a wide batch. Narrow
/// batches (under [`PARALLEL_APPLY_MIN_UPDATES`]) always apply inline in
/// fixed shard order, whatever the mode.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ApplyDispatch {
    /// Fixed sequential shard order — what deterministic transports use.
    #[default]
    Sequential,
    /// Spawn-and-join one scoped thread per non-empty shard, per batch.
    /// This is the legacy dispatch the pool replaced; it is kept so the
    /// replication benchmark can report an honest same-code-path A/B of
    /// pool handoff versus per-batch spawn cost.
    SpawnPerBatch,
    /// Persistent shard-worker pool: long-lived worker per shard,
    /// bounded-channel handoff, park/unpark completion. What
    /// [`Replica::set_parallel_apply`] enables.
    Pool,
}

/// Deterministic shard assignment: FNV-1a over the key bytes. `HashMap`'s
/// SipHash is randomly seeded per process, so it cannot place keys — the
/// shard of a key must be a pure function of the key for the sim's
/// schedule digests and the cross-transport equivalence tests to hold.
fn shard_of(key: &Key, shards: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in key.as_str().bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    (h % shards as u64) as usize
}

/// Apply one same-key run of `updates[start..start + len]` to its shard.
/// Resolves the object once per run and touches the kind map only on
/// creation (the handle-cache discipline the PR-5 benchmark pinned).
pub(crate) fn apply_run(
    table: &mut ShardTable,
    updates: &[(Key, ObjectKind, ipa_crdt::ObjectOp)],
    start: usize,
    len: usize,
) {
    let (key, kind, _) = &updates[start];
    table.stats.runs_applied += 1;
    table.stats.table_lookups += 1;
    let obj = match table.objects.entry(key.clone()) {
        std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
        std::collections::hash_map::Entry::Vacant(e) => {
            table.stats.table_lookups += 1;
            table.kinds.entry(key.clone()).or_insert(*kind);
            e.insert(Object::new(*kind, creation_owner()))
        }
    };
    for u in &updates[start..start + len] {
        match obj.apply(&u.2) {
            Ok(()) => table.stats.updates_applied += 1,
            Err(e) => {
                // Type mismatches indicate an application bug; a real
                // store would reject the write at the origin. Surface
                // loudly in debug builds, skip in release.
                debug_assert!(false, "object {key}: {e}");
            }
        }
    }
}

/// One origin's run of logged batches, gap-tolerant. Causal delivery
/// (and local commit order) guarantees a replica applies an origin's
/// batches in sequence order with no gaps, so under honest operation
/// `entries[k]` holds origin sequence `first_seq + k` — an O(1) seek by
/// sequence number, and `missing` stays empty. The segment no longer
/// *assumes* contiguity though: a hole (adversarial input, operator
/// surgery) is recorded as an explicit missing range that anti-entropy
/// repair targets, and the seek subtracts the holes below the requested
/// sequence, so pulls stay O(origins + returned). Each entry carries the
/// global application index so multi-origin pulls can be returned in
/// exact application order.
#[derive(Debug)]
struct OriginLog {
    /// Sequence number of the segment's logical start; when the segment
    /// is empty this is the next sequence expected (compaction advances
    /// it).
    first_seq: u64,
    /// Logged batches in ascending sequence order (missing sequences are
    /// simply absent — see `missing`).
    entries: VecDeque<(u64, Arc<UpdateBatch>)>,
    /// Explicit holes: inclusive `(lo, hi)` sequence ranges known absent
    /// from this segment, in ascending order. Empty under honest
    /// operation; anti-entropy repair fills them via [`OriginLog::fill`].
    missing: Vec<(u64, u64)>,
}

impl OriginLog {
    fn new() -> OriginLog {
        OriginLog {
            first_seq: 1,
            entries: VecDeque::new(),
            missing: Vec::new(),
        }
    }

    /// Total sequences covered by recorded holes.
    fn missing_total(&self) -> u64 {
        self.missing.iter().map(|&(lo, hi)| hi - lo + 1).sum()
    }

    /// Holes strictly below `seq` (the seek correction).
    fn missing_below(&self, seq: u64) -> u64 {
        self.missing
            .iter()
            .map(|&(lo, hi)| {
                if hi < seq {
                    hi - lo + 1
                } else {
                    seq.saturating_sub(lo)
                }
            })
            .sum()
    }

    /// Sequence number one past the last logged-or-missing slot.
    fn next_seq(&self) -> u64 {
        self.first_seq + self.entries.len() as u64 + self.missing_total()
    }

    /// Index into `entries` of the first entry with sequence ≥ `seq`
    /// (requires `seq >= first_seq`).
    fn seek(&self, seq: u64) -> usize {
        ((seq - self.first_seq) - self.missing_below(seq)) as usize
    }

    /// Record `[lo, hi]` as a hole (coalescing with an adjacent last
    /// range).
    fn record_gap(&mut self, lo: u64, hi: u64) {
        if let Some(last) = self.missing.last_mut() {
            if last.1 + 1 == lo {
                last.1 = hi;
                return;
            }
        }
        self.missing.push((lo, hi));
    }

    /// Remove `seq` from the recorded holes. Returns whether it was one
    /// (false = the append is a true duplicate, not a repair).
    fn fill(&mut self, seq: u64) -> bool {
        for i in 0..self.missing.len() {
            let (lo, hi) = self.missing[i];
            if seq < lo || seq > hi {
                continue;
            }
            match (seq == lo, seq == hi) {
                (true, true) => {
                    self.missing.remove(i);
                }
                (true, false) => self.missing[i].0 = seq + 1,
                (false, true) => self.missing[i].1 = seq - 1,
                (false, false) => {
                    self.missing[i].1 = seq - 1;
                    self.missing.insert(i + 1, (seq + 1, hi));
                }
            }
            return true;
        }
        false
    }
}

/// A batch buffered for causal delivery, with its arrival order and its
/// current position in the legacy-order scan vector.
#[derive(Debug)]
struct PendingSlot {
    pos: usize,
    batch: Arc<UpdateBatch>,
}

/// One replica of the geo-replicated store.
#[derive(Debug)]
pub struct Replica {
    id: ReplicaId,
    /// Applied-updates clock (own commits + delivered remote batches).
    clock: VClock,
    /// Lamport timestamp (drives LWW registers).
    lamport: u64,
    /// Monotonic unique-tag allocator.
    next_tag: u64,
    /// Key-space partitions: shard `shard_of(key, shards.len())` owns the
    /// object. Every accessor routes through the hash; `apply_batch`
    /// splits batches into per-shard runs and applies shards in fixed
    /// index order (or in parallel on the threaded transport — the shards
    /// are disjoint, so the final state is order-independent).
    shards: Vec<ShardTable>,
    /// Per-batch run split scratch: `(shard, start, len)` per same-key
    /// run. Reused across batches to keep the hot path allocation-free.
    run_scratch: Vec<(u32, u32, u32)>,
    /// Per-batch runs-per-shard scratch (the apply-queue depths).
    shard_run_counts: Vec<u32>,
    /// How wide batches dispatch their per-shard runs. Only the threaded
    /// transport moves off [`ApplyDispatch::Sequential`]; the
    /// deterministic sim and the sync cluster keep the fixed sequential
    /// shard order.
    dispatch: ApplyDispatch,
    /// The persistent worker pool, spawned lazily on the first wide batch
    /// under [`ApplyDispatch::Pool`] and torn down when the mode changes
    /// (or the replica drops).
    pool: Option<crate::pool::ShardPool>,
    /// Remote batches waiting for causal predecessors, indexed by
    /// `(origin, seq)` for O(1) duplicate detection. `pending_order`
    /// preserves the buffer's positional order (deliveries use
    /// swap-remove, exactly like the scan vector this index replaced, so
    /// application order — and with it every schedule digest — is
    /// unchanged). Volatile: lost on [`Replica::crash`].
    pending: HashMap<(ReplicaId, u64), PendingSlot>,
    pending_order: Vec<(ReplicaId, u64)>,
    /// Buffered-batch count per origin id: the drain only probes origins
    /// that actually have something waiting.
    pending_per_origin: Vec<u32>,
    /// Committed local batches awaiting transport pickup. Volatile: lost
    /// on [`Replica::crash`].
    outbox: Vec<Arc<UpdateBatch>>,
    /// Durable log of every batch applied here, segmented per origin and
    /// indexed by origin sequence. Serves anti-entropy pulls
    /// ([`Replica::batches_since`]) and is compacted under the stability
    /// frontier by [`Replica::run_gc`].
    log: Vec<OriginLog>,
    /// Total batches across all segments.
    log_total: usize,
    /// Global application-order counter (stamps log entries).
    apply_idx: u64,
    /// Bumped whenever the log gains or loses entries; anti-entropy
    /// cursors use it to detect staleness.
    log_version: u64,
    /// Latest received clock per origin (incl. self) — the causal
    /// stability inputs.
    last_from: BTreeMap<ReplicaId, VClock>,
    /// `(origin, seq)` slots refused by the integrity gate and not yet
    /// re-covered by a clean copy — the explicit repair targets
    /// anti-entropy owes. Durable (corruption evidence survives a
    /// crash); empty on every benign run, so the hot apply path guards
    /// on `is_empty` and pays nothing for it.
    quarantined: std::collections::HashSet<(ReplicaId, u64)>,
    /// Has any `last_from` clock advanced since the last frontier fold?
    /// `stability_frontier` is a pure function of `last_from`, so while
    /// this is false [`Replica::run_gc`] can reuse its cached frontier
    /// instead of re-folding every clock each round.
    frontier_dirty: bool,
    /// `(replica set, frontier)` of the last fold `run_gc` computed.
    gc_cache: Option<(Vec<ReplicaId>, VClock)>,
    /// Monotone counter bumped whenever any `last_from` clock advances —
    /// the event [`Replica::stability_frontier_cached`] keys its cache
    /// on. Deliberately separate from `frontier_dirty`/`gc_cache`: the
    /// escrow path folding the frontier must never clear GC's dirty
    /// flag, or a later [`Replica::run_gc`] would reuse a stale cache.
    clock_epoch: u64,
    /// `(clock epoch, replica set, frontier)` of the last fold the
    /// escrow/transfer path computed via
    /// [`Replica::stability_frontier_cached`].
    escrow_frontier: Option<(u64, Vec<ReplicaId>, VClock)>,
    pub stats: ReplicaStats,
}

impl Replica {
    pub fn new(id: ReplicaId) -> Replica {
        Replica::with_shards(id, DEFAULT_SHARDS)
    }

    /// A replica with an explicit shard count (≥ 1). Shard count is a
    /// local layout choice: it never changes the replication protocol,
    /// the durable log, or any observable state — the equivalence tests
    /// pin exactly that.
    pub fn with_shards(id: ReplicaId, shards: usize) -> Replica {
        assert!(shards >= 1, "a replica needs at least one shard");
        Replica {
            id,
            clock: VClock::new(),
            lamport: 0,
            next_tag: 0,
            shards: (0..shards).map(|_| ShardTable::default()).collect(),
            run_scratch: Vec::new(),
            shard_run_counts: vec![0; shards],
            dispatch: ApplyDispatch::Sequential,
            pool: None,
            pending: HashMap::new(),
            pending_order: Vec::new(),
            pending_per_origin: Vec::new(),
            outbox: Vec::new(),
            log: Vec::new(),
            log_total: 0,
            apply_idx: 0,
            log_version: 0,
            last_from: BTreeMap::new(),
            quarantined: std::collections::HashSet::new(),
            frontier_dirty: true,
            gc_cache: None,
            clock_epoch: 0,
            escrow_frontier: None,
            stats: ReplicaStats::default(),
        }
    }

    pub fn id(&self) -> ReplicaId {
        self.id
    }

    /// Number of key-space shards (a local layout choice; see
    /// [`Replica::with_shards`]).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard owning `key`.
    pub fn shard_of_key(&self, key: &Key) -> usize {
        shard_of(key, self.shards.len())
    }

    /// Per-shard apply counters (deterministic; see [`ShardStats`]).
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards.iter().map(|s| s.stats).collect()
    }

    /// Enable or disable pool dispatch for wide batches (`on` maps to
    /// [`ApplyDispatch::Pool`], `off` to [`ApplyDispatch::Sequential`]).
    /// Only the threaded transport turns this on; deterministic
    /// transports keep the fixed sequential shard order. Either way the
    /// resulting state and counters are identical — shards are disjoint.
    pub fn set_parallel_apply(&mut self, on: bool) {
        self.set_apply_dispatch(if on {
            ApplyDispatch::Pool
        } else {
            ApplyDispatch::Sequential
        });
    }

    /// Select how wide batches dispatch their per-shard runs. Leaving
    /// [`ApplyDispatch::Pool`] tears the worker pool down (joining its
    /// threads); returning to it re-spawns workers lazily on the next
    /// wide batch — so toggling mid-stream is safe and observable state
    /// never depends on the mode.
    pub fn set_apply_dispatch(&mut self, dispatch: ApplyDispatch) {
        self.dispatch = dispatch;
        if dispatch != ApplyDispatch::Pool {
            self.pool = None;
        }
    }

    /// The current wide-batch dispatch mode.
    pub fn apply_dispatch(&self) -> ApplyDispatch {
        self.dispatch
    }

    /// Whether the persistent worker pool is currently spawned (it is
    /// lazy: `false` until the first wide batch under
    /// [`ApplyDispatch::Pool`], and `false` again after a mode change
    /// tears it down).
    pub fn pool_active(&self) -> bool {
        self.pool.is_some()
    }

    pub fn clock(&self) -> &VClock {
        &self.clock
    }

    pub fn lamport(&self) -> u64 {
        self.lamport
    }

    /// Read an object (committed state only; in-transaction reads go
    /// through the transaction's overlay).
    pub fn object(&self, key: &Key) -> Option<&Object> {
        self.shards[shard_of(key, self.shards.len())]
            .objects
            .get(key)
    }

    pub(crate) fn insert_object(&mut self, key: Key, kind: ObjectKind, obj: Object) {
        let s = shard_of(&key, self.shards.len());
        let shard = &mut self.shards[s];
        shard.kinds.insert(key.clone(), kind);
        shard.objects.insert(key, obj);
    }

    /// The declared kind of a key, if known.
    pub fn kind_of(&self, key: &Key) -> Option<ObjectKind> {
        self.shards[shard_of(key, self.shards.len())]
            .kinds
            .get(key)
            .copied()
    }

    pub fn object_count(&self) -> usize {
        self.shards.iter().map(|s| s.objects.len()).sum()
    }

    /// Allocate a fresh unique tag.
    pub(crate) fn alloc_tag(&mut self) -> Tag {
        self.next_tag += 1;
        Tag::new(self.id, self.next_tag)
    }

    /// Begin a highly-available transaction on this replica.
    pub fn begin(&mut self) -> Transaction<'_> {
        Transaction::new(self)
    }

    // ------------------------------------------------------------------
    // Commit / replication
    // ------------------------------------------------------------------

    /// Called by [`Transaction::commit`]: install the batch locally and
    /// stage it for replication.
    pub(crate) fn commit_batch(&mut self, batch: UpdateBatch) {
        debug_assert_eq!(batch.origin, self.id);
        debug_assert!(batch.deliverable_at(&self.clock));
        let batch = Arc::new(batch);
        self.apply_batch(&batch);
        self.lamport = self.lamport.max(batch.lamport);
        self.last_from.insert(self.id, batch.clock.clone());
        self.frontier_dirty = true;
        self.clock_epoch += 1;
        self.log_append(Arc::clone(&batch));
        self.outbox.push(batch);
        self.stats.commits += 1;
    }

    /// The next local commit's clock (current clock with own component
    /// ticked).
    pub(crate) fn next_commit_clock(&self) -> VClock {
        let mut c = self.clock.clone();
        c.tick(self.id);
        c
    }

    /// Drain the batches committed here since the last call (transport
    /// pickup). Fan-out transports clone the returned `Arc`s — the batch
    /// payload itself is shared, never copied per destination.
    pub fn take_outbox(&mut self) -> Vec<Arc<UpdateBatch>> {
        std::mem::take(&mut self.outbox)
    }

    /// Receive a remote batch: buffer it and apply everything that has
    /// become deliverable. Duplicates (including redeliveries after a
    /// crash or an anti-entropy re-send) are detected via the batch clock
    /// and the `(origin, seq)` index and dropped, so delivery is
    /// idempotent. Returns the number of batches applied.
    pub fn receive(&mut self, batch: impl Into<Arc<UpdateBatch>>) -> usize {
        let batch = batch.into();
        let valid = batch.integrity_ok() && batch.well_formed();
        self.receive_prevalidated(batch, valid)
    }

    /// [`Replica::receive`] with the integrity gate's verdict computed by
    /// the caller. The threaded transport's ingest stage runs the exact
    /// same predicate (`integrity_ok() && well_formed()`) off the node
    /// lock so seal verification overlaps with shard apply; passing the
    /// verdict here skips re-hashing the payload under the lock. The
    /// caller must have evaluated that predicate on this very batch — a
    /// forged `valid` would bypass the quarantine ledger.
    pub fn receive_prevalidated(
        &mut self,
        batch: impl Into<Arc<UpdateBatch>>,
        valid: bool,
    ) -> usize {
        let batch = batch.into();
        self.stats.batches_received += 1;
        // Integrity gate, *before* the clock comparisons: a corrupt batch
        // carries an untrusted envelope, and a forged-stale sequence
        // would otherwise masquerade as an already-seen duplicate and
        // vanish without a trace. Quarantined input is counted, recorded
        // as a repair target, and never touches replica state.
        if !valid {
            self.quarantine(&batch);
            return 0;
        }
        if batch.origin == self.id || batch.clock.le(&self.clock) {
            return 0; // own or already-seen batch
        }
        // Fast path: nothing buffered and the batch is immediately
        // deliverable — the common in-order case. Applying directly is
        // exactly what buffer-then-drain would do, minus the index
        // round-trip.
        if self.pending_order.is_empty() && batch.clock.deliverable_from(batch.origin, &self.clock)
        {
            self.apply_batch(&batch);
            self.lamport = self.lamport.max(batch.lamport);
            self.last_from
                .entry(batch.origin)
                .and_modify(|c| c.merge(&batch.clock))
                .or_insert_with(|| batch.clock.clone());
            self.frontier_dirty = true;
            self.clock_epoch += 1;
            self.note_repair(&batch);
            self.log_append(batch);
            return 1;
        }
        let key = (batch.origin, batch.seq);
        if self.pending.contains_key(&key) {
            return 0; // duplicate of an already-buffered batch
        }
        let o = batch.origin.0 as usize;
        if o >= self.pending_per_origin.len() {
            self.pending_per_origin.resize(o + 1, 0);
        }
        self.pending_per_origin[o] += 1;
        self.pending_order.push(key);
        self.pending.insert(
            key,
            PendingSlot {
                pos: self.pending_order.len() - 1,
                batch,
            },
        );
        self.drain_pending()
    }

    /// Remove the pending batch at position `pos`, swap-remove style (the
    /// last buffered batch takes its slot).
    fn pending_swap_remove(&mut self, pos: usize) -> Arc<UpdateBatch> {
        let key = self.pending_order[pos];
        let last = self.pending_order.len() - 1;
        self.pending_order.swap_remove(pos);
        if pos != last {
            let moved = self.pending_order[pos];
            self.pending
                .get_mut(&moved)
                .expect("order and index agree")
                .pos = pos;
        }
        self.pending_per_origin[key.0 .0 as usize] -= 1;
        self.pending
            .remove(&key)
            .expect("order and index agree")
            .batch
    }

    fn drain_pending(&mut self) -> usize {
        let mut applied = 0;
        loop {
            // Only one batch per origin can be deliverable: the one whose
            // sequence is next after the applied clock. Probe exactly
            // those instead of scanning the whole buffer; among the ready
            // ones, apply the first by buffer position — the same batch a
            // front-to-back scan would have picked.
            let mut next: Option<usize> = None;
            for (o, &count) in self.pending_per_origin.iter().enumerate() {
                if count == 0 {
                    continue;
                }
                let origin = ReplicaId(o as u16);
                let want = self.clock.get(origin) + 1;
                if let Some(slot) = self.pending.get(&(origin, want)) {
                    if slot.batch.clock.deliverable_from(origin, &self.clock)
                        && next.is_none_or(|p| slot.pos < p)
                    {
                        next = Some(slot.pos);
                    }
                }
            }
            let Some(pos) = next else { break };
            let batch = self.pending_swap_remove(pos);
            self.apply_batch(&batch);
            self.lamport = self.lamport.max(batch.lamport);
            self.last_from
                .entry(batch.origin)
                .and_modify(|c| c.merge(&batch.clock))
                .or_insert_with(|| batch.clock.clone());
            self.frontier_dirty = true;
            self.clock_epoch += 1;
            self.note_repair(&batch);
            self.log_append(batch);
            applied += 1;
        }
        // Purge buffered copies whose content arrived through another
        // path (duplicate delivery, anti-entropy) in the meantime: a
        // buffered batch is stale exactly when its sequence is already
        // covered by the applied clock. The clock only moves when
        // something applied, so the purge is skipped otherwise.
        if applied > 0 {
            let clock = &self.clock;
            let pending = &mut self.pending;
            let per_origin = &mut self.pending_per_origin;
            self.pending_order.retain(|&(origin, seq)| {
                if seq <= clock.get(origin) {
                    pending.remove(&(origin, seq));
                    per_origin[origin.0 as usize] -= 1;
                    false
                } else {
                    true
                }
            });
            for (pos, key) in self.pending_order.iter().enumerate() {
                self.pending
                    .get_mut(key)
                    .expect("order and index agree")
                    .pos = pos;
            }
        }
        applied
    }

    fn apply_batch(&mut self, batch: &UpdateBatch) {
        // Split the batch into same-key *runs* (the per-batch
        // object-handle cache: one object resolution per run, kind-map
        // touch only on creation) and route each run to the shard that
        // owns its key. A run's updates share one key, so a run never
        // straddles shards, and distinct keys are independent objects —
        // shards can therefore apply in any order (fixed index order
        // here; concurrently on the threaded transport) and produce the
        // identical state and identical counters.
        let updates = &batch.updates;
        let nshards = self.shards.len();
        self.run_scratch.clear();
        self.shard_run_counts.fill(0);
        let mut i = 0;
        while i < updates.len() {
            let key = &updates[i].0;
            let mut j = i + 1;
            while j < updates.len() && updates[j].0 == *key {
                j += 1;
            }
            let shard = shard_of(key, nshards);
            self.shard_run_counts[shard] += 1;
            self.run_scratch
                .push((shard as u32, i as u32, (j - i) as u32));
            i = j;
        }
        // Per-batch apply-queue depth high-water mark, recorded before
        // dispatch (the parallel path must not race on shard stats).
        for (shard, &queued) in self.shards.iter_mut().zip(&self.shard_run_counts) {
            if u64::from(queued) > shard.stats.max_batch_runs {
                shard.stats.max_batch_runs = u64::from(queued);
            }
        }
        let before = self.shard_totals();
        let runs = &self.run_scratch;
        let counts = &self.shard_run_counts;
        let wide = nshards > 1 && updates.len() >= PARALLEL_APPLY_MIN_UPDATES;
        match self.dispatch {
            ApplyDispatch::Pool if wide => {
                // Worker-queue depth high-water marks, recorded before
                // dispatch (workers must not race on shard stats).
                for (shard, &queued) in self.shards.iter_mut().zip(counts) {
                    if u64::from(queued) > shard.stats.pool_queued_hwm {
                        shard.stats.pool_queued_hwm = u64::from(queued);
                    }
                }
                if self.pool.is_none() {
                    self.pool = Some(crate::pool::ShardPool::new(nshards));
                }
                let pool = self.pool.as_ref().expect("pool just ensured");
                let jobs = pool.dispatch(&mut self.shards, updates, runs, counts);
                self.stats.pool_batches += 1;
                self.stats.pool_dispatches += jobs;
            }
            ApplyDispatch::SpawnPerBatch if wide => {
                // The legacy per-batch scoped-spawn dispatch, retained
                // only so the replication benchmark can A/B the pool
                // against the exact path it replaced.
                std::thread::scope(|scope| {
                    for (s, shard) in self.shards.iter_mut().enumerate() {
                        if counts[s] == 0 {
                            continue;
                        }
                        scope.spawn(move || {
                            for &(rs, start, len) in runs {
                                if rs as usize == s {
                                    apply_run(shard, updates, start as usize, len as usize);
                                }
                            }
                        });
                    }
                });
            }
            _ => {
                for (s, shard) in self.shards.iter_mut().enumerate() {
                    if counts[s] == 0 {
                        continue;
                    }
                    for &(rs, start, len) in runs {
                        if rs as usize == s {
                            apply_run(shard, updates, start as usize, len as usize);
                        }
                    }
                }
            }
        }
        let after = self.shard_totals();
        self.stats.apply_table_lookups += after.0 - before.0;
        self.stats.updates_applied += after.1 - before.1;
        // Escrow rights-transfer accounting. `apply_batch` runs exactly
        // once per applied batch (duplicates are dropped before
        // delivery), so each transfer is counted once per replica: at
        // the donor via its own local commit and at every other replica
        // via replication.
        for (_, _, op) in updates {
            if let ObjectOp::BCounter(BCounterOp::Transfer { from, to, n }) = op {
                if *from == self.id {
                    self.stats.rights_transfers_out += 1;
                    self.stats.rights_units_out += n;
                }
                if *to == self.id {
                    self.stats.rights_transfers_in += 1;
                    self.stats.rights_units_in += n;
                }
            }
        }
        self.clock.merge(&batch.clock);
        self.stats.batches_applied += 1;
    }

    /// `(table_lookups, updates_applied)` summed over shards — the global
    /// stat deltas `apply_batch` folds back after dispatch.
    fn shard_totals(&self) -> (u64, u64) {
        self.shards.iter().fold((0, 0), |(l, u), s| {
            (l + s.stats.table_lookups, u + s.stats.updates_applied)
        })
    }

    /// Refuse a batch that failed the integrity gate: count it, classify
    /// the failure, and record the claimed `(origin, seq)` as an explicit
    /// repair target. The id pair is untrusted (that is *why* the batch
    /// is here) but it is still the best available description of the
    /// gap the corruption opened; when the origin's clean copy has
    /// already applied there is no gap left and the slot counts repaired
    /// immediately. A structurally impossible slot (`seq == 0` — no real
    /// commit carries it) names nothing a clean copy could ever fill, so
    /// it is closed on the spot instead of pending forever.
    fn quarantine(&mut self, batch: &UpdateBatch) {
        self.stats.batches_quarantined += 1;
        if !batch.integrity_ok() {
            self.stats.quarantine_checksum += 1;
        } else {
            self.stats.quarantine_malformed += 1;
        }
        if batch.seq < 1 || self.clock.get(batch.origin) >= batch.seq {
            self.stats.quarantine_repaired += 1;
        } else {
            self.quarantined.insert((batch.origin, batch.seq));
        }
    }

    /// A clean batch applied: if its slot was quarantined earlier, the
    /// gap is closed — anti-entropy (or a late honest duplicate) repaired
    /// it.
    fn note_repair(&mut self, batch: &UpdateBatch) {
        if !self.quarantined.is_empty() && self.quarantined.remove(&(batch.origin, batch.seq)) {
            self.stats.quarantine_repaired += 1;
        }
    }

    /// Quarantined `(origin, seq)` slots still awaiting a clean copy.
    /// Empty ⇔ every corruption this replica saw has been repaired (or
    /// it never saw any — distinguish via `stats.batches_quarantined`).
    pub fn unrepaired_quarantine(&self) -> usize {
        self.quarantined.len()
    }

    /// The recorded log holes for `origin` (anti-entropy repair targets).
    /// Empty under honest operation.
    pub fn missing_ranges(&self, origin: ReplicaId) -> Vec<(u64, u64)> {
        self.log
            .get(origin.0 as usize)
            .map(|seg| seg.missing.clone())
            .unwrap_or_default()
    }

    /// Number of buffered (not yet causally deliverable) batches.
    pub fn pending_count(&self) -> usize {
        self.pending_order.len()
    }

    /// `(origin, seq)` ids of every buffered batch awaiting causal
    /// predecessors. Anti-entropy frontiers fold these in: a batch the
    /// replica already holds never needs re-shipping.
    pub fn pending_ids(&self) -> &[(ReplicaId, u64)] {
        &self.pending_order
    }

    // ------------------------------------------------------------------
    // Crash / recovery (nemesis support)
    // ------------------------------------------------------------------

    /// Crash the replica: volatile state (the outbox awaiting transport
    /// pickup and the buffered pending batches) is lost; durable state
    /// (objects, clocks, the applied-batch log) survives. Returns the
    /// number of batches lost. Recovery happens through anti-entropy:
    /// peers re-send from their logs ([`Replica::batches_since`]) and
    /// this replica re-sends its own logged commits.
    pub fn crash(&mut self) -> usize {
        let lost = self.outbox.len() + self.pending_order.len();
        self.outbox.clear();
        self.pending.clear();
        self.pending_order.clear();
        self.pending_per_origin.fill(0);
        self.stats.crashes += 1;
        lost
    }

    /// Append an applied batch to its origin's log segment. Causal
    /// delivery appends gap-free (`seq == next_seq`), but the segment is
    /// gap-tolerant: an out-of-run append records or fills an explicit
    /// hole instead of corrupting the seek index (or panicking).
    fn log_append(&mut self, batch: Arc<UpdateBatch>) {
        let o = batch.origin.0 as usize;
        if o >= self.log.len() {
            self.log.resize_with(o + 1, OriginLog::new);
        }
        let seg = &mut self.log[o];
        let next = seg.next_seq();
        if batch.seq > next {
            // A hole in the origin's run. The causal path never produces
            // one (the clock gates appends), so this is defensive depth:
            // the missing range becomes an explicit anti-entropy target
            // rather than a broken invariant.
            seg.record_gap(next, batch.seq - 1);
            seg.entries.push_back((self.apply_idx, batch));
        } else if batch.seq < next {
            if seg.fill(batch.seq) {
                // A clean copy closing a recorded hole: splice it into
                // sequence order so the seek index stays valid.
                let pos = seg.seek(batch.seq).min(seg.entries.len());
                seg.entries.insert(pos, (self.apply_idx, batch));
            } else {
                return; // true duplicate of a logged batch
            }
        } else {
            seg.entries.push_back((self.apply_idx, batch));
        }
        self.apply_idx += 1;
        self.log_total += 1;
        self.log_version += 1;
    }

    /// Anti-entropy pull: every logged batch not yet covered by `since`
    /// (the requesting replica's applied clock), in application order —
    /// so a recovering or drop-afflicted peer can close its causal gaps.
    /// Each origin segment is seeked by sequence number, so the pull
    /// costs O(origins + missing), independent of the log length.
    pub fn batches_since(&mut self, since: &VClock) -> Vec<Arc<UpdateBatch>> {
        let mut hits: Vec<(u64, Arc<UpdateBatch>)> = Vec::new();
        let mut scanned = 0u64;
        for (o, seg) in self.log.iter().enumerate() {
            if seg.entries.is_empty() {
                continue;
            }
            scanned += 1; // segment probe
            let have = since.get(ReplicaId(o as u16));
            // Compacted batches are causally stable, hence already
            // applied at every replica that can ask — the requester's
            // clock always covers them.
            debug_assert!(have + 1 >= seg.first_seq || seg.entries.is_empty());
            let start = (have + 1).max(seg.first_seq);
            // The seek subtracts recorded holes below `start`, so the
            // returned run is every logged batch with sequence ≥ start
            // whether or not the segment has gaps.
            let idx = seg.seek(start).min(seg.entries.len());
            for e in seg.entries.iter().skip(idx) {
                hits.push(e.clone());
            }
        }
        // Restore global application order (pulls feed causal delivery in
        // the exact order a full log scan used to produce).
        hits.sort_unstable_by_key(|(apply_idx, _)| *apply_idx);
        self.stats.anti_entropy_scanned += scanned + hits.len() as u64;
        self.stats.anti_entropy_sent += hits.len() as u64;
        hits.into_iter().map(|(_, b)| b).collect()
    }

    /// Length of the durable applied-batch log (observability for the
    /// compaction tests).
    pub fn log_len(&self) -> usize {
        self.log_total
    }

    /// Monotonic counter bumped on every log append or compaction.
    /// [`AeCursors`] compares it to detect whether a peer's last pull
    /// result could have changed.
    pub fn log_version(&self) -> u64 {
        self.log_version
    }

    /// The full durable log in application order (test oracle; the hot
    /// path never materializes this).
    pub fn log_snapshot(&self) -> Vec<Arc<UpdateBatch>> {
        let mut all: Vec<(u64, Arc<UpdateBatch>)> = self
            .log
            .iter()
            .flat_map(|seg| seg.entries.iter().cloned())
            .collect();
        all.sort_unstable_by_key(|(apply_idx, _)| *apply_idx);
        all.into_iter().map(|(_, b)| b).collect()
    }

    /// Delivery idempotence oracle: every applied batch advances exactly
    /// one vector-clock component by one, so the total of the applied
    /// clock must equal the number of batches applied. A double-apply
    /// breaks this equality. Checked by the nemesis driver after every
    /// hostile schedule.
    pub fn applied_consistent(&self) -> bool {
        self.stats.batches_applied == self.clock.total()
    }

    // ------------------------------------------------------------------
    // Stability & GC
    // ------------------------------------------------------------------

    /// The causal-stability frontier over the given replica set: the
    /// pointwise meet of the latest clocks received from every replica.
    /// Every future delivery dominates this frontier, so CRDT metadata at
    /// or below it can be compacted.
    pub fn stability_frontier(&self, replicas: &[ReplicaId]) -> VClock {
        // One fold over the dense component slices: no intermediate
        // VClock per replica (the old meet chain allocated one each).
        let mut iter = replicas.iter();
        let Some(first) = iter.next() else {
            return VClock::new();
        };
        let first = self
            .last_from
            .get(first)
            .map(VClock::as_slice)
            .unwrap_or(&[]);
        if replicas.len() == 1 {
            // Single-replica frontier is that replica's clock verbatim
            // (the meet chain never restricted a lone clock).
            return VClock::from_raw(first.to_vec());
        }
        let mut mins = first.to_vec();
        for r in iter {
            let c = self.last_from.get(r).map(VClock::as_slice).unwrap_or(&[]);
            // A missing component is zero, so the min vector can only
            // shrink to the shorter slice.
            mins.truncate(c.len());
            if mins.is_empty() {
                return VClock::new();
            }
            for (m, &v) in mins.iter_mut().zip(c) {
                if v < *m {
                    *m = v;
                }
            }
        }
        // The meet chain only ever set components named in `replicas`;
        // zero everything else to preserve that restriction.
        let mut named = vec![false; mins.len()];
        for &r in replicas {
            if let Some(k) = named.get_mut(r.0 as usize) {
                *k = true;
            }
        }
        for (m, keep) in mins.iter_mut().zip(&named) {
            if !keep {
                *m = 0;
            }
        }
        VClock::from_raw(mins)
    }

    /// Event-driven frontier fold for the escrow/transfer path: returns
    /// the same value as [`Replica::stability_frontier`] but only
    /// recomputes the fold when a clock actually advanced since the
    /// last call (or the replica set changed). Provisioning policies
    /// poll this per operation to decide whether an earlier
    /// rights-transfer is causally stable; without the cache every such
    /// poll would re-fold all clocks even on a quiet replica. The cache
    /// is keyed on `clock_epoch` and kept apart from `run_gc`'s
    /// `frontier_dirty`/`gc_cache` pair so neither path can invalidate
    /// or stale-serve the other.
    pub fn stability_frontier_cached(&mut self, replicas: &[ReplicaId]) -> VClock {
        if let Some((epoch, set, frontier)) = &self.escrow_frontier {
            if *epoch == self.clock_epoch && set == replicas {
                self.stats.frontier_cache_hits += 1;
                return frontier.clone();
            }
        }
        let frontier = self.stability_frontier(replicas);
        self.stats.frontier_folds += 1;
        self.escrow_frontier = Some((self.clock_epoch, replicas.to_vec(), frontier.clone()));
        frontier
    }

    /// Compact every object's causal metadata under the stability
    /// frontier.
    ///
    /// The frontier fold is **event-driven**: `stability_frontier` is a
    /// pure function of `last_from`, and `last_from` only moves when a
    /// batch applies. If nothing applied since the last `run_gc` over the
    /// same replica set, the frontier is unchanged *and* the store state
    /// is unchanged, so compaction under the cached frontier would be an
    /// exact no-op — the call preserves the old observable behaviour
    /// (including `gc_runs` accounting) without re-folding every clock.
    pub fn run_gc(&mut self, replicas: &[ReplicaId]) {
        if !self.frontier_dirty {
            if let Some((set, frontier)) = &self.gc_cache {
                if set == replicas {
                    if frontier.is_empty() {
                        return;
                    }
                    // Old behaviour: a non-empty frontier compacts (here
                    // idempotently, on unchanged state) and counts a run.
                    self.stats.gc_runs += 1;
                    return;
                }
            }
        }
        let frontier = self.stability_frontier(replicas);
        self.stats.frontier_folds += 1;
        self.frontier_dirty = false;
        self.gc_cache = Some((replicas.to_vec(), frontier.clone()));
        if frontier.is_empty() {
            return;
        }
        for shard in &mut self.shards {
            for obj in shard.objects.values_mut() {
                obj.compact(&frontier);
            }
        }
        // Causally stable batches have been received everywhere, so no
        // anti-entropy pull can ever need them again — compact the log.
        // Per-origin batch clocks grow monotonically with the sequence,
        // so the stable batches form a prefix of each segment; dropping
        // it advances `first_seq`, which keeps the seek index valid.
        let mut compacted = false;
        for seg in &mut self.log {
            // A segment with recorded holes keeps everything: its prefix
            // is not a contiguous stable run, and the holes themselves
            // are outstanding repair targets. Holes only exist under an
            // adversarial transport, so honest compaction is unchanged.
            if !seg.missing.is_empty() {
                continue;
            }
            while let Some((_, b)) = seg.entries.front() {
                if b.clock.le(&frontier) {
                    seg.entries.pop_front();
                    seg.first_seq += 1;
                    self.log_total -= 1;
                    compacted = true;
                } else {
                    break;
                }
            }
        }
        if compacted {
            self.log_version += 1;
        }
        self.stats.gc_runs += 1;
    }

    /// Ensure an object of the given kind exists (no-op if present).
    /// Errors if the key exists with a different kind.
    pub fn ensure_object(&mut self, key: &Key, kind: ObjectKind) -> Result<(), StoreError> {
        let s = shard_of(key, self.shards.len());
        let shard = &mut self.shards[s];
        match shard.objects.get(key) {
            Some(existing) => {
                let fresh = Object::new(kind, creation_owner());
                if std::mem::discriminant(existing) != std::mem::discriminant(&fresh) {
                    return Err(StoreError::KindMismatch {
                        key: key.clone(),
                        existing: existing.type_name(),
                    });
                }
                Ok(())
            }
            None => {
                shard.kinds.insert(key.clone(), kind);
                shard
                    .objects
                    .insert(key.clone(), Object::new(kind, creation_owner()));
                Ok(())
            }
        }
    }
}

/// Objects must be created identically at every replica, so initial
/// escrow rights (bounded counters) conventionally belong to replica 0.
pub(crate) fn creation_owner() -> ReplicaId {
    ReplicaId(0)
}

/// Per-peer anti-entropy cursors, held by whoever drives repeated rounds
/// (a [`crate::Cluster`], the simulator). For each `(puller, source)`
/// pair the cursor caches the puller's applied clock and the source's log
/// version as of the last pull; when neither has moved and that pull came
/// back empty, the next round skips the pair outright — a pull is a pure
/// function of exactly those two inputs. In a converged cluster this
/// makes a round O(pairs) instead of O(pairs × log).
///
/// The cursor never changes *what* a pull returns: the batch set is
/// always derived from the puller's authoritative clock, so dropped or
/// refused deliveries are re-sent exactly as without cursors (schedule
/// digests are bit-identical), and GC compaction — which only discards
/// causally stable prefixes every possible puller already covers — just
/// bumps the log version and forces one fresh (still cheap, seek-based)
/// pull.
#[derive(Debug, Default)]
pub struct AeCursors {
    map: HashMap<(ReplicaId, ReplicaId), AeCursor>,
}

#[derive(Debug)]
struct AeCursor {
    peer_clock: VClock,
    log_version: u64,
    drained: bool,
}

impl AeCursors {
    pub fn new() -> AeCursors {
        AeCursors::default()
    }

    /// Would a pull by `dst` (applied clock `clock`) from `src` (log
    /// version `version`) return anything it did not already return last
    /// time? False only when the last pull was empty and both inputs are
    /// unchanged.
    pub fn should_pull(
        &self,
        dst: ReplicaId,
        src: ReplicaId,
        clock: &VClock,
        version: u64,
    ) -> bool {
        match self.map.get(&(dst, src)) {
            Some(c) => !(c.drained && c.log_version == version && c.peer_clock == *clock),
            None => true,
        }
    }

    /// Record the inputs and outcome of a pull that actually ran.
    pub fn record(
        &mut self,
        dst: ReplicaId,
        src: ReplicaId,
        clock: VClock,
        version: u64,
        drained: bool,
    ) {
        self.map.insert(
            (dst, src),
            AeCursor {
                peer_clock: clock,
                log_version: version,
                drained,
            },
        );
    }
}

/// One full pairwise anti-entropy round over a replica set: every
/// replica pulls the batches it is missing from every peer's durable
/// log. Returns the number of batches applied. Shared by
/// [`crate::Cluster::anti_entropy`] and the simulator's post-run repair.
pub fn anti_entropy_round(replicas: &mut [Replica]) -> usize {
    anti_entropy_round_with(replicas, &mut AeCursors::new())
}

/// Run [`anti_entropy_round_with`] to a fixpoint and return how many
/// *productive* rounds it took (rounds that applied at least one batch;
/// an already-converged set costs zero). This is the quiesce-time
/// instrumentation the bounded-liveness oracle audits: after the last
/// injected fault every replica must converge within N rounds, and this
/// count is exactly the N a given run needed.
pub fn anti_entropy_fixpoint_with(replicas: &mut [Replica], cursors: &mut AeCursors) -> u64 {
    let mut rounds = 0;
    while anti_entropy_round_with(replicas, cursors) > 0 {
        rounds += 1;
    }
    rounds
}

/// [`anti_entropy_round`] with per-peer cursors carried across rounds:
/// pairs whose last pull drained and whose inputs are unchanged are
/// skipped without touching the source log.
pub fn anti_entropy_round_with(replicas: &mut [Replica], cursors: &mut AeCursors) -> usize {
    let mut applied = 0;
    let n = replicas.len();
    for dst in 0..n {
        for src in 0..n {
            if src == dst {
                continue;
            }
            let (d, s) = (replicas[dst].id(), replicas[src].id());
            let version = replicas[src].log_version();
            let since = replicas[dst].clock().clone();
            if !cursors.should_pull(d, s, &since, version) {
                continue;
            }
            let missing = replicas[src].batches_since(&since);
            cursors.record(d, s, since, version, missing.is_empty());
            for b in missing {
                applied += replicas[dst].receive(b);
            }
        }
    }
    applied
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipa_crdt::Val;

    fn r(i: u16) -> ReplicaId {
        ReplicaId(i)
    }

    #[test]
    fn commit_and_replicate_one_batch() {
        let mut a = Replica::new(r(0));
        let mut b = Replica::new(r(1));
        let mut tx = a.begin();
        tx.ensure("set", ObjectKind::AWSet).unwrap();
        tx.aw_add("set", Val::str("x")).unwrap();
        tx.commit();
        assert_eq!(a.stats.commits, 1);
        assert!(a
            .object(&"set".into())
            .unwrap()
            .set_contains(&Val::str("x"))
            .unwrap());

        for batch in a.take_outbox() {
            assert_eq!(b.receive(batch), 1);
        }
        assert!(b
            .object(&"set".into())
            .unwrap()
            .set_contains(&Val::str("x"))
            .unwrap());
        assert_eq!(a.clock(), b.clock());
    }

    #[test]
    fn out_of_order_batches_are_buffered() {
        let mut a = Replica::new(r(0));
        let mut b = Replica::new(r(1));
        // Two commits at A.
        for v in ["x", "y"] {
            let mut tx = a.begin();
            tx.ensure("set", ObjectKind::AWSet).unwrap();
            tx.aw_add("set", Val::str(v)).unwrap();
            tx.commit();
        }
        let mut batches = a.take_outbox();
        assert_eq!(batches.len(), 2);
        let second = batches.pop().unwrap();
        let first = batches.pop().unwrap();
        // Deliver out of order: the second buffers, then both apply.
        assert_eq!(b.receive(second), 0);
        assert_eq!(b.pending_count(), 1);
        assert_eq!(b.receive(first), 2);
        assert_eq!(b.pending_count(), 0);
        let obj = b.object(&"set".into()).unwrap();
        assert!(obj.set_contains(&Val::str("x")).unwrap());
        assert!(obj.set_contains(&Val::str("y")).unwrap());
    }

    #[test]
    fn duplicate_batches_are_ignored() {
        let mut a = Replica::new(r(0));
        let mut b = Replica::new(r(1));
        let mut tx = a.begin();
        tx.ensure("c", ObjectKind::PNCounter).unwrap();
        tx.counter_add("c", 5).unwrap();
        tx.commit();
        let batch = a.take_outbox().pop().unwrap();
        assert_eq!(b.receive(batch.clone()), 1);
        assert_eq!(b.receive(batch), 0, "duplicate must be dropped");
        assert_eq!(
            b.object(&"c".into())
                .unwrap()
                .as_pncounter()
                .unwrap()
                .value(),
            5
        );
    }

    #[test]
    fn duplicate_of_buffered_batch_is_indexed_out() {
        let mut a = Replica::new(r(0));
        let mut b = Replica::new(r(1));
        for v in ["x", "y"] {
            let mut tx = a.begin();
            tx.ensure("set", ObjectKind::AWSet).unwrap();
            tx.aw_add("set", Val::str(v)).unwrap();
            tx.commit();
        }
        let mut batches = a.take_outbox();
        let second = batches.pop().unwrap();
        let first = batches.pop().unwrap();
        // Buffer the out-of-order batch, then redeliver the same copy.
        assert_eq!(b.receive(Arc::clone(&second)), 0);
        assert_eq!(b.receive(Arc::clone(&second)), 0, "buffered duplicate");
        assert_eq!(b.pending_count(), 1, "the duplicate was not re-buffered");
        assert_eq!(b.receive(first), 2);
        assert!(b.applied_consistent());
    }

    #[test]
    fn causal_chain_across_three_replicas() {
        // A writes, B reads A's write and writes, C must see them in order.
        let mut a = Replica::new(r(0));
        let mut b = Replica::new(r(1));
        let mut c = Replica::new(r(2));

        let mut tx = a.begin();
        tx.ensure("reg", ObjectKind::LWW).unwrap();
        tx.lww_write("reg", Val::int(1)).unwrap();
        tx.commit();
        let batch_a = a.take_outbox().pop().unwrap();
        b.receive(batch_a.clone());

        let mut tx = b.begin();
        tx.ensure("reg", ObjectKind::LWW).unwrap();
        tx.lww_write("reg", Val::int(2)).unwrap();
        tx.commit();
        let batch_b = b.take_outbox().pop().unwrap();

        // C receives B's batch first: it depends causally on A's.
        assert_eq!(c.receive(batch_b), 0);
        assert_eq!(c.pending_count(), 1);
        assert_eq!(c.receive(batch_a), 2);
        assert_eq!(
            c.object(&"reg".into()).unwrap().as_lww().unwrap().get(),
            Some(&Val::int(2)),
            "the causally later write wins"
        );
    }

    #[test]
    fn stability_frontier_and_gc() {
        let replicas = [r(0), r(1)];
        let mut a = Replica::new(r(0));
        let mut b = Replica::new(r(1));
        // A adds then removes an element from a rem-wins set.
        let mut tx = a.begin();
        tx.ensure("rw", ObjectKind::RWSet).unwrap();
        tx.rw_add("rw", Val::str("x")).unwrap();
        tx.commit();
        let mut tx = a.begin();
        tx.rw_remove("rw", Val::str("x")).unwrap();
        tx.commit();
        for batch in a.take_outbox() {
            b.receive(batch);
        }
        // B acknowledges by committing (its batch clock covers A's ops).
        let mut tx = b.begin();
        tx.ensure("ack", ObjectKind::PNCounter).unwrap();
        tx.counter_add("ack", 1).unwrap();
        tx.commit();
        for batch in b.take_outbox() {
            a.receive(batch);
        }
        let frontier = a.stability_frontier(&replicas);
        assert!(
            frontier.get(r(0)) >= 2,
            "A's two commits are stable: {frontier}"
        );
        let before = a
            .object(&"rw".into())
            .unwrap()
            .as_rwset()
            .unwrap()
            .entry_count();
        assert_eq!(before, 2);
        a.run_gc(&replicas);
        let after = a
            .object(&"rw".into())
            .unwrap()
            .as_rwset()
            .unwrap()
            .entry_count();
        assert_eq!(after, 0, "decided add/remove pair compacted away");
        assert_eq!(a.stats.gc_runs, 1);
    }

    /// The pre-fold frontier: a chain of per-replica `meet` calls, each
    /// allocating an intermediate clock. Kept verbatim as the semantic
    /// reference for the dense-slice fold.
    fn stability_frontier_meet_chain(replica: &Replica, replicas: &[ReplicaId]) -> VClock {
        let mut frontier: Option<VClock> = None;
        for r in replicas {
            let c = replica.last_from.get(r).cloned().unwrap_or_default();
            frontier = Some(match frontier {
                None => c,
                Some(f) => f.meet(&c, replicas),
            });
        }
        frontier.unwrap_or_default()
    }

    #[test]
    fn stability_frontier_fold_equals_the_old_meet_chain() {
        // Exhaustive-ish pin: every shape the meet chain handled — empty
        // replica sets, missing last_from entries, clocks of different
        // lengths, components outside the replica set, duplicates in the
        // set, and the single-replica unrestricted quirk.
        let mut a = Replica::new(r(0));
        let clocks: &[&[u64]] = &[
            &[],
            &[3],
            &[2, 7],
            &[5, 1, 9],
            &[0, 4, 2, 8],
            &[1, 1, 1, 1, 6],
        ];
        for (i, c) in clocks.iter().enumerate() {
            a.last_from
                .insert(ReplicaId(i as u16), VClock::from_raw(c.to_vec()));
        }
        // Note r(9) has no last_from entry and r(4)'s clock names r(4)
        // itself — both shapes the chain floored or restricted away.
        let sets: &[&[ReplicaId]] = &[
            &[],
            &[r(0)],
            &[r(2)],
            &[r(9)],
            &[r(0), r(1)],
            &[r(1), r(2), r(3)],
            &[r(0), r(9)],
            &[r(3), r(4)],
            &[r(0), r(1), r(2), r(3), r(4)],
            &[r(2), r(2), r(0)],
            &[r(4), r(3), r(2), r(1), r(0), r(9)],
        ];
        for set in sets {
            assert_eq!(
                a.stability_frontier(set),
                stability_frontier_meet_chain(&a, set),
                "frontier diverged from the meet chain for {set:?}"
            );
        }

        // Non-degenerate frontiers: every clock non-empty, so the fold
        // must reproduce real minima and drop exactly the components the
        // meet chain's restriction dropped.
        let mut b = Replica::new(r(0));
        for (i, c) in [[4u64, 5, 6], [2, 9, 3], [8, 1, 7]].iter().enumerate() {
            b.last_from
                .insert(ReplicaId(i as u16), VClock::from_raw(c.to_vec()));
        }
        for set in [
            &[r(0), r(1)][..],
            &[r(0), r(1), r(2)],
            &[r(2), r(0)],
            &[r(1)],
            &[r(0), r(1), r(2), r(3)],
        ] {
            let got = b.stability_frontier(set);
            assert_eq!(
                got,
                stability_frontier_meet_chain(&b, set),
                "frontier diverged for {set:?}"
            );
            if set.len() == 2 && set.contains(&r(0)) && set.contains(&r(1)) {
                assert_eq!(
                    got,
                    VClock::from_raw(vec![2, 5]),
                    "component 2 must be dropped by the replica-set restriction"
                );
            }
        }
    }

    #[test]
    fn cached_frontier_refolds_only_on_clock_advance() {
        let mut a = Replica::new(r(0));
        let mut b = Replica::new(r(1));
        let replicas = [r(0), r(1)];
        let mut tx = a.begin();
        tx.ensure("c", ObjectKind::PNCounter).unwrap();
        tx.counter_add("c", 1).unwrap();
        tx.commit();
        for batch in a.take_outbox() {
            b.receive(batch);
        }
        let mut tx = b.begin();
        tx.ensure("ack", ObjectKind::PNCounter).unwrap();
        tx.counter_add("ack", 1).unwrap();
        tx.commit();
        for batch in b.take_outbox() {
            a.receive(batch);
        }
        let folds0 = a.stats.frontier_folds;
        let first = a.stability_frontier_cached(&replicas);
        assert_eq!(first, a.stability_frontier(&replicas));
        assert_eq!(a.stats.frontier_folds, folds0 + 1);
        // Quiet replica: repeated polls hit the cache, no re-fold.
        for _ in 0..5 {
            assert_eq!(a.stability_frontier_cached(&replicas), first);
        }
        assert_eq!(a.stats.frontier_folds, folds0 + 1);
        assert_eq!(a.stats.frontier_cache_hits, 5);
        // A changed replica set re-folds.
        let solo = a.stability_frontier_cached(&[r(0)]);
        assert_eq!(solo, a.stability_frontier(&[r(0)]));
        assert_eq!(a.stats.frontier_folds, folds0 + 2);
        // A clock advance (local commit) re-folds on the next poll.
        let mut tx = a.begin();
        tx.counter_add("c", 1).unwrap();
        tx.commit();
        let after = a.stability_frontier_cached(&replicas);
        assert_eq!(after, a.stability_frontier(&replicas));
        assert_eq!(a.stats.frontier_folds, folds0 + 3);
        // The escrow-path cache never touches GC's event flag: GC still
        // sees the commit as a fresh fold of its own.
        let gc_folds = a.stats.frontier_folds;
        a.run_gc(&replicas);
        assert_eq!(a.stats.frontier_folds, gc_folds + 1);
    }

    #[test]
    fn batches_since_seeks_instead_of_scanning() {
        let mut a = Replica::new(r(0));
        for i in 0..100 {
            let mut tx = a.begin();
            tx.ensure("c", ObjectKind::PNCounter).unwrap();
            tx.counter_add("c", i).unwrap();
            tx.commit();
        }
        a.take_outbox();
        // A peer missing only the last 3 batches costs ~3, not 100.
        let since: VClock = [(r(0), 97)].into_iter().collect();
        let before = a.stats.anti_entropy_scanned;
        let missing = a.batches_since(&since);
        assert_eq!(missing.len(), 3);
        assert_eq!(missing[0].seq, 98);
        let scanned = a.stats.anti_entropy_scanned - before;
        assert!(scanned <= 4, "seek cost {scanned} must not scan the log");
        // A fully caught-up peer costs only the segment probe.
        let caught_up = a.clock().clone();
        let before = a.stats.anti_entropy_scanned;
        assert!(a.batches_since(&caught_up).is_empty());
        assert!(a.stats.anti_entropy_scanned - before <= 1);
    }

    #[test]
    fn cursors_skip_drained_pairs_without_changing_results() {
        let mut replicas = vec![Replica::new(r(0)), Replica::new(r(1))];
        let mut tx = replicas[0].begin();
        tx.ensure("c", ObjectKind::PNCounter).unwrap();
        tx.counter_add("c", 1).unwrap();
        tx.commit();
        let mut cursors = AeCursors::new();
        assert_eq!(anti_entropy_round_with(&mut replicas, &mut cursors), 1);
        // Second round: nothing to pull; third round after cursors have
        // seen the drained state: the source log is not even probed.
        assert_eq!(anti_entropy_round_with(&mut replicas, &mut cursors), 0);
        let probes =
            replicas[0].stats.anti_entropy_scanned + replicas[1].stats.anti_entropy_scanned;
        assert_eq!(anti_entropy_round_with(&mut replicas, &mut cursors), 0);
        assert_eq!(
            replicas[0].stats.anti_entropy_scanned + replicas[1].stats.anti_entropy_scanned,
            probes,
            "drained pairs are skipped without a pull"
        );
        // A new commit invalidates the cursor and the pull resumes.
        let mut tx = replicas[1].begin();
        tx.ensure("c", ObjectKind::PNCounter).unwrap();
        tx.counter_add("c", 1).unwrap();
        tx.commit();
        assert_eq!(anti_entropy_round_with(&mut replicas, &mut cursors), 1);
    }

    #[test]
    fn gc_frontier_fold_is_event_driven() {
        let replicas = [r(0), r(1)];
        let mut a = Replica::new(r(0));
        let mut b = Replica::new(r(1));
        let mut tx = a.begin();
        tx.ensure("rw", ObjectKind::RWSet).unwrap();
        tx.rw_add("rw", Val::str("x")).unwrap();
        tx.commit();
        for batch in a.take_outbox() {
            b.receive(batch);
        }
        let mut tx = b.begin();
        tx.ensure("ack", ObjectKind::PNCounter).unwrap();
        tx.counter_add("ack", 1).unwrap();
        tx.commit();
        for batch in b.take_outbox() {
            a.receive(batch);
        }
        a.run_gc(&replicas);
        assert_eq!(a.stats.gc_runs, 1);
        assert_eq!(a.stats.frontier_folds, 1);
        // Idle repeats keep the old gc_runs accounting but never re-fold:
        // no clock advanced, so the frontier cannot have moved.
        a.run_gc(&replicas);
        a.run_gc(&replicas);
        assert_eq!(a.stats.gc_runs, 3);
        assert_eq!(a.stats.frontier_folds, 1);
        // A different replica set is a different fold input.
        a.run_gc(&[r(0)]);
        assert_eq!(a.stats.frontier_folds, 2);
        // A new delivery advances a clock and re-arms the fold.
        let mut tx = b.begin();
        tx.counter_add("ack", 1).unwrap();
        tx.commit();
        for batch in b.take_outbox() {
            a.receive(batch);
        }
        a.run_gc(&replicas);
        assert_eq!(a.stats.frontier_folds, 3);
    }

    #[test]
    fn shard_layout_is_state_invariant() {
        // The same batch stream delivered to a 1-shard and an 8-shard
        // replica must produce identical objects, clocks, durable logs,
        // and global counters — shard count is pure layout.
        let keys: Vec<String> = (0..24).map(|i| format!("obj-{i}")).collect();
        let mut origin = Replica::new(r(0));
        for round in 0..3i64 {
            for (i, key) in keys.iter().enumerate() {
                let mut tx = origin.begin();
                match i % 4 {
                    0 => {
                        tx.ensure(key.as_str(), ObjectKind::AWSet).unwrap();
                        tx.aw_add(key.as_str(), Val::int(round)).unwrap();
                        tx.aw_add(key.as_str(), Val::int(round + 10)).unwrap();
                    }
                    1 => {
                        tx.ensure(key.as_str(), ObjectKind::PNCounter).unwrap();
                        tx.counter_add(key.as_str(), round + 1).unwrap();
                    }
                    2 => {
                        tx.ensure(key.as_str(), ObjectKind::RWSet).unwrap();
                        tx.rw_add(key.as_str(), Val::int(round)).unwrap();
                    }
                    _ => {
                        tx.ensure(key.as_str(), ObjectKind::LWW).unwrap();
                        tx.lww_write(key.as_str(), Val::int(round)).unwrap();
                    }
                }
                tx.commit();
            }
        }
        let batches = origin.take_outbox();
        let mut one = Replica::with_shards(r(1), 1);
        let mut eight = Replica::with_shards(r(1), 8);
        for b in &batches {
            one.receive(Arc::clone(b));
            eight.receive(Arc::clone(b));
        }
        assert_eq!(one.clock(), eight.clock());
        assert_eq!(one.object_count(), eight.object_count());
        for key in &keys {
            let k: Key = key.as_str().into();
            assert_eq!(
                format!("{:?}", one.object(&k)),
                format!("{:?}", eight.object(&k)),
                "object {key} diverged across shard counts"
            );
            assert_eq!(one.kind_of(&k), eight.kind_of(&k));
        }
        assert_eq!(one.stats.updates_applied, eight.stats.updates_applied);
        assert_eq!(
            one.stats.apply_table_lookups, eight.stats.apply_table_lookups,
            "lookup counts are shard-count invariant (same-key runs never straddle shards)"
        );
        let (la, lb) = (one.log_snapshot(), eight.log_snapshot());
        assert_eq!(la.len(), lb.len());
        for (x, y) in la.iter().zip(&lb) {
            assert_eq!(**x, **y, "durable logs must agree batch-for-batch");
        }
        // Per-shard counters decompose the global ones exactly.
        let per: u64 = eight.shard_stats().iter().map(|s| s.updates_applied).sum();
        assert_eq!(per, eight.stats.updates_applied);
        let lk: u64 = eight.shard_stats().iter().map(|s| s.table_lookups).sum();
        assert_eq!(lk, eight.stats.apply_table_lookups);
    }

    #[test]
    fn parallel_apply_matches_sequential() {
        // One bulk batch above the parallel threshold, spread over many
        // keys: the pooled dispatch must be observably identical to
        // the fixed sequential order.
        let keys: Vec<String> = (0..200).map(|i| format!("bulk-{i}")).collect();
        let mut origin = Replica::new(r(0));
        let mut tx = origin.begin();
        for (i, key) in keys.iter().enumerate() {
            tx.ensure(key.as_str(), ObjectKind::PNCounter).unwrap();
            tx.counter_add(key.as_str(), i as i64).unwrap();
            tx.counter_add(key.as_str(), 1).unwrap();
        }
        tx.commit();
        let batch = origin.take_outbox().pop().unwrap();
        assert!(batch.updates.len() >= super::PARALLEL_APPLY_MIN_UPDATES);
        let mut seq = Replica::with_shards(r(1), 4);
        let mut par = Replica::with_shards(r(1), 4);
        par.set_parallel_apply(true);
        seq.receive(Arc::clone(&batch));
        par.receive(batch);
        assert_eq!(seq.clock(), par.clock());
        assert_eq!(seq.stats.updates_applied, par.stats.updates_applied);
        assert_eq!(seq.stats.apply_table_lookups, par.stats.apply_table_lookups);
        for key in &keys {
            let k: Key = key.as_str().into();
            assert_eq!(
                format!("{:?}", seq.object(&k)),
                format!("{:?}", par.object(&k))
            );
        }
        for (a, b) in seq.shard_stats().iter().zip(par.shard_stats()) {
            assert_eq!(a.runs_applied, b.runs_applied);
            assert_eq!(a.updates_applied, b.updates_applied);
            assert_eq!(a.table_lookups, b.table_lookups);
            assert_eq!(a.max_batch_runs, b.max_batch_runs);
        }
    }

    #[test]
    fn ensure_object_kind_mismatch() {
        let mut a = Replica::new(r(0));
        a.ensure_object(&"k".into(), ObjectKind::AWSet).unwrap();
        let err = a
            .ensure_object(&"k".into(), ObjectKind::PNCounter)
            .unwrap_err();
        assert!(matches!(err, StoreError::KindMismatch { .. }));
    }

    /// Commit `n` batches at `a`, returning the outbox.
    fn commits(a: &mut Replica, n: usize) -> Vec<Arc<UpdateBatch>> {
        for i in 0..n {
            let mut tx = a.begin();
            tx.ensure("c", ObjectKind::PNCounter).unwrap();
            tx.counter_add("c", i as i64 + 1).unwrap();
            tx.commit();
        }
        a.take_outbox()
    }

    #[test]
    fn corrupt_batch_is_quarantined_then_repaired_by_the_clean_copy() {
        let mut a = Replica::new(r(0));
        let mut b = Replica::new(r(1));
        let clean = commits(&mut a, 1).pop().unwrap();

        // Bit-flip the lamport in flight: the origin's seal breaks.
        let mut corrupt = (*clean).clone();
        corrupt.lamport ^= 1 << 3;
        assert_eq!(b.receive(corrupt), 0, "never applied");
        assert_eq!(b.stats.batches_quarantined, 1);
        assert_eq!(b.stats.quarantine_checksum, 1);
        assert_eq!(b.unrepaired_quarantine(), 1);
        assert_eq!(b.clock().total(), 0, "state untouched");

        // The clean copy (anti-entropy re-send) closes the gap.
        assert_eq!(b.receive(clean), 1);
        assert_eq!(b.stats.quarantine_repaired, 1);
        assert_eq!(b.unrepaired_quarantine(), 0);
        assert!(b.applied_consistent());
    }

    #[test]
    fn truncated_and_forged_batches_are_quarantined() {
        let mut a = Replica::new(r(0));
        let mut b = Replica::new(r(1));
        let batches = commits(&mut a, 2);

        // Truncate the first batch's update vector.
        let mut truncated = (*batches[0]).clone();
        truncated.updates.clear();
        assert_eq!(b.receive(truncated), 0);
        assert_eq!(b.stats.quarantine_checksum, 1);

        // Forge the second's sequence (stale replay forgery) *with* a
        // reseal: the seal passes but the envelope is structurally
        // unsound — seq disagrees with the batch's own clock.
        let mut forged = (*batches[1]).clone();
        forged.seq = 1;
        forged.reseal();
        assert_eq!(b.receive(forged), 0);
        assert_eq!(b.stats.quarantine_malformed, 1);
        assert_eq!(b.stats.batches_quarantined, 2);

        // Both corruptions named the same `(origin, seq 1)` slot (the
        // forgery pointed *at* seq 1), so they collapse into one repair
        // target; the clean copies close it and leave nothing pending.
        assert_eq!(b.receive(Arc::clone(&batches[0])), 1);
        assert_eq!(b.receive(Arc::clone(&batches[1])), 1);
        assert_eq!(b.stats.quarantine_repaired, 1);
        assert_eq!(b.unrepaired_quarantine(), 0);
        assert!(b.applied_consistent());
    }

    #[test]
    fn corrupt_duplicate_of_an_applied_batch_counts_repaired_immediately() {
        let mut a = Replica::new(r(0));
        let mut b = Replica::new(r(1));
        let clean = commits(&mut a, 1).pop().unwrap();
        assert_eq!(b.receive(Arc::clone(&clean)), 1);
        // A mutated duplicate arrives after the clean copy applied:
        // quarantined, but there is no gap to repair.
        let mut corrupt = (*clean).clone();
        corrupt.lamport += 99;
        assert_eq!(b.receive(corrupt), 0);
        assert_eq!(b.stats.batches_quarantined, 1);
        assert_eq!(b.stats.quarantine_repaired, 1);
        assert_eq!(b.unrepaired_quarantine(), 0);
    }

    #[test]
    fn origin_log_records_and_fills_holes() {
        let mut seg = OriginLog::new();
        let mut a = Replica::new(r(0));
        let batches = commits(&mut a, 5);
        let entry = |i: usize| (i as u64, Arc::clone(&batches[i]));

        // Append 1, then 4: sequences 2–3 become an explicit hole.
        let next = seg.next_seq();
        assert_eq!(next, 1);
        seg.entries.push_back(entry(0));
        assert_eq!(seg.next_seq(), 2);
        seg.record_gap(2, 3);
        seg.entries.push_back(entry(3));
        assert_eq!(seg.next_seq(), 5);
        assert_eq!(seg.missing, vec![(2, 3)]);

        // Seek accounts for the hole: sequence 4 is entry index 1.
        assert_eq!(seg.seek(4), 1);
        assert_eq!(seg.seek(1), 0);

        // Fill 3 (mid-hole edge), then 2: hole fully closes.
        assert!(seg.fill(3));
        assert_eq!(seg.missing, vec![(2, 2)]);
        seg.entries.insert(seg.seek(3), entry(2));
        assert!(seg.fill(2));
        assert!(seg.missing.is_empty());
        seg.entries.insert(seg.seek(2), entry(1));
        assert!(!seg.fill(2), "not a hole anymore");

        // The segment is dense again: seeks are pure offsets.
        assert_eq!(seg.next_seq(), 5);
        let seqs: Vec<u64> = seg.entries.iter().map(|(_, b)| b.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3, 4]);
    }

    #[test]
    fn gap_tolerant_log_append_survives_and_repairs_out_of_run_appends() {
        let mut a = Replica::new(r(0));
        let batches = commits(&mut a, 4);
        let mut b = Replica::new(r(1));
        // Force holes directly through the log layer (the causal receive
        // path can't make one): append seq 1 then seq 4.
        b.log_append(Arc::clone(&batches[0]));
        b.log_append(Arc::clone(&batches[3]));
        assert_eq!(b.missing_ranges(r(0)), vec![(2, 3)]);
        assert_eq!(b.log_len(), 2);

        // An anti-entropy pull for a peer that has only seq 1 returns
        // exactly the logged batches past it, holes notwithstanding.
        let since: VClock = [(r(0), 1u64)].into_iter().collect();
        let pulled = b.batches_since(&since);
        assert_eq!(pulled.len(), 1);
        assert_eq!(pulled[0].seq, 4);

        // Late clean copies splice in and close the hole.
        b.log_append(Arc::clone(&batches[2]));
        b.log_append(Arc::clone(&batches[1]));
        assert!(b.missing_ranges(r(0)).is_empty());
        let seqs: Vec<u64> = b.log_snapshot().iter().map(|x| x.seq).collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 2, 3, 4]);
        // Duplicate append of a logged batch is a no-op.
        let len = b.log_len();
        b.log_append(Arc::clone(&batches[1]));
        assert_eq!(b.log_len(), len);
    }
}
