//! A single data-center replica: object storage, causal delivery,
//! stability tracking and garbage collection.

use crate::batch::UpdateBatch;
use crate::errors::StoreError;
use crate::key::Key;
use crate::txn::Transaction;
use ipa_crdt::{Object, ObjectKind, ReplicaId, Tag, VClock};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// Counters exposed for tests and the benchmark harness.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReplicaStats {
    pub commits: u64,
    pub batches_received: u64,
    pub batches_applied: u64,
    pub updates_applied: u64,
    pub gc_runs: u64,
    /// Crash/restart cycles this replica went through (nemesis).
    pub crashes: u64,
    /// Batches handed out through anti-entropy pulls.
    pub anti_entropy_sent: u64,
}

/// One replica of the geo-replicated store.
#[derive(Debug)]
pub struct Replica {
    id: ReplicaId,
    /// Applied-updates clock (own commits + delivered remote batches).
    clock: VClock,
    /// Lamport timestamp (drives LWW registers).
    lamport: u64,
    /// Monotonic unique-tag allocator.
    next_tag: u64,
    objects: HashMap<Key, Object>,
    /// The declared kind of each key (shipped with updates so receivers
    /// can instantiate missing objects deterministically).
    kinds: HashMap<Key, ObjectKind>,
    /// Remote batches waiting for causal predecessors. Volatile: lost on
    /// [`Replica::crash`].
    pending: Vec<Arc<UpdateBatch>>,
    /// Committed local batches awaiting transport pickup. Volatile: lost
    /// on [`Replica::crash`].
    outbox: Vec<Arc<UpdateBatch>>,
    /// Durable log of every batch applied here (own commits and remote
    /// deliveries), in application order. Serves anti-entropy pulls
    /// ([`Replica::batches_since`]) and is compacted under the stability
    /// frontier by [`Replica::run_gc`].
    log: Vec<Arc<UpdateBatch>>,
    /// Latest received clock per origin (incl. self) — the causal
    /// stability inputs.
    last_from: BTreeMap<ReplicaId, VClock>,
    pub stats: ReplicaStats,
}

impl Replica {
    pub fn new(id: ReplicaId) -> Replica {
        Replica {
            id,
            clock: VClock::new(),
            lamport: 0,
            next_tag: 0,
            objects: HashMap::new(),
            kinds: HashMap::new(),
            pending: Vec::new(),
            outbox: Vec::new(),
            log: Vec::new(),
            last_from: BTreeMap::new(),
            stats: ReplicaStats::default(),
        }
    }

    pub fn id(&self) -> ReplicaId {
        self.id
    }

    pub fn clock(&self) -> &VClock {
        &self.clock
    }

    pub fn lamport(&self) -> u64 {
        self.lamport
    }

    /// Read an object (committed state only; in-transaction reads go
    /// through the transaction's overlay).
    pub fn object(&self, key: &Key) -> Option<&Object> {
        self.objects.get(key)
    }

    pub(crate) fn insert_object(&mut self, key: Key, kind: ObjectKind, obj: Object) {
        self.kinds.insert(key.clone(), kind);
        self.objects.insert(key, obj);
    }

    /// The declared kind of a key, if known.
    pub fn kind_of(&self, key: &Key) -> Option<ObjectKind> {
        self.kinds.get(key).copied()
    }

    pub fn object_count(&self) -> usize {
        self.objects.len()
    }

    /// Allocate a fresh unique tag.
    pub(crate) fn alloc_tag(&mut self) -> Tag {
        self.next_tag += 1;
        Tag::new(self.id, self.next_tag)
    }

    /// Begin a highly-available transaction on this replica.
    pub fn begin(&mut self) -> Transaction<'_> {
        Transaction::new(self)
    }

    // ------------------------------------------------------------------
    // Commit / replication
    // ------------------------------------------------------------------

    /// Called by [`Transaction::commit`]: install the batch locally and
    /// stage it for replication.
    pub(crate) fn commit_batch(&mut self, batch: UpdateBatch) {
        debug_assert_eq!(batch.origin, self.id);
        debug_assert!(batch.deliverable_at(&self.clock));
        let batch = Arc::new(batch);
        self.apply_batch(&batch);
        self.lamport = self.lamport.max(batch.lamport);
        self.last_from.insert(self.id, batch.clock.clone());
        self.log.push(Arc::clone(&batch));
        self.outbox.push(batch);
        self.stats.commits += 1;
    }

    /// The next local commit's clock (current clock with own component
    /// ticked).
    pub(crate) fn next_commit_clock(&self) -> VClock {
        let mut c = self.clock.clone();
        c.tick(self.id);
        c
    }

    /// Drain the batches committed here since the last call (transport
    /// pickup). Fan-out transports clone the returned `Arc`s — the batch
    /// payload itself is shared, never copied per destination.
    pub fn take_outbox(&mut self) -> Vec<Arc<UpdateBatch>> {
        std::mem::take(&mut self.outbox)
    }

    /// Receive a remote batch: buffer it and apply everything that has
    /// become deliverable. Duplicates (including redeliveries after a
    /// crash or an anti-entropy re-send) are detected via the batch clock
    /// and dropped, so delivery is idempotent. Returns the number of
    /// batches applied.
    pub fn receive(&mut self, batch: impl Into<Arc<UpdateBatch>>) -> usize {
        let batch = batch.into();
        self.stats.batches_received += 1;
        if batch.origin == self.id || batch.clock.le(&self.clock) {
            return 0; // own or already-seen batch
        }
        if self
            .pending
            .iter()
            .any(|b| b.origin == batch.origin && b.seq == batch.seq)
        {
            return 0; // duplicate of an already-buffered batch
        }
        self.pending.push(batch);
        self.drain_pending()
    }

    fn drain_pending(&mut self) -> usize {
        let mut applied = 0;
        while let Some(idx) = self
            .pending
            .iter()
            .position(|b| b.deliverable_at(&self.clock))
        {
            let batch = self.pending.swap_remove(idx);
            self.apply_batch(&batch);
            self.lamport = self.lamport.max(batch.lamport);
            self.last_from
                .entry(batch.origin)
                .and_modify(|c| c.merge(&batch.clock))
                .or_insert_with(|| batch.clock.clone());
            self.log.push(batch);
            applied += 1;
        }
        // Purge buffered copies whose content arrived through another
        // path (duplicate delivery, anti-entropy) in the meantime.
        let clock = &self.clock;
        self.pending.retain(|b| !b.clock.le(clock));
        applied
    }

    fn apply_batch(&mut self, batch: &UpdateBatch) {
        for (key, kind, op) in &batch.updates {
            self.kinds.entry(key.clone()).or_insert(*kind);
            let obj = self
                .objects
                .entry(key.clone())
                .or_insert_with(|| Object::new(*kind, creation_owner()));
            match obj.apply(op) {
                Ok(()) => self.stats.updates_applied += 1,
                Err(e) => {
                    // Type mismatches indicate an application bug; a real
                    // store would reject the write at the origin. Surface
                    // loudly in debug builds, skip in release.
                    debug_assert!(false, "object {key}: {e}");
                }
            }
        }
        self.clock.merge(&batch.clock);
        self.stats.batches_applied += 1;
    }

    /// Number of buffered (not yet causally deliverable) batches.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    // ------------------------------------------------------------------
    // Crash / recovery (nemesis support)
    // ------------------------------------------------------------------

    /// Crash the replica: volatile state (the outbox awaiting transport
    /// pickup and the buffered pending batches) is lost; durable state
    /// (objects, clocks, the applied-batch log) survives. Returns the
    /// number of batches lost. Recovery happens through anti-entropy:
    /// peers re-send from their logs ([`Replica::batches_since`]) and
    /// this replica re-sends its own logged commits.
    pub fn crash(&mut self) -> usize {
        let lost = self.outbox.len() + self.pending.len();
        self.outbox.clear();
        self.pending.clear();
        self.stats.crashes += 1;
        lost
    }

    /// Anti-entropy pull: every logged batch not yet covered by `since`
    /// (the requesting replica's applied clock), in log order — so a
    /// recovering or drop-afflicted peer can close its causal gaps.
    pub fn batches_since(&mut self, since: &VClock) -> Vec<Arc<UpdateBatch>> {
        let out: Vec<Arc<UpdateBatch>> = self
            .log
            .iter()
            .filter(|b| b.clock.get(b.origin) > since.get(b.origin))
            .cloned()
            .collect();
        self.stats.anti_entropy_sent += out.len() as u64;
        out
    }

    /// Length of the durable applied-batch log (observability for the
    /// compaction tests).
    pub fn log_len(&self) -> usize {
        self.log.len()
    }

    /// Delivery idempotence oracle: every applied batch advances exactly
    /// one vector-clock component by one, so the total of the applied
    /// clock must equal the number of batches applied. A double-apply
    /// breaks this equality. Checked by the nemesis driver after every
    /// hostile schedule.
    pub fn applied_consistent(&self) -> bool {
        self.stats.batches_applied == self.clock.total()
    }

    // ------------------------------------------------------------------
    // Stability & GC
    // ------------------------------------------------------------------

    /// The causal-stability frontier over the given replica set: the
    /// pointwise meet of the latest clocks received from every replica.
    /// Every future delivery dominates this frontier, so CRDT metadata at
    /// or below it can be compacted.
    pub fn stability_frontier(&self, replicas: &[ReplicaId]) -> VClock {
        let mut frontier: Option<VClock> = None;
        for r in replicas {
            let c = self.last_from.get(r).cloned().unwrap_or_default();
            frontier = Some(match frontier {
                None => c,
                Some(f) => f.meet(&c, replicas),
            });
        }
        frontier.unwrap_or_default()
    }

    /// Compact every object's causal metadata under the stability
    /// frontier.
    pub fn run_gc(&mut self, replicas: &[ReplicaId]) {
        let frontier = self.stability_frontier(replicas);
        if frontier.is_empty() {
            return;
        }
        for obj in self.objects.values_mut() {
            obj.compact(&frontier);
        }
        // Causally stable batches have been received everywhere, so no
        // anti-entropy pull can ever need them again — compact the log.
        self.log.retain(|b| !b.clock.le(&frontier));
        self.stats.gc_runs += 1;
    }

    /// Ensure an object of the given kind exists (no-op if present).
    /// Errors if the key exists with a different kind.
    pub fn ensure_object(&mut self, key: &Key, kind: ObjectKind) -> Result<(), StoreError> {
        match self.objects.get(key) {
            Some(existing) => {
                let fresh = Object::new(kind, creation_owner());
                if std::mem::discriminant(existing) != std::mem::discriminant(&fresh) {
                    return Err(StoreError::KindMismatch {
                        key: key.clone(),
                        existing: existing.type_name(),
                    });
                }
                Ok(())
            }
            None => {
                self.kinds.insert(key.clone(), kind);
                self.objects
                    .insert(key.clone(), Object::new(kind, creation_owner()));
                Ok(())
            }
        }
    }
}

/// Objects must be created identically at every replica, so initial
/// escrow rights (bounded counters) conventionally belong to replica 0.
pub(crate) fn creation_owner() -> ReplicaId {
    ReplicaId(0)
}

/// One full pairwise anti-entropy round over a replica set: every
/// replica pulls the batches it is missing from every peer's durable
/// log. Returns the number of batches applied. Shared by
/// [`crate::Cluster::anti_entropy`] and the simulator's post-run repair.
pub fn anti_entropy_round(replicas: &mut [Replica]) -> usize {
    let mut applied = 0;
    let n = replicas.len();
    for dst in 0..n {
        for src in 0..n {
            if src == dst {
                continue;
            }
            let since = replicas[dst].clock().clone();
            let missing = replicas[src].batches_since(&since);
            for b in missing {
                applied += replicas[dst].receive(b);
            }
        }
    }
    applied
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipa_crdt::Val;

    fn r(i: u16) -> ReplicaId {
        ReplicaId(i)
    }

    #[test]
    fn commit_and_replicate_one_batch() {
        let mut a = Replica::new(r(0));
        let mut b = Replica::new(r(1));
        let mut tx = a.begin();
        tx.ensure("set", ObjectKind::AWSet).unwrap();
        tx.aw_add("set", Val::str("x")).unwrap();
        tx.commit();
        assert_eq!(a.stats.commits, 1);
        assert!(a
            .object(&"set".into())
            .unwrap()
            .set_contains(&Val::str("x"))
            .unwrap());

        for batch in a.take_outbox() {
            assert_eq!(b.receive(batch), 1);
        }
        assert!(b
            .object(&"set".into())
            .unwrap()
            .set_contains(&Val::str("x"))
            .unwrap());
        assert_eq!(a.clock(), b.clock());
    }

    #[test]
    fn out_of_order_batches_are_buffered() {
        let mut a = Replica::new(r(0));
        let mut b = Replica::new(r(1));
        // Two commits at A.
        for v in ["x", "y"] {
            let mut tx = a.begin();
            tx.ensure("set", ObjectKind::AWSet).unwrap();
            tx.aw_add("set", Val::str(v)).unwrap();
            tx.commit();
        }
        let mut batches = a.take_outbox();
        assert_eq!(batches.len(), 2);
        let second = batches.pop().unwrap();
        let first = batches.pop().unwrap();
        // Deliver out of order: the second buffers, then both apply.
        assert_eq!(b.receive(second), 0);
        assert_eq!(b.pending_count(), 1);
        assert_eq!(b.receive(first), 2);
        assert_eq!(b.pending_count(), 0);
        let obj = b.object(&"set".into()).unwrap();
        assert!(obj.set_contains(&Val::str("x")).unwrap());
        assert!(obj.set_contains(&Val::str("y")).unwrap());
    }

    #[test]
    fn duplicate_batches_are_ignored() {
        let mut a = Replica::new(r(0));
        let mut b = Replica::new(r(1));
        let mut tx = a.begin();
        tx.ensure("c", ObjectKind::PNCounter).unwrap();
        tx.counter_add("c", 5).unwrap();
        tx.commit();
        let batch = a.take_outbox().pop().unwrap();
        assert_eq!(b.receive(batch.clone()), 1);
        assert_eq!(b.receive(batch), 0, "duplicate must be dropped");
        assert_eq!(
            b.object(&"c".into())
                .unwrap()
                .as_pncounter()
                .unwrap()
                .value(),
            5
        );
    }

    #[test]
    fn causal_chain_across_three_replicas() {
        // A writes, B reads A's write and writes, C must see them in order.
        let mut a = Replica::new(r(0));
        let mut b = Replica::new(r(1));
        let mut c = Replica::new(r(2));

        let mut tx = a.begin();
        tx.ensure("reg", ObjectKind::LWW).unwrap();
        tx.lww_write("reg", Val::int(1)).unwrap();
        tx.commit();
        let batch_a = a.take_outbox().pop().unwrap();
        b.receive(batch_a.clone());

        let mut tx = b.begin();
        tx.ensure("reg", ObjectKind::LWW).unwrap();
        tx.lww_write("reg", Val::int(2)).unwrap();
        tx.commit();
        let batch_b = b.take_outbox().pop().unwrap();

        // C receives B's batch first: it depends causally on A's.
        assert_eq!(c.receive(batch_b), 0);
        assert_eq!(c.pending_count(), 1);
        assert_eq!(c.receive(batch_a), 2);
        assert_eq!(
            c.object(&"reg".into()).unwrap().as_lww().unwrap().get(),
            Some(&Val::int(2)),
            "the causally later write wins"
        );
    }

    #[test]
    fn stability_frontier_and_gc() {
        let replicas = [r(0), r(1)];
        let mut a = Replica::new(r(0));
        let mut b = Replica::new(r(1));
        // A adds then removes an element from a rem-wins set.
        let mut tx = a.begin();
        tx.ensure("rw", ObjectKind::RWSet).unwrap();
        tx.rw_add("rw", Val::str("x")).unwrap();
        tx.commit();
        let mut tx = a.begin();
        tx.rw_remove("rw", Val::str("x")).unwrap();
        tx.commit();
        for batch in a.take_outbox() {
            b.receive(batch);
        }
        // B acknowledges by committing (its batch clock covers A's ops).
        let mut tx = b.begin();
        tx.ensure("ack", ObjectKind::PNCounter).unwrap();
        tx.counter_add("ack", 1).unwrap();
        tx.commit();
        for batch in b.take_outbox() {
            a.receive(batch);
        }
        let frontier = a.stability_frontier(&replicas);
        assert!(
            frontier.get(r(0)) >= 2,
            "A's two commits are stable: {frontier}"
        );
        let before = a
            .object(&"rw".into())
            .unwrap()
            .as_rwset()
            .unwrap()
            .entry_count();
        assert_eq!(before, 2);
        a.run_gc(&replicas);
        let after = a
            .object(&"rw".into())
            .unwrap()
            .as_rwset()
            .unwrap()
            .entry_count();
        assert_eq!(after, 0, "decided add/remove pair compacted away");
        assert_eq!(a.stats.gc_runs, 1);
    }

    #[test]
    fn ensure_object_kind_mismatch() {
        let mut a = Replica::new(r(0));
        a.ensure_object(&"k".into(), ObjectKind::AWSet).unwrap();
        let err = a
            .ensure_object(&"k".into(), ObjectKind::PNCounter)
            .unwrap_err();
        assert!(matches!(err, StoreError::KindMismatch { .. }));
    }
}
