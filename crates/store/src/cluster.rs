//! An in-process cluster of replicas with manual replication pumping —
//! the zero-latency harness used by tests and the application layer
//! (the latency-accurate transport lives in `ipa-sim`).

use crate::batch::UpdateBatch;
use crate::replica::Replica;
use ipa_crdt::ReplicaId;

/// A set of replicas plus an in-memory transport.
#[derive(Debug)]
pub struct Cluster {
    replicas: Vec<Replica>,
    /// Batches picked up from outboxes but not yet delivered:
    /// `(destination, batch)`.
    in_flight: Vec<(ReplicaId, UpdateBatch)>,
}

impl Cluster {
    /// `n` replicas with ids `0..n`.
    pub fn new(n: u16) -> Cluster {
        Cluster {
            replicas: (0..n).map(|i| Replica::new(ReplicaId(i))).collect(),
            in_flight: Vec::new(),
        }
    }

    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    pub fn replica_ids(&self) -> Vec<ReplicaId> {
        self.replicas.iter().map(Replica::id).collect()
    }

    pub fn replica(&self, id: ReplicaId) -> &Replica {
        &self.replicas[id.0 as usize]
    }

    pub fn replica_mut(&mut self, id: ReplicaId) -> &mut Replica {
        &mut self.replicas[id.0 as usize]
    }

    /// Move committed batches from every outbox into the in-flight queue
    /// (fan-out to all other replicas).
    pub fn collect_outboxes(&mut self) {
        let n = self.replicas.len() as u16;
        let mut staged = Vec::new();
        for r in &mut self.replicas {
            for batch in r.take_outbox() {
                for dest in 0..n {
                    if ReplicaId(dest) != batch.origin {
                        staged.push((ReplicaId(dest), batch.clone()));
                    }
                }
            }
        }
        self.in_flight.extend(staged);
    }

    /// Deliver every in-flight batch (in queue order).
    pub fn deliver_all(&mut self) {
        let batches = std::mem::take(&mut self.in_flight);
        for (dest, batch) in batches {
            self.replicas[dest.0 as usize].receive(batch);
        }
    }

    /// Pump replication until quiescent: collect outboxes and deliver,
    /// repeating while anything moves.
    pub fn sync(&mut self) {
        loop {
            self.collect_outboxes();
            if self.in_flight.is_empty() {
                break;
            }
            self.deliver_all();
        }
    }

    /// Run stability GC on every replica.
    pub fn run_gc(&mut self) {
        let ids = self.replica_ids();
        for r in &mut self.replicas {
            r.run_gc(&ids);
        }
    }

    /// Are all replica clocks equal (converged)?
    pub fn converged(&self) -> bool {
        let first = self.replicas[0].clock();
        self.replicas.iter().all(|r| r.clock() == first) && self.in_flight.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipa_crdt::{ObjectKind, Val};

    #[test]
    fn three_replica_convergence() {
        let mut cluster = Cluster::new(3);
        for i in 0..3u16 {
            let r = cluster.replica_mut(ReplicaId(i));
            let mut tx = r.begin();
            tx.ensure("set", ObjectKind::AWSet).unwrap();
            tx.aw_add("set", Val::str(format!("from-{i}"))).unwrap();
            tx.commit();
        }
        cluster.sync();
        assert!(cluster.converged());
        for i in 0..3u16 {
            let obj = cluster.replica(ReplicaId(i)).object(&"set".into()).unwrap();
            assert_eq!(obj.as_awset().unwrap().len(), 3);
        }
    }

    #[test]
    fn concurrent_add_remove_respects_object_policy() {
        let mut cluster = Cluster::new(2);
        // Seed: element present everywhere.
        {
            let r = cluster.replica_mut(ReplicaId(0));
            let mut tx = r.begin();
            tx.ensure("aw", ObjectKind::AWSet).unwrap();
            tx.ensure("rw", ObjectKind::RWSet).unwrap();
            tx.aw_add("aw", Val::str("x")).unwrap();
            tx.rw_add("rw", Val::str("x")).unwrap();
            tx.commit();
        }
        cluster.sync();
        // Replica 0 removes; replica 1 concurrently re-adds.
        {
            let r = cluster.replica_mut(ReplicaId(0));
            let mut tx = r.begin();
            tx.aw_remove("aw", &Val::str("x")).unwrap();
            tx.rw_remove("rw", Val::str("x")).unwrap();
            tx.commit();
        }
        {
            let r = cluster.replica_mut(ReplicaId(1));
            let mut tx = r.begin();
            tx.aw_add("aw", Val::str("x")).unwrap();
            tx.rw_add("rw", Val::str("x")).unwrap();
            tx.commit();
        }
        cluster.sync();
        assert!(cluster.converged());
        for i in 0..2u16 {
            let rep = cluster.replica(ReplicaId(i));
            assert_eq!(
                rep.object(&"aw".into())
                    .unwrap()
                    .set_contains(&Val::str("x")),
                Some(true),
                "add-wins keeps the element"
            );
            assert_eq!(
                rep.object(&"rw".into())
                    .unwrap()
                    .set_contains(&Val::str("x")),
                Some(false),
                "rem-wins drops the element"
            );
        }
    }

    #[test]
    fn gc_after_convergence_shrinks_metadata() {
        let mut cluster = Cluster::new(2);
        {
            let r = cluster.replica_mut(ReplicaId(0));
            let mut tx = r.begin();
            tx.ensure("rw", ObjectKind::RWSet).unwrap();
            tx.rw_add("rw", Val::str("x")).unwrap();
            tx.commit();
            let mut tx = r.begin();
            tx.rw_remove("rw", Val::str("x")).unwrap();
            tx.commit();
        }
        cluster.sync();
        // Everyone must have *sent something* for the frontier to move.
        {
            let r = cluster.replica_mut(ReplicaId(1));
            let mut tx = r.begin();
            tx.ensure("noop", ObjectKind::PNCounter).unwrap();
            tx.counter_add("noop", 1).unwrap();
            tx.commit();
        }
        cluster.sync();
        cluster.run_gc();
        let entries = cluster
            .replica(ReplicaId(0))
            .object(&"rw".into())
            .unwrap()
            .as_rwset()
            .unwrap()
            .entry_count();
        assert_eq!(entries, 0);
    }
}
