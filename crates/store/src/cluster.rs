//! An in-process cluster of replicas with manual replication pumping —
//! the zero-latency harness used by tests and the application layer
//! (the latency-accurate transport lives in `ipa-sim`).

use crate::batch::UpdateBatch;
use crate::replica::{AeCursors, Replica};
use crate::transport::{Node, Transport};
use ipa_crdt::ReplicaId;
use std::sync::Arc;

/// A set of replica [`Node`]s plus an in-memory transport. Implements
/// [`Transport`] (synchronous, zero-latency): sends toward a cut link
/// or a crashed node are dropped at pickup — anti-entropy repairs them,
/// exactly like the latency-accurate transports.
#[derive(Debug)]
pub struct Cluster {
    nodes: Vec<Node>,
    /// Batches picked up from outboxes but not yet delivered:
    /// `(destination, batch)`. The payload is shared — fan-out to `n`
    /// destinations costs `n` `Arc` clones, not `n` deep copies.
    in_flight: Vec<(ReplicaId, Arc<UpdateBatch>)>,
    /// Per-peer anti-entropy cursors carried across rounds: converged
    /// pairs are skipped without probing the source log.
    ae_cursors: AeCursors,
    /// `true` when the (symmetric) link is cut; indexed `a * n + b`.
    link_down: Vec<bool>,
}

impl Cluster {
    /// `n` replicas with ids `0..n`.
    pub fn new(n: u16) -> Cluster {
        Cluster {
            nodes: (0..n).map(|i| Node::new(ReplicaId(i))).collect(),
            in_flight: Vec::new(),
            ae_cursors: AeCursors::new(),
            link_down: vec![false; n as usize * n as usize],
        }
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    pub fn replica_ids(&self) -> Vec<ReplicaId> {
        self.nodes.iter().map(Node::id).collect()
    }

    pub fn replica(&self, id: ReplicaId) -> &Replica {
        self.nodes[id.0 as usize].replica()
    }

    pub fn replica_mut(&mut self, id: ReplicaId) -> &mut Replica {
        self.nodes[id.0 as usize].replica_mut()
    }

    /// Is the pair's link currently usable?
    pub fn link_is_up(&self, a: ReplicaId, b: ReplicaId) -> bool {
        !self.link_down[a.0 as usize * self.nodes.len() + b.0 as usize]
    }

    /// Move committed batches from every outbox into the in-flight queue
    /// (fan-out to all other replicas; `Arc` clones only). Sends toward
    /// a cut link or a down node are dropped (anti-entropy repairs).
    pub fn collect_outboxes(&mut self) {
        let n = self.nodes.len() as u16;
        let mut staged = Vec::new();
        for i in 0..self.nodes.len() {
            for batch in self.nodes[i].replica_mut().take_outbox() {
                for dest in 0..n {
                    if ReplicaId(dest) == batch.origin {
                        continue;
                    }
                    if !self.link_is_up(batch.origin, ReplicaId(dest))
                        || self.nodes[dest as usize].is_down()
                    {
                        continue;
                    }
                    staged.push((ReplicaId(dest), Arc::clone(&batch)));
                }
            }
        }
        self.in_flight.extend(staged);
    }

    /// Number of undelivered in-flight batches (observability).
    pub fn in_flight_count(&self) -> usize {
        self.in_flight.len()
    }

    /// Drop an in-flight batch by queue index (fault injection). Returns
    /// false when the index is out of range.
    pub fn drop_in_flight(&mut self, idx: usize) -> bool {
        if idx < self.in_flight.len() {
            self.in_flight.swap_remove(idx);
            true
        } else {
            false
        }
    }

    /// Duplicate an in-flight batch by queue index (fault injection).
    pub fn duplicate_in_flight(&mut self, idx: usize) -> bool {
        if idx < self.in_flight.len() {
            let copy = (self.in_flight[idx].0, Arc::clone(&self.in_flight[idx].1));
            self.in_flight.push(copy);
            true
        } else {
            false
        }
    }

    /// Deliver the in-flight batch at `idx` to its destination. Returns
    /// the number of batches the destination applied (0 when buffered,
    /// deduplicated, or refused while down).
    pub fn deliver_in_flight(&mut self, idx: usize) -> usize {
        let (dest, batch) = self.in_flight.swap_remove(idx);
        let node = &mut self.nodes[dest.0 as usize];
        if node.is_down() {
            return 0;
        }
        node.replica_mut().receive(batch)
    }

    /// Destination, origin, and origin-sequence of the in-flight batch
    /// at `idx` — the schedule explorer's per-step view of the network.
    pub fn in_flight_meta_at(&self, idx: usize) -> Option<(ReplicaId, ReplicaId, u64)> {
        self.in_flight
            .get(idx)
            .map(|(dest, b)| (*dest, b.origin, b.seq))
    }

    /// Deliver every in-flight batch (in queue order); down nodes
    /// refuse theirs.
    pub fn deliver_all(&mut self) {
        let batches = std::mem::take(&mut self.in_flight);
        for (dest, batch) in batches {
            let node = &mut self.nodes[dest.0 as usize];
            if !node.is_down() {
                node.replica_mut().receive(batch);
            }
        }
    }

    /// Pump replication until quiescent: collect outboxes and deliver,
    /// repeating while anything moves.
    pub fn sync(&mut self) {
        loop {
            self.collect_outboxes();
            if self.in_flight.is_empty() {
                break;
            }
            self.deliver_all();
        }
    }

    /// One full round of anti-entropy: every replica pulls the batches it
    /// is missing from every peer's durable log. Repairs arbitrary drops
    /// (and crash-lost outboxes) as long as some replica still logs the
    /// batch. Returns the number of batches applied cluster-wide.
    pub fn anti_entropy(&mut self) -> usize {
        let n = self.nodes.len();
        let link_down = &self.link_down;
        crate::transport::anti_entropy_round_nodes_with_links(
            &mut self.nodes,
            &mut self.ae_cursors,
            |src, dst| !link_down[src.0 as usize * n + dst.0 as usize],
        )
    }

    /// Pump anti-entropy rounds until no replica learns anything new.
    pub fn anti_entropy_to_fixpoint(&mut self) {
        while self.anti_entropy() > 0 {}
    }

    /// Run stability GC on every replica.
    pub fn run_gc(&mut self) {
        let ids = self.replica_ids();
        for node in &mut self.nodes {
            node.replica_mut().run_gc(&ids);
        }
    }

    /// Are all replica clocks equal (converged)?
    pub fn converged(&self) -> bool {
        let first = self.nodes[0].replica().clock();
        self.nodes.iter().all(|n| n.replica().clock() == first) && self.in_flight.is_empty()
    }

    /// Is the node currently down (crashed by fault injection)?
    pub fn is_node_down(&self, id: ReplicaId) -> bool {
        self.nodes[id.0 as usize].is_down()
    }

    /// Cut or heal the (symmetric) link between `a` and `b`.
    pub fn set_link_up(&mut self, a: ReplicaId, b: ReplicaId, up: bool) {
        let n = self.nodes.len();
        self.link_down[a.0 as usize * n + b.0 as usize] = !up;
        self.link_down[b.0 as usize * n + a.0 as usize] = !up;
    }

    /// Crash the node: it loses its outbox and receive buffer, and
    /// refuses sends/pulls until restarted. Returns the number of
    /// batches lost. In-flight batches already addressed to it are
    /// refused at delivery.
    pub fn crash_node(&mut self, id: ReplicaId) -> usize {
        self.nodes[id.0 as usize].crash()
    }

    /// Bring a crashed node back (durable log intact; anti-entropy
    /// repairs whatever it missed).
    pub fn restart_node(&mut self, id: ReplicaId) {
        self.nodes[id.0 as usize].restart();
    }
}

impl Transport for Cluster {
    fn node_count(&self) -> usize {
        self.len()
    }

    fn with_node<R>(&mut self, node: ReplicaId, f: impl FnOnce(&mut Replica) -> R) -> R {
        f(self.replica_mut(node))
    }

    fn ship(&mut self, _node: ReplicaId) {
        // Zero-latency: pick up every outbox and deliver immediately.
        self.collect_outboxes();
        self.deliver_all();
    }

    fn set_link(&mut self, a: ReplicaId, b: ReplicaId, up: bool) {
        self.set_link_up(a, b, up);
    }

    fn crash(&mut self, node: ReplicaId) {
        self.crash_node(node);
    }

    fn restart(&mut self, node: ReplicaId) {
        self.restart_node(node);
    }

    fn anti_entropy(&mut self) -> usize {
        Cluster::anti_entropy(self)
    }

    fn quiesce_transport(&mut self) -> u64 {
        // Heal every fault signal, flush the network, then pump
        // anti-entropy to fixpoint, counting productive rounds.
        for i in 0..self.nodes.len() {
            self.nodes[i].restart();
        }
        self.link_down.fill(false);
        self.collect_outboxes();
        self.deliver_all();
        let mut rounds = 0;
        while Cluster::anti_entropy(self) > 0 {
            rounds += 1;
        }
        rounds
    }

    fn converged(&mut self) -> bool {
        Cluster::converged(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipa_crdt::{ObjectKind, Val};

    #[test]
    fn three_replica_convergence() {
        let mut cluster = Cluster::new(3);
        for i in 0..3u16 {
            let r = cluster.replica_mut(ReplicaId(i));
            let mut tx = r.begin();
            tx.ensure("set", ObjectKind::AWSet).unwrap();
            tx.aw_add("set", Val::str(format!("from-{i}"))).unwrap();
            tx.commit();
        }
        cluster.sync();
        assert!(cluster.converged());
        for i in 0..3u16 {
            let obj = cluster.replica(ReplicaId(i)).object(&"set".into()).unwrap();
            assert_eq!(obj.as_awset().unwrap().len(), 3);
        }
    }

    #[test]
    fn concurrent_add_remove_respects_object_policy() {
        let mut cluster = Cluster::new(2);
        // Seed: element present everywhere.
        {
            let r = cluster.replica_mut(ReplicaId(0));
            let mut tx = r.begin();
            tx.ensure("aw", ObjectKind::AWSet).unwrap();
            tx.ensure("rw", ObjectKind::RWSet).unwrap();
            tx.aw_add("aw", Val::str("x")).unwrap();
            tx.rw_add("rw", Val::str("x")).unwrap();
            tx.commit();
        }
        cluster.sync();
        // Replica 0 removes; replica 1 concurrently re-adds.
        {
            let r = cluster.replica_mut(ReplicaId(0));
            let mut tx = r.begin();
            tx.aw_remove("aw", &Val::str("x")).unwrap();
            tx.rw_remove("rw", Val::str("x")).unwrap();
            tx.commit();
        }
        {
            let r = cluster.replica_mut(ReplicaId(1));
            let mut tx = r.begin();
            tx.aw_add("aw", Val::str("x")).unwrap();
            tx.rw_add("rw", Val::str("x")).unwrap();
            tx.commit();
        }
        cluster.sync();
        assert!(cluster.converged());
        for i in 0..2u16 {
            let rep = cluster.replica(ReplicaId(i));
            assert_eq!(
                rep.object(&"aw".into())
                    .unwrap()
                    .set_contains(&Val::str("x")),
                Some(true),
                "add-wins keeps the element"
            );
            assert_eq!(
                rep.object(&"rw".into())
                    .unwrap()
                    .set_contains(&Val::str("x")),
                Some(false),
                "rem-wins drops the element"
            );
        }
    }

    #[test]
    fn gc_after_convergence_shrinks_metadata() {
        let mut cluster = Cluster::new(2);
        {
            let r = cluster.replica_mut(ReplicaId(0));
            let mut tx = r.begin();
            tx.ensure("rw", ObjectKind::RWSet).unwrap();
            tx.rw_add("rw", Val::str("x")).unwrap();
            tx.commit();
            let mut tx = r.begin();
            tx.rw_remove("rw", Val::str("x")).unwrap();
            tx.commit();
        }
        cluster.sync();
        // Everyone must have *sent something* for the frontier to move.
        {
            let r = cluster.replica_mut(ReplicaId(1));
            let mut tx = r.begin();
            tx.ensure("noop", ObjectKind::PNCounter).unwrap();
            tx.counter_add("noop", 1).unwrap();
            tx.commit();
        }
        cluster.sync();
        cluster.run_gc();
        let entries = cluster
            .replica(ReplicaId(0))
            .object(&"rw".into())
            .unwrap()
            .as_rwset()
            .unwrap()
            .entry_count();
        assert_eq!(entries, 0);
    }
}
