//! An in-process cluster of replicas with manual replication pumping —
//! the zero-latency harness used by tests and the application layer
//! (the latency-accurate transport lives in `ipa-sim`).

use crate::batch::UpdateBatch;
use crate::replica::{AeCursors, Replica};
use ipa_crdt::ReplicaId;
use std::sync::Arc;

/// A set of replicas plus an in-memory transport.
#[derive(Debug)]
pub struct Cluster {
    replicas: Vec<Replica>,
    /// Batches picked up from outboxes but not yet delivered:
    /// `(destination, batch)`. The payload is shared — fan-out to `n`
    /// destinations costs `n` `Arc` clones, not `n` deep copies.
    in_flight: Vec<(ReplicaId, Arc<UpdateBatch>)>,
    /// Per-peer anti-entropy cursors carried across rounds: converged
    /// pairs are skipped without probing the source log.
    ae_cursors: AeCursors,
}

impl Cluster {
    /// `n` replicas with ids `0..n`.
    pub fn new(n: u16) -> Cluster {
        Cluster {
            replicas: (0..n).map(|i| Replica::new(ReplicaId(i))).collect(),
            in_flight: Vec::new(),
            ae_cursors: AeCursors::new(),
        }
    }

    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    pub fn replica_ids(&self) -> Vec<ReplicaId> {
        self.replicas.iter().map(Replica::id).collect()
    }

    pub fn replica(&self, id: ReplicaId) -> &Replica {
        &self.replicas[id.0 as usize]
    }

    pub fn replica_mut(&mut self, id: ReplicaId) -> &mut Replica {
        &mut self.replicas[id.0 as usize]
    }

    /// Move committed batches from every outbox into the in-flight queue
    /// (fan-out to all other replicas; `Arc` clones only).
    pub fn collect_outboxes(&mut self) {
        let n = self.replicas.len() as u16;
        let mut staged = Vec::new();
        for r in &mut self.replicas {
            for batch in r.take_outbox() {
                for dest in 0..n {
                    if ReplicaId(dest) != batch.origin {
                        staged.push((ReplicaId(dest), Arc::clone(&batch)));
                    }
                }
            }
        }
        self.in_flight.extend(staged);
    }

    /// Number of undelivered in-flight batches (observability).
    pub fn in_flight_count(&self) -> usize {
        self.in_flight.len()
    }

    /// Drop an in-flight batch by queue index (fault injection). Returns
    /// false when the index is out of range.
    pub fn drop_in_flight(&mut self, idx: usize) -> bool {
        if idx < self.in_flight.len() {
            self.in_flight.swap_remove(idx);
            true
        } else {
            false
        }
    }

    /// Duplicate an in-flight batch by queue index (fault injection).
    pub fn duplicate_in_flight(&mut self, idx: usize) -> bool {
        if idx < self.in_flight.len() {
            let copy = (self.in_flight[idx].0, Arc::clone(&self.in_flight[idx].1));
            self.in_flight.push(copy);
            true
        } else {
            false
        }
    }

    /// Deliver the in-flight batch at `idx` to its destination. Returns
    /// the number of batches the destination applied (0 when buffered or
    /// deduplicated).
    pub fn deliver_in_flight(&mut self, idx: usize) -> usize {
        let (dest, batch) = self.in_flight.swap_remove(idx);
        self.replicas[dest.0 as usize].receive(batch)
    }

    /// Destination, origin, and origin-sequence of the in-flight batch
    /// at `idx` — the schedule explorer's per-step view of the network.
    pub fn in_flight_meta_at(&self, idx: usize) -> Option<(ReplicaId, ReplicaId, u64)> {
        self.in_flight
            .get(idx)
            .map(|(dest, b)| (*dest, b.origin, b.seq))
    }

    /// Deliver every in-flight batch (in queue order).
    pub fn deliver_all(&mut self) {
        let batches = std::mem::take(&mut self.in_flight);
        for (dest, batch) in batches {
            self.replicas[dest.0 as usize].receive(batch);
        }
    }

    /// Pump replication until quiescent: collect outboxes and deliver,
    /// repeating while anything moves.
    pub fn sync(&mut self) {
        loop {
            self.collect_outboxes();
            if self.in_flight.is_empty() {
                break;
            }
            self.deliver_all();
        }
    }

    /// One full round of anti-entropy: every replica pulls the batches it
    /// is missing from every peer's durable log. Repairs arbitrary drops
    /// (and crash-lost outboxes) as long as some replica still logs the
    /// batch. Returns the number of batches applied cluster-wide.
    pub fn anti_entropy(&mut self) -> usize {
        crate::replica::anti_entropy_round_with(&mut self.replicas, &mut self.ae_cursors)
    }

    /// Pump anti-entropy rounds until no replica learns anything new.
    pub fn anti_entropy_to_fixpoint(&mut self) {
        while self.anti_entropy() > 0 {}
    }

    /// Run stability GC on every replica.
    pub fn run_gc(&mut self) {
        let ids = self.replica_ids();
        for r in &mut self.replicas {
            r.run_gc(&ids);
        }
    }

    /// Are all replica clocks equal (converged)?
    pub fn converged(&self) -> bool {
        let first = self.replicas[0].clock();
        self.replicas.iter().all(|r| r.clock() == first) && self.in_flight.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipa_crdt::{ObjectKind, Val};

    #[test]
    fn three_replica_convergence() {
        let mut cluster = Cluster::new(3);
        for i in 0..3u16 {
            let r = cluster.replica_mut(ReplicaId(i));
            let mut tx = r.begin();
            tx.ensure("set", ObjectKind::AWSet).unwrap();
            tx.aw_add("set", Val::str(format!("from-{i}"))).unwrap();
            tx.commit();
        }
        cluster.sync();
        assert!(cluster.converged());
        for i in 0..3u16 {
            let obj = cluster.replica(ReplicaId(i)).object(&"set".into()).unwrap();
            assert_eq!(obj.as_awset().unwrap().len(), 3);
        }
    }

    #[test]
    fn concurrent_add_remove_respects_object_policy() {
        let mut cluster = Cluster::new(2);
        // Seed: element present everywhere.
        {
            let r = cluster.replica_mut(ReplicaId(0));
            let mut tx = r.begin();
            tx.ensure("aw", ObjectKind::AWSet).unwrap();
            tx.ensure("rw", ObjectKind::RWSet).unwrap();
            tx.aw_add("aw", Val::str("x")).unwrap();
            tx.rw_add("rw", Val::str("x")).unwrap();
            tx.commit();
        }
        cluster.sync();
        // Replica 0 removes; replica 1 concurrently re-adds.
        {
            let r = cluster.replica_mut(ReplicaId(0));
            let mut tx = r.begin();
            tx.aw_remove("aw", &Val::str("x")).unwrap();
            tx.rw_remove("rw", Val::str("x")).unwrap();
            tx.commit();
        }
        {
            let r = cluster.replica_mut(ReplicaId(1));
            let mut tx = r.begin();
            tx.aw_add("aw", Val::str("x")).unwrap();
            tx.rw_add("rw", Val::str("x")).unwrap();
            tx.commit();
        }
        cluster.sync();
        assert!(cluster.converged());
        for i in 0..2u16 {
            let rep = cluster.replica(ReplicaId(i));
            assert_eq!(
                rep.object(&"aw".into())
                    .unwrap()
                    .set_contains(&Val::str("x")),
                Some(true),
                "add-wins keeps the element"
            );
            assert_eq!(
                rep.object(&"rw".into())
                    .unwrap()
                    .set_contains(&Val::str("x")),
                Some(false),
                "rem-wins drops the element"
            );
        }
    }

    #[test]
    fn gc_after_convergence_shrinks_metadata() {
        let mut cluster = Cluster::new(2);
        {
            let r = cluster.replica_mut(ReplicaId(0));
            let mut tx = r.begin();
            tx.ensure("rw", ObjectKind::RWSet).unwrap();
            tx.rw_add("rw", Val::str("x")).unwrap();
            tx.commit();
            let mut tx = r.begin();
            tx.rw_remove("rw", Val::str("x")).unwrap();
            tx.commit();
        }
        cluster.sync();
        // Everyone must have *sent something* for the frontier to move.
        {
            let r = cluster.replica_mut(ReplicaId(1));
            let mut tx = r.begin();
            tx.ensure("noop", ObjectKind::PNCounter).unwrap();
            tx.counter_add("noop", 1).unwrap();
            tx.commit();
        }
        cluster.sync();
        cluster.run_gc();
        let entries = cluster
            .replica(ReplicaId(0))
            .object(&"rw".into())
            .unwrap()
            .as_rwset()
            .unwrap()
            .entry_count();
        assert_eq!(entries, 0);
    }
}
