//! Schedule exploration: seeded sampling and bounded enumeration of
//! causally-consistent delivery interleavings.
//!
//! Weak-consistency bugs hide in *which* causal order a replica happens
//! to apply updates in. This module makes that order a first-class,
//! replayable artifact: a [`Schedule`] is fully determined by its seed,
//! so any failing interleaving reproduces bit-for-bit from one integer.
//! It replaces the ad-hoc "two random orders" shuffles the test suite
//! grew up with:
//!
//! * [`Schedule::sample_order`] — one causally-consistent permutation of
//!   an op/batch log, sampled uniformly-ish from the seed.
//! * [`Schedule::enumerate_orders`] — *all* causal interleavings of a
//!   small log (bounded), for exhaustive checks.
//! * [`Schedule::run`] — drive a [`Cluster`]'s in-flight traffic to
//!   quiescence in a seeded hostile order, with per-batch drop and
//!   duplicate faults, then repair through anti-entropy.

use crate::batch::UpdateBatch;
use crate::cluster::Cluster;
use ipa_crdt::{ReplicaId, VClock};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Anything with a causal position: an origin replica and the vector
/// clock of its commit. Implemented for [`UpdateBatch`]; test harnesses
/// implement it for their own op-log entry types.
pub trait CausalItem {
    fn origin(&self) -> ReplicaId;
    fn clock(&self) -> &VClock;
}

impl CausalItem for UpdateBatch {
    fn origin(&self) -> ReplicaId {
        self.origin
    }
    fn clock(&self) -> &VClock {
        &self.clock
    }
}

impl<T: CausalItem> CausalItem for Arc<T> {
    fn origin(&self) -> ReplicaId {
        (**self).origin()
    }
    fn clock(&self) -> &VClock {
        (**self).clock()
    }
}

impl<T: CausalItem> CausalItem for &T {
    fn origin(&self) -> ReplicaId {
        (**self).origin()
    }
    fn clock(&self) -> &VClock {
        (**self).clock()
    }
}

/// Standard causal-delivery condition: item `i` is deliverable once its
/// origin component is the next expected and every other component is
/// already covered.
fn deliverable<T: CausalItem>(item: &T, delivered: &VClock) -> bool {
    item.clock().deliverable_from(item.origin(), delivered)
}

/// Per-batch transport faults applied while [`Schedule::run`] drains a
/// cluster. Dropped batches are repaired by the closing anti-entropy
/// pass; duplicates must be absorbed by idempotent delivery.
#[derive(Clone, Copy, Debug, Default)]
pub struct DeliveryFaults {
    /// Probability an in-flight batch is dropped instead of delivered.
    pub drop_p: f64,
    /// Probability an in-flight batch is delivered twice.
    pub dup_p: f64,
}

impl DeliveryFaults {
    pub fn none() -> DeliveryFaults {
        DeliveryFaults::default()
    }
}

/// What one [`Schedule::run`] did — counts plus an order digest, so two
/// runs from the same seed can be asserted identical.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScheduleReport {
    pub delivered: usize,
    pub dropped: usize,
    pub duplicated: usize,
    /// FNV-1a over the (dest, origin, seq, action) event stream.
    pub digest: u64,
}

/// A seeded, replayable delivery schedule.
#[derive(Clone, Copy, Debug)]
pub struct Schedule {
    seed: u64,
}

impl Schedule {
    pub fn from_seed(seed: u64) -> Schedule {
        Schedule { seed }
    }

    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Sample one causally-consistent permutation of `log`, returned as
    /// indices into `log`. Panics if the log is not causally closed
    /// (some item's predecessors are missing).
    pub fn sample_order<T: CausalItem>(&self, log: &[T]) -> Vec<usize> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut delivered = VClock::new();
        let mut remaining: Vec<usize> = (0..log.len()).collect();
        let mut out = Vec::with_capacity(log.len());
        while !remaining.is_empty() {
            let ready: Vec<usize> = (0..remaining.len())
                .filter(|&i| deliverable(&log[remaining[i]], &delivered))
                .collect();
            assert!(
                !ready.is_empty(),
                "schedule deadlock: log is not causally closed"
            );
            let pick = ready[rng.gen_range(0..ready.len())];
            let idx = remaining.swap_remove(pick);
            delivered.merge(log[idx].clock());
            out.push(idx);
        }
        out
    }

    /// Enumerate causally-consistent permutations of `log` depth-first,
    /// stopping after `limit` complete orders. With a large enough limit
    /// this is *every* reachable delivery interleaving of the log.
    pub fn enumerate_orders<T: CausalItem>(log: &[T], limit: usize) -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        let mut prefix = Vec::with_capacity(log.len());
        let mut used = vec![false; log.len()];
        let mut delivered = VClock::new();
        enumerate_rec(log, &mut used, &mut delivered, &mut prefix, &mut out, limit);
        out
    }

    /// Drain every outbox and all in-flight traffic of `cluster` in a
    /// seeded hostile order: batches are picked at random (reordering),
    /// dropped or duplicated per `faults`, and finally repaired through
    /// anti-entropy so the cluster ends quiescent and causally complete.
    pub fn run(&self, cluster: &mut Cluster, faults: DeliveryFaults) -> ScheduleReport {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut report = ScheduleReport {
            delivered: 0,
            dropped: 0,
            duplicated: 0,
            digest: 0xcbf2_9ce4_8422_2325,
        };
        cluster.collect_outboxes();
        while cluster.in_flight_count() > 0 {
            let idx = rng.gen_range(0..cluster.in_flight_count());
            let (dest, origin, seq) = cluster.in_flight_meta_at(idx).expect("index in range");
            if rng.gen_bool(faults.drop_p) {
                cluster.drop_in_flight(idx);
                report.dropped += 1;
                report.digest = fnv_event(report.digest, dest, origin, seq, 0);
            } else {
                let dup = rng.gen_bool(faults.dup_p);
                if dup {
                    cluster.duplicate_in_flight(idx);
                    report.duplicated += 1;
                }
                cluster.deliver_in_flight(idx);
                report.delivered += 1;
                report.digest = fnv_event(report.digest, dest, origin, seq, 1);
                if dup {
                    // `duplicate_in_flight` pushed the copy last and
                    // `deliver_in_flight`'s swap_remove moved it into
                    // `idx`: deliver it immediately rather than
                    // re-queueing (a re-queued copy could itself be
                    // duplicated, so dup_p = 1.0 would never drain).
                    cluster.deliver_in_flight(idx);
                }
            }
            // Deliveries never commit, but keep the pickup loop anyway so
            // the schedule also covers clusters mutated mid-run.
            cluster.collect_outboxes();
        }
        cluster.anti_entropy_to_fixpoint();
        report
    }
}

fn enumerate_rec<T: CausalItem>(
    log: &[T],
    used: &mut Vec<bool>,
    delivered: &mut VClock,
    prefix: &mut Vec<usize>,
    out: &mut Vec<Vec<usize>>,
    limit: usize,
) {
    if out.len() >= limit {
        return;
    }
    if prefix.len() == log.len() {
        out.push(prefix.clone());
        return;
    }
    for i in 0..log.len() {
        if used[i] || !deliverable(&log[i], delivered) {
            continue;
        }
        used[i] = true;
        let saved = delivered.clone();
        delivered.merge(log[i].clock());
        prefix.push(i);
        enumerate_rec(log, used, delivered, prefix, out, limit);
        prefix.pop();
        *delivered = saved;
        used[i] = false;
        if out.len() >= limit {
            return;
        }
    }
}

fn fnv_event(mut h: u64, dest: ReplicaId, origin: ReplicaId, seq: u64, action: u64) -> u64 {
    for word in [u64::from(dest.0), u64::from(origin.0), seq, action] {
        h ^= word;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipa_crdt::{ObjectKind, Val};

    struct Item {
        origin: ReplicaId,
        clock: VClock,
    }

    impl CausalItem for Item {
        fn origin(&self) -> ReplicaId {
            self.origin
        }
        fn clock(&self) -> &VClock {
            &self.clock
        }
    }

    fn item(origin: u16, entries: &[(u16, u64)]) -> Item {
        Item {
            origin: ReplicaId(origin),
            clock: entries.iter().map(|&(r, v)| (ReplicaId(r), v)).collect(),
        }
    }

    /// Two independent single-op chains at replicas 0 and 1.
    fn concurrent_log() -> Vec<Item> {
        vec![item(0, &[(0, 1)]), item(1, &[(1, 1)])]
    }

    #[test]
    fn sample_order_is_causal_and_deterministic() {
        // r0 commits twice; r1 commits having seen r0's first.
        let log = vec![
            item(0, &[(0, 1)]),
            item(0, &[(0, 2)]),
            item(1, &[(0, 1), (1, 1)]),
        ];
        for seed in 0..50 {
            let order = Schedule::from_seed(seed).sample_order(&log);
            let pos = |i: usize| order.iter().position(|&x| x == i).unwrap();
            assert!(pos(0) < pos(1), "r0's commits stay in origin order");
            assert!(pos(0) < pos(2), "causal dependency respected");
        }
        let a = Schedule::from_seed(7).sample_order(&log);
        let b = Schedule::from_seed(7).sample_order(&log);
        assert_eq!(a, b, "replay from seed");
    }

    #[test]
    fn sample_covers_both_orders_of_a_concurrent_pair() {
        let log = concurrent_log();
        let mut seen = std::collections::BTreeSet::new();
        for seed in 0..32 {
            seen.insert(Schedule::from_seed(seed).sample_order(&log));
        }
        assert_eq!(seen.len(), 2, "both interleavings reachable: {seen:?}");
    }

    #[test]
    fn enumerate_lists_every_causal_order() {
        // Two concurrent pairs: 0a,0b || 1a — orders = C(3,1) positions
        // for 1a among the fixed 0a<0b chain = 3.
        let log = vec![item(0, &[(0, 1)]), item(0, &[(0, 2)]), item(1, &[(1, 1)])];
        let orders = Schedule::enumerate_orders(&log, 100);
        assert_eq!(orders.len(), 3);
        for o in &orders {
            let pos = |i: usize| o.iter().position(|&x| x == i).unwrap();
            assert!(pos(0) < pos(1));
        }
        // The limit bounds the enumeration.
        assert_eq!(Schedule::enumerate_orders(&log, 2).len(), 2);
    }

    #[test]
    fn run_with_faults_still_converges() {
        let mut cluster = Cluster::new(3);
        for i in 0..3u16 {
            for k in 0..5 {
                let r = cluster.replica_mut(ReplicaId(i));
                let mut tx = r.begin();
                tx.ensure("set", ObjectKind::AWSet).unwrap();
                tx.aw_add("set", Val::str(format!("{i}-{k}"))).unwrap();
                tx.commit();
            }
        }
        let faults = DeliveryFaults {
            drop_p: 0.3,
            dup_p: 0.3,
        };
        let report = Schedule::from_seed(42).run(&mut cluster, faults);
        assert!(report.dropped > 0, "hostile schedule actually dropped");
        assert!(cluster.converged(), "anti-entropy repaired the drops");
        for i in 0..3u16 {
            let n = cluster
                .replica(ReplicaId(i))
                .object(&"set".into())
                .unwrap()
                .as_awset()
                .unwrap()
                .len();
            assert_eq!(n, 15, "replica {i} has every element");
            assert!(
                cluster.replica(ReplicaId(i)).applied_consistent(),
                "duplicates must not double-apply"
            );
        }
    }

    /// Regression: dup_p = 1.0 must terminate — a re-queued duplicate
    /// could itself be duplicated forever, so copies deliver immediately.
    #[test]
    fn run_terminates_at_full_duplication() {
        let mut cluster = Cluster::new(3);
        for i in 0..3u16 {
            let r = cluster.replica_mut(ReplicaId(i));
            let mut tx = r.begin();
            tx.ensure("c", ObjectKind::PNCounter).unwrap();
            tx.counter_add("c", 1).unwrap();
            tx.commit();
        }
        let faults = DeliveryFaults {
            drop_p: 0.0,
            dup_p: 1.0,
        };
        let report = Schedule::from_seed(5).run(&mut cluster, faults);
        assert_eq!(report.duplicated, report.delivered);
        assert!(cluster.converged());
        for i in 0..3u16 {
            assert!(cluster.replica(ReplicaId(i)).applied_consistent());
        }
    }

    #[test]
    fn run_report_replays_from_seed() {
        let build = || {
            let mut cluster = Cluster::new(3);
            for i in 0..3u16 {
                let r = cluster.replica_mut(ReplicaId(i));
                let mut tx = r.begin();
                tx.ensure("c", ObjectKind::PNCounter).unwrap();
                tx.counter_add("c", 1).unwrap();
                tx.commit();
            }
            cluster
        };
        let faults = DeliveryFaults {
            drop_p: 0.2,
            dup_p: 0.2,
        };
        let a = Schedule::from_seed(9).run(&mut build(), faults);
        let b = Schedule::from_seed(9).run(&mut build(), faults);
        let c = Schedule::from_seed(10).run(&mut build(), faults);
        assert_eq!(a, b, "same seed ⇒ identical schedule and verdict");
        assert_ne!(a.digest, c.digest, "different seed ⇒ different schedule");
    }
}
