//! Persistent shard-worker pool: the dispatch engine behind
//! [`crate::replica::ApplyDispatch::Pool`].
//!
//! One long-lived worker thread per shard. A dispatch hands each
//! non-empty shard a [`Job`] over its own bounded channel, then the
//! dispatcher parks until the last worker drives the completion counter
//! to zero and unparks it. Nothing is spawned per batch: the whole
//! per-dispatch cost is a channel send plus a park/unpark handoff
//! (single-digit microseconds), versus the tens of microseconds per
//! *thread* the scoped spawn-per-batch path this replaced paid.
//!
//! # Ownership and aliasing
//!
//! A [`Job`] carries raw pointers into the dispatching replica: its
//! shard's `ShardTable`, the batch's update slice, and the run split.
//! That is sound for the same reason `std::thread::scope` was:
//! [`ShardPool::dispatch`] blocks until every job has completed, so the
//! borrows those pointers stand in for never outlive the call, and
//! exclusive `&mut` access to the tables is re-established before
//! `apply_batch` returns. Disjointness across workers is structural —
//! each job names one shard and workers only apply runs routed to that
//! shard, and two shards never share a table.
//!
//! The `AcqRel` decrement of the completion counter (paired with the
//! dispatcher's `Acquire` loads) publishes every table write a worker
//! made before the dispatcher can observe completion, so the replica
//! reads its shards afterwards without further synchronization.

use crate::key::Key;
use crate::replica::{apply_run, ShardTable};
use ipa_crdt::{ObjectKind, ObjectOp};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle, Thread};

/// One update, exactly as `UpdateBatch::updates` stores it.
type Update = (Key, ObjectKind, ObjectOp);

/// One dispatched unit of work: apply every same-key run of the current
/// batch that routes to `shard`. See the module docs for why the raw
/// pointers are sound.
struct Job {
    table: *mut ShardTable,
    updates: *const Update,
    updates_len: usize,
    runs: *const (u32, u32, u32),
    runs_len: usize,
    shard: u32,
}

// SAFETY: the pointers reference memory owned by the dispatching
// replica, which blocks in `ShardPool::dispatch` until the job's
// completion is signalled; exactly one worker receives each job, and
// jobs for distinct shards reference disjoint tables.
unsafe impl Send for Job {}

/// Dispatch-completion rendezvous: workers decrement `remaining`, the
/// last one unparks the registered dispatcher.
struct Completion {
    remaining: AtomicUsize,
    dispatcher: Mutex<Option<Thread>>,
}

/// The persistent worker pool: one thread per shard, each fed by a
/// bounded channel of depth 1 (a replica dispatches at most one job per
/// shard per batch, and blocks until all complete — the channel only
/// ever holds the in-flight job, so sends never block in practice).
pub(crate) struct ShardPool {
    senders: Vec<SyncSender<Job>>,
    workers: Vec<JoinHandle<()>>,
    completion: Arc<Completion>,
}

fn worker_loop(rx: Receiver<Job>, completion: Arc<Completion>) {
    while let Ok(job) = rx.recv() {
        // SAFETY: see `Job` — dispatch-scoped exclusive access; the
        // dispatcher cannot return (and thus the referents cannot move
        // or be mutated elsewhere) until this job's decrement below.
        unsafe {
            let table = &mut *job.table;
            let updates = std::slice::from_raw_parts(job.updates, job.updates_len);
            let runs = std::slice::from_raw_parts(job.runs, job.runs_len);
            for &(rs, start, len) in runs {
                if rs == job.shard {
                    apply_run(table, updates, start as usize, len as usize);
                }
            }
        }
        if completion.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let waiter = completion.dispatcher.lock().expect("completion lock");
            if let Some(t) = waiter.as_ref() {
                t.unpark();
            }
        }
    }
}

impl ShardPool {
    /// Spawn one worker per shard. Workers live until the pool drops
    /// (replica drop, or an [`ApplyDispatch`] mode change tearing the
    /// pool down).
    ///
    /// [`ApplyDispatch`]: crate::replica::ApplyDispatch
    pub(crate) fn new(shards: usize) -> ShardPool {
        let completion = Arc::new(Completion {
            remaining: AtomicUsize::new(0),
            dispatcher: Mutex::new(None),
        });
        let mut senders = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for s in 0..shards {
            let (tx, rx) = mpsc::sync_channel::<Job>(1);
            let completion = Arc::clone(&completion);
            workers.push(
                thread::Builder::new()
                    .name(format!("ipa-shard-{s}"))
                    .spawn(move || worker_loop(rx, completion))
                    .expect("spawn shard worker"),
            );
            senders.push(tx);
        }
        ShardPool {
            senders,
            workers,
            completion,
        }
    }

    /// Dispatch one batch: send every non-empty shard its job, park
    /// until all complete. Returns the number of jobs dispatched.
    ///
    /// Blocking here is the backpressure contract: a replica never has
    /// more than one batch in flight in its pool, so the bounded
    /// channels cannot grow and the caller regains exclusive table
    /// access before touching the shards again.
    pub(crate) fn dispatch(
        &self,
        shards: &mut [ShardTable],
        updates: &[Update],
        runs: &[(u32, u32, u32)],
        counts: &[u32],
    ) -> u64 {
        assert_eq!(
            shards.len(),
            self.senders.len(),
            "pool sized to the shard layout"
        );
        let jobs = counts.iter().filter(|&&c| c > 0).count();
        if jobs == 0 {
            return 0;
        }
        // Register the dispatcher *before* any job is sent: a worker
        // finishing early must know whom to unpark. (An unpark arriving
        // before the park is banked as a token, so the dispatcher can
        // never sleep through the last completion.)
        *self.completion.dispatcher.lock().expect("completion lock") = Some(thread::current());
        self.completion.remaining.store(jobs, Ordering::Release);
        for (s, table) in shards.iter_mut().enumerate() {
            if counts[s] == 0 {
                continue;
            }
            let job = Job {
                table: std::ptr::from_mut(table),
                updates: updates.as_ptr(),
                updates_len: updates.len(),
                runs: runs.as_ptr(),
                runs_len: runs.len(),
                shard: s as u32,
            };
            self.senders[s].send(job).expect("shard worker alive");
        }
        // Park until every job completed (spurious wakeups and banked
        // tokens from an earlier dispatch just re-test the counter).
        while self.completion.remaining.load(Ordering::Acquire) > 0 {
            thread::park();
        }
        jobs as u64
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        // Closing the channels makes every worker's `recv` fail, which
        // ends its loop; then join so no worker outlives the tables it
        // could have been handed pointers into.
        self.senders.clear();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl std::fmt::Debug for ShardPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardPool")
            .field("workers", &self.workers.len())
            .finish()
    }
}
