//! Replicated update batches: the atomic unit of transaction effects.

use crate::key::Key;
use ipa_crdt::{ObjectKind, ObjectOp, ReplicaId, VClock};
use serde::{Deserialize, Serialize};

/// The effects of one committed transaction, replicated asynchronously to
/// every other replica and applied atomically under causal delivery.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct UpdateBatch {
    /// Origin replica.
    pub origin: ReplicaId,
    /// Origin commit number: `clock.get(origin)` equals this.
    pub seq: u64,
    /// Origin's vector clock *including* this batch.
    pub clock: VClock,
    /// Lamport timestamp of the commit (drives LWW registers).
    pub lamport: u64,
    /// The object updates; the [`ObjectKind`] lets receivers instantiate
    /// missing objects deterministically.
    pub updates: Vec<(Key, ObjectKind, ObjectOp)>,
}

impl UpdateBatch {
    /// Is this batch deliverable at a replica whose applied-clock is
    /// `at`? Standard causal-delivery condition (one dense scan).
    pub fn deliverable_at(&self, at: &VClock) -> bool {
        self.clock.deliverable_from(self.origin, at)
    }

    /// Serialized size in bytes (for the simulator's bandwidth model).
    pub fn encoded_len(&self) -> usize {
        // A cheap structural estimate (we do not need exact wire format).
        64 + self.updates.len() * 48
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clock(entries: &[(u16, u64)]) -> VClock {
        entries.iter().map(|&(r, v)| (ReplicaId(r), v)).collect()
    }

    #[test]
    fn deliverability_conditions() {
        let b = UpdateBatch {
            origin: ReplicaId(1),
            seq: 2,
            clock: clock(&[(0, 3), (1, 2)]),
            lamport: 9,
            updates: vec![],
        };
        // Needs r1's first batch and r0 up to 3.
        assert!(!b.deliverable_at(&clock(&[(0, 3)])));
        assert!(!b.deliverable_at(&clock(&[(0, 2), (1, 1)])));
        assert!(b.deliverable_at(&clock(&[(0, 3), (1, 1)])));
        assert!(
            b.deliverable_at(&clock(&[(0, 5), (1, 1)])),
            "extra knowledge is fine"
        );
        assert!(
            !b.deliverable_at(&clock(&[(0, 3), (1, 2)])),
            "already applied seq"
        );
    }

    #[test]
    fn encoded_len_scales_with_updates() {
        let empty = UpdateBatch {
            origin: ReplicaId(0),
            seq: 1,
            clock: clock(&[(0, 1)]),
            lamport: 1,
            updates: vec![],
        };
        assert!(empty.encoded_len() >= 64);
    }
}
