//! Replicated update batches: the atomic unit of transaction effects.

use crate::key::Key;
use ipa_crdt::{ObjectKind, ObjectOp, ReplicaId, VClock};
use serde::{Deserialize, Serialize};

/// The effects of one committed transaction, replicated asynchronously to
/// every other replica and applied atomically under causal delivery.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct UpdateBatch {
    /// Origin replica.
    pub origin: ReplicaId,
    /// Origin commit number: `clock.get(origin)` equals this.
    pub seq: u64,
    /// Origin's vector clock *including* this batch.
    pub clock: VClock,
    /// Lamport timestamp of the commit (drives LWW registers).
    pub lamport: u64,
    /// The object updates; the [`ObjectKind`] lets receivers instantiate
    /// missing objects deterministically.
    pub updates: Vec<(Key, ObjectKind, ObjectOp)>,
    /// Integrity checksum sealed at the origin over the batch envelope
    /// (origin, seq, clock, lamport, update keys/kinds). A *stored*
    /// field, not recomputed on read: a batch mutated in flight keeps
    /// the origin's seal and fails [`UpdateBatch::integrity_ok`].
    pub check: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

fn fnv_word(mut h: u64, word: u64) -> u64 {
    for byte in word.to_le_bytes() {
        h = (h ^ byte as u64).wrapping_mul(FNV_PRIME);
    }
    h
}

fn fnv_bytes(mut h: u64, bytes: &[u8]) -> u64 {
    for &byte in bytes {
        h = (h ^ byte as u64).wrapping_mul(FNV_PRIME);
    }
    h
}

/// A structural fingerprint of an [`ObjectKind`], folded into the batch
/// checksum so a kind swapped in flight is detected.
fn kind_fingerprint(kind: &ObjectKind) -> u64 {
    match *kind {
        ObjectKind::AWSet => 1,
        ObjectKind::RWSet => 2,
        ObjectKind::AWMap => 3,
        ObjectKind::PNCounter => 4,
        ObjectKind::BCounter { floor, initial } => {
            fnv_word(fnv_word(5, floor as u64), initial as u64)
        }
        ObjectKind::LWW => 6,
        ObjectKind::MV => 7,
        ObjectKind::CompSet { capacity } => fnv_word(8, capacity as u64),
    }
}

impl UpdateBatch {
    /// Construct and seal a batch in one step (the only path the store's
    /// commit pipeline uses).
    pub fn sealed(
        origin: ReplicaId,
        seq: u64,
        clock: VClock,
        lamport: u64,
        updates: Vec<(Key, ObjectKind, ObjectOp)>,
    ) -> UpdateBatch {
        let mut b = UpdateBatch {
            origin,
            seq,
            clock,
            lamport,
            updates,
            check: 0,
        };
        b.reseal();
        b
    }

    /// The envelope checksum: FNV-1a over origin, seq, lamport, the
    /// clock's entries, and each update's key bytes + kind fingerprint.
    /// Cheap (no op payload walk) but sensitive to every corruption
    /// class the adversarial nemesis injects: bit-flips on seq/lamport,
    /// truncated update vectors, forged sequence numbers, and mutated
    /// duplicate payload keys.
    pub fn envelope_check(&self) -> u64 {
        let mut h = FNV_OFFSET;
        h = fnv_word(h, self.origin.0 as u64);
        h = fnv_word(h, self.seq);
        h = fnv_word(h, self.lamport);
        for (r, v) in self.clock.iter() {
            h = fnv_word(h, r.0 as u64);
            h = fnv_word(h, v);
        }
        h = fnv_word(h, self.updates.len() as u64);
        for (key, kind, _) in &self.updates {
            h = fnv_bytes(h, key.as_str().as_bytes());
            h = fnv_word(h, kind_fingerprint(kind));
        }
        h
    }

    /// Re-seal after a *legitimate* envelope change (e.g. the simulator's
    /// honest-but-skewed clock model shifting `lamport`). Adversarial
    /// mutation deliberately does NOT reseal — that is what makes it
    /// detectable.
    pub fn reseal(&mut self) {
        self.check = self.envelope_check();
    }

    /// Does the stored seal match the envelope as received?
    pub fn integrity_ok(&self) -> bool {
        self.check == self.envelope_check()
    }

    /// Structural soundness independent of the seal: the origin sequence
    /// must be positive and agree with the batch's own clock. A forged
    /// seq that was *also* resealed would pass `integrity_ok` but trips
    /// here (non-equivocating adversary: it cannot forge a consistent
    /// clock without being a new, valid batch).
    pub fn well_formed(&self) -> bool {
        self.seq >= 1 && self.clock.get(self.origin) == self.seq
    }

    /// Is this batch deliverable at a replica whose applied-clock is
    /// `at`? Standard causal-delivery condition (one dense scan).
    pub fn deliverable_at(&self, at: &VClock) -> bool {
        self.clock.deliverable_from(self.origin, at)
    }

    /// Serialized size in bytes (for the simulator's bandwidth model).
    pub fn encoded_len(&self) -> usize {
        // A cheap structural estimate (we do not need exact wire format).
        64 + self.updates.len() * 48
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clock(entries: &[(u16, u64)]) -> VClock {
        entries.iter().map(|&(r, v)| (ReplicaId(r), v)).collect()
    }

    #[test]
    fn deliverability_conditions() {
        let b = UpdateBatch::sealed(ReplicaId(1), 2, clock(&[(0, 3), (1, 2)]), 9, vec![]);
        // Needs r1's first batch and r0 up to 3.
        assert!(!b.deliverable_at(&clock(&[(0, 3)])));
        assert!(!b.deliverable_at(&clock(&[(0, 2), (1, 1)])));
        assert!(b.deliverable_at(&clock(&[(0, 3), (1, 1)])));
        assert!(
            b.deliverable_at(&clock(&[(0, 5), (1, 1)])),
            "extra knowledge is fine"
        );
        assert!(
            !b.deliverable_at(&clock(&[(0, 3), (1, 2)])),
            "already applied seq"
        );
    }

    #[test]
    fn encoded_len_scales_with_updates() {
        let empty = UpdateBatch::sealed(ReplicaId(0), 1, clock(&[(0, 1)]), 1, vec![]);
        assert!(empty.encoded_len() >= 64);
    }

    #[test]
    fn seal_detects_envelope_mutation() {
        let mut b = UpdateBatch::sealed(ReplicaId(1), 2, clock(&[(0, 3), (1, 2)]), 9, vec![]);
        assert!(b.integrity_ok());
        assert!(b.well_formed());

        // Bit-flip the lamport in flight: the origin's seal no longer
        // matches.
        b.lamport ^= 1 << 7;
        assert!(!b.integrity_ok());
        // An honest reseal (the skew model) restores integrity.
        b.reseal();
        assert!(b.integrity_ok());

        // Forge the seq without touching the clock: resealing cannot
        // save it — structural soundness fails.
        b.seq = 7;
        b.reseal();
        assert!(b.integrity_ok());
        assert!(!b.well_formed());
    }

    #[test]
    fn seal_detects_truncated_updates() {
        use ipa_crdt::PNCounterOp;
        let op = |delta| {
            ObjectOp::PNCounter(PNCounterOp {
                origin: ReplicaId(0),
                delta,
            })
        };
        let updates = vec![
            (Key::from("a"), ObjectKind::PNCounter, op(1)),
            (Key::from("b"), ObjectKind::PNCounter, op(2)),
        ];
        let mut b = UpdateBatch::sealed(ReplicaId(0), 1, clock(&[(0, 1)]), 3, updates);
        assert!(b.integrity_ok());
        b.updates.truncate(1);
        assert!(!b.integrity_ok(), "truncated batch must fail the seal");
    }
}
