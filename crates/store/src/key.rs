//! Object keys.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// A key naming one CRDT object in the store. Applications typically use
/// structured names like `"tournament:players"` or `"timeline:alice"`.
///
/// Keys are interned as `Arc<str>`: cloning — which the replication hot
/// path does once per update in `apply_batch` and per touched object in
/// transaction overlays — is a reference-count bump, never a heap copy
/// of the string.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Key(Arc<str>);

impl Key {
    pub fn new(s: impl Into<Arc<str>>) -> Key {
        Key(s.into())
    }

    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Key({})", self.0)
    }
}

impl From<&str> for Key {
    fn from(s: &str) -> Key {
        Key::new(s)
    }
}

impl From<String> for Key {
    fn from(s: String) -> Key {
        Key::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_basics() {
        let k: Key = "tournament:players".into();
        assert_eq!(k.as_str(), "tournament:players");
        assert_eq!(k.to_string(), "tournament:players");
        assert_eq!(format!("{k:?}"), "Key(tournament:players)");
    }

    #[test]
    fn clones_share_the_backing_allocation() {
        let k: Key = "hot:key".into();
        let c = k.clone();
        assert_eq!(k, c);
        assert!(
            std::ptr::eq(k.as_str(), c.as_str()),
            "clone must not copy the string"
        );
    }
}
