//! Object keys.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A key naming one CRDT object in the store. Applications typically use
/// structured names like `"tournament:players"` or `"timeline:alice"`.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Key(pub String);

impl Key {
    pub fn new(s: impl Into<String>) -> Key {
        Key(s.into())
    }

    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Key({})", self.0)
    }
}

impl From<&str> for Key {
    fn from(s: &str) -> Key {
        Key::new(s)
    }
}

impl From<String> for Key {
    fn from(s: String) -> Key {
        Key(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_basics() {
        let k: Key = "tournament:players".into();
        assert_eq!(k.as_str(), "tournament:players");
        assert_eq!(k.to_string(), "tournament:players");
        assert_eq!(format!("{k:?}"), "Key(tournament:players)");
    }
}
