//! Store errors.

use crate::key::Key;
use ipa_crdt::ReplicaId;
use std::fmt;

/// Errors surfaced by the store and transaction layers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// The key does not exist (and the operation cannot create it).
    NoSuchObject(Key),
    /// The key exists with a different object kind.
    KindMismatch { key: Key, existing: &'static str },
    /// The key's object is not of the type the accessor expects.
    WrongType { key: Key, expected: &'static str },
    /// An escrow decrement exceeded the replica's local rights
    /// (bounded counter / reservation path).
    InsufficientRights { key: Key },
    /// The replica is down (crashed by fault injection) and refuses
    /// transactions until restarted.
    Unavailable(ReplicaId),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::NoSuchObject(k) => write!(f, "no such object: {k}"),
            StoreError::KindMismatch { key, existing } => {
                write!(f, "key {key} already holds a {existing}")
            }
            StoreError::WrongType { key, expected } => {
                write!(f, "key {key} is not a {expected}")
            }
            StoreError::InsufficientRights { key } => {
                write!(f, "insufficient escrow rights on {key}")
            }
            StoreError::Unavailable(r) => write!(f, "replica {} is down", r.0),
        }
    }
}

impl std::error::Error for StoreError {}
