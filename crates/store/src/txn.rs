//! Highly-available transactions (§2.1, §4.1).
//!
//! A transaction executes entirely at its origin replica: it reads the
//! replica's committed state through a copy-on-write overlay (giving
//! read-your-writes), buffers update effects, and on commit installs them
//! atomically and stages one [`UpdateBatch`] for asynchronous replication.
//! Dropping the transaction without committing aborts it.

use crate::batch::UpdateBatch;
use crate::errors::StoreError;
use crate::key::Key;
use crate::replica::{creation_owner, Replica};
use ipa_crdt::compset::CompensatedRead;
use ipa_crdt::{Object, ObjectKind, ObjectOp, VClock, Val, ValPattern};
use std::collections::HashMap;

/// Result of a successful commit.
#[derive(Clone, Debug)]
pub struct CommitInfo {
    /// The commit's clock (unchanged replica clock for read-only
    /// transactions).
    pub clock: VClock,
    /// Number of update effects committed.
    pub updates: usize,
    /// Number of compensations co-committed by constrained reads.
    pub compensations: usize,
}

/// An in-flight transaction on one replica.
pub struct Transaction<'a> {
    replica: &'a mut Replica,
    /// Copy-on-write view of touched objects.
    overlay: HashMap<Key, (ObjectKind, Object)>,
    /// Buffered effects, in execution order.
    updates: Vec<(Key, ObjectKind, ObjectOp)>,
    /// The clock this commit will carry (replica clock + own tick).
    commit_clock: VClock,
    /// Lamport timestamp for LWW writes.
    ts: u64,
    compensations: usize,
}

impl<'a> Transaction<'a> {
    pub(crate) fn new(replica: &'a mut Replica) -> Self {
        let commit_clock = replica.next_commit_clock();
        let ts = replica.lamport() + 1;
        Transaction {
            replica,
            overlay: HashMap::new(),
            updates: Vec::new(),
            commit_clock,
            ts,
            compensations: 0,
        }
    }

    /// Declare (and lazily create) an object of the given kind.
    pub fn ensure(&mut self, key: impl Into<Key>, kind: ObjectKind) -> Result<(), StoreError> {
        let key = key.into();
        if self.overlay.contains_key(&key) {
            return Ok(());
        }
        match self.replica.object(&key) {
            Some(obj) => {
                let declared = self.replica.kind_of(&key).unwrap_or(kind);
                self.overlay.insert(key, (declared, obj.clone()));
            }
            None => {
                self.overlay
                    .insert(key, (kind, Object::new(kind, creation_owner())));
            }
        }
        Ok(())
    }

    /// Fetch (copy-on-write) the object for a key, requiring it to exist
    /// either in the overlay or the replica.
    fn obj_mut(&mut self, key: &Key) -> Result<&mut (ObjectKind, Object), StoreError> {
        if !self.overlay.contains_key(key) {
            let obj = self
                .replica
                .object(key)
                .cloned()
                .ok_or_else(|| StoreError::NoSuchObject(key.clone()))?;
            let kind = self
                .replica
                .kind_of(key)
                .ok_or_else(|| StoreError::NoSuchObject(key.clone()))?;
            self.overlay.insert(key.clone(), (kind, obj));
        }
        Ok(self.overlay.get_mut(key).expect("inserted above"))
    }

    fn obj_ref(&mut self, key: &Key) -> Result<&(ObjectKind, Object), StoreError> {
        self.obj_mut(key).map(|x| &*x)
    }

    /// Record and locally apply an effect.
    fn push(&mut self, key: Key, op: ObjectOp) -> Result<(), StoreError> {
        let (kind, obj) = self.obj_mut(&key)?;
        let kind = *kind;
        obj.apply(&op).map_err(|e| StoreError::WrongType {
            key: key.clone(),
            expected: e.expected,
        })?;
        self.updates.push((key, kind, op));
        Ok(())
    }

    // ------------------------------------------------------------------
    // Add-wins set
    // ------------------------------------------------------------------

    pub fn aw_add(&mut self, key: impl Into<Key>, v: Val) -> Result<(), StoreError> {
        let key = key.into();
        let tag = self.replica.alloc_tag();
        let (_, obj) = self.obj_ref(&key)?;
        let set = obj.as_awset().ok_or_else(|| wrong(&key, "aw-set"))?;
        let op = ObjectOp::AWSet(set.prepare_add(v, tag));
        self.push(key, op)
    }

    pub fn aw_remove(&mut self, key: impl Into<Key>, v: &Val) -> Result<(), StoreError> {
        let key = key.into();
        let (_, obj) = self.obj_ref(&key)?;
        let set = obj.as_awset().ok_or_else(|| wrong(&key, "aw-set"))?;
        if let Some(op) = set.prepare_remove(v) {
            let op = ObjectOp::AWSet(op);
            self.push(key, op)?;
        }
        Ok(())
    }

    /// Wildcard remove (add-wins): removes observed matching elements.
    pub fn aw_remove_matching(
        &mut self,
        key: impl Into<Key>,
        pattern: &ValPattern,
    ) -> Result<(), StoreError> {
        let key = key.into();
        let (_, obj) = self.obj_ref(&key)?;
        let set = obj.as_awset().ok_or_else(|| wrong(&key, "aw-set"))?;
        let op = ObjectOp::AWSet(set.prepare_remove_matching(|e| pattern.matches(e)));
        self.push(key, op)
    }

    // ------------------------------------------------------------------
    // Rem-wins set
    // ------------------------------------------------------------------

    pub fn rw_add(&mut self, key: impl Into<Key>, v: Val) -> Result<(), StoreError> {
        let key = key.into();
        let tag = self.replica.alloc_tag();
        let clock = self.commit_clock.clone();
        let (_, obj) = self.obj_ref(&key)?;
        let set = obj.as_rwset().ok_or_else(|| wrong(&key, "rw-set"))?;
        let op = ObjectOp::RWSet(set.prepare_add(v, tag, clock));
        self.push(key, op)
    }

    pub fn rw_remove(&mut self, key: impl Into<Key>, v: Val) -> Result<(), StoreError> {
        let key = key.into();
        let tag = self.replica.alloc_tag();
        let clock = self.commit_clock.clone();
        let (_, obj) = self.obj_ref(&key)?;
        let set = obj.as_rwset().ok_or_else(|| wrong(&key, "rw-set"))?;
        let op = ObjectOp::RWSet(set.prepare_remove(v, tag, clock));
        self.push(key, op)
    }

    /// Wildcard remove (rem-wins): defeats even concurrent matching adds
    /// (§4.2.1 — the `enrolled(*, t) := false` effect).
    pub fn rw_remove_matching(
        &mut self,
        key: impl Into<Key>,
        pattern: ValPattern,
    ) -> Result<(), StoreError> {
        let key = key.into();
        let tag = self.replica.alloc_tag();
        let clock = self.commit_clock.clone();
        let (_, obj) = self.obj_ref(&key)?;
        let set = obj.as_rwset().ok_or_else(|| wrong(&key, "rw-set"))?;
        let op = ObjectOp::RWSet(set.prepare_remove_matching(pattern, tag, clock));
        self.push(key, op)
    }

    // ------------------------------------------------------------------
    // Add-wins map (entities with payload; touch support)
    // ------------------------------------------------------------------

    pub fn map_put(&mut self, key: impl Into<Key>, k: Val, v: Val) -> Result<(), StoreError> {
        let key = key.into();
        let tag = self.replica.alloc_tag();
        let clock = self.commit_clock.clone();
        let ts = self.ts;
        let (_, obj) = self.obj_ref(&key)?;
        let map = obj.as_awmap().ok_or_else(|| wrong(&key, "aw-map"))?;
        let op = ObjectOp::AWMap(map.prepare_put(k, tag, clock, ts, v));
        self.push(key, op)
    }

    /// Touch: restore presence, preserve payload (§4.2.1).
    pub fn map_touch(&mut self, key: impl Into<Key>, k: Val) -> Result<(), StoreError> {
        let key = key.into();
        let tag = self.replica.alloc_tag();
        let clock = self.commit_clock.clone();
        let (_, obj) = self.obj_ref(&key)?;
        let map = obj.as_awmap().ok_or_else(|| wrong(&key, "aw-map"))?;
        let op = ObjectOp::AWMap(map.prepare_touch(k, tag, clock));
        self.push(key, op)
    }

    pub fn map_remove(&mut self, key: impl Into<Key>, k: &Val) -> Result<(), StoreError> {
        let key = key.into();
        let clock = self.commit_clock.clone();
        let (_, obj) = self.obj_ref(&key)?;
        let map = obj.as_awmap().ok_or_else(|| wrong(&key, "aw-map"))?;
        if let Some(op) = map.prepare_remove(k, clock) {
            let op = ObjectOp::AWMap(op);
            self.push(key, op)?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Counters and registers
    // ------------------------------------------------------------------

    pub fn counter_add(&mut self, key: impl Into<Key>, delta: i64) -> Result<(), StoreError> {
        let key = key.into();
        let origin = self.replica.id();
        let (_, obj) = self.obj_ref(&key)?;
        let c = obj
            .as_pncounter()
            .ok_or_else(|| wrong(&key, "pn-counter"))?;
        let op = ObjectOp::PNCounter(c.prepare(origin, delta));
        self.push(key, op)
    }

    pub fn bcounter_inc(&mut self, key: impl Into<Key>, n: u64) -> Result<(), StoreError> {
        let key = key.into();
        let origin = self.replica.id();
        let (_, obj) = self.obj_ref(&key)?;
        let c = obj
            .as_bcounter()
            .ok_or_else(|| wrong(&key, "bounded-counter"))?;
        let op = ObjectOp::BCounter(c.prepare_inc(origin, n));
        self.push(key, op)
    }

    /// Escrow decrement: fails with [`StoreError::InsufficientRights`]
    /// when the replica lacks local rights.
    pub fn bcounter_dec(&mut self, key: impl Into<Key>, n: u64) -> Result<(), StoreError> {
        let key = key.into();
        let origin = self.replica.id();
        let (_, obj) = self.obj_ref(&key)?;
        let c = obj
            .as_bcounter()
            .ok_or_else(|| wrong(&key, "bounded-counter"))?;
        let Some(op) = c.prepare_dec(origin, n) else {
            self.replica.stats.escrow_dec_denied += 1;
            return Err(StoreError::InsufficientRights { key });
        };
        let op = ObjectOp::BCounter(op);
        self.push(key, op)
    }

    pub fn bcounter_transfer(
        &mut self,
        key: impl Into<Key>,
        to: ipa_crdt::ReplicaId,
        n: u64,
    ) -> Result<(), StoreError> {
        let key = key.into();
        let origin = self.replica.id();
        let (_, obj) = self.obj_ref(&key)?;
        let c = obj
            .as_bcounter()
            .ok_or_else(|| wrong(&key, "bounded-counter"))?;
        let op = c
            .prepare_transfer(origin, to, n)
            .ok_or_else(|| StoreError::InsufficientRights { key: key.clone() })?;
        let op = ObjectOp::BCounter(op);
        self.push(key, op)
    }

    /// Locally-visible escrow rights of `holder` on a bounded counter
    /// (read-your-writes: sees this transaction's own decrements and
    /// transfers).
    pub fn bcounter_rights(
        &mut self,
        key: impl Into<Key>,
        holder: ipa_crdt::ReplicaId,
    ) -> Result<i64, StoreError> {
        let key = key.into();
        let (_, obj) = self.obj_ref(&key)?;
        let c = obj
            .as_bcounter()
            .ok_or_else(|| wrong(&key, "bounded-counter"))?;
        Ok(c.local_rights(holder))
    }

    /// Is `clock` at or below this replica's causal-stability frontier
    /// over `replicas`? Provisioning policies use this to wait for an
    /// earlier rights-transfer to stabilize before re-granting; the
    /// underlying fold is cached and only recomputed on clock advance
    /// ([`Replica::stability_frontier_cached`]).
    pub fn clock_stable(&mut self, clock: &VClock, replicas: &[ipa_crdt::ReplicaId]) -> bool {
        clock.le(&self.replica.stability_frontier_cached(replicas))
    }

    pub fn lww_write(&mut self, key: impl Into<Key>, v: Val) -> Result<(), StoreError> {
        let key = key.into();
        let tag = self.replica.alloc_tag();
        let ts = self.ts;
        let (_, obj) = self.obj_ref(&key)?;
        let r = obj.as_lww().ok_or_else(|| wrong(&key, "lww-register"))?;
        let op = ObjectOp::LWW(r.prepare_write(ts, tag, v));
        self.push(key, op)
    }

    pub fn mv_write(&mut self, key: impl Into<Key>, v: Val) -> Result<(), StoreError> {
        let key = key.into();
        let clock = self.commit_clock.clone();
        let (_, obj) = self.obj_ref(&key)?;
        let r = obj.as_mv().ok_or_else(|| wrong(&key, "mv-register"))?;
        let op = ObjectOp::MV(r.prepare_write(clock, v));
        self.push(key, op)
    }

    // ------------------------------------------------------------------
    // Compensation set (§4.2.2)
    // ------------------------------------------------------------------

    pub fn compset_add(&mut self, key: impl Into<Key>, v: Val) -> Result<(), StoreError> {
        let key = key.into();
        let tag = self.replica.alloc_tag();
        let (_, obj) = self.obj_ref(&key)?;
        let s = obj
            .as_compset()
            .ok_or_else(|| wrong(&key, "compensation-set"))?;
        let op = ObjectOp::CompSet(s.prepare_add(v, tag));
        self.push(key, op)
    }

    /// Constrained read: any violation observed is compensated and the
    /// compensation is committed alongside this transaction's effects.
    pub fn compset_read(
        &mut self,
        key: impl Into<Key>,
    ) -> Result<CompensatedRead<Val>, StoreError> {
        let key = key.into();
        let (kind, obj) = self.obj_mut(&key)?;
        let kind = *kind;
        let s = obj
            .as_compset_mut()
            .ok_or_else(|| wrong(&key, "compensation-set"))?;
        let read = s.read();
        if let Some(comp) = &read.compensation {
            s.apply(comp);
            self.updates
                .push((key, kind, ObjectOp::CompSet(comp.clone())));
            self.compensations += 1;
        }
        Ok(read)
    }

    // ------------------------------------------------------------------
    // Reads
    // ------------------------------------------------------------------

    /// Membership across set-like objects (read-your-writes).
    pub fn contains(&mut self, key: impl Into<Key>, v: &Val) -> Result<bool, StoreError> {
        let key = key.into();
        let (_, obj) = self.obj_ref(&key)?;
        obj.set_contains(v).ok_or_else(|| wrong(&key, "set-like"))
    }

    /// Elements of a set-like object.
    pub fn set_elements(&mut self, key: impl Into<Key>) -> Result<Vec<Val>, StoreError> {
        let key = key.into();
        let (_, obj) = self.obj_ref(&key)?;
        match obj {
            Object::AWSet(s) => Ok(s.elements().cloned().collect()),
            Object::RWSet(s) => Ok(s.elements().cloned().collect()),
            Object::CompSet(_) => {
                let r = self.compset_read(key)?;
                Ok(r.elements)
            }
            Object::AWMap(m) => Ok(m.keys().cloned().collect()),
            _ => Err(wrong(&key, "set-like")),
        }
    }

    pub fn counter_value(&mut self, key: impl Into<Key>) -> Result<i64, StoreError> {
        let key = key.into();
        let (_, obj) = self.obj_ref(&key)?;
        match obj {
            Object::PNCounter(c) => Ok(c.value()),
            Object::BCounter(c) => Ok(c.value()),
            _ => Err(wrong(&key, "counter")),
        }
    }

    pub fn lww_get(&mut self, key: impl Into<Key>) -> Result<Option<Val>, StoreError> {
        let key = key.into();
        let (_, obj) = self.obj_ref(&key)?;
        let r = obj.as_lww().ok_or_else(|| wrong(&key, "lww-register"))?;
        Ok(r.get().cloned())
    }

    pub fn map_get(&mut self, key: impl Into<Key>, k: &Val) -> Result<Option<Val>, StoreError> {
        let key = key.into();
        let (_, obj) = self.obj_ref(&key)?;
        let m = obj.as_awmap().ok_or_else(|| wrong(&key, "aw-map"))?;
        Ok(m.get(k).cloned())
    }

    /// Number of buffered updates so far.
    pub fn update_count(&self) -> usize {
        self.updates.len()
    }

    // ------------------------------------------------------------------
    // Commit
    // ------------------------------------------------------------------

    /// Commit: install the overlay and stage the batch. Read-only
    /// transactions commit without consuming a sequence number.
    pub fn commit(self) -> CommitInfo {
        let Transaction {
            replica,
            overlay,
            updates,
            commit_clock,
            ts,
            compensations,
        } = self;
        if updates.is_empty() {
            // Read-only: nothing replicates; created (ensured) objects
            // still install locally so later transactions find them.
            for (key, (kind, obj)) in overlay {
                if replica.object(&key).is_none() {
                    replica.insert_object(key, kind, obj);
                }
            }
            return CommitInfo {
                clock: replica.clock().clone(),
                updates: 0,
                compensations,
            };
        }
        let batch = UpdateBatch::sealed(
            replica.id(),
            commit_clock.get(replica.id()),
            commit_clock.clone(),
            ts,
            updates,
        );
        let n = batch.updates.len();
        // Install ensured-but-unwritten objects (local only). Keys written
        // by this transaction are NOT installed from the overlay: the batch
        // application below re-creates them from their ops, and installing
        // both would apply every effect twice.
        let written: std::collections::HashSet<&Key> =
            batch.updates.iter().map(|(k, _, _)| k).collect();
        let unwritten: Vec<(Key, (ObjectKind, Object))> = overlay
            .into_iter()
            .filter(|(key, _)| !written.contains(key))
            .collect();
        for (key, (kind, obj)) in unwritten {
            if replica.object(&key).is_none() {
                replica.insert_object(key, kind, obj);
            }
        }
        replica.commit_batch(batch);
        CommitInfo {
            clock: commit_clock,
            updates: n,
            compensations,
        }
    }
}

fn wrong(key: &Key, expected: &'static str) -> StoreError {
    StoreError::WrongType {
        key: key.clone(),
        expected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipa_crdt::ReplicaId;

    fn replica() -> Replica {
        Replica::new(ReplicaId(0))
    }

    #[test]
    fn read_your_writes_within_transaction() {
        let mut r = replica();
        let mut tx = r.begin();
        tx.ensure("s", ObjectKind::AWSet).unwrap();
        assert!(!tx.contains("s", &Val::str("x")).unwrap());
        tx.aw_add("s", Val::str("x")).unwrap();
        assert!(
            tx.contains("s", &Val::str("x")).unwrap(),
            "read-your-writes"
        );
        tx.commit();
        assert!(r
            .object(&"s".into())
            .unwrap()
            .set_contains(&Val::str("x"))
            .unwrap());
    }

    #[test]
    fn abort_discards_buffered_updates() {
        let mut r = replica();
        {
            let mut tx = r.begin();
            tx.ensure("s", ObjectKind::AWSet).unwrap();
            tx.aw_add("s", Val::str("x")).unwrap();
            // dropped without commit
        }
        assert!(
            r.object(&"s".into()).is_none(),
            "aborted txn leaves no trace"
        );
        assert!(r.take_outbox().is_empty());
    }

    #[test]
    fn read_only_commit_consumes_no_seq() {
        let mut r = replica();
        let before = r.clock().clone();
        let mut tx = r.begin();
        tx.ensure("s", ObjectKind::AWSet).unwrap();
        let _ = tx.contains("s", &Val::str("x")).unwrap();
        let info = tx.commit();
        assert_eq!(info.updates, 0);
        assert_eq!(r.clock(), &before);
        assert!(r.take_outbox().is_empty());
        // The ensured object persists locally.
        assert!(r.object(&"s".into()).is_some());
    }

    #[test]
    fn transaction_batch_is_atomic() {
        let mut a = replica();
        let mut b = Replica::new(ReplicaId(1));
        let mut tx = a.begin();
        tx.ensure("x", ObjectKind::AWSet).unwrap();
        tx.ensure("y", ObjectKind::PNCounter).unwrap();
        tx.aw_add("x", Val::str("e")).unwrap();
        tx.counter_add("y", 7).unwrap();
        let info = tx.commit();
        assert_eq!(info.updates, 2);
        let batch = a.take_outbox().pop().unwrap();
        assert_eq!(batch.updates.len(), 2);
        b.receive(batch);
        assert!(b
            .object(&"x".into())
            .unwrap()
            .set_contains(&Val::str("e"))
            .unwrap());
        assert_eq!(
            b.object(&"y".into())
                .unwrap()
                .as_pncounter()
                .unwrap()
                .value(),
            7
        );
    }

    #[test]
    fn wrong_type_errors() {
        let mut r = replica();
        let mut tx = r.begin();
        tx.ensure("c", ObjectKind::PNCounter).unwrap();
        assert!(matches!(
            tx.aw_add("c", Val::str("x")),
            Err(StoreError::WrongType { .. })
        ));
        assert!(matches!(
            tx.counter_add("ghost", 1),
            Err(StoreError::NoSuchObject(_))
        ));
    }

    #[test]
    fn escrow_dec_rejected_without_rights() {
        let mut r = Replica::new(ReplicaId(1)); // rights live at replica 0
        let mut tx = r.begin();
        tx.ensure(
            "b",
            ObjectKind::BCounter {
                floor: 0,
                initial: 5,
            },
        )
        .unwrap();
        assert!(matches!(
            tx.bcounter_dec("b", 1),
            Err(StoreError::InsufficientRights { .. })
        ));
    }

    #[test]
    fn compset_read_co_commits_compensation() {
        let mut a = replica();
        let mut b = Replica::new(ReplicaId(1));
        // Oversell: capacity 1, two adds in separate transactions.
        for user in ["u1", "u2"] {
            let mut tx = a.begin();
            tx.ensure("tickets", ObjectKind::CompSet { capacity: 1 })
                .unwrap();
            tx.compset_add("tickets", Val::str(user)).unwrap();
            tx.commit();
        }
        let mut tx = a.begin();
        let read = tx.compset_read("tickets").unwrap();
        assert_eq!(read.elements.len(), 1);
        assert_eq!(read.cancelled, vec![Val::str("u2")]);
        let info = tx.commit();
        assert_eq!(info.compensations, 1);
        assert_eq!(info.updates, 1, "the compensation is a real update");
        // The compensation replicates like any effect.
        for batch in a.take_outbox() {
            b.receive(batch);
        }
        assert_eq!(
            b.object(&"tickets".into())
                .unwrap()
                .as_compset()
                .unwrap()
                .raw_len(),
            1
        );
    }

    #[test]
    fn lamport_timestamps_order_lww_across_replicas() {
        let mut a = replica();
        let mut b = Replica::new(ReplicaId(1));
        let mut tx = a.begin();
        tx.ensure("reg", ObjectKind::LWW).unwrap();
        tx.lww_write("reg", Val::int(1)).unwrap();
        tx.commit();
        for batch in a.take_outbox() {
            b.receive(batch);
        }
        // B's next write must dominate A's (lamport advanced on receive).
        let mut tx = b.begin();
        tx.lww_write("reg", Val::int(2)).unwrap();
        tx.commit();
        for batch in b.take_outbox() {
            a.receive(batch);
        }
        assert_eq!(
            a.object(&"reg".into()).unwrap().as_lww().unwrap().get(),
            Some(&Val::int(2))
        );
    }
}
