//! CNF formulas: clause collections with variable accounting.

use crate::lit::{Lit, SatVar};
use std::fmt;

/// A disjunction of literals.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Clause {
    pub lits: Vec<Lit>,
}

impl Clause {
    pub fn new(lits: Vec<Lit>) -> Self {
        Clause { lits }
    }

    pub fn len(&self) -> usize {
        self.lits.len()
    }

    pub fn is_empty(&self) -> bool {
        self.lits.is_empty()
    }

    /// Remove duplicate literals; detect tautologies (`x ∨ ¬x`).
    /// Returns `None` if the clause is a tautology.
    pub fn normalized(mut self) -> Option<Clause> {
        self.lits.sort_unstable();
        self.lits.dedup();
        for w in self.lits.windows(2) {
            if w[0].var() == w[1].var() {
                return None; // x and ~x both present
            }
        }
        Some(self)
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, l) in self.lits.iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, ")")
    }
}

/// A CNF formula under construction.
#[derive(Clone, Debug, Default)]
pub struct Cnf {
    num_vars: u32,
    pub clauses: Vec<Clause>,
    /// Set when a trivially-false (empty) clause was added.
    trivially_unsat: bool,
}

impl Cnf {
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate a fresh variable.
    pub fn fresh_var(&mut self) -> SatVar {
        let v = SatVar(self.num_vars);
        self.num_vars += 1;
        v
    }

    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// Ensure variable ids up to `v` exist (used when clauses are built from
    /// externally numbered variables).
    pub fn ensure_var(&mut self, v: SatVar) {
        if v.0 >= self.num_vars {
            self.num_vars = v.0 + 1;
        }
    }

    /// Add a clause; tautologies are dropped, duplicates within the clause
    /// removed. Adding the empty clause marks the formula unsatisfiable.
    pub fn add_clause(&mut self, lits: impl IntoIterator<Item = Lit>) {
        let clause = Clause::new(lits.into_iter().collect());
        for l in &clause.lits {
            self.ensure_var(l.var());
        }
        match clause.normalized() {
            None => {} // tautology
            Some(c) if c.is_empty() => {
                self.trivially_unsat = true;
                self.clauses.push(c);
            }
            Some(c) => self.clauses.push(c),
        }
    }

    pub fn is_trivially_unsat(&self) -> bool {
        self.trivially_unsat
    }

    /// Evaluate under a full assignment (for testing).
    pub fn eval(&self, assignment: &[bool]) -> bool {
        self.clauses
            .iter()
            .all(|c| c.lits.iter().any(|l| l.apply(assignment[l.var().index()])))
    }
}

impl fmt::Display for Cnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.clauses.iter().enumerate() {
            if i > 0 {
                write!(f, " & ")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tautologies_are_dropped() {
        let mut cnf = Cnf::new();
        let v = cnf.fresh_var();
        cnf.add_clause([v.positive(), v.negative()]);
        assert!(cnf.clauses.is_empty());
    }

    #[test]
    fn duplicate_literals_are_merged() {
        let mut cnf = Cnf::new();
        let v = cnf.fresh_var();
        cnf.add_clause([v.positive(), v.positive()]);
        assert_eq!(cnf.clauses[0].len(), 1);
    }

    #[test]
    fn empty_clause_marks_unsat() {
        let mut cnf = Cnf::new();
        cnf.add_clause([]);
        assert!(cnf.is_trivially_unsat());
    }

    #[test]
    fn ensure_var_grows_the_space() {
        let mut cnf = Cnf::new();
        cnf.add_clause([SatVar(9).positive()]);
        assert_eq!(cnf.num_vars(), 10);
    }

    #[test]
    fn eval_full_assignment() {
        let mut cnf = Cnf::new();
        let a = cnf.fresh_var();
        let b = cnf.fresh_var();
        cnf.add_clause([a.positive(), b.positive()]);
        cnf.add_clause([a.negative()]);
        assert!(cnf.eval(&[false, true]));
        assert!(!cnf.eval(&[true, true]));
        assert!(!cnf.eval(&[false, false]));
    }
}
