//! Small-scope grounding: from first-order formulas to quantifier-free
//! ground formulas over a finite universe.
//!
//! Universes are built by the analysis from the parameters of the operation
//! pair under test plus fresh witness elements — the same test-case
//! instantiation the paper delegates to Z3 (§3.2). Counting atoms
//! (`#enrolled(*, t)`) are expanded into explicit ground-atom lists;
//! numeric predicate atoms stay symbolic and are encoded with a bounded
//! order encoding downstream.

use ipa_spec::Symbol;
use ipa_spec::{
    Atom, CmpOp, Constant, Formula, GroundAtom, NumExpr, PredicateDecl, Sort, Substitution, Term,
    Var,
};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Re-export: substitutions come from `ipa-spec`.
pub use ipa_spec::formula::Substitution as Subst;

/// A finite universe: the elements of each sort.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Universe {
    elems: BTreeMap<Sort, Vec<Constant>>,
}

impl Universe {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an element (idempotent).
    pub fn add(&mut self, c: Constant) {
        let v = self.elems.entry(c.sort.clone()).or_default();
        if !v.contains(&c) {
            v.push(c);
        }
    }

    pub fn with(mut self, c: Constant) -> Self {
        self.add(c);
        self
    }

    pub fn elements(&self, sort: &Sort) -> &[Constant] {
        self.elems.get(sort).map_or(&[], |v| v.as_slice())
    }

    pub fn sorts(&self) -> impl Iterator<Item = &Sort> {
        self.elems.keys()
    }

    pub fn size(&self, sort: &Sort) -> usize {
        self.elements(sort).len()
    }

    pub fn total_size(&self) -> usize {
        self.elems.values().map(Vec::len).sum()
    }

    pub fn iter(&self) -> impl Iterator<Item = &Constant> {
        self.elems.values().flatten()
    }
}

impl FromIterator<Constant> for Universe {
    fn from_iter<T: IntoIterator<Item = Constant>>(iter: T) -> Self {
        let mut u = Universe::new();
        for c in iter {
            u.add(c);
        }
        u
    }
}

/// Quantifier-free ground formula: the encoder's input language.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GroundFormula {
    True,
    False,
    Atom(GroundAtom),
    Not(Box<GroundFormula>),
    And(Vec<GroundFormula>),
    Or(Vec<GroundFormula>),
    /// `|{a ∈ atoms : a true}| + offset  op  rhs`
    CountCmp {
        atoms: Vec<GroundAtom>,
        offset: i64,
        op: CmpOp,
        rhs: i64,
    },
    /// `value(atom) + offset  op  rhs` for a numeric predicate instance.
    ValueCmp {
        atom: GroundAtom,
        offset: i64,
        op: CmpOp,
        rhs: i64,
    },
}

impl GroundFormula {
    // An AST constructor (used point-free, e.g. `prop_map(Self::not)`),
    // not a negation of `self`; `ops::Not` would take `self` by value.
    #[allow(clippy::should_implement_trait)]
    pub fn not(g: GroundFormula) -> GroundFormula {
        GroundFormula::Not(Box::new(g))
    }

    pub fn and(gs: Vec<GroundFormula>) -> GroundFormula {
        match gs.len() {
            0 => GroundFormula::True,
            1 => gs.into_iter().next().expect("len checked"),
            _ => GroundFormula::And(gs),
        }
    }

    pub fn or(gs: Vec<GroundFormula>) -> GroundFormula {
        match gs.len() {
            0 => GroundFormula::False,
            1 => gs.into_iter().next().expect("len checked"),
            _ => GroundFormula::Or(gs),
        }
    }

    /// All boolean ground atoms mentioned (including inside counts).
    pub fn bool_atoms(&self) -> BTreeSet<GroundAtom> {
        let mut out = BTreeSet::new();
        self.visit(&mut |g| match g {
            GroundFormula::Atom(a) => {
                out.insert(a.clone());
            }
            GroundFormula::CountCmp { atoms, .. } => out.extend(atoms.iter().cloned()),
            _ => {}
        });
        out
    }

    /// All numeric ground atoms mentioned.
    pub fn num_atoms(&self) -> BTreeSet<GroundAtom> {
        let mut out = BTreeSet::new();
        self.visit(&mut |g| {
            if let GroundFormula::ValueCmp { atom, .. } = g {
                out.insert(atom.clone());
            }
        });
        out
    }

    fn visit(&self, f: &mut impl FnMut(&GroundFormula)) {
        f(self);
        match self {
            GroundFormula::Not(g) => g.visit(f),
            GroundFormula::And(gs) | GroundFormula::Or(gs) => {
                for g in gs {
                    g.visit(f);
                }
            }
            _ => {}
        }
    }

    /// Evaluate under explicit valuations (reference semantics for tests).
    pub fn eval(
        &self,
        bools: &BTreeMap<GroundAtom, bool>,
        nums: &BTreeMap<GroundAtom, i64>,
    ) -> bool {
        match self {
            GroundFormula::True => true,
            GroundFormula::False => false,
            GroundFormula::Atom(a) => bools.get(a).copied().unwrap_or(false),
            GroundFormula::Not(g) => !g.eval(bools, nums),
            GroundFormula::And(gs) => gs.iter().all(|g| g.eval(bools, nums)),
            GroundFormula::Or(gs) => gs.iter().any(|g| g.eval(bools, nums)),
            GroundFormula::CountCmp {
                atoms,
                offset,
                op,
                rhs,
            } => {
                let n = atoms
                    .iter()
                    .filter(|a| bools.get(a).copied().unwrap_or(false))
                    .count() as i64;
                op.eval(n + offset, *rhs)
            }
            GroundFormula::ValueCmp {
                atom,
                offset,
                op,
                rhs,
            } => {
                let v = nums.get(atom).copied().unwrap_or(0);
                op.eval(v + offset, *rhs)
            }
        }
    }
}

/// Errors from grounding / encoding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GroundError {
    UnknownPredicate(String),
    UnknownConstant(String),
    WildcardInBooleanAtom(String),
    OpenAtom(String),
    UnsupportedNumeric(String),
}

impl fmt::Display for GroundError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GroundError::UnknownPredicate(p) => write!(f, "unknown predicate {p}"),
            GroundError::UnknownConstant(c) => write!(f, "unknown named constant {c}"),
            GroundError::WildcardInBooleanAtom(a) => {
                write!(f, "wildcard not allowed in boolean atom {a}")
            }
            GroundError::OpenAtom(a) => write!(f, "atom {a} still has free variables"),
            GroundError::UnsupportedNumeric(m) => {
                write!(f, "numeric expression not in the supported fragment: {m}")
            }
        }
    }
}

impl std::error::Error for GroundError {}

/// Grounds formulas over a [`Universe`], resolving wildcard sorts via the
/// predicate declarations and named constants via the constant table.
pub struct Grounder<'a> {
    pub universe: &'a Universe,
    pub decls: &'a BTreeMap<Symbol, PredicateDecl>,
    pub named: &'a BTreeMap<Symbol, i64>,
}

impl<'a> Grounder<'a> {
    pub fn new(
        universe: &'a Universe,
        decls: &'a BTreeMap<Symbol, PredicateDecl>,
        named: &'a BTreeMap<Symbol, i64>,
    ) -> Self {
        Grounder {
            universe,
            decls,
            named,
        }
    }

    /// Ground a closed formula (its quantifiers expand over the universe).
    pub fn ground(&self, f: &Formula) -> Result<GroundFormula, GroundError> {
        self.ground_inner(f)
    }

    fn ground_inner(&self, f: &Formula) -> Result<GroundFormula, GroundError> {
        Ok(match f {
            Formula::True => GroundFormula::True,
            Formula::False => GroundFormula::False,
            Formula::Atom(a) => GroundFormula::Atom(self.ground_bool_atom(a)?),
            Formula::Not(g) => GroundFormula::not(self.ground_inner(g)?),
            Formula::And(gs) => GroundFormula::and(
                gs.iter()
                    .map(|g| self.ground_inner(g))
                    .collect::<Result<_, _>>()?,
            ),
            Formula::Or(gs) => GroundFormula::or(
                gs.iter()
                    .map(|g| self.ground_inner(g))
                    .collect::<Result<_, _>>()?,
            ),
            Formula::Implies(l, r) => GroundFormula::or(vec![
                GroundFormula::not(self.ground_inner(l)?),
                self.ground_inner(r)?,
            ]),
            Formula::Cmp(l, op, r) => self.ground_cmp(l, *op, r)?,
            Formula::Forall(vars, body) => {
                let mut parts = Vec::new();
                self.expand_quant(vars, body, &mut Substitution::new(), 0, &mut parts)?;
                GroundFormula::and(parts)
            }
            Formula::Exists(vars, body) => {
                let mut parts = Vec::new();
                self.expand_quant(vars, body, &mut Substitution::new(), 0, &mut parts)?;
                GroundFormula::or(parts)
            }
        })
    }

    fn expand_quant(
        &self,
        vars: &[Var],
        body: &Formula,
        subst: &mut Substitution,
        idx: usize,
        out: &mut Vec<GroundFormula>,
    ) -> Result<(), GroundError> {
        if idx == vars.len() {
            out.push(self.ground_inner(&body.substitute(subst))?);
            return Ok(());
        }
        let var = &vars[idx];
        // NOTE: elements() clones to avoid borrowing issues are unnecessary:
        // universe is shared immutably.
        for c in self.universe.elements(&var.sort) {
            subst.insert(var.clone(), Term::Const(c.clone()));
            self.expand_quant(vars, body, subst, idx + 1, out)?;
        }
        subst.remove(var);
        Ok(())
    }

    fn ground_bool_atom(&self, a: &Atom) -> Result<GroundAtom, GroundError> {
        if a.has_wildcard() {
            return Err(GroundError::WildcardInBooleanAtom(a.to_string()));
        }
        GroundAtom::from_atom(a).ok_or_else(|| GroundError::OpenAtom(a.to_string()))
    }

    /// Expand a count pattern (constants + wildcards) into the ground atoms
    /// it ranges over. Wildcard positions enumerate the universe of the
    /// declared sort at that position.
    pub fn expand_count_pattern(&self, pattern: &Atom) -> Result<Vec<GroundAtom>, GroundError> {
        let decl = self
            .decls
            .get(&pattern.pred)
            .ok_or_else(|| GroundError::UnknownPredicate(pattern.pred.to_string()))?;
        let mut acc: Vec<Vec<Constant>> = vec![Vec::new()];
        for (i, t) in pattern.args.iter().enumerate() {
            let choices: Vec<Constant> = match t {
                Term::Const(c) => vec![c.clone()],
                Term::Wildcard => self.universe.elements(&decl.params[i]).to_vec(),
                Term::Var(_) => return Err(GroundError::OpenAtom(pattern.to_string())),
            };
            let mut next = Vec::with_capacity(acc.len() * choices.len());
            for prefix in &acc {
                for c in &choices {
                    let mut p = prefix.clone();
                    p.push(c.clone());
                    next.push(p);
                }
            }
            acc = next;
        }
        Ok(acc
            .into_iter()
            .map(|args| GroundAtom::new(pattern.pred.clone(), args))
            .collect())
    }

    fn ground_cmp(
        &self,
        l: &NumExpr,
        op: CmpOp,
        r: &NumExpr,
    ) -> Result<GroundFormula, GroundError> {
        // Normalize to  lin(l) - lin(r)  op  0.
        let mut lin = Lin::default();
        self.accumulate(l, 1, &mut lin)?;
        self.accumulate(r, -1, &mut lin)?;
        match lin.terms.len() {
            0 => Ok(if op.eval(lin.konst, 0) {
                GroundFormula::True
            } else {
                GroundFormula::False
            }),
            1 => {
                let (coeff, term) = lin.terms.pop().expect("len checked");
                // coeff * T + konst op 0
                let (op, rhs) = match coeff {
                    1 => (op, -lin.konst),
                    -1 => (op.flip(), lin.konst),
                    _ => {
                        return Err(GroundError::UnsupportedNumeric(format!(
                            "coefficient {coeff} on {term:?}"
                        )))
                    }
                };
                Ok(match term {
                    TermRef::Count(atoms) => GroundFormula::CountCmp {
                        atoms,
                        offset: 0,
                        op,
                        rhs,
                    },
                    TermRef::Value(atom) => GroundFormula::ValueCmp {
                        atom,
                        offset: 0,
                        op,
                        rhs,
                    },
                })
            }
            _ => Err(GroundError::UnsupportedNumeric(
                "more than one count/value term in a comparison".into(),
            )),
        }
    }

    fn accumulate(&self, e: &NumExpr, sign: i64, lin: &mut Lin) -> Result<(), GroundError> {
        match e {
            NumExpr::Const(k) => {
                lin.konst += sign * k;
                Ok(())
            }
            NumExpr::Named(n) => {
                let v = self
                    .named
                    .get(n)
                    .copied()
                    .ok_or_else(|| GroundError::UnknownConstant(n.to_string()))?;
                lin.konst += sign * v;
                Ok(())
            }
            NumExpr::Count(pattern) => {
                let atoms = self.expand_count_pattern(pattern)?;
                lin.terms.push((sign, TermRef::Count(atoms)));
                Ok(())
            }
            NumExpr::Value(a) => {
                if a.has_wildcard() {
                    return Err(GroundError::UnsupportedNumeric(format!(
                        "wildcard in numeric value atom {a}"
                    )));
                }
                let ga =
                    GroundAtom::from_atom(a).ok_or_else(|| GroundError::OpenAtom(a.to_string()))?;
                lin.terms.push((sign, TermRef::Value(ga)));
                Ok(())
            }
            NumExpr::Add(l, r) => {
                self.accumulate(l, sign, lin)?;
                self.accumulate(r, sign, lin)
            }
            NumExpr::Sub(l, r) => {
                self.accumulate(l, sign, lin)?;
                self.accumulate(r, -sign, lin)
            }
        }
    }
}

/// Alias kept public for the encoder: a count term expands to ground atoms,
/// a value term is a single numeric ground atom.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NumTerm {
    Count(Vec<GroundAtom>),
    Value(GroundAtom),
}

#[derive(Default)]
struct Lin {
    terms: Vec<(i64, TermRef)>,
    konst: i64,
}

#[derive(Debug)]
enum TermRef {
    Count(Vec<GroundAtom>),
    Value(GroundAtom),
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipa_spec::parser::parse_formula;

    fn player(n: &str) -> Constant {
        Constant::new(n, Sort::new("Player"))
    }
    fn tourn(n: &str) -> Constant {
        Constant::new(n, Sort::new("Tournament"))
    }

    fn decls() -> BTreeMap<Symbol, PredicateDecl> {
        let mut m = BTreeMap::new();
        for d in [
            PredicateDecl::boolean("player", vec![Sort::new("Player")]),
            PredicateDecl::boolean("tournament", vec![Sort::new("Tournament")]),
            PredicateDecl::boolean(
                "enrolled",
                vec![Sort::new("Player"), Sort::new("Tournament")],
            ),
            PredicateDecl::numeric("stock", vec![Sort::new("Tournament")]),
        ] {
            m.insert(d.name.clone(), d);
        }
        m
    }

    fn small_universe() -> Universe {
        [player("P1"), player("P2"), tourn("T1")]
            .into_iter()
            .collect()
    }

    #[test]
    fn universe_dedup_and_lookup() {
        let mut u = Universe::new();
        u.add(player("P1"));
        u.add(player("P1"));
        assert_eq!(u.size(&Sort::new("Player")), 1);
        assert_eq!(u.total_size(), 1);
        assert!(u.elements(&Sort::new("Ghost")).is_empty());
    }

    #[test]
    fn forall_expands_to_conjunction() {
        let u = small_universe();
        let d = decls();
        let named = BTreeMap::new();
        let g = Grounder::new(&u, &d, &named);
        let f = parse_formula("forall(Player: p) :- player(p)").unwrap();
        let gf = g.ground(&f).unwrap();
        match gf {
            GroundFormula::And(parts) => assert_eq!(parts.len(), 2),
            other => panic!("expected And over 2 players, got {other:?}"),
        }
    }

    #[test]
    fn referential_integrity_grounds() {
        let u = small_universe();
        let d = decls();
        let named = BTreeMap::new();
        let g = Grounder::new(&u, &d, &named);
        let f = parse_formula(
            "forall(Player: p, Tournament: t) :- enrolled(p,t) => player(p) and tournament(t)",
        )
        .unwrap();
        let gf = g.ground(&f).unwrap();
        // 2 players × 1 tournament = 2 implications.
        match &gf {
            GroundFormula::And(parts) => assert_eq!(parts.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
        let atoms = gf.bool_atoms();
        assert_eq!(atoms.len(), 5); // enrolled×2, player×2, tournament×1
    }

    #[test]
    fn count_pattern_expansion() {
        let u = small_universe();
        let d = decls();
        let named = BTreeMap::new();
        let g = Grounder::new(&u, &d, &named);
        let pattern = Atom::new("enrolled", vec![Term::Wildcard, Term::Const(tourn("T1"))]);
        let atoms = g.expand_count_pattern(&pattern).unwrap();
        assert_eq!(atoms.len(), 2);
        assert_eq!(atoms[0].to_string(), "enrolled(P1, T1)");
    }

    #[test]
    fn aggregation_invariant_grounds_to_count_cmp() {
        let u = small_universe();
        let d = decls();
        let mut named = BTreeMap::new();
        named.insert(Symbol::new("Capacity"), 2i64);
        let g = Grounder::new(&u, &d, &named);
        let f = parse_formula("forall(Tournament: t) :- #enrolled(*, t) <= Capacity").unwrap();
        let gf = g.ground(&f).unwrap();
        match gf {
            GroundFormula::CountCmp {
                atoms,
                offset,
                op,
                rhs,
            } => {
                assert_eq!(atoms.len(), 2);
                assert_eq!(offset, 0);
                assert_eq!(op, CmpOp::Le);
                assert_eq!(rhs, 2);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn value_invariant_grounds_to_value_cmp() {
        let u = small_universe();
        let d = decls();
        let named = BTreeMap::new();
        let g = Grounder::new(&u, &d, &named);
        let f = parse_formula("forall(Tournament: t) :- stock(t) >= 0").unwrap();
        let gf = g.ground(&f).unwrap();
        match gf {
            GroundFormula::ValueCmp { atom, op, rhs, .. } => {
                assert_eq!(atom.to_string(), "stock(T1)");
                assert_eq!(op, CmpOp::Ge);
                assert_eq!(rhs, 0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn reversed_comparison_flips() {
        let u = small_universe();
        let d = decls();
        let named = BTreeMap::new();
        let g = Grounder::new(&u, &d, &named);
        // 3 <= stock(t)  ≡  stock(t) >= 3
        let f = parse_formula("forall(Tournament: t) :- 3 <= stock(t)").unwrap();
        match g.ground(&f).unwrap() {
            GroundFormula::ValueCmp { op, rhs, .. } => {
                assert_eq!(op, CmpOp::Ge);
                assert_eq!(rhs, 3);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unknown_named_constant_is_error() {
        let u = small_universe();
        let d = decls();
        let named = BTreeMap::new();
        let g = Grounder::new(&u, &d, &named);
        let f = parse_formula("forall(Tournament: t) :- #enrolled(*, t) <= Capacity").unwrap();
        assert!(matches!(g.ground(&f), Err(GroundError::UnknownConstant(_))));
    }

    #[test]
    fn constant_only_comparison_folds() {
        let u = small_universe();
        let d = decls();
        let named = BTreeMap::new();
        let g = Grounder::new(&u, &d, &named);
        let f = parse_formula("2 <= 3").unwrap();
        assert_eq!(g.ground(&f).unwrap(), GroundFormula::True);
        let f = parse_formula("4 <= 3").unwrap();
        assert_eq!(g.ground(&f).unwrap(), GroundFormula::False);
    }

    #[test]
    fn ground_formula_eval_reference_semantics() {
        let a1 = GroundAtom::new("enrolled", vec![player("P1"), tourn("T1")]);
        let a2 = GroundAtom::new("enrolled", vec![player("P2"), tourn("T1")]);
        let gf = GroundFormula::CountCmp {
            atoms: vec![a1.clone(), a2.clone()],
            offset: 1,
            op: CmpOp::Le,
            rhs: 2,
        };
        let mut bools = BTreeMap::new();
        bools.insert(a1, true);
        assert!(gf.eval(&bools, &BTreeMap::new())); // 1 + 1 <= 2
        bools.insert(a2, true);
        assert!(!gf.eval(&bools, &BTreeMap::new())); // 2 + 1 > 2
    }
}
