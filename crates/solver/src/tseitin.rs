//! Tseitin encoding of ground formulas to CNF.
//!
//! Boolean atoms map to SAT variables; counting atoms use a sequential
//! counter (unary DP) network with full equivalences so both polarities are
//! exact; numeric predicate instances use an order encoding over a bounded
//! domain `[0, bound]` (`ge[j] ⇔ value ≥ j`).

use crate::cnf::Cnf;
use crate::ground::GroundFormula;
use crate::lit::{Lit, SatVar};
use ipa_spec::{CmpOp, GroundAtom};
use std::collections::BTreeMap;

/// Encoder state: atom/variable maps plus the CNF under construction.
#[derive(Debug, Default)]
pub struct Encoder {
    pub cnf: Cnf,
    bool_vars: BTreeMap<GroundAtom, SatVar>,
    /// Order-encoding variables per numeric atom: `order[a][j-1] ⇔ a ≥ j`.
    order_vars: BTreeMap<GroundAtom, Vec<SatVar>>,
    /// Domain bound for numeric atoms.
    num_bound: i64,
    true_lit: Option<Lit>,
}

impl Encoder {
    /// `num_bound` is the inclusive upper end of every numeric atom's
    /// domain `[0, num_bound]`.
    pub fn new(num_bound: i64) -> Self {
        Encoder {
            num_bound: num_bound.max(0),
            ..Default::default()
        }
    }

    pub fn num_bound(&self) -> i64 {
        self.num_bound
    }

    /// The SAT variable of a boolean ground atom (allocated on first use).
    pub fn bool_var(&mut self, atom: &GroundAtom) -> SatVar {
        if let Some(&v) = self.bool_vars.get(atom) {
            return v;
        }
        let v = self.cnf.fresh_var();
        self.bool_vars.insert(atom.clone(), v);
        v
    }

    /// The order-encoding variables of a numeric atom (allocated with the
    /// chain constraints `a ≥ j → a ≥ j-1` on first use).
    pub fn order_vars(&mut self, atom: &GroundAtom) -> &[SatVar] {
        if !self.order_vars.contains_key(atom) {
            let mut vars = Vec::with_capacity(self.num_bound as usize);
            for _ in 0..self.num_bound {
                vars.push(self.cnf.fresh_var());
            }
            for w in vars.windows(2) {
                // ge[j+1] -> ge[j]
                self.cnf.add_clause([w[1].negative(), w[0].positive()]);
            }
            self.order_vars.insert(atom.clone(), vars);
        }
        self.order_vars.get(atom).expect("inserted above")
    }

    /// A literal that is always true.
    pub fn lit_true(&mut self) -> Lit {
        if let Some(l) = self.true_lit {
            return l;
        }
        let v = self.cnf.fresh_var();
        let l = v.positive();
        self.cnf.add_clause([l]);
        self.true_lit = Some(l);
        l
    }

    /// A literal that is always false.
    pub fn lit_false(&mut self) -> Lit {
        self.lit_true().negated()
    }

    /// AND gate: returns `g` with `g ⇔ ∧ lits`.
    fn gate_and(&mut self, lits: &[Lit]) -> Lit {
        match lits.len() {
            0 => self.lit_true(),
            1 => lits[0],
            _ => {
                let g = self.cnf.fresh_var().positive();
                for &l in lits {
                    self.cnf.add_clause([g.negated(), l]);
                }
                let mut big: Vec<Lit> = lits.iter().map(|l| l.negated()).collect();
                big.push(g);
                self.cnf.add_clause(big);
                g
            }
        }
    }

    /// OR gate: returns `g` with `g ⇔ ∨ lits`.
    fn gate_or(&mut self, lits: &[Lit]) -> Lit {
        match lits.len() {
            0 => self.lit_false(),
            1 => lits[0],
            _ => {
                let g = self.cnf.fresh_var().positive();
                for &l in lits {
                    self.cnf.add_clause([l.negated(), g]);
                }
                let mut big: Vec<Lit> = lits.to_vec();
                big.push(g.negated());
                self.cnf.add_clause(big);
                g
            }
        }
    }

    /// Encode a ground formula, returning a literal equivalent to it.
    pub fn encode(&mut self, f: &GroundFormula) -> Lit {
        match f {
            GroundFormula::True => self.lit_true(),
            GroundFormula::False => self.lit_false(),
            GroundFormula::Atom(a) => self.bool_var(a).positive(),
            GroundFormula::Not(g) => self.encode(g).negated(),
            GroundFormula::And(gs) => {
                let lits: Vec<Lit> = gs.iter().map(|g| self.encode(g)).collect();
                self.gate_and(&lits)
            }
            GroundFormula::Or(gs) => {
                let lits: Vec<Lit> = gs.iter().map(|g| self.encode(g)).collect();
                self.gate_or(&lits)
            }
            GroundFormula::CountCmp {
                atoms,
                offset,
                op,
                rhs,
            } => {
                let lits: Vec<Lit> = atoms.iter().map(|a| self.bool_var(a).positive()).collect();
                self.encode_count_cmp(&lits, *rhs - *offset, *op)
            }
            GroundFormula::ValueCmp {
                atom,
                offset,
                op,
                rhs,
            } => self.encode_value_cmp(atom, *rhs - *offset, *op),
        }
    }

    /// Encode a formula and assert it true.
    pub fn assert(&mut self, f: &GroundFormula) {
        let l = self.encode(f);
        self.cnf.add_clause([l]);
    }

    /// Literal ⇔ (#true(lits) op k).
    fn encode_count_cmp(&mut self, lits: &[Lit], k: i64, op: CmpOp) -> Lit {
        match op {
            CmpOp::Ge => self.at_least(lits, k),
            CmpOp::Gt => self.at_least(lits, k + 1),
            CmpOp::Le => self.at_least(lits, k + 1).negated(),
            CmpOp::Lt => self.at_least(lits, k).negated(),
            CmpOp::Eq => {
                let ge = self.at_least(lits, k);
                let gt = self.at_least(lits, k + 1);
                self.gate_and(&[ge, gt.negated()])
            }
            CmpOp::Ne => {
                let eq = self.encode_count_cmp(lits, k, CmpOp::Eq);
                eq.negated()
            }
        }
    }

    /// Literal ⇔ (at least `k` of `lits` are true). Sequential-counter DP
    /// with Tseitin gates (exact in both polarities).
    fn at_least(&mut self, lits: &[Lit], k: i64) -> Lit {
        let n = lits.len() as i64;
        if k <= 0 {
            return self.lit_true();
        }
        if k > n {
            return self.lit_false();
        }
        let k = k as usize;
        // prev[j] ⇔ at least j of the first i literals (j = 1..=k).
        let mut prev: Vec<Lit> = Vec::with_capacity(k);
        for (i, &x) in lits.iter().enumerate() {
            let mut cur: Vec<Lit> = Vec::with_capacity(k);
            let upto = k.min(i + 1);
            for j in 1..=upto {
                let carry = if j == 1 {
                    // at least 1 among first i ∨ x
                    x
                } else if j - 2 < prev.len() {
                    self.gate_and(&[prev[j - 2], x])
                } else {
                    self.lit_false()
                };
                let keep = if j - 1 < prev.len() {
                    Some(prev[j - 1])
                } else {
                    None
                };
                let lit = match keep {
                    Some(kp) => self.gate_or(&[kp, carry]),
                    None => carry,
                };
                cur.push(lit);
            }
            prev = cur;
        }
        prev[k - 1]
    }

    /// Literal ⇔ (value(atom) op k), order encoding over `[0, num_bound]`.
    fn encode_value_cmp(&mut self, atom: &GroundAtom, k: i64, op: CmpOp) -> Lit {
        match op {
            CmpOp::Ge => self.value_at_least(atom, k),
            CmpOp::Gt => self.value_at_least(atom, k + 1),
            CmpOp::Le => self.value_at_least(atom, k + 1).negated(),
            CmpOp::Lt => self.value_at_least(atom, k).negated(),
            CmpOp::Eq => {
                let ge = self.value_at_least(atom, k);
                let gt = self.value_at_least(atom, k + 1);
                self.gate_and(&[ge, gt.negated()])
            }
            CmpOp::Ne => {
                let eq = self.encode_value_cmp(atom, k, CmpOp::Eq);
                eq.negated()
            }
        }
    }

    fn value_at_least(&mut self, atom: &GroundAtom, k: i64) -> Lit {
        if k <= 0 {
            return self.lit_true();
        }
        if k > self.num_bound {
            return self.lit_false();
        }
        let vars = self.order_vars(atom);
        vars[(k - 1) as usize].positive()
    }

    // ------------------------------------------------------------------
    // Model decoding
    // ------------------------------------------------------------------

    /// Decode a SAT model into atom valuations.
    pub fn decode(
        &self,
        model: &[bool],
    ) -> (BTreeMap<GroundAtom, bool>, BTreeMap<GroundAtom, i64>) {
        let bools = self
            .bool_vars
            .iter()
            .map(|(a, v)| (a.clone(), model.get(v.index()).copied().unwrap_or(false)))
            .collect();
        let nums = self
            .order_vars
            .iter()
            .map(|(a, vars)| {
                let value = vars
                    .iter()
                    .take_while(|v| model.get(v.index()).copied().unwrap_or(false))
                    .count() as i64;
                (a.clone(), value)
            })
            .collect();
        (bools, nums)
    }

    /// The boolean atoms registered so far.
    pub fn bool_atoms(&self) -> impl Iterator<Item = &GroundAtom> {
        self.bool_vars.keys()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat::Solver;
    use ipa_spec::{Constant, Sort};

    fn atom(n: &str) -> GroundAtom {
        GroundAtom::new(n, vec![])
    }
    fn c(n: &str) -> Constant {
        Constant::new(n, Sort::new("S"))
    }

    fn solve(enc: Encoder) -> Option<Vec<bool>> {
        let mut s = Solver::new();
        for cl in &enc.cnf.clauses {
            s.add_clause(&cl.lits);
        }
        // Make sure the solver knows about all allocated variables.
        while (s.num_vars() as u32) < enc.cnf.num_vars() {
            s.new_var();
        }
        if s.solve() {
            Some(s.model())
        } else {
            None
        }
    }

    #[test]
    fn encode_simple_and() {
        let mut e = Encoder::new(0);
        let f = GroundFormula::and(vec![
            GroundFormula::Atom(atom("a")),
            GroundFormula::Atom(atom("b")),
        ]);
        e.assert(&f);
        let model = solve(e).expect("sat");
        assert!(model.iter().filter(|&&b| b).count() >= 2);
    }

    #[test]
    fn encode_contradiction() {
        let mut e = Encoder::new(0);
        let a = GroundFormula::Atom(atom("a"));
        e.assert(&a);
        e.assert(&GroundFormula::not(a));
        assert!(solve(e).is_none());
    }

    #[test]
    fn count_at_most_k() {
        // #true{a,b,c} <= 1 together with a ∧ b must be unsat.
        let atoms = vec![
            GroundAtom::new("p", vec![c("1")]),
            GroundAtom::new("p", vec![c("2")]),
            GroundAtom::new("p", vec![c("3")]),
        ];
        let mut e = Encoder::new(0);
        e.assert(&GroundFormula::CountCmp {
            atoms: atoms.clone(),
            offset: 0,
            op: CmpOp::Le,
            rhs: 1,
        });
        e.assert(&GroundFormula::Atom(atoms[0].clone()));
        e.assert(&GroundFormula::Atom(atoms[1].clone()));
        assert!(solve(e).is_none());
    }

    #[test]
    fn count_at_least_k_forces_atoms() {
        let atoms = vec![
            GroundAtom::new("p", vec![c("1")]),
            GroundAtom::new("p", vec![c("2")]),
        ];
        let mut e = Encoder::new(0);
        e.assert(&GroundFormula::CountCmp {
            atoms: atoms.clone(),
            offset: 0,
            op: CmpOp::Ge,
            rhs: 2,
        });
        let model = solve(e).expect("sat");
        // Decode: both atoms true.
        // (We re-create an encoder-independent check via decode.)
        assert!(model.iter().filter(|&&b| b).count() >= 2);
    }

    #[test]
    fn count_eq_exact() {
        let atoms: Vec<GroundAtom> = (0..4)
            .map(|i| GroundAtom::new("p", vec![c(&i.to_string())]))
            .collect();
        let mut e = Encoder::new(0);
        e.assert(&GroundFormula::CountCmp {
            atoms: atoms.clone(),
            offset: 0,
            op: CmpOp::Eq,
            rhs: 2,
        });
        let model = solve(e).expect("sat");
        let mut enc2 = Encoder::new(0);
        // Rebuild variable mapping in the same order to decode.
        for a in &atoms {
            enc2.bool_var(a);
        }
        let trues = atoms
            .iter()
            .enumerate()
            .filter(|(i, _)| model.get(*i).copied().unwrap_or(false))
            .count();
        assert_eq!(trues, 2, "model {model:?}");
    }

    #[test]
    fn value_cmp_bounds() {
        let a = atom("stock");
        let mut e = Encoder::new(5);
        // stock >= 3 and stock <= 2 → unsat
        e.assert(&GroundFormula::ValueCmp {
            atom: a.clone(),
            offset: 0,
            op: CmpOp::Ge,
            rhs: 3,
        });
        e.assert(&GroundFormula::ValueCmp {
            atom: a.clone(),
            offset: 0,
            op: CmpOp::Le,
            rhs: 2,
        });
        assert!(solve(e).is_none());
    }

    #[test]
    fn value_cmp_with_offset_shifts() {
        let a = atom("stock");
        let mut e = Encoder::new(5);
        // stock + 3 <= 5  (i.e. stock <= 2), stock >= 2 → stock == 2
        e.assert(&GroundFormula::ValueCmp {
            atom: a.clone(),
            offset: 3,
            op: CmpOp::Le,
            rhs: 5,
        });
        e.assert(&GroundFormula::ValueCmp {
            atom: a.clone(),
            offset: 0,
            op: CmpOp::Ge,
            rhs: 2,
        });
        let m = solve(e).expect("sat");
        // Decode value: count leading true order vars. Order vars for the
        // single numeric atom are vars 1..=5 in allocation order only if
        // allocated first; instead re-derive via a fresh encoder is fragile,
        // so just assert satisfiability here (full decode is covered by the
        // query-level tests).
        assert!(!m.is_empty());
    }

    #[test]
    fn value_out_of_domain_is_false() {
        let a = atom("stock");
        let mut e = Encoder::new(3);
        e.assert(&GroundFormula::ValueCmp {
            atom: a,
            offset: 0,
            op: CmpOp::Ge,
            rhs: 4,
        });
        assert!(solve(e).is_none());
    }

    #[test]
    fn decode_maps_atoms_back() {
        let a = atom("a");
        let b = atom("stock");
        let mut e = Encoder::new(4);
        e.assert(&GroundFormula::Atom(a.clone()));
        e.assert(&GroundFormula::ValueCmp {
            atom: b.clone(),
            offset: 0,
            op: CmpOp::Eq,
            rhs: 3,
        });
        let mut s = Solver::new();
        for cl in &e.cnf.clauses {
            s.add_clause(&cl.lits);
        }
        while (s.num_vars() as u32) < e.cnf.num_vars() {
            s.new_var();
        }
        assert!(s.solve());
        let (bools, nums) = e.decode(&s.model());
        assert_eq!(bools.get(&a), Some(&true));
        assert_eq!(nums.get(&b), Some(&3));
    }
}
