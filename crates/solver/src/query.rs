//! High-level satisfiability queries: the interface `ipa-core` uses in
//! place of Z3.

use crate::ground::{GroundError, GroundFormula, Grounder, Universe};
use crate::sat::Solver;
use crate::tseitin::Encoder;
use ipa_spec::{Formula, GroundAtom, Interpretation, PredicateDecl, Symbol};
use std::collections::BTreeMap;
use std::fmt;

/// Errors from problem construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SolverError {
    Ground(GroundError),
}

impl fmt::Display for SolverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolverError::Ground(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SolverError {}

impl From<GroundError> for SolverError {
    fn from(e: GroundError) -> Self {
        SolverError::Ground(e)
    }
}

/// A satisfying assignment decoded back to ground atoms.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Model {
    pub bools: BTreeMap<GroundAtom, bool>,
    pub nums: BTreeMap<GroundAtom, i64>,
}

impl Model {
    /// Convert to an [`Interpretation`] over the given universe (so
    /// counter-example states can be evaluated and pretty-printed).
    pub fn to_interpretation(
        &self,
        universe: &Universe,
        named: &BTreeMap<Symbol, i64>,
    ) -> Interpretation {
        let mut m = Interpretation::new();
        for c in universe.iter() {
            m.add_element(c.clone());
        }
        for (a, &v) in &self.bools {
            m.set_bool(a.clone(), v);
        }
        for (a, &v) in &self.nums {
            m.set_num(a.clone(), v);
        }
        for (n, &v) in named {
            m.set_named(n.clone(), v);
        }
        m
    }
}

/// The result of a satisfiability query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    Sat(Model),
    Unsat,
}

impl Outcome {
    pub fn is_sat(&self) -> bool {
        matches!(self, Outcome::Sat(_))
    }

    pub fn model(&self) -> Option<&Model> {
        match self {
            Outcome::Sat(m) => Some(m),
            Outcome::Unsat => None,
        }
    }
}

/// A satisfiability problem: a universe, predicate declarations, named
/// constants, and a conjunction of asserted formulas.
///
/// ```
/// use ipa_solver::{Problem, Universe};
/// use ipa_spec::{parser::parse_formula, Constant, PredicateDecl, Sort, Symbol};
/// use std::collections::BTreeMap;
///
/// let universe: Universe =
///     [Constant::new("P1", Sort::new("Player"))].into_iter().collect();
/// let mut decls = BTreeMap::new();
/// let d = PredicateDecl::boolean("player", vec![Sort::new("Player")]);
/// decls.insert(d.name.clone(), d);
/// let named = BTreeMap::new();
///
/// let mut p = Problem::new(universe, decls, named, 8);
/// p.assert(&parse_formula("forall(Player: p) :- player(p)").unwrap()).unwrap();
/// p.assert(&parse_formula("exists(Player: p) :- not(player(p))").unwrap()).unwrap();
/// assert!(!p.solve().is_sat());
/// ```
pub struct Problem {
    universe: Universe,
    decls: BTreeMap<Symbol, PredicateDecl>,
    named: BTreeMap<Symbol, i64>,
    encoder: Encoder,
    ground_err: Option<SolverError>,
}

impl Problem {
    pub fn new(
        universe: Universe,
        decls: BTreeMap<Symbol, PredicateDecl>,
        named: BTreeMap<Symbol, i64>,
        numeric_bound: i64,
    ) -> Self {
        Problem {
            universe,
            decls,
            named,
            encoder: Encoder::new(numeric_bound),
            ground_err: None,
        }
    }

    pub fn universe(&self) -> &Universe {
        &self.universe
    }

    /// Ground and assert a first-order formula.
    pub fn assert(&mut self, f: &Formula) -> Result<(), SolverError> {
        let g = {
            let grounder = Grounder::new(&self.universe, &self.decls, &self.named);
            grounder.ground(f)?
        };
        self.encoder.assert(&g);
        Ok(())
    }

    /// Assert an already ground formula.
    pub fn assert_ground(&mut self, g: &GroundFormula) {
        self.encoder.assert(g);
    }

    /// Ground a formula without asserting it (for post-state construction).
    pub fn ground(&self, f: &Formula) -> Result<GroundFormula, SolverError> {
        let grounder = Grounder::new(&self.universe, &self.decls, &self.named);
        Ok(grounder.ground(f)?)
    }

    /// Access the grounder for auxiliary expansions (count patterns etc.).
    pub fn grounder(&self) -> Grounder<'_> {
        Grounder::new(&self.universe, &self.decls, &self.named)
    }

    /// Decide satisfiability of the asserted conjunction.
    pub fn solve(&mut self) -> Outcome {
        if self.ground_err.is_some() {
            return Outcome::Unsat;
        }
        let mut solver = Solver::new();
        for clause in &self.encoder.cnf.clauses {
            solver.add_clause(&clause.lits);
        }
        while (solver.num_vars() as u32) < self.encoder.cnf.num_vars() {
            solver.new_var();
        }
        if solver.solve() {
            let (bools, nums) = self.encoder.decode(&solver.model());
            Outcome::Sat(Model { bools, nums })
        } else {
            Outcome::Unsat
        }
    }

    /// Decode helper: turn a model into an interpretation over this
    /// problem's universe and constants.
    pub fn interpretation(&self, m: &Model) -> Interpretation {
        m.to_interpretation(&self.universe, &self.named)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipa_spec::parser::parse_formula;
    use ipa_spec::{Constant, Sort};

    fn setup() -> Problem {
        let universe: Universe = [
            Constant::new("P1", Sort::new("Player")),
            Constant::new("P2", Sort::new("Player")),
            Constant::new("T1", Sort::new("Tournament")),
        ]
        .into_iter()
        .collect();
        let mut decls = BTreeMap::new();
        for d in [
            PredicateDecl::boolean("player", vec![Sort::new("Player")]),
            PredicateDecl::boolean("tournament", vec![Sort::new("Tournament")]),
            PredicateDecl::boolean(
                "enrolled",
                vec![Sort::new("Player"), Sort::new("Tournament")],
            ),
        ] {
            decls.insert(d.name.clone(), d);
        }
        let mut named = BTreeMap::new();
        named.insert(Symbol::new("Capacity"), 1i64);
        Problem::new(universe, decls, named, 8)
    }

    #[test]
    fn referential_integrity_violation_is_found() {
        let mut p = setup();
        let inv = parse_formula(
            "forall(Player: p, Tournament: t) :- enrolled(p,t) => player(p) and tournament(t)",
        )
        .unwrap();
        // Assert the NEGATION of the invariant: find a violating state.
        p.assert(&Formula::not(inv)).unwrap();
        let out = p.solve();
        let model = out.model().expect("violating state exists");
        // In the found state, someone is enrolled without player/tournament.
        let violated = model
            .bools
            .iter()
            .any(|(a, &v)| a.pred.as_str() == "enrolled" && v);
        assert!(violated, "model: {model:?}");
    }

    #[test]
    fn invariant_plus_negation_unsat() {
        let mut p = setup();
        let inv = parse_formula(
            "forall(Player: p, Tournament: t) :- enrolled(p,t) => player(p) and tournament(t)",
        )
        .unwrap();
        p.assert(&inv).unwrap();
        p.assert(&Formula::not(inv.clone())).unwrap();
        assert_eq!(p.solve(), Outcome::Unsat);
    }

    #[test]
    fn capacity_constraint_with_named_constant() {
        let mut p = setup();
        // Capacity = 1; both players enrolled violates it.
        let cap = parse_formula("forall(Tournament: t) :- #enrolled(*, t) <= Capacity").unwrap();
        p.assert(&cap).unwrap();
        p.assert(&parse_formula("exists(Player: p, Tournament: t) :- enrolled(p, t)").unwrap())
            .unwrap();
        let out = p.solve();
        assert!(out.is_sat());
        let m = out.model().unwrap();
        let enrolled_count = m
            .bools
            .iter()
            .filter(|(a, &v)| a.pred.as_str() == "enrolled" && v)
            .count();
        assert_eq!(enrolled_count, 1);
    }

    #[test]
    fn model_roundtrips_to_interpretation() {
        let mut p = setup();
        p.assert(&parse_formula("exists(Player: p) :- player(p)").unwrap())
            .unwrap();
        let out = p.solve();
        let m = out.model().unwrap().clone();
        let interp = p.interpretation(&m);
        let f = parse_formula("exists(Player: p) :- player(p)").unwrap();
        assert!(interp.eval(&f).unwrap());
    }

    #[test]
    fn ground_error_surfaces() {
        let mut p = setup();
        let f = parse_formula("forall(Tournament: t) :- #enrolled(*, t) <= Missing").unwrap();
        assert!(p.assert(&f).is_err());
    }
}
