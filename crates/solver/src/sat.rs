//! A CDCL SAT solver: two-watched-literal propagation, first-UIP conflict
//! analysis with clause learning, activity-driven decisions with phase
//! saving, and geometric restarts.
//!
//! Instances produced by the IPA analysis are small (tens to a few thousand
//! variables), so the implementation favours clarity over heroic
//! optimization — but the algorithms are the real ones, and the solver is
//! validated against brute-force enumeration by property tests.

use crate::lit::{Lit, SatVar};

const ACTIVITY_DECAY: f64 = 0.95;
const ACTIVITY_RESCALE: f64 = 1e100;

#[derive(Clone, Debug)]
struct ClauseData {
    lits: Vec<Lit>,
}

#[derive(Clone, Copy, Debug)]
struct Watcher {
    clause: u32,
}

/// The solver. Variables are created implicitly by the highest index used
/// in added clauses (or explicitly via [`Solver::new_var`]).
#[derive(Debug, Default)]
pub struct Solver {
    clauses: Vec<ClauseData>,
    watches: Vec<Vec<Watcher>>, // indexed by lit code
    values: Vec<i8>,            // 0 = unassigned, 1 = true, -1 = false
    levels: Vec<u32>,
    reasons: Vec<Option<u32>>,
    activity: Vec<f64>,
    phase: Vec<bool>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity_inc: f64,
    unsat: bool,
    /// Statistics: total conflicts, decisions, propagations.
    pub stats: Stats,
}

/// Solver statistics (exposed for the benchmark harness).
#[derive(Clone, Copy, Debug, Default)]
pub struct Stats {
    pub conflicts: u64,
    pub decisions: u64,
    pub propagations: u64,
    pub restarts: u64,
}

impl Solver {
    pub fn new() -> Self {
        Solver {
            activity_inc: 1.0,
            ..Default::default()
        }
    }

    /// Number of variables known to the solver.
    pub fn num_vars(&self) -> usize {
        self.values.len()
    }

    /// Allocate a fresh variable.
    pub fn new_var(&mut self) -> SatVar {
        let v = SatVar(self.values.len() as u32);
        self.values.push(0);
        self.levels.push(0);
        self.reasons.push(None);
        self.activity.push(0.0);
        self.phase.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        v
    }

    fn ensure_var(&mut self, v: SatVar) {
        while self.values.len() <= v.index() {
            self.new_var();
        }
    }

    fn value_of(&self, l: Lit) -> i8 {
        let v = self.values[l.var().index()];
        if l.is_positive() {
            v
        } else {
            -v
        }
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Add a clause. Must be called before `solve` (no incremental solving
    /// under assumptions is needed by the analysis).
    pub fn add_clause(&mut self, lits: &[Lit]) {
        if self.unsat {
            return;
        }
        // Normalize: dedup, drop tautologies, drop false lits fixed at
        // level 0, and skip clauses satisfied at level 0.
        let mut c: Vec<Lit> = Vec::with_capacity(lits.len());
        for &l in lits {
            self.ensure_var(l.var());
            match self.value_of(l) {
                1 => return,    // satisfied at level 0
                -1 => continue, // already false at level 0: drop literal
                _ => c.push(l),
            }
        }
        c.sort_unstable();
        c.dedup();
        for w in c.windows(2) {
            if w[0].var() == w[1].var() {
                return; // tautology
            }
        }
        match c.len() {
            0 => self.unsat = true,
            1 => {
                if !self.enqueue(c[0], None) || self.propagate().is_some() {
                    self.unsat = true;
                }
            }
            _ => {
                let idx = self.clauses.len() as u32;
                self.watches[c[0].code()].push(Watcher { clause: idx });
                self.watches[c[1].code()].push(Watcher { clause: idx });
                self.clauses.push(ClauseData { lits: c });
            }
        }
    }

    /// Assign `l` true with an optional reason clause. Returns false on
    /// conflict with an existing assignment.
    fn enqueue(&mut self, l: Lit, reason: Option<u32>) -> bool {
        match self.value_of(l) {
            1 => true,
            -1 => false,
            _ => {
                let v = l.var().index();
                self.values[v] = if l.is_positive() { 1 } else { -1 };
                self.levels[v] = self.decision_level();
                self.reasons[v] = reason;
                self.phase[v] = l.is_positive();
                self.trail.push(l);
                true
            }
        }
    }

    /// Unit propagation; returns the index of a conflicting clause if any.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            // Clauses watching ¬p must be visited: ¬p just became false.
            let false_lit = p.negated();
            let mut watchers = std::mem::take(&mut self.watches[false_lit.code()]);
            let mut i = 0;
            while i < watchers.len() {
                let ci = watchers[i].clause;
                // Make lits[1] the false literal.
                let (keep, propagate_lit, conflict) = {
                    let clause = &mut self.clauses[ci as usize];
                    if clause.lits[0] == false_lit {
                        clause.lits.swap(0, 1);
                    }
                    debug_assert_eq!(clause.lits[1], false_lit);
                    let first = clause.lits[0];
                    if first != false_lit && {
                        let v = self.values[first.var().index()];
                        (if first.is_positive() { v } else { -v }) == 1
                    } {
                        // Clause already satisfied by the other watch.
                        (true, None, false)
                    } else {
                        // Look for a new literal to watch.
                        let mut found = None;
                        for k in 2..clause.lits.len() {
                            let l = clause.lits[k];
                            let v = self.values[l.var().index()];
                            let val = if l.is_positive() { v } else { -v };
                            if val != -1 {
                                found = Some(k);
                                break;
                            }
                        }
                        if let Some(k) = found {
                            clause.lits.swap(1, k);
                            let new_watch = clause.lits[1];
                            self.watches[new_watch.code()].push(Watcher { clause: ci });
                            (false, None, false)
                        } else {
                            // Unit or conflict on lits[0].
                            let v = self.values[first.var().index()];
                            let val = if first.is_positive() { v } else { -v };
                            if val == -1 {
                                (true, None, true)
                            } else {
                                (true, Some(first), false)
                            }
                        }
                    }
                };
                if conflict {
                    // Keep every remaining watcher (the current one still
                    // watches `false_lit`) and abort propagation.
                    self.watches[false_lit.code()] = watchers;
                    self.qhead = self.trail.len();
                    return Some(ci);
                }
                if let Some(l) = propagate_lit {
                    let ok = self.enqueue(l, Some(ci));
                    debug_assert!(ok, "enqueue of unit literal cannot conflict here");
                }
                if keep {
                    i += 1;
                } else {
                    watchers.swap_remove(i);
                }
            }
            // Merge retained watchers with any added during this round.
            let added = std::mem::take(&mut self.watches[false_lit.code()]);
            watchers.extend(added);
            self.watches[false_lit.code()] = watchers;
        }
        None
    }

    fn bump_activity(&mut self, v: SatVar) {
        let a = &mut self.activity[v.index()];
        *a += self.activity_inc;
        if *a > ACTIVITY_RESCALE {
            for act in &mut self.activity {
                *act /= ACTIVITY_RESCALE;
            }
            self.activity_inc /= ACTIVITY_RESCALE;
        }
    }

    fn decay_activities(&mut self) {
        self.activity_inc /= ACTIVITY_DECAY;
    }

    /// First-UIP conflict analysis. Returns the learnt clause (with the
    /// asserting literal first) and the backjump level.
    fn analyze(&mut self, conflict: u32) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit::new(SatVar(0), true)]; // placeholder slot 0
        let mut seen = vec![false; self.num_vars()];
        let mut counter = 0u32; // literals at current level pending
        let mut p: Option<Lit> = None;
        let mut clause_idx = conflict;
        let mut trail_pos = self.trail.len();
        let current_level = self.decision_level();

        let mut reason_lits: Vec<Lit> = Vec::new();
        loop {
            {
                let clause = &self.clauses[clause_idx as usize];
                let start = usize::from(p.is_some());
                reason_lits.clear();
                reason_lits.extend_from_slice(&clause.lits[start..]);
            }
            for &q in &reason_lits {
                let vi = q.var().index();
                if !seen[vi] && self.levels[vi] > 0 {
                    seen[vi] = true;
                    self.bump_activity(q.var());
                    if self.levels[vi] == current_level {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Find the next literal on the trail to resolve on.
            loop {
                trail_pos -= 1;
                let l = self.trail[trail_pos];
                if seen[l.var().index()] {
                    p = Some(l);
                    break;
                }
            }
            let pv = p.expect("found above").var();
            seen[pv.index()] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = p.expect("found above").negated();
                break;
            }
            clause_idx = self.reasons[pv.index()].expect("non-decision literal has a reason");
        }

        // Backjump level: highest level among learnt[1..].
        let mut bj = 0;
        let mut max_i = 0;
        for (i, l) in learnt.iter().enumerate().skip(1) {
            let lvl = self.levels[l.var().index()];
            if lvl > bj {
                bj = lvl;
                max_i = i;
            }
        }
        if max_i > 0 {
            learnt.swap(1, max_i); // watch a literal at the backjump level
        }
        (learnt, bj)
    }

    fn cancel_until(&mut self, level: u32) {
        while self.decision_level() > level {
            let lim = self.trail_lim.pop().expect("level > 0");
            for &l in &self.trail[lim..] {
                let vi = l.var().index();
                self.values[vi] = 0;
                self.reasons[vi] = None;
            }
            self.trail.truncate(lim);
        }
        self.qhead = self.trail.len();
    }

    fn pick_branch(&mut self) -> Option<Lit> {
        let mut best: Option<(usize, f64)> = None;
        for (i, &v) in self.values.iter().enumerate() {
            if v == 0 {
                let a = self.activity[i];
                if best.is_none_or(|(_, ba)| a > ba) {
                    best = Some((i, a));
                }
            }
        }
        best.map(|(i, _)| Lit::new(SatVar(i as u32), self.phase[i]))
    }

    /// Solve the formula. Returns `true` if satisfiable; the model is then
    /// available via [`Solver::model`].
    pub fn solve(&mut self) -> bool {
        if self.unsat {
            return false;
        }
        if self.propagate().is_some() {
            self.unsat = true;
            return false;
        }
        let mut conflicts_since_restart = 0u64;
        let mut restart_limit = 100u64;
        loop {
            match self.propagate() {
                Some(conflict) => {
                    self.stats.conflicts += 1;
                    conflicts_since_restart += 1;
                    if self.decision_level() == 0 {
                        self.unsat = true;
                        return false;
                    }
                    let (learnt, bj) = self.analyze(conflict);
                    self.cancel_until(bj);
                    self.decay_activities();
                    match learnt.len() {
                        1 => {
                            let ok = self.enqueue(learnt[0], None);
                            if !ok {
                                self.unsat = true;
                                return false;
                            }
                        }
                        _ => {
                            let idx = self.clauses.len() as u32;
                            self.watches[learnt[0].code()].push(Watcher { clause: idx });
                            self.watches[learnt[1].code()].push(Watcher { clause: idx });
                            let assert_lit = learnt[0];
                            self.clauses.push(ClauseData { lits: learnt });
                            let ok = self.enqueue(assert_lit, Some(idx));
                            debug_assert!(ok, "asserting literal must be unassigned");
                        }
                    }
                }
                None => {
                    if conflicts_since_restart >= restart_limit {
                        conflicts_since_restart = 0;
                        restart_limit = restart_limit * 3 / 2;
                        self.stats.restarts += 1;
                        self.cancel_until(0);
                        continue;
                    }
                    match self.pick_branch() {
                        None => return true, // full assignment, no conflict
                        Some(l) => {
                            self.stats.decisions += 1;
                            self.trail_lim.push(self.trail.len());
                            let ok = self.enqueue(l, None);
                            debug_assert!(ok, "decision variable was unassigned");
                        }
                    }
                }
            }
        }
    }

    /// The satisfying assignment after a successful [`Solver::solve`].
    /// Unassigned variables (possible when a variable appears in no clause)
    /// default to `false`.
    pub fn model(&self) -> Vec<bool> {
        self.values.iter().map(|&v| v == 1).collect()
    }

    /// The value assigned to a variable in the model.
    pub fn model_value(&self, v: SatVar) -> bool {
        self.values.get(v.index()).is_some_and(|&x| x == 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(spec: &[i32]) -> Vec<Lit> {
        spec.iter()
            .map(|&x| {
                let v = SatVar(x.unsigned_abs() - 1);
                Lit::new(v, x > 0)
            })
            .collect()
    }

    fn solver_with(clauses: &[&[i32]]) -> Solver {
        let mut s = Solver::new();
        for c in clauses {
            s.add_clause(&lits(c));
        }
        s
    }

    #[test]
    fn trivial_sat() {
        let mut s = solver_with(&[&[1]]);
        assert!(s.solve());
        assert!(s.model_value(SatVar(0)));
    }

    #[test]
    fn trivial_unsat() {
        let mut s = solver_with(&[&[1], &[-1]]);
        assert!(!s.solve());
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        assert!(s.solve());
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new();
        s.add_clause(&[]);
        assert!(!s.solve());
    }

    #[test]
    fn simple_implication_chain() {
        // x1, x1->x2, x2->x3 ... => all true
        let mut s = solver_with(&[&[1], &[-1, 2], &[-2, 3], &[-3, 4]]);
        assert!(s.solve());
        for i in 0..4 {
            assert!(s.model_value(SatVar(i)));
        }
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // p_ij: pigeon i in hole j. vars: p11=1,p12=2,p21=3,p22=4,p31=5,p32=6
        let mut s = solver_with(&[
            &[1, 2],
            &[3, 4],
            &[5, 6],
            // no two pigeons share a hole
            &[-1, -3],
            &[-1, -5],
            &[-3, -5],
            &[-2, -4],
            &[-2, -6],
            &[-4, -6],
        ]);
        assert!(!s.solve());
        assert!(s.stats.conflicts > 0);
    }

    #[test]
    fn model_satisfies_all_clauses() {
        let clauses: Vec<Vec<i32>> = vec![
            vec![1, 2, -3],
            vec![-1, 3],
            vec![-2, 3],
            vec![1, -2],
            vec![2, -1],
        ];
        let refs: Vec<&[i32]> = clauses.iter().map(|c| c.as_slice()).collect();
        let mut s = solver_with(&refs);
        assert!(s.solve());
        let m = s.model();
        for c in &clauses {
            assert!(
                c.iter().any(|&x| {
                    let val = m[(x.unsigned_abs() - 1) as usize];
                    if x > 0 {
                        val
                    } else {
                        !val
                    }
                }),
                "clause {c:?} not satisfied by model {m:?}"
            );
        }
    }

    #[test]
    fn duplicate_and_tautological_clauses() {
        let mut s = solver_with(&[&[1, 1, 2], &[1, -1], &[2]]);
        assert!(s.solve());
        assert!(s.model_value(SatVar(1)));
    }

    #[test]
    fn unsat_after_unit_conflict_at_level_zero() {
        let mut s = solver_with(&[&[1], &[-1, 2], &[-2]]);
        assert!(!s.solve());
    }

    #[test]
    fn larger_random_instance_is_consistent() {
        // A satisfiable structured instance: 3-colorability of a path graph.
        // Node i has vars 3i+1..3i+3 (one per color).
        let n = 20;
        let mut cs: Vec<Vec<i32>> = Vec::new();
        for i in 0..n {
            let base = 3 * i;
            cs.push(vec![base + 1, base + 2, base + 3]);
            // at most one color
            cs.push(vec![-(base + 1), -(base + 2)]);
            cs.push(vec![-(base + 1), -(base + 3)]);
            cs.push(vec![-(base + 2), -(base + 3)]);
        }
        for i in 0..n - 1 {
            let a = 3 * i;
            let b = 3 * (i + 1);
            for c in 1..=3 {
                cs.push(vec![-(a + c), -(b + c)]);
            }
        }
        let refs: Vec<&[i32]> = cs.iter().map(|c| c.as_slice()).collect();
        let mut s = solver_with(&refs);
        assert!(s.solve());
        let m = s.model();
        for c in &cs {
            assert!(c.iter().any(|&x| {
                let val = m[(x.unsigned_abs() - 1) as usize];
                if x > 0 {
                    val
                } else {
                    !val
                }
            }));
        }
    }
}
