//! Brute-force reference solvers used to cross-validate the CDCL solver
//! and the Tseitin encoding in tests and property tests.

use crate::cnf::Cnf;
use crate::ground::GroundFormula;
use ipa_spec::GroundAtom;
use std::collections::BTreeMap;

/// Exhaustively decide satisfiability of a CNF (≤ ~24 variables).
pub fn cnf_satisfiable(cnf: &Cnf) -> Option<Vec<bool>> {
    let n = cnf.num_vars() as usize;
    assert!(n <= 24, "brute force limited to 24 variables, got {n}");
    for bits in 0u64..(1u64 << n) {
        let assignment: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
        if cnf.eval(&assignment) {
            return Some(assignment);
        }
    }
    None
}

/// Exhaustively decide satisfiability of a ground formula by enumerating
/// all boolean-atom assignments and numeric-atom values in `[0, num_bound]`.
pub fn formula_satisfiable(
    f: &GroundFormula,
    num_bound: i64,
) -> Option<(BTreeMap<GroundAtom, bool>, BTreeMap<GroundAtom, i64>)> {
    let bool_atoms: Vec<GroundAtom> = f.bool_atoms().into_iter().collect();
    let num_atoms: Vec<GroundAtom> = f.num_atoms().into_iter().collect();
    let nb = bool_atoms.len();
    assert!(
        nb <= 16,
        "brute force limited to 16 boolean atoms, got {nb}"
    );
    assert!(
        num_atoms.len() <= 3,
        "brute force limited to 3 numeric atoms"
    );
    let dom = (num_bound + 1) as usize;
    let num_combos = dom.pow(num_atoms.len() as u32);

    for bits in 0u64..(1u64 << nb) {
        let bools: BTreeMap<GroundAtom, bool> = bool_atoms
            .iter()
            .enumerate()
            .map(|(i, a)| (a.clone(), bits >> i & 1 == 1))
            .collect();
        for combo in 0..num_combos {
            let mut rem = combo;
            let mut nums = BTreeMap::new();
            for a in &num_atoms {
                nums.insert(a.clone(), (rem % dom) as i64);
                rem /= dom;
            }
            if f.eval(&bools, &nums) {
                return Some((bools, nums));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lit::SatVar;

    #[test]
    fn brute_cnf_agrees_on_tiny_cases() {
        let mut cnf = Cnf::new();
        let a = cnf.fresh_var();
        let b = cnf.fresh_var();
        cnf.add_clause([a.positive(), b.positive()]);
        cnf.add_clause([a.negative(), b.negative()]);
        let m = cnf_satisfiable(&cnf).expect("xor-ish is sat");
        assert!(cnf.eval(&m));

        let mut unsat = Cnf::new();
        let v = unsat.fresh_var();
        unsat.add_clause([v.positive()]);
        unsat.add_clause([v.negative()]);
        assert!(cnf_satisfiable(&unsat).is_none());
        let _ = SatVar(0);
    }

    #[test]
    fn brute_formula_finds_numeric_models() {
        let stock = GroundAtom::new("stock", vec![]);
        let f = GroundFormula::and(vec![
            GroundFormula::ValueCmp {
                atom: stock.clone(),
                offset: 0,
                op: ipa_spec::CmpOp::Ge,
                rhs: 2,
            },
            GroundFormula::ValueCmp {
                atom: stock.clone(),
                offset: 0,
                op: ipa_spec::CmpOp::Le,
                rhs: 2,
            },
        ]);
        let (_, nums) = formula_satisfiable(&f, 4).expect("stock == 2");
        assert_eq!(nums.get(&stock), Some(&2));
    }
}
