//! # ipa-solver — SAT solving and small-scope grounding for the IPA analysis
//!
//! The IPA paper uses the Z3 SMT solver to "generate all the test cases
//! efficiently" for its pairwise conflict detection (§3.2, §4.1). This crate
//! is the offline substitute: it decides satisfiability of the paper's
//! invariant fragment (universally quantified first-order clauses with
//! counting and bounded-integer atoms) by
//!
//! 1. **grounding** formulas over a finite, per-sort universe — the
//!    *small-scope* instantiation induced by the parameters of the two
//!    operations under test plus fresh witnesses ([`ground`]);
//! 2. **encoding** the ground formula to CNF via Tseitin transformation,
//!    with a sequential-counter encoding for counting atoms
//!    (`#enrolled(*, t) <= K`) and an order encoding for bounded numeric
//!    predicates ([`tseitin`]);
//! 3. **solving** with a CDCL SAT solver (two-watched-literal propagation,
//!    first-UIP clause learning, activity-based decisions) ([`sat`]);
//! 4. **decoding** models back into [`ipa_spec::Interpretation`]s so the
//!    analysis can show counter-example states like the paper's Figure 2
//!    ([`query`]).
//!
//! The [`brute`] module provides a brute-force model enumerator used by the
//! property-test suite to cross-validate the CDCL solver on small instances.

pub mod brute;
pub mod cnf;
pub mod ground;
pub mod lit;
pub mod query;
pub mod sat;
pub mod tseitin;

pub use cnf::{Clause, Cnf};
pub use ground::{GroundError, GroundFormula, Grounder, NumTerm, Universe};
pub use lit::{Lit, SatVar};
pub use query::{Model, Outcome, Problem, SolverError};
pub use sat::Solver;
