//! Boolean variables and literals.

use std::fmt;

/// A SAT variable, numbered from 0.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct SatVar(pub u32);

impl SatVar {
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The positive literal of this variable.
    pub fn positive(self) -> Lit {
        Lit::new(self, true)
    }

    /// The negative literal of this variable.
    pub fn negative(self) -> Lit {
        Lit::new(self, false)
    }
}

/// A literal: a variable with a polarity. Encoded as `var << 1 | neg` so a
/// literal doubles as an index into watch lists.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    pub fn new(var: SatVar, positive: bool) -> Lit {
        Lit(var.0 << 1 | u32::from(!positive))
    }

    pub fn var(self) -> SatVar {
        SatVar(self.0 >> 1)
    }

    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// The complementary literal.
    #[must_use]
    pub fn negated(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    /// Dense code usable as a watch-list index.
    pub fn code(self) -> usize {
        self.0 as usize
    }

    pub fn from_code(code: usize) -> Lit {
        Lit(code as u32)
    }

    /// The truth value this literal takes under an assignment of its
    /// variable.
    pub fn apply(self, var_value: bool) -> bool {
        var_value == self.is_positive()
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;
    fn not(self) -> Lit {
        self.negated()
    }
}

impl fmt::Debug for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "x{}", self.var().0)
        } else {
            write!(f, "~x{}", self.var().0)
        }
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_encoding_roundtrip() {
        let v = SatVar(5);
        let pos = v.positive();
        let neg = v.negative();
        assert_eq!(pos.var(), v);
        assert_eq!(neg.var(), v);
        assert!(pos.is_positive());
        assert!(!neg.is_positive());
        assert_eq!(pos.negated(), neg);
        assert_eq!(!neg, pos);
        assert_eq!(Lit::from_code(pos.code()), pos);
    }

    #[test]
    fn apply_polarity() {
        let v = SatVar(0);
        assert!(v.positive().apply(true));
        assert!(!v.positive().apply(false));
        assert!(v.negative().apply(false));
        assert!(!v.negative().apply(true));
    }

    #[test]
    fn codes_are_dense() {
        assert_eq!(SatVar(0).positive().code(), 0);
        assert_eq!(SatVar(0).negative().code(), 1);
        assert_eq!(SatVar(1).positive().code(), 2);
        assert_eq!(SatVar(1).negative().code(), 3);
    }
}
