//! Property tests: the CDCL solver and Tseitin encoder must agree with
//! brute-force enumeration on random small instances.

use ipa_solver::brute;
use ipa_solver::cnf::Cnf;
use ipa_solver::ground::GroundFormula;
use ipa_solver::lit::{Lit, SatVar};
use ipa_solver::sat::Solver;
use ipa_solver::tseitin::Encoder;
use ipa_spec::{CmpOp, Constant, GroundAtom, Sort};
use proptest::prelude::*;

/// Random CNF over `nvars` variables with up to `nclauses` clauses of up to
/// 4 literals each.
fn arb_cnf(nvars: u32, nclauses: usize) -> impl Strategy<Value = Vec<Vec<i32>>> {
    let lit = (1..=nvars as i32).prop_flat_map(|v| prop_oneof![Just(v), Just(-v)]);
    let clause = prop::collection::vec(lit, 1..=4);
    prop::collection::vec(clause, 0..=nclauses)
}

fn build_cnf(clauses: &[Vec<i32>], nvars: u32) -> Cnf {
    let mut cnf = Cnf::new();
    for _ in 0..nvars {
        cnf.fresh_var();
    }
    for c in clauses {
        let lits: Vec<Lit> = c
            .iter()
            .map(|&x| Lit::new(SatVar(x.unsigned_abs() - 1), x > 0))
            .collect();
        cnf.add_clause(lits);
    }
    cnf
}

fn run_cdcl(cnf: &Cnf) -> Option<Vec<bool>> {
    let mut s = Solver::new();
    for c in &cnf.clauses {
        s.add_clause(&c.lits);
    }
    while (s.num_vars() as u32) < cnf.num_vars() {
        s.new_var();
    }
    if s.solve() {
        Some(s.model())
    } else {
        None
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// CDCL and brute force agree on satisfiability, and CDCL models are
    /// genuine models.
    #[test]
    fn cdcl_agrees_with_brute_force(clauses in arb_cnf(8, 24)) {
        let cnf = build_cnf(&clauses, 8);
        let brute = brute::cnf_satisfiable(&cnf);
        let cdcl = run_cdcl(&cnf);
        prop_assert_eq!(brute.is_some(), cdcl.is_some(),
            "disagreement on {:?}", clauses);
        if let Some(model) = cdcl {
            prop_assert!(cnf.eval(&model), "CDCL returned a non-model for {:?}", clauses);
        }
    }
}

/// Random ground formulas with counting and numeric atoms.
fn arb_ground_formula() -> impl Strategy<Value = GroundFormula> {
    let atom = (0u8..5)
        .prop_map(|i| GroundAtom::new("p", vec![Constant::new(format!("c{i}"), Sort::new("S"))]));
    let num_atom = (0u8..2)
        .prop_map(|i| GroundAtom::new("v", vec![Constant::new(format!("n{i}"), Sort::new("S"))]));
    let cmp = prop_oneof![
        Just(CmpOp::Le),
        Just(CmpOp::Lt),
        Just(CmpOp::Ge),
        Just(CmpOp::Gt),
        Just(CmpOp::Eq),
        Just(CmpOp::Ne)
    ];
    let leaf = prop_oneof![
        atom.clone().prop_map(GroundFormula::Atom),
        (prop::collection::vec(atom, 1..4), -1i64..6, cmp.clone()).prop_map(
            |(mut atoms, rhs, op)| {
                atoms.sort();
                atoms.dedup();
                GroundFormula::CountCmp {
                    atoms,
                    offset: 0,
                    op,
                    rhs,
                }
            }
        ),
        (num_atom, -1i64..6, cmp).prop_map(|(atom, rhs, op)| GroundFormula::ValueCmp {
            atom,
            offset: 0,
            op,
            rhs
        }),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            inner.clone().prop_map(GroundFormula::not),
            prop::collection::vec(inner.clone(), 1..4).prop_map(GroundFormula::and),
            prop::collection::vec(inner, 1..4).prop_map(GroundFormula::or),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The Tseitin encoding (incl. counting networks and order encoding)
    /// is equisatisfiable with the reference semantics.
    #[test]
    fn encoder_agrees_with_formula_enumeration(f in arb_ground_formula()) {
        const BOUND: i64 = 4;
        let brute = brute::formula_satisfiable(&f, BOUND);
        let mut enc = Encoder::new(BOUND);
        enc.assert(&f);
        let mut s = Solver::new();
        for c in &enc.cnf.clauses {
            s.add_clause(&c.lits);
        }
        while (s.num_vars() as u32) < enc.cnf.num_vars() {
            s.new_var();
        }
        let sat = s.solve();
        prop_assert_eq!(brute.is_some(), sat, "disagreement on {:?}", f);
        if sat {
            let (bools, nums) = enc.decode(&s.model());
            prop_assert!(f.eval(&bools, &nums),
                "decoded model does not satisfy formula {:?}: bools={:?} nums={:?}", f, bools, nums);
        }
    }
}
