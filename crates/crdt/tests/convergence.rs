//! Property tests: every CRDT converges when the same operations are
//! delivered in different causal orders.
//!
//! The harness simulates a small fleet of replicas issuing operations
//! and replays the full op log through `ipa-store`'s **schedule
//! explorer**: seeded causally-consistent interleavings
//! ([`Schedule::sample_order`]) and, for small logs, *exhaustive*
//! enumeration of every reachable delivery order
//! ([`Schedule::enumerate_orders`]). The final states must be identical
//! — the commutativity half of the paper's correctness argument (§2.2,
//! Theorem 1 requires commutative operations). Any failing schedule
//! reproduces from its seed alone.

use ipa_crdt::{
    AWMap, AWSet, MVRegOp, MVRegister, Object, ObjectKind, ObjectOp, PNCounter, PNCounterOp, RWSet,
    ReplicaId, Tag, VClock, Val, ValPattern,
};
use ipa_store::schedule::{CausalItem, Schedule};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A scripted command at a replica.
#[derive(Clone, Debug)]
enum Cmd {
    Add(u8),
    Remove(u8),
    RemoveWild(u8), // wildcard: remove every pair with second component = x
    Touch(u8),
}

fn arb_script() -> impl Strategy<Value = Vec<(u8, Cmd)>> {
    let cmd = prop_oneof![
        (0u8..6).prop_map(Cmd::Add),
        (0u8..6).prop_map(Cmd::Remove),
        (0u8..3).prop_map(Cmd::RemoveWild),
        (0u8..6).prop_map(Cmd::Touch),
    ];
    prop::collection::vec(((0u8..3), cmd), 1..24)
}

/// An op log entry: the effect plus its causal clock and origin — the
/// schedule explorer's [`CausalItem`] view of one operation.
#[derive(Clone, Debug)]
struct LogEntry {
    op: ObjectOp,
    clock: VClock,
    origin: ReplicaId,
}

impl CausalItem for LogEntry {
    fn origin(&self) -> ReplicaId {
        self.origin
    }
    fn clock(&self) -> &VClock {
        &self.clock
    }
}

/// Execute the script against live per-replica states (ops prepared at the
/// origin against its current state, applied locally, logged). Returns the
/// log in issue order (a valid causal order).
fn run_script(kind: ObjectKind, script: &[(u8, Cmd)]) -> Vec<LogEntry> {
    let nreplicas = 3u16;
    let mut states: Vec<Object> = (0..nreplicas)
        .map(|r| Object::new(kind, ReplicaId(r)))
        .collect();
    let mut clocks: Vec<VClock> = (0..nreplicas).map(|_| VClock::new()).collect();
    let mut log: Vec<LogEntry> = Vec::new();

    for (i, (r, cmd)) in script.iter().enumerate() {
        let r = (*r % nreplicas as u8) as usize;
        // Naive anti-entropy: before acting, the origin replica receives
        // every logged op it has not yet seen (keeps scripts interesting
        // while remaining causal).
        if i % 3 == 0 {
            for e in &log {
                if !e.clock.le(&clocks[r]) {
                    states[r].apply(&e.op).unwrap();
                    clocks[r].merge(&e.clock);
                }
            }
        }
        let seq = clocks[r].tick(ReplicaId(r as u16));
        let tag = Tag::new(ReplicaId(r as u16), seq);
        let clock = clocks[r].clone();
        let elem = |x: u8| Val::pair(format!("p{x}"), format!("t{}", x % 3));
        let op = match (kind, cmd) {
            (ObjectKind::AWSet, Cmd::Add(x)) | (ObjectKind::AWSet, Cmd::Touch(x)) => Some(
                ObjectOp::AWSet(states[r].as_awset().unwrap().prepare_add(elem(*x), tag)),
            ),
            (ObjectKind::AWSet, Cmd::Remove(x)) => states[r]
                .as_awset()
                .unwrap()
                .prepare_remove(&elem(*x))
                .map(ObjectOp::AWSet),
            (ObjectKind::AWSet, Cmd::RemoveWild(x)) => {
                let t = Val::str(format!("t{}", x % 3));
                Some(ObjectOp::AWSet(
                    states[r]
                        .as_awset()
                        .unwrap()
                        .prepare_remove_matching(|e: &Val| e.snd() == Some(&t)),
                ))
            }
            (ObjectKind::RWSet, Cmd::Add(x)) | (ObjectKind::RWSet, Cmd::Touch(x)) => {
                Some(ObjectOp::RWSet(states[r].as_rwset().unwrap().prepare_add(
                    elem(*x),
                    tag,
                    clock.clone(),
                )))
            }
            (ObjectKind::RWSet, Cmd::Remove(x)) => Some(ObjectOp::RWSet(
                states[r]
                    .as_rwset()
                    .unwrap()
                    .prepare_remove(elem(*x), tag, clock.clone()),
            )),
            (ObjectKind::RWSet, Cmd::RemoveWild(x)) => Some(ObjectOp::RWSet(
                states[r].as_rwset().unwrap().prepare_remove_matching(
                    ValPattern::pair(ValPattern::Any, ValPattern::exact(format!("t{}", x % 3))),
                    tag,
                    clock.clone(),
                ),
            )),
            _ => None,
        };
        if let Some(op) = op {
            states[r].apply(&op).unwrap();
            log.push(LogEntry {
                op,
                clock,
                origin: ReplicaId(r as u16),
            });
        } else {
            // Command prepared nothing (e.g. removing an absent element):
            // undo the clock tick to keep clocks dense.
            clocks[r].set(ReplicaId(r as u16), seq - 1);
        }
    }
    log
}

/// Replay the log onto a fresh object in the given index order.
fn replay_order(kind: ObjectKind, log: &[LogEntry], order: &[usize]) -> Object {
    let mut o = Object::new(kind, ReplicaId(99));
    for &i in order {
        o.apply(&log[i].op).unwrap();
    }
    o
}

fn replay(kind: ObjectKind, log: &[LogEntry]) -> Object {
    let order: Vec<usize> = (0..log.len()).collect();
    replay_order(kind, log, &order)
}

/// Observable membership of a set-like object (RWSet state vectors may
/// store entries in different orders, so compare what readers see).
fn membership(o: &Object) -> Vec<Val> {
    match o {
        Object::AWSet(s) => s.elements().cloned().collect(),
        Object::RWSet(s) => s.elements().cloned().collect(),
        _ => panic!("not a set"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn awset_converges_under_causal_reordering(script in arb_script(), seed in 0u64..1000) {
        let log = run_script(ObjectKind::AWSet, &script);
        let a = replay(ObjectKind::AWSet, &log);
        let order = Schedule::from_seed(seed).sample_order(&log);
        let b = replay_order(ObjectKind::AWSet, &log, &order);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn rwset_converges_under_causal_reordering(script in arb_script(), seed in 0u64..1000) {
        let log = run_script(ObjectKind::RWSet, &script);
        let a = replay(ObjectKind::RWSet, &log);
        let order = Schedule::from_seed(seed).sample_order(&log);
        let b = replay_order(ObjectKind::RWSet, &log, &order);
        prop_assert_eq!(membership(&a), membership(&b));
    }

    /// Exhaustive version: for short scripts, check *every* reachable
    /// causal interleaving, not just two samples.
    #[test]
    fn awset_converges_under_every_causal_order(script in prop::collection::vec(((0u8..3), (0u8..4).prop_map(Cmd::Add)), 1..6)) {
        let log = run_script(ObjectKind::AWSet, &script);
        let reference = replay(ObjectKind::AWSet, &log);
        let orders = Schedule::enumerate_orders(&log, 256);
        prop_assert!(!orders.is_empty());
        for order in &orders {
            let other = replay_order(ObjectKind::AWSet, &log, order);
            prop_assert_eq!(&reference, &other, "diverged under order {:?}", order);
        }
    }

    #[test]
    fn pncounter_converges_under_any_order(deltas in prop::collection::vec((-5i64..=5, 0u16..3), 1..20), seed in 0u64..1000) {
        let ops: Vec<PNCounterOp> = deltas
            .iter()
            .map(|&(d, r)| PNCounterOp { origin: ReplicaId(r), delta: d })
            .collect();
        let mut a = PNCounter::new();
        for op in &ops {
            a.apply(op);
        }
        let mut shuffled = ops.clone();
        shuffled.shuffle(&mut StdRng::seed_from_u64(seed));
        let mut b = PNCounter::new();
        for op in &shuffled {
            b.apply(op);
        }
        prop_assert_eq!(a, b);
    }

    #[test]
    fn mvregister_converges_under_any_order(writes in prop::collection::vec((0u16..3, 1u64..5, 0i64..100), 1..12), seed in 0u64..1000) {
        // Build clocks that mix causal and concurrent writes. Clocks must
        // be unique per op (each real op ticks its origin), so dedup the
        // generated (replica, counter) pairs.
        let mut seen = std::collections::BTreeSet::new();
        let ops: Vec<MVRegOp<i64>> = writes
            .iter()
            .filter(|&&(r, c, _)| seen.insert((r, c)))
            .map(|&(r, c, v)| MVRegOp {
                clock: [(ReplicaId(r), c)].into_iter().collect(),
                value: v,
            })
            .collect();
        let mut a = MVRegister::new();
        for op in &ops {
            a.apply(op);
        }
        let mut shuffled = ops.clone();
        shuffled.shuffle(&mut StdRng::seed_from_u64(seed));
        let mut b = MVRegister::new();
        for op in &shuffled {
            b.apply(op);
        }
        let mut va: Vec<i64> = a.values().copied().collect();
        let mut vb: Vec<i64> = b.values().copied().collect();
        va.sort_unstable();
        vb.sort_unstable();
        prop_assert_eq!(va, vb);
    }
}

#[test]
fn sampled_schedules_replay_from_seed() {
    let script: Vec<(u8, Cmd)> = (0..18).map(|i| (i % 3, Cmd::Add(i % 6))).collect();
    let log = run_script(ObjectKind::AWSet, &script);
    let a = Schedule::from_seed(123).sample_order(&log);
    let b = Schedule::from_seed(123).sample_order(&log);
    assert_eq!(a, b, "same seed ⇒ identical schedule");
}

#[test]
fn awmap_touch_preserves_payload_through_reorderings() {
    // Deterministic end-to-end: put, remove, touch delivered in both
    // orders consistent with causality.
    let mut origin: AWMap<Val, Val> = AWMap::new();
    let r0 = ReplicaId(0);
    let mut c = VClock::new();
    c.tick(r0);
    let put = origin.prepare_put(Val::str("k"), Tag::new(r0, 1), c.clone(), 1, Val::int(42));
    origin.apply(&put);
    c.tick(r0);
    let rm = origin.prepare_remove(&Val::str("k"), c.clone()).unwrap();
    origin.apply(&rm);
    // Concurrent touch from replica 1 (saw the put, not the remove).
    let touch_clock: VClock = [(r0, 1), (ReplicaId(1), 1)].into_iter().collect();
    let touch = origin.prepare_touch(Val::str("k"), Tag::new(ReplicaId(1), 1), touch_clock);

    for order in [[&put, &rm, &touch], [&put, &touch, &rm]] {
        let mut m: AWMap<Val, Val> = AWMap::new();
        for op in order {
            m.apply(op);
        }
        assert!(
            m.contains(&Val::str("k")),
            "touch wins over concurrent remove"
        );
        assert_eq!(
            m.get(&Val::str("k")),
            Some(&Val::int(42)),
            "payload preserved"
        );
    }
}

#[test]
fn awset_elements_helper_consistency() {
    let mut s: AWSet<Val> = AWSet::new();
    s.apply(&s.prepare_add(Val::str("a"), Tag::new(ReplicaId(0), 1)));
    assert_eq!(s.elements().count(), s.len());
    let rw: RWSet<Val, ValPattern> = RWSet::new();
    assert!(rw.is_empty());
}
