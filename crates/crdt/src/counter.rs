//! PN-counter (op-based): increments and decrements commute trivially.

use crate::tag::ReplicaId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Operation-based PN-counter. Per-replica totals are kept so the value
/// can be audited per origin (and so tests can assert convergence
/// structurally, not just on the sum).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PNCounter {
    pos: BTreeMap<ReplicaId, u64>,
    neg: BTreeMap<ReplicaId, u64>,
}

/// Effect operation: a signed delta from an origin replica.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PNCounterOp {
    pub origin: ReplicaId,
    pub delta: i64,
}

impl PNCounter {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn value(&self) -> i64 {
        let p: u64 = self.pos.values().sum();
        let n: u64 = self.neg.values().sum();
        p as i64 - n as i64
    }

    pub fn prepare(&self, origin: ReplicaId, delta: i64) -> PNCounterOp {
        PNCounterOp { origin, delta }
    }

    pub fn apply(&mut self, op: &PNCounterOp) {
        if op.delta >= 0 {
            *self.pos.entry(op.origin).or_insert(0) += op.delta as u64;
        } else {
            *self.neg.entry(op.origin).or_insert(0) += (-op.delta) as u64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn commutative_sums() {
        let ops = [
            PNCounterOp {
                origin: ReplicaId(0),
                delta: 5,
            },
            PNCounterOp {
                origin: ReplicaId(1),
                delta: -2,
            },
            PNCounterOp {
                origin: ReplicaId(0),
                delta: -1,
            },
        ];
        let mut a = PNCounter::new();
        let mut b = PNCounter::new();
        for op in &ops {
            a.apply(op);
        }
        for op in ops.iter().rev() {
            b.apply(op);
        }
        assert_eq!(a, b);
        assert_eq!(a.value(), 2);
    }

    #[test]
    fn zero_initial_value() {
        assert_eq!(PNCounter::new().value(), 0);
    }
}
