//! Replica identifiers and unique update tags.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A replica (data center) identifier.
#[derive(
    Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default, Serialize, Deserialize,
)]
pub struct ReplicaId(pub u16);

impl fmt::Display for ReplicaId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A globally unique update tag: origin replica plus a per-replica
/// sequence number (a "dot"). Tags order first by replica then by
/// sequence, giving every update a deterministic total order that the
/// compensation machinery uses for its deterministic element choice.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub struct Tag {
    pub replica: ReplicaId,
    pub seq: u64,
}

impl Tag {
    pub fn new(replica: ReplicaId, seq: u64) -> Self {
        Tag { replica, seq }
    }
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.replica, self.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_are_totally_ordered() {
        let a = Tag::new(ReplicaId(0), 5);
        let b = Tag::new(ReplicaId(0), 6);
        let c = Tag::new(ReplicaId(1), 1);
        assert!(a < b);
        assert!(b < c); // replica-major order
        assert_eq!(a, Tag::new(ReplicaId(0), 5));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Tag::new(ReplicaId(2), 9).to_string(), "r2:9");
    }
}
