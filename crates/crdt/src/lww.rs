//! Last-writer-wins register.

use crate::tag::Tag;
use serde::{Deserialize, Serialize};

/// LWW register: the write with the highest `(timestamp, tag)` wins;
/// the tag breaks timestamp ties deterministically.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LWWRegister<V: Clone> {
    slot: Option<(u64, Tag, V)>,
}

/// Effect operation: a timestamped write.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LWWOp<V> {
    pub ts: u64,
    pub tag: Tag,
    pub value: V,
}

impl<V: Clone> LWWRegister<V> {
    pub fn new() -> Self {
        LWWRegister { slot: None }
    }

    pub fn get(&self) -> Option<&V> {
        self.slot.as_ref().map(|(_, _, v)| v)
    }

    /// The winning write's timestamp, if any.
    pub fn timestamp(&self) -> Option<(u64, Tag)> {
        self.slot.as_ref().map(|(ts, tag, _)| (*ts, *tag))
    }

    pub fn prepare_write(&self, ts: u64, tag: Tag, value: V) -> LWWOp<V> {
        LWWOp { ts, tag, value }
    }

    pub fn apply(&mut self, op: &LWWOp<V>) {
        let newer = match &self.slot {
            None => true,
            Some((ts, tag, _)) => (op.ts, op.tag) > (*ts, *tag),
        };
        if newer {
            self.slot = Some((op.ts, op.tag, op.value.clone()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tag::ReplicaId;

    fn tag(r: u16, s: u64) -> Tag {
        Tag::new(ReplicaId(r), s)
    }

    #[test]
    fn later_timestamp_wins_any_order() {
        let w1 = LWWOp {
            ts: 1,
            tag: tag(0, 1),
            value: "a",
        };
        let w2 = LWWOp {
            ts: 2,
            tag: tag(1, 1),
            value: "b",
        };
        let mut x = LWWRegister::new();
        x.apply(&w1);
        x.apply(&w2);
        let mut y = LWWRegister::new();
        y.apply(&w2);
        y.apply(&w1);
        assert_eq!(x.get(), Some(&"b"));
        assert_eq!(x, y);
    }

    #[test]
    fn tag_breaks_timestamp_ties() {
        let w1 = LWWOp {
            ts: 5,
            tag: tag(0, 1),
            value: "a",
        };
        let w2 = LWWOp {
            ts: 5,
            tag: tag(1, 1),
            value: "b",
        };
        let mut x = LWWRegister::new();
        x.apply(&w1);
        x.apply(&w2);
        let mut y = LWWRegister::new();
        y.apply(&w2);
        y.apply(&w1);
        assert_eq!(x, y);
        assert_eq!(x.get(), Some(&"b"), "higher tag wins ties");
    }

    #[test]
    fn empty_register_reads_none() {
        let r: LWWRegister<u32> = LWWRegister::new();
        assert_eq!(r.get(), None);
        assert_eq!(r.timestamp(), None);
    }
}
