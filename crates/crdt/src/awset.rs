//! Add-wins (observed-remove) set.
//!
//! Adds carry unique tags; a remove (prepared at the origin) lists the add
//! tags it *observed*, and only those are deleted. An add concurrent with a
//! remove carries a tag the remove did not observe, so the element
//! survives — add-wins. Under this design the wildcard remove of §4.2.1 is
//! resolved at the origin: it removes the observed matching elements, and
//! concurrent adds still win, which is exactly the add-wins reading of
//! `enrolled(*, t) := false`.
//!
//! No tombstones are kept: state is `O(live tags)`.

use crate::tag::Tag;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Operation-based add-wins set.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AWSet<E: Ord + Clone> {
    live: BTreeMap<E, BTreeSet<Tag>>,
}

/// Effect operations (replicated under causal delivery).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AWSetOp<E> {
    /// Add an element with a fresh unique tag.
    Add { elem: E, tag: Tag },
    /// Remove the listed (element, observed-tags) pairs.
    Remove { victims: Vec<(E, Vec<Tag>)> },
}

impl<E: Ord + Clone> AWSet<E> {
    pub fn new() -> Self {
        AWSet {
            live: BTreeMap::new(),
        }
    }

    pub fn contains(&self, e: &E) -> bool {
        self.live.get(e).is_some_and(|tags| !tags.is_empty())
    }

    pub fn elements(&self) -> impl Iterator<Item = &E> {
        self.live
            .iter()
            .filter(|(_, t)| !t.is_empty())
            .map(|(e, _)| e)
    }

    pub fn len(&self) -> usize {
        self.live.values().filter(|t| !t.is_empty()).count()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The live tags of an element (used by the compensation set for its
    /// deterministic excess choice).
    pub fn tags_of(&self, e: &E) -> impl Iterator<Item = &Tag> {
        self.live.get(e).into_iter().flatten()
    }

    // ------------------------------------------------------------------
    // Prepare (origin side)
    // ------------------------------------------------------------------

    /// Prepare an add with the given fresh tag.
    pub fn prepare_add(&self, elem: E, tag: Tag) -> AWSetOp<E> {
        AWSetOp::Add { elem, tag }
    }

    /// Prepare a remove of one element: captures the observed tags.
    /// Returns `None` when the element is not present (removing nothing).
    pub fn prepare_remove(&self, elem: &E) -> Option<AWSetOp<E>> {
        let tags = self.live.get(elem)?;
        if tags.is_empty() {
            return None;
        }
        Some(AWSetOp::Remove {
            victims: vec![(elem.clone(), tags.iter().copied().collect())],
        })
    }

    /// Prepare a wildcard remove: removes every observed element matching
    /// the predicate (add-wins semantics — concurrent adds survive).
    pub fn prepare_remove_matching(&self, pred: impl Fn(&E) -> bool) -> AWSetOp<E> {
        let victims = self
            .live
            .iter()
            .filter(|(e, tags)| !tags.is_empty() && pred(e))
            .map(|(e, tags)| (e.clone(), tags.iter().copied().collect()))
            .collect();
        AWSetOp::Remove { victims }
    }

    // ------------------------------------------------------------------
    // Apply (all replicas, causal delivery)
    // ------------------------------------------------------------------

    pub fn apply(&mut self, op: &AWSetOp<E>) {
        match op {
            AWSetOp::Add { elem, tag } => {
                self.live.entry(elem.clone()).or_default().insert(*tag);
            }
            AWSetOp::Remove { victims } => {
                for (e, tags) in victims {
                    if let Some(live) = self.live.get_mut(e) {
                        for t in tags {
                            live.remove(t);
                        }
                        if live.is_empty() {
                            self.live.remove(e);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tag::ReplicaId;

    fn tag(r: u16, s: u64) -> Tag {
        Tag::new(ReplicaId(r), s)
    }

    #[test]
    fn add_then_remove() {
        let mut s: AWSet<&'static str> = AWSet::new();
        s.apply(&s.prepare_add("a", tag(0, 1)));
        assert!(s.contains(&"a"));
        assert_eq!(s.len(), 1);
        let rm = s.prepare_remove(&"a").unwrap();
        s.apply(&rm);
        assert!(!s.contains(&"a"));
        assert!(s.is_empty());
    }

    #[test]
    fn remove_of_absent_element_prepares_nothing() {
        let s: AWSet<&'static str> = AWSet::new();
        assert!(s.prepare_remove(&"ghost").is_none());
    }

    #[test]
    fn concurrent_add_wins_over_remove() {
        // Replica A and B both have {x}. A removes x; concurrently B
        // re-adds x (fresh tag). After exchanging ops, x is present.
        let mut a: AWSet<&'static str> = AWSet::new();
        let mut b: AWSet<&'static str> = AWSet::new();
        let add0 = a.prepare_add("x", tag(0, 1));
        a.apply(&add0);
        b.apply(&add0);

        let rm = a.prepare_remove(&"x").unwrap(); // observes tag(0,1) only
        let add1 = b.prepare_add("x", tag(1, 1)); // concurrent re-add
        a.apply(&rm);
        a.apply(&add1);
        b.apply(&add1);
        b.apply(&rm);
        assert!(a.contains(&"x"), "add must win");
        assert_eq!(a, b, "replicas must converge");
    }

    #[test]
    fn wildcard_remove_clears_matching_only() {
        let mut s: AWSet<(String, String)> = AWSet::new();
        let e = |p: &str, t: &str| (p.to_string(), t.to_string());
        s.apply(&s.prepare_add(e("p1", "t1"), tag(0, 1)));
        s.apply(&s.prepare_add(e("p2", "t1"), tag(0, 2)));
        s.apply(&s.prepare_add(e("p1", "t2"), tag(0, 3)));
        // enrolled(*, t1) := false
        let rm = s.prepare_remove_matching(|(_, t)| t == "t1");
        s.apply(&rm);
        assert!(!s.contains(&e("p1", "t1")));
        assert!(!s.contains(&e("p2", "t1")));
        assert!(s.contains(&e("p1", "t2")));
    }

    #[test]
    fn wildcard_remove_loses_to_concurrent_add() {
        let mut a: AWSet<(String, String)> = AWSet::new();
        let mut b = a.clone();
        let e = |p: &str, t: &str| (p.to_string(), t.to_string());
        let add_old = a.prepare_add(e("p1", "t1"), tag(0, 1));
        a.apply(&add_old);
        b.apply(&add_old);
        // A: clear t1; B concurrently enrolls p2 in t1.
        let rm = a.prepare_remove_matching(|(_, t)| t == "t1");
        let add_new = b.prepare_add(e("p2", "t1"), tag(1, 1));
        a.apply(&rm);
        a.apply(&add_new);
        b.apply(&add_new);
        b.apply(&rm);
        assert!(!a.contains(&e("p1", "t1")), "observed enrollment removed");
        assert!(
            a.contains(&e("p2", "t1")),
            "concurrent enrollment survives (add-wins)"
        );
        assert_eq!(a, b);
    }

    #[test]
    fn idempotent_redelivery_of_remove() {
        // Causal delivery gives at-most-once, but removes are idempotent
        // anyway; re-applying must not panic or change state.
        let mut s: AWSet<&'static str> = AWSet::new();
        s.apply(&s.prepare_add("a", tag(0, 1)));
        let rm = s.prepare_remove(&"a").unwrap();
        s.apply(&rm);
        let snapshot = s.clone();
        s.apply(&rm);
        assert_eq!(s, snapshot);
    }

    #[test]
    fn elements_iterates_live_only() {
        let mut s: AWSet<u32> = AWSet::new();
        s.apply(&s.prepare_add(1, tag(0, 1)));
        s.apply(&s.prepare_add(2, tag(0, 2)));
        let rm = s.prepare_remove(&1).unwrap();
        s.apply(&rm);
        let elems: Vec<u32> = s.elements().copied().collect();
        assert_eq!(elems, vec![2]);
    }
}
