//! Uniform store objects: a closed sum of the library's CRDTs over
//! [`Val`] elements, so the replicated store can hold heterogeneous
//! objects behind one (de)serializable effect type.

use crate::awmap::{AWMap, AWMapOp};
use crate::awset::{AWSet, AWSetOp};
use crate::bcounter::{BCounter, BCounterOp};
use crate::clock::VClock;
use crate::compset::CompensationSet;
use crate::counter::{PNCounter, PNCounterOp};
use crate::lww::{LWWOp, LWWRegister};
use crate::mvreg::{MVRegOp, MVRegister};
use crate::rwset::{RWSet, RWSetOp};
use crate::tag::ReplicaId;
use crate::value::{Val, ValPattern};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The declared type of an object (chosen by the application per key —
/// the paper's per-object conflict-resolution choice, §2.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ObjectKind {
    AWSet,
    RWSet,
    AWMap,
    PNCounter,
    BCounter { floor: i64, initial: i64 },
    LWW,
    MV,
    CompSet { capacity: usize },
}

/// A store-resident CRDT object.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Object {
    AWSet(AWSet<Val>),
    RWSet(RWSet<Val, ValPattern>),
    AWMap(AWMap<Val, Val>),
    PNCounter(PNCounter),
    BCounter(BCounter),
    LWW(LWWRegister<Val>),
    MV(MVRegister<Val>),
    CompSet(CompensationSet<Val>),
}

/// The uniform effect type replicated between data centers.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ObjectOp {
    AWSet(AWSetOp<Val>),
    RWSet(RWSetOp<Val, ValPattern>),
    AWMap(AWMapOp<Val, Val>),
    PNCounter(PNCounterOp),
    BCounter(BCounterOp),
    LWW(LWWOp<Val>),
    MV(MVRegOp<Val>),
    CompSet(AWSetOp<Val>),
}

/// Applying an effect of the wrong type to an object.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TypeMismatch {
    pub expected: &'static str,
    pub got: &'static str,
}

impl fmt::Display for TypeMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "type mismatch: object is {}, effect is {}",
            self.expected, self.got
        )
    }
}

impl std::error::Error for TypeMismatch {}

impl Object {
    /// Instantiate a fresh object of a kind. `owner` seeds escrow rights
    /// for bounded counters.
    pub fn new(kind: ObjectKind, owner: ReplicaId) -> Object {
        match kind {
            ObjectKind::AWSet => Object::AWSet(AWSet::new()),
            ObjectKind::RWSet => Object::RWSet(RWSet::new()),
            ObjectKind::AWMap => Object::AWMap(AWMap::new()),
            ObjectKind::PNCounter => Object::PNCounter(PNCounter::new()),
            ObjectKind::BCounter { floor, initial } => {
                Object::BCounter(BCounter::new(floor, initial, owner))
            }
            ObjectKind::LWW => Object::LWW(LWWRegister::new()),
            ObjectKind::MV => Object::MV(MVRegister::new()),
            ObjectKind::CompSet { capacity } => Object::CompSet(CompensationSet::new(capacity)),
        }
    }

    pub fn type_name(&self) -> &'static str {
        match self {
            Object::AWSet(_) => "aw-set",
            Object::RWSet(_) => "rw-set",
            Object::AWMap(_) => "aw-map",
            Object::PNCounter(_) => "pn-counter",
            Object::BCounter(_) => "bounded-counter",
            Object::LWW(_) => "lww-register",
            Object::MV(_) => "mv-register",
            Object::CompSet(_) => "compensation-set",
        }
    }

    fn op_type_name(op: &ObjectOp) -> &'static str {
        match op {
            ObjectOp::AWSet(_) => "aw-set",
            ObjectOp::RWSet(_) => "rw-set",
            ObjectOp::AWMap(_) => "aw-map",
            ObjectOp::PNCounter(_) => "pn-counter",
            ObjectOp::BCounter(_) => "bounded-counter",
            ObjectOp::LWW(_) => "lww-register",
            ObjectOp::MV(_) => "mv-register",
            ObjectOp::CompSet(_) => "compensation-set",
        }
    }

    /// Apply a replicated effect.
    pub fn apply(&mut self, op: &ObjectOp) -> Result<(), TypeMismatch> {
        match (self, op) {
            (Object::AWSet(s), ObjectOp::AWSet(o)) => {
                s.apply(o);
                Ok(())
            }
            (Object::RWSet(s), ObjectOp::RWSet(o)) => {
                s.apply(o);
                Ok(())
            }
            (Object::AWMap(m), ObjectOp::AWMap(o)) => {
                m.apply(o);
                Ok(())
            }
            (Object::PNCounter(c), ObjectOp::PNCounter(o)) => {
                c.apply(o);
                Ok(())
            }
            (Object::BCounter(c), ObjectOp::BCounter(o)) => {
                c.apply(o);
                Ok(())
            }
            (Object::LWW(r), ObjectOp::LWW(o)) => {
                r.apply(o);
                Ok(())
            }
            (Object::MV(r), ObjectOp::MV(o)) => {
                r.apply(o);
                Ok(())
            }
            (Object::CompSet(s), ObjectOp::CompSet(o)) => {
                s.apply(o);
                Ok(())
            }
            (obj, op) => Err(TypeMismatch {
                expected: obj.type_name(),
                got: Object::op_type_name(op),
            }),
        }
    }

    /// Stability-driven garbage collection (forwarded to types that keep
    /// causal metadata).
    pub fn compact(&mut self, stable: &VClock) {
        match self {
            Object::RWSet(s) => s.compact(stable),
            Object::AWMap(m) => m.compact(stable),
            // Tag-based / monotone types carry no tombstones.
            _ => {}
        }
    }

    // ------------------------------------------------------------------
    // Typed accessors (used by the application layer)
    // ------------------------------------------------------------------

    pub fn as_awset(&self) -> Option<&AWSet<Val>> {
        match self {
            Object::AWSet(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_rwset(&self) -> Option<&RWSet<Val, ValPattern>> {
        match self {
            Object::RWSet(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_awmap(&self) -> Option<&AWMap<Val, Val>> {
        match self {
            Object::AWMap(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_pncounter(&self) -> Option<&PNCounter> {
        match self {
            Object::PNCounter(c) => Some(c),
            _ => None,
        }
    }

    pub fn as_bcounter(&self) -> Option<&BCounter> {
        match self {
            Object::BCounter(c) => Some(c),
            _ => None,
        }
    }

    pub fn as_lww(&self) -> Option<&LWWRegister<Val>> {
        match self {
            Object::LWW(r) => Some(r),
            _ => None,
        }
    }

    pub fn as_mv(&self) -> Option<&MVRegister<Val>> {
        match self {
            Object::MV(r) => Some(r),
            _ => None,
        }
    }

    pub fn as_compset(&self) -> Option<&CompensationSet<Val>> {
        match self {
            Object::CompSet(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_compset_mut(&mut self) -> Option<&mut CompensationSet<Val>> {
        match self {
            Object::CompSet(s) => Some(s),
            _ => None,
        }
    }

    /// Set membership across set-like kinds (convenience for invariants
    /// checking in the applications).
    pub fn set_contains(&self, v: &Val) -> Option<bool> {
        match self {
            Object::AWSet(s) => Some(s.contains(v)),
            Object::RWSet(s) => Some(s.contains(v)),
            Object::CompSet(s) => Some(s.contains(v)),
            Object::AWMap(m) => Some(m.contains(v)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tag::Tag;

    fn tag(r: u16, s: u64) -> Tag {
        Tag::new(ReplicaId(r), s)
    }

    #[test]
    fn construct_every_kind() {
        let kinds = [
            ObjectKind::AWSet,
            ObjectKind::RWSet,
            ObjectKind::AWMap,
            ObjectKind::PNCounter,
            ObjectKind::BCounter {
                floor: 0,
                initial: 5,
            },
            ObjectKind::LWW,
            ObjectKind::MV,
            ObjectKind::CompSet { capacity: 3 },
        ];
        for k in kinds {
            let o = Object::new(k, ReplicaId(0));
            assert!(!o.type_name().is_empty());
        }
    }

    #[test]
    fn apply_dispatch_and_mismatch() {
        let mut o = Object::new(ObjectKind::AWSet, ReplicaId(0));
        let add = ObjectOp::AWSet(AWSetOp::Add {
            elem: Val::str("x"),
            tag: tag(0, 1),
        });
        o.apply(&add).unwrap();
        assert_eq!(o.set_contains(&Val::str("x")), Some(true));
        let bad = ObjectOp::PNCounter(PNCounterOp {
            origin: ReplicaId(0),
            delta: 1,
        });
        let err = o.apply(&bad).unwrap_err();
        assert_eq!(err.expected, "aw-set");
        assert_eq!(err.got, "pn-counter");
    }

    #[test]
    fn ops_serialize_roundtrip() {
        // Effects must be serializable for the replication path.
        let op = ObjectOp::RWSet(RWSetOp::RemoveMatching {
            pattern: ValPattern::pair(ValPattern::Any, ValPattern::exact("t1")),
            tag: tag(0, 1),
            clock: [(ReplicaId(0), 1)].into_iter().collect(),
        });
        let bytes = bincode_like(&op);
        assert!(!bytes.is_empty());
    }

    // serde_json/bincode are not in the dependency set; round-trip through
    // the debug representation to at least exercise Serialize derives via
    // a no-op serializer is unavailable, so assert the type implements
    // Serialize at compile time instead.
    fn bincode_like<T: serde::Serialize + std::fmt::Debug>(v: &T) -> Vec<u8> {
        format!("{v:?}").into_bytes()
    }

    #[test]
    fn bcounter_object_respects_rights() {
        let mut o = Object::new(
            ObjectKind::BCounter {
                floor: 0,
                initial: 1,
            },
            ReplicaId(0),
        );
        let c = o.as_bcounter().unwrap();
        let dec = c.prepare_dec(ReplicaId(0), 1).unwrap();
        o.apply(&ObjectOp::BCounter(dec)).unwrap();
        assert_eq!(o.as_bcounter().unwrap().value(), 0);
        assert!(o
            .as_bcounter()
            .unwrap()
            .prepare_dec(ReplicaId(0), 1)
            .is_none());
    }
}
