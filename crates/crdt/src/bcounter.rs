//! Escrow-based bounded counter (Balegas et al., SRDS'15 — the paper's
//! reference \[11\] for maintaining numeric invariants under weak
//! consistency).
//!
//! The counter maintains `value() >= floor` without coordination by
//! splitting the "decrement rights" among replicas: a replica may only
//! prepare a decrement backed by rights it locally owns. Increments create
//! rights at their origin; rights can be transferred asynchronously
//! (this is also the substrate of Indigo's escrow reservations, §5.2.1).

use crate::tag::ReplicaId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Operation-based bounded counter.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BCounter {
    floor: i64,
    /// Rights created by increments at each replica.
    incs: BTreeMap<ReplicaId, u64>,
    /// Rights consumed by decrements at each replica.
    decs: BTreeMap<ReplicaId, u64>,
    /// Rights moved between replicas: `(from, to) -> amount`.
    transfers: BTreeMap<(ReplicaId, ReplicaId), u64>,
}

/// Effect operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum BCounterOp {
    Inc {
        origin: ReplicaId,
        n: u64,
    },
    Dec {
        origin: ReplicaId,
        n: u64,
    },
    Transfer {
        from: ReplicaId,
        to: ReplicaId,
        n: u64,
    },
}

impl BCounter {
    /// A counter constrained to `value() >= floor`, with `initial - floor`
    /// rights granted to `owner`.
    pub fn new(floor: i64, initial: i64, owner: ReplicaId) -> Self {
        assert!(initial >= floor, "initial value below the floor");
        let mut incs = BTreeMap::new();
        if initial > floor {
            incs.insert(owner, (initial - floor) as u64);
        }
        BCounter {
            floor,
            incs,
            decs: BTreeMap::new(),
            transfers: BTreeMap::new(),
        }
    }

    pub fn floor(&self) -> i64 {
        self.floor
    }

    pub fn value(&self) -> i64 {
        let p: u64 = self.incs.values().sum();
        let n: u64 = self.decs.values().sum();
        self.floor + p as i64 - n as i64
    }

    /// Decrement rights locally available to a replica.
    pub fn local_rights(&self, r: ReplicaId) -> i64 {
        let created = self.incs.get(&r).copied().unwrap_or(0) as i64;
        let used = self.decs.get(&r).copied().unwrap_or(0) as i64;
        let inflow: i64 = self
            .transfers
            .iter()
            .filter(|((_, to), _)| *to == r)
            .map(|(_, &n)| n as i64)
            .sum();
        let outflow: i64 = self
            .transfers
            .iter()
            .filter(|((from, _), _)| *from == r)
            .map(|(_, &n)| n as i64)
            .sum();
        created - used + inflow - outflow
    }

    pub fn prepare_inc(&self, origin: ReplicaId, n: u64) -> BCounterOp {
        BCounterOp::Inc { origin, n }
    }

    /// Prepare a decrement; fails when the replica lacks rights — the
    /// caller must then transfer rights or reject the operation (this is
    /// the escrow guarantee).
    pub fn prepare_dec(&self, origin: ReplicaId, n: u64) -> Option<BCounterOp> {
        (self.local_rights(origin) >= n as i64).then_some(BCounterOp::Dec { origin, n })
    }

    /// Prepare a rights transfer; fails when `from` lacks rights.
    pub fn prepare_transfer(&self, from: ReplicaId, to: ReplicaId, n: u64) -> Option<BCounterOp> {
        (self.local_rights(from) >= n as i64).then_some(BCounterOp::Transfer { from, to, n })
    }

    pub fn apply(&mut self, op: &BCounterOp) {
        match *op {
            BCounterOp::Inc { origin, n } => *self.incs.entry(origin).or_insert(0) += n,
            BCounterOp::Dec { origin, n } => *self.decs.entry(origin).or_insert(0) += n,
            BCounterOp::Transfer { from, to, n } => {
                *self.transfers.entry((from, to)).or_insert(0) += n;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u16) -> ReplicaId {
        ReplicaId(i)
    }

    #[test]
    fn initial_rights_at_owner() {
        let c = BCounter::new(0, 10, r(0));
        assert_eq!(c.value(), 10);
        assert_eq!(c.local_rights(r(0)), 10);
        assert_eq!(c.local_rights(r(1)), 0);
    }

    #[test]
    fn decrement_requires_rights() {
        let mut c = BCounter::new(0, 2, r(0));
        let d1 = c.prepare_dec(r(0), 2).expect("rights available");
        c.apply(&d1);
        assert_eq!(c.value(), 0);
        assert!(c.prepare_dec(r(0), 1).is_none(), "no rights left");
        // Replica 1 never had rights.
        assert!(c.prepare_dec(r(1), 1).is_none());
    }

    #[test]
    fn transfer_moves_rights() {
        let mut c = BCounter::new(0, 5, r(0));
        let t = c.prepare_transfer(r(0), r(1), 3).unwrap();
        c.apply(&t);
        assert_eq!(c.local_rights(r(0)), 2);
        assert_eq!(c.local_rights(r(1)), 3);
        let d = c.prepare_dec(r(1), 3).unwrap();
        c.apply(&d);
        assert_eq!(c.value(), 2);
        assert!(c.prepare_transfer(r(0), r(1), 3).is_none(), "only 2 left");
    }

    #[test]
    fn floor_is_never_violated_by_respecting_prepare() {
        // Two replicas race decrements; each only prepared what its local
        // rights allowed, so the global floor holds in any interleaving.
        let base = BCounter::new(0, 4, r(0));
        let mut a = base.clone();
        let mut b = base.clone();
        // Split rights: 2 for each replica.
        let t = a.prepare_transfer(r(0), r(1), 2).unwrap();
        a.apply(&t);
        b.apply(&t);
        let da = a.prepare_dec(r(0), 2).unwrap();
        let db = b.prepare_dec(r(1), 2).unwrap();
        a.apply(&da);
        a.apply(&db);
        b.apply(&db);
        b.apply(&da);
        assert_eq!(a, b);
        assert_eq!(a.value(), 0);
        assert!(a.value() >= a.floor());
    }

    #[test]
    fn nonzero_floor() {
        let mut c = BCounter::new(10, 12, r(0));
        assert_eq!(c.value(), 12);
        assert!(c.prepare_dec(r(0), 3).is_none(), "would cross the floor");
        let d = c.prepare_dec(r(0), 2).unwrap();
        c.apply(&d);
        assert_eq!(c.value(), 10);
    }

    #[test]
    fn increments_create_rights() {
        let mut c = BCounter::new(0, 0, r(0));
        assert!(c.prepare_dec(r(1), 1).is_none());
        c.apply(&c.prepare_inc(r(1), 4));
        assert_eq!(c.local_rights(r(1)), 4);
        let d = c.prepare_dec(r(1), 4).unwrap();
        c.apply(&d);
        assert_eq!(c.value(), 0);
    }
}
