//! Dynamic element values and wildcard patterns.
//!
//! The store holds heterogeneous CRDT objects whose elements are [`Val`]s:
//! a small dynamic value language (strings, integers, tuples). Applications
//! encode their entities into `Val` — e.g. an enrollment is
//! `Val::pair("alice", "weekly-open")`. [`ValPattern`] is the wildcard
//! language of §4.2.1: a remove can be scoped by a pattern
//! (`("*", "weekly-open")`) and applies to every matching element.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A dynamic value: the element type used by store-resident CRDTs.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Val {
    Str(String),
    Int(i64),
    Pair(Box<Val>, Box<Val>),
    Triple(Box<Val>, Box<Val>, Box<Val>),
}

impl Val {
    pub fn str(s: impl Into<String>) -> Val {
        Val::Str(s.into())
    }

    pub fn int(i: i64) -> Val {
        Val::Int(i)
    }

    pub fn pair(a: impl Into<Val>, b: impl Into<Val>) -> Val {
        Val::Pair(Box::new(a.into()), Box::new(b.into()))
    }

    pub fn triple(a: impl Into<Val>, b: impl Into<Val>, c: impl Into<Val>) -> Val {
        Val::Triple(Box::new(a.into()), Box::new(b.into()), Box::new(c.into()))
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Val::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_int(&self) -> Option<i64> {
        match self {
            Val::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// First component of a pair/triple.
    pub fn fst(&self) -> Option<&Val> {
        match self {
            Val::Pair(a, _) | Val::Triple(a, _, _) => Some(a),
            _ => None,
        }
    }

    /// Second component of a pair/triple.
    pub fn snd(&self) -> Option<&Val> {
        match self {
            Val::Pair(_, b) | Val::Triple(_, b, _) => Some(b),
            _ => None,
        }
    }
}

impl From<&str> for Val {
    fn from(s: &str) -> Val {
        Val::Str(s.to_owned())
    }
}

impl From<String> for Val {
    fn from(s: String) -> Val {
        Val::Str(s)
    }
}

impl From<i64> for Val {
    fn from(i: i64) -> Val {
        Val::Int(i)
    }
}

impl fmt::Display for Val {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Val::Str(s) => write!(f, "{s}"),
            Val::Int(i) => write!(f, "{i}"),
            Val::Pair(a, b) => write!(f, "({a}, {b})"),
            Val::Triple(a, b, c) => write!(f, "({a}, {b}, {c})"),
        }
    }
}

impl fmt::Debug for Val {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// A wildcard pattern over [`Val`]s (§4.2.1): `Any` matches everything,
/// `Exact` matches one value, tuple patterns match componentwise.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum ValPattern {
    Any,
    Exact(Val),
    Pair(Box<ValPattern>, Box<ValPattern>),
    Triple(Box<ValPattern>, Box<ValPattern>, Box<ValPattern>),
}

impl ValPattern {
    pub fn exact(v: impl Into<Val>) -> ValPattern {
        ValPattern::Exact(v.into())
    }

    pub fn pair(a: ValPattern, b: ValPattern) -> ValPattern {
        ValPattern::Pair(Box::new(a), Box::new(b))
    }

    pub fn triple(a: ValPattern, b: ValPattern, c: ValPattern) -> ValPattern {
        ValPattern::Triple(Box::new(a), Box::new(b), Box::new(c))
    }

    /// Does the pattern match a value?
    pub fn matches(&self, v: &Val) -> bool {
        match (self, v) {
            (ValPattern::Any, _) => true,
            (ValPattern::Exact(p), v) => p == v,
            (ValPattern::Pair(pa, pb), Val::Pair(a, b)) => pa.matches(a) && pb.matches(b),
            (ValPattern::Triple(pa, pb, pc), Val::Triple(a, b, c)) => {
                pa.matches(a) && pb.matches(b) && pc.matches(c)
            }
            _ => false,
        }
    }
}

impl fmt::Display for ValPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValPattern::Any => write!(f, "*"),
            ValPattern::Exact(v) => write!(f, "{v}"),
            ValPattern::Pair(a, b) => write!(f, "({a}, {b})"),
            ValPattern::Triple(a, b, c) => write!(f, "({a}, {b}, {c})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let v = Val::pair("alice", "t1");
        assert_eq!(v.fst().unwrap().as_str(), Some("alice"));
        assert_eq!(v.snd().unwrap().as_str(), Some("t1"));
        assert_eq!(v.to_string(), "(alice, t1)");
        assert_eq!(Val::int(3).as_int(), Some(3));
        assert_eq!(Val::str("x").as_int(), None);
    }

    #[test]
    fn wildcard_matching() {
        let enrolled = Val::pair("alice", "t1");
        // enrolled(*, t1)
        let pat = ValPattern::pair(ValPattern::Any, ValPattern::exact("t1"));
        assert!(pat.matches(&enrolled));
        assert!(!pat.matches(&Val::pair("alice", "t2")));
        assert!(!pat.matches(&Val::str("alice")));
        assert!(ValPattern::Any.matches(&enrolled));
        assert!(ValPattern::exact(enrolled.clone()).matches(&enrolled));
    }

    #[test]
    fn triple_patterns() {
        let m = Val::triple("p", "q", "t");
        let pat = ValPattern::triple(ValPattern::Any, ValPattern::Any, ValPattern::exact("t"));
        assert!(pat.matches(&m));
        assert!(!pat.matches(&Val::triple("p", "q", "u")));
    }

    #[test]
    fn values_are_ordered_deterministically() {
        let mut vs = [Val::str("b"), Val::str("a"), Val::int(3)];
        vs.sort();
        // Ord is derive-based: variant order then content.
        assert_eq!(vs[0], Val::str("a"));
    }
}
