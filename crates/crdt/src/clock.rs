//! Vector clocks: the causality metadata for remove-wins semantics,
//! multi-value registers, causal delivery and stability tracking.
//!
//! Replica ids are small and contiguous everywhere in this codebase, so
//! the clock is stored *densely*: a `Vec<u64>` indexed by [`ReplicaId`],
//! with missing components implicitly zero. `merge`/`le`/`meet` — the
//! innermost loops of delivery, dedup and stability tracking — become
//! branch-light linear scans over a contiguous array instead of B-tree
//! walks. The vector is kept canonical (no trailing zeros) so derived
//! equality coincides with pointwise equality.

use crate::tag::ReplicaId;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A vector clock: per-replica event counters. Missing entries are zero.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VClock {
    /// `entries[i]` is replica `i`'s component; canonical form keeps the
    /// last element non-zero so `==` is pointwise equality.
    ///
    /// Every constructor and mutator preserves canonical form. The serde
    /// derives are forward-compatibility markers (the vendored stub
    /// generates no code); a real `Deserialize` impl MUST route through
    /// [`VClock::from_raw`] so untrusted trailing zeros cannot break the
    /// comparisons that rely on the invariant.
    entries: Vec<u64>,
}

impl VClock {
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a clock from a raw dense component vector, restoring
    /// canonical form (drops trailing zeros). The required entry point
    /// for any deserialization path.
    pub fn from_raw(entries: Vec<u64>) -> Self {
        let mut c = VClock { entries };
        c.normalize();
        c
    }

    #[inline]
    pub fn get(&self, r: ReplicaId) -> u64 {
        self.entries.get(r.0 as usize).copied().unwrap_or(0)
    }

    pub fn set(&mut self, r: ReplicaId, v: u64) {
        let i = r.0 as usize;
        if v == 0 {
            if i < self.entries.len() {
                self.entries[i] = 0;
                self.normalize();
            }
        } else {
            if i >= self.entries.len() {
                self.entries.resize(i + 1, 0);
            }
            self.entries[i] = v;
        }
    }

    /// Drop trailing zeros (restore canonical form).
    fn normalize(&mut self) {
        while self.entries.last() == Some(&0) {
            self.entries.pop();
        }
    }

    /// Advance this replica's component by one and return the new value.
    pub fn tick(&mut self, r: ReplicaId) -> u64 {
        let i = r.0 as usize;
        if i >= self.entries.len() {
            self.entries.resize(i + 1, 0);
        }
        self.entries[i] += 1;
        self.entries[i]
    }

    /// Pointwise maximum (least upper bound).
    pub fn merge(&mut self, other: &VClock) {
        if other.entries.len() > self.entries.len() {
            self.entries.resize(other.entries.len(), 0);
        }
        for (e, &v) in self.entries.iter_mut().zip(&other.entries) {
            if v > *e {
                *e = v;
            }
        }
    }

    /// Pointwise minimum (greatest lower bound) — the stability frontier
    /// operation. Replicas absent from either clock floor to zero, so the
    /// caller must enumerate the full replica set for a meaningful result.
    pub fn meet(&self, other: &VClock, replicas: &[ReplicaId]) -> VClock {
        let mut out = VClock::new();
        for &r in replicas {
            out.set(r, self.get(r).min(other.get(r)));
        }
        out
    }

    /// `self ≤ other` pointwise.
    #[inline]
    pub fn le(&self, other: &VClock) -> bool {
        // Canonical form: a longer vector ends in a non-zero component
        // the other clock lacks, so it cannot be dominated.
        if self.entries.len() > other.entries.len() {
            return false;
        }
        self.entries.iter().zip(&other.entries).all(|(a, b)| a <= b)
    }

    /// Strict domination: `self ≤ other` and `self ≠ other`.
    pub fn lt(&self, other: &VClock) -> bool {
        self.le(other) && self != other
    }

    /// Are the clocks incomparable (concurrent events)?
    pub fn concurrent(&self, other: &VClock) -> bool {
        !self.le(other) && !other.le(self)
    }

    /// Partial-order comparison: `None` when concurrent.
    pub fn partial_cmp_causal(&self, other: &VClock) -> Option<Ordering> {
        match (self.le(other), other.le(self)) {
            (true, true) => Some(Ordering::Equal),
            (true, false) => Some(Ordering::Less),
            (false, true) => Some(Ordering::Greater),
            (false, false) => None,
        }
    }

    /// The causal-delivery condition for an event stamped with this clock
    /// and originated at `origin`, evaluated against the applied clock
    /// `at`: the origin component must be the next expected sequence and
    /// every other component already covered. Dense single pass — this is
    /// the innermost test of `receive`/`drain_pending`.
    #[inline]
    pub fn deliverable_from(&self, origin: ReplicaId, at: &VClock) -> bool {
        let o = origin.0 as usize;
        for (i, &v) in self.entries.iter().enumerate() {
            if v == 0 {
                continue;
            }
            let have = at.entries.get(i).copied().unwrap_or(0);
            if i == o {
                if v != have + 1 {
                    return false;
                }
            } else if v > have {
                return false;
            }
        }
        true
    }

    /// The dense component vector (canonical form: no trailing zeros).
    /// `as_slice()[i]` is replica `i`'s component; indices past the end
    /// are implicitly zero. Lets batch consumers (stability folds) scan
    /// many clocks without per-clock allocation.
    #[inline]
    pub fn as_slice(&self) -> &[u64] {
        &self.entries
    }

    /// Non-zero components, in replica-id order.
    pub fn iter(&self) -> impl Iterator<Item = (ReplicaId, u64)> + '_ {
        self.entries
            .iter()
            .enumerate()
            .filter(|(_, &v)| v != 0)
            .map(|(i, &v)| (ReplicaId(i as u16), v))
    }

    /// Sum of all components (a cheap logical "size" used for LWW ties).
    pub fn total(&self) -> u64 {
        self.entries.iter().sum()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl fmt::Display for VClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, (r, v)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{r}:{v}")?;
        }
        write!(f, "⟩")
    }
}

impl FromIterator<(ReplicaId, u64)> for VClock {
    fn from_iter<T: IntoIterator<Item = (ReplicaId, u64)>>(iter: T) -> Self {
        let mut c = VClock::new();
        for (r, v) in iter {
            c.set(r, v);
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u16) -> ReplicaId {
        ReplicaId(i)
    }

    #[test]
    fn tick_and_get() {
        let mut c = VClock::new();
        assert_eq!(c.get(r(0)), 0);
        assert_eq!(c.tick(r(0)), 1);
        assert_eq!(c.tick(r(0)), 2);
        assert_eq!(c.get(r(0)), 2);
    }

    #[test]
    fn merge_is_pointwise_max() {
        let a: VClock = [(r(0), 3), (r(1), 1)].into_iter().collect();
        let b: VClock = [(r(0), 1), (r(2), 5)].into_iter().collect();
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.get(r(0)), 3);
        assert_eq!(m.get(r(1)), 1);
        assert_eq!(m.get(r(2)), 5);
    }

    #[test]
    fn ordering_relations() {
        let a: VClock = [(r(0), 1)].into_iter().collect();
        let b: VClock = [(r(0), 2)].into_iter().collect();
        let c: VClock = [(r(1), 1)].into_iter().collect();
        assert!(a.lt(&b));
        assert!(a.le(&b));
        assert!(!b.le(&a));
        assert!(a.concurrent(&c));
        assert_eq!(a.partial_cmp_causal(&b), Some(Ordering::Less));
        assert_eq!(b.partial_cmp_causal(&a), Some(Ordering::Greater));
        assert_eq!(a.partial_cmp_causal(&a), Some(Ordering::Equal));
        assert_eq!(a.partial_cmp_causal(&c), None);
    }

    #[test]
    fn meet_floors_missing_entries() {
        let a: VClock = [(r(0), 3), (r(1), 2)].into_iter().collect();
        let b: VClock = [(r(0), 1)].into_iter().collect();
        let m = a.meet(&b, &[r(0), r(1)]);
        assert_eq!(m.get(r(0)), 1);
        assert_eq!(m.get(r(1)), 0);
    }

    #[test]
    fn as_slice_is_dense_and_canonical() {
        let c: VClock = [(r(0), 3), (r(2), 5)].into_iter().collect();
        assert_eq!(c.as_slice(), &[3, 0, 5]);
        let mut d = c.clone();
        d.set(r(2), 0);
        assert_eq!(d.as_slice(), &[3], "trailing zeros never appear");
        assert!(VClock::new().as_slice().is_empty());
    }

    #[test]
    fn zero_entries_are_normalized_out() {
        let mut c = VClock::new();
        c.set(r(0), 5);
        c.set(r(0), 0);
        assert!(c.is_empty());
    }

    #[test]
    fn from_raw_normalizes_trailing_zeros() {
        let a = VClock::from_raw(vec![2, 0, 0]);
        let b = VClock::from_raw(vec![2]);
        assert_eq!(a, b);
        assert!(a.le(&b) && b.le(&a));
        assert!(VClock::from_raw(vec![0, 0]).is_empty());
    }

    #[test]
    fn equality_ignores_trailing_zero_components() {
        // A clock that grew a high component and lost it again must equal
        // one that never had it (canonical form).
        let mut a = VClock::new();
        a.set(r(0), 2);
        a.set(r(5), 9);
        a.set(r(5), 0);
        let mut b = VClock::new();
        b.set(r(0), 2);
        assert_eq!(a, b);
        assert!(a.le(&b) && b.le(&a));
        assert_eq!(a.partial_cmp_causal(&b), Some(Ordering::Equal));
    }

    #[test]
    fn deliverable_from_matches_componentwise_definition() {
        let batch: VClock = [(r(0), 3), (r(1), 2)].into_iter().collect();
        let origin = r(1);
        let cases: &[(&[(u16, u64)], bool)] = &[
            (&[(0, 3)], false),         // origin seq not next
            (&[(0, 2), (1, 1)], false), // dependency uncovered
            (&[(0, 3), (1, 1)], true),  // exactly ready
            (&[(0, 5), (1, 1)], true),  // extra knowledge is fine
            (&[(0, 3), (1, 2)], false), // already applied
        ];
        for (at, want) in cases {
            let at: VClock = at.iter().map(|&(i, v)| (r(i), v)).collect();
            assert_eq!(batch.deliverable_from(origin, &at), *want, "at {at}");
        }
    }

    #[test]
    fn lattice_laws_hold() {
        // merge is idempotent, commutative, associative on samples.
        let a: VClock = [(r(0), 1), (r(1), 4)].into_iter().collect();
        let b: VClock = [(r(0), 3)].into_iter().collect();
        let c: VClock = [(r(2), 2)].into_iter().collect();
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        let mut aa = a.clone();
        aa.merge(&a);
        assert_eq!(aa, a);
        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc);
    }
}
