//! Vector clocks: the causality metadata for remove-wins semantics,
//! multi-value registers, causal delivery and stability tracking.

use crate::tag::ReplicaId;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::fmt;

/// A vector clock: per-replica event counters. Missing entries are zero.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VClock {
    entries: BTreeMap<ReplicaId, u64>,
}

impl VClock {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn get(&self, r: ReplicaId) -> u64 {
        self.entries.get(&r).copied().unwrap_or(0)
    }

    pub fn set(&mut self, r: ReplicaId, v: u64) {
        if v == 0 {
            self.entries.remove(&r);
        } else {
            self.entries.insert(r, v);
        }
    }

    /// Advance this replica's component by one and return the new value.
    pub fn tick(&mut self, r: ReplicaId) -> u64 {
        let v = self.entries.entry(r).or_insert(0);
        *v += 1;
        *v
    }

    /// Pointwise maximum (least upper bound).
    pub fn merge(&mut self, other: &VClock) {
        for (&r, &v) in &other.entries {
            let e = self.entries.entry(r).or_insert(0);
            if v > *e {
                *e = v;
            }
        }
    }

    /// Pointwise minimum (greatest lower bound) — the stability frontier
    /// operation. Replicas absent from either clock floor to zero, so the
    /// caller must enumerate the full replica set for a meaningful result.
    pub fn meet(&self, other: &VClock, replicas: &[ReplicaId]) -> VClock {
        let mut out = VClock::new();
        for &r in replicas {
            out.set(r, self.get(r).min(other.get(r)));
        }
        out
    }

    /// `self ≤ other` pointwise.
    pub fn le(&self, other: &VClock) -> bool {
        self.entries.iter().all(|(&r, &v)| v <= other.get(r))
    }

    /// Strict domination: `self ≤ other` and `self ≠ other`.
    pub fn lt(&self, other: &VClock) -> bool {
        self.le(other) && self != other
    }

    /// Are the clocks incomparable (concurrent events)?
    pub fn concurrent(&self, other: &VClock) -> bool {
        !self.le(other) && !other.le(self)
    }

    /// Partial-order comparison: `None` when concurrent.
    pub fn partial_cmp_causal(&self, other: &VClock) -> Option<Ordering> {
        match (self.le(other), other.le(self)) {
            (true, true) => Some(Ordering::Equal),
            (true, false) => Some(Ordering::Less),
            (false, true) => Some(Ordering::Greater),
            (false, false) => None,
        }
    }

    pub fn iter(&self) -> impl Iterator<Item = (ReplicaId, u64)> + '_ {
        self.entries.iter().map(|(&r, &v)| (r, v))
    }

    /// Sum of all components (a cheap logical "size" used for LWW ties).
    pub fn total(&self) -> u64 {
        self.entries.values().sum()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl fmt::Display for VClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, (r, v)) in self.entries.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{r}:{v}")?;
        }
        write!(f, "⟩")
    }
}

impl FromIterator<(ReplicaId, u64)> for VClock {
    fn from_iter<T: IntoIterator<Item = (ReplicaId, u64)>>(iter: T) -> Self {
        let mut c = VClock::new();
        for (r, v) in iter {
            c.set(r, v);
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u16) -> ReplicaId {
        ReplicaId(i)
    }

    #[test]
    fn tick_and_get() {
        let mut c = VClock::new();
        assert_eq!(c.get(r(0)), 0);
        assert_eq!(c.tick(r(0)), 1);
        assert_eq!(c.tick(r(0)), 2);
        assert_eq!(c.get(r(0)), 2);
    }

    #[test]
    fn merge_is_pointwise_max() {
        let a: VClock = [(r(0), 3), (r(1), 1)].into_iter().collect();
        let b: VClock = [(r(0), 1), (r(2), 5)].into_iter().collect();
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.get(r(0)), 3);
        assert_eq!(m.get(r(1)), 1);
        assert_eq!(m.get(r(2)), 5);
    }

    #[test]
    fn ordering_relations() {
        let a: VClock = [(r(0), 1)].into_iter().collect();
        let b: VClock = [(r(0), 2)].into_iter().collect();
        let c: VClock = [(r(1), 1)].into_iter().collect();
        assert!(a.lt(&b));
        assert!(a.le(&b));
        assert!(!b.le(&a));
        assert!(a.concurrent(&c));
        assert_eq!(a.partial_cmp_causal(&b), Some(Ordering::Less));
        assert_eq!(b.partial_cmp_causal(&a), Some(Ordering::Greater));
        assert_eq!(a.partial_cmp_causal(&a), Some(Ordering::Equal));
        assert_eq!(a.partial_cmp_causal(&c), None);
    }

    #[test]
    fn meet_floors_missing_entries() {
        let a: VClock = [(r(0), 3), (r(1), 2)].into_iter().collect();
        let b: VClock = [(r(0), 1)].into_iter().collect();
        let m = a.meet(&b, &[r(0), r(1)]);
        assert_eq!(m.get(r(0)), 1);
        assert_eq!(m.get(r(1)), 0);
    }

    #[test]
    fn zero_entries_are_normalized_out() {
        let mut c = VClock::new();
        c.set(r(0), 5);
        c.set(r(0), 0);
        assert!(c.is_empty());
    }

    #[test]
    fn lattice_laws_hold() {
        // merge is idempotent, commutative, associative on samples.
        let a: VClock = [(r(0), 1), (r(1), 4)].into_iter().collect();
        let b: VClock = [(r(0), 3)].into_iter().collect();
        let c: VClock = [(r(2), 2)].into_iter().collect();
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        let mut aa = a.clone();
        aa.merge(&a);
        assert_eq!(aa, a);
        let mut ab_c = ab.clone();
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc);
    }
}
