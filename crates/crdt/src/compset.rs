//! Compensation Set (§4.2.2): a set with an attached aggregation
//! constraint, repaired lazily *on read*.
//!
//! "Our Compensations Set CRDT allows the programmer to define the
//! constraint that must be maintained at all times, and the compensation
//! that must execute, when it is false. Whenever the object is read, the
//! code is executed automatically, ensuring that any observed state is
//! consistent. [...] In case a compensation has to remove some element
//! from the set, the element is chosen deterministically."
//!
//! The deterministic victim order is *newest tag first* (latest additions
//! are cancelled, as FusionTicket cancels the oversold purchases), so
//! replicas observing the same violation produce the same compensation and
//! the system converges.

use crate::awset::{AWSet, AWSetOp};
use crate::tag::Tag;
use serde::{Deserialize, Serialize};

/// A capacity-constrained add-wins set with on-read compensation.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompensationSet<E: Ord + Clone> {
    set: AWSet<E>,
    capacity: usize,
    /// Local count of reads that observed a violated constraint
    /// (the red dots of the paper's Figure 7).
    violations_observed: u64,
}

/// Effect operations: the underlying set's operations. Compensation
/// removes are ordinary `Remove` effects committed by the reader's
/// transaction (§4.2.2: "committed alongside with the effects of the
/// operation that accessed the customized set").
pub type CompensationSetOp<E> = AWSetOp<E>;

/// The result of a constrained read.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompensatedRead<E> {
    /// The elements visible after masking the excess (never more than the
    /// capacity).
    pub elements: Vec<E>,
    /// The compensation to commit, if the read observed a violation.
    pub compensation: Option<CompensationSetOp<E>>,
    /// Elements the compensation cancels (for client notification —
    /// e.g. "reimburse these ticket purchases").
    pub cancelled: Vec<E>,
}

impl<E: Ord + Clone> CompensationSet<E> {
    pub fn new(capacity: usize) -> Self {
        CompensationSet {
            set: AWSet::new(),
            capacity,
            violations_observed: 0,
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Raw (unconstrained) size — may exceed capacity between a violation
    /// and its compensation.
    pub fn raw_len(&self) -> usize {
        self.set.len()
    }

    pub fn violations_observed(&self) -> u64 {
        self.violations_observed
    }

    pub fn contains(&self, e: &E) -> bool {
        self.set.contains(e)
    }

    pub fn prepare_add(&self, elem: E, tag: Tag) -> CompensationSetOp<E> {
        self.set.prepare_add(elem, tag)
    }

    pub fn prepare_remove(&self, elem: &E) -> Option<CompensationSetOp<E>> {
        self.set.prepare_remove(elem)
    }

    pub fn apply(&mut self, op: &CompensationSetOp<E>) {
        self.set.apply(op);
    }

    /// Constrained read: returns at most `capacity` elements; when the
    /// underlying set exceeds the capacity, the excess — *newest additions
    /// first* by tag order — is masked and a compensation remove is
    /// prepared for the caller to commit.
    pub fn read(&mut self) -> CompensatedRead<E> {
        // Order elements by their maximum add tag (deterministic across
        // replicas: tags are globally unique and totally ordered).
        let mut ordered: Vec<(Tag, E)> = self
            .set
            .elements()
            .map(|e| {
                let max_tag = self
                    .set
                    .tags_of(e)
                    .max()
                    .copied()
                    .expect("live element has a tag");
                (max_tag, e.clone())
            })
            .collect();
        ordered.sort(); // oldest tag first
        if ordered.len() <= self.capacity {
            return CompensatedRead {
                elements: ordered.into_iter().map(|(_, e)| e).collect(),
                compensation: None,
                cancelled: Vec::new(),
            };
        }
        self.violations_observed += 1;
        let keep: Vec<E> = ordered
            .iter()
            .take(self.capacity)
            .map(|(_, e)| e.clone())
            .collect();
        let cancelled: Vec<E> = ordered
            .iter()
            .skip(self.capacity)
            .map(|(_, e)| e.clone())
            .collect();
        let victims = cancelled
            .iter()
            .map(|e| (e.clone(), self.set.tags_of(e).copied().collect()))
            .collect();
        CompensatedRead {
            elements: keep,
            compensation: Some(AWSetOp::Remove { victims }),
            cancelled,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tag::ReplicaId;

    fn tag(r: u16, s: u64) -> Tag {
        Tag::new(ReplicaId(r), s)
    }

    #[test]
    fn read_within_capacity_is_plain() {
        let mut s: CompensationSet<&'static str> = CompensationSet::new(2);
        s.apply(&s.prepare_add("a", tag(0, 1)));
        s.apply(&s.prepare_add("b", tag(0, 2)));
        let r = s.read();
        assert_eq!(r.elements.len(), 2);
        assert!(r.compensation.is_none());
        assert_eq!(s.violations_observed(), 0);
    }

    #[test]
    fn oversell_is_compensated_deterministically() {
        // Two replicas concurrently sell the last ticket: capacity 1,
        // both adds land.
        let mut a: CompensationSet<&'static str> = CompensationSet::new(1);
        let mut b = a.clone();
        let sale_a = a.prepare_add("u1", tag(0, 1));
        let sale_b = b.prepare_add("u2", tag(1, 1));
        for s in [&mut a, &mut b] {
            s.apply(&sale_a);
            s.apply(&sale_b);
        }
        assert_eq!(a.raw_len(), 2, "oversold");
        let ra = a.read();
        let rb = b.read();
        // Deterministic: both replicas cancel the same (newest) sale.
        assert_eq!(ra.elements, rb.elements);
        assert_eq!(ra.cancelled, rb.cancelled);
        assert_eq!(ra.cancelled, vec!["u2"], "newest tag is cancelled");
        // Committing the compensation restores the constraint.
        a.apply(ra.compensation.as_ref().unwrap());
        b.apply(rb.compensation.as_ref().unwrap());
        assert_eq!(a, b);
        assert_eq!(a.raw_len(), 1);
        assert_eq!(a.violations_observed(), 1);
    }

    #[test]
    fn compensation_is_idempotent_across_replicas() {
        // Both replicas independently detect the violation and commit
        // their (identical) compensations; applying both is harmless.
        let mut a: CompensationSet<u32> = CompensationSet::new(1);
        for i in 0..3u64 {
            a.apply(&a.prepare_add(i as u32, tag(0, i + 1)));
        }
        let mut b = a.clone();
        let ca = a.read().compensation.unwrap();
        let cb = b.read().compensation.unwrap();
        assert_eq!(ca, cb);
        a.apply(&ca);
        a.apply(&cb);
        b.apply(&cb);
        b.apply(&ca);
        assert_eq!(a, b);
        assert_eq!(a.raw_len(), 1);
    }

    #[test]
    fn masked_read_never_exceeds_capacity() {
        let mut s: CompensationSet<u32> = CompensationSet::new(3);
        for i in 0..10u64 {
            s.apply(&s.prepare_add(i as u32, tag(0, i + 1)));
        }
        let r = s.read();
        assert_eq!(r.elements.len(), 3);
        assert_eq!(r.cancelled.len(), 7);
    }
}
