//! Remove-wins set with wildcard (pattern) removes.
//!
//! An element is present iff it has an add that causally dominates *every*
//! remove affecting the element: a remove concurrent with an add defeats
//! it. Removes can be scoped by a [`Pattern`] (§4.2.1): unlike the add-wins
//! wildcard, a pattern remove travels with the operation and also defeats
//! *concurrent* adds of matching elements — this is what lets
//! `rem_tourn(t)` guarantee "no player is enrolled in `t`" against races
//! (Fig. 2c), and what purges a removed Twitter user's history from all
//! timelines (§5.1.2).
//!
//! State is compacted via causal stability ([`RWSet::compact`]).

use crate::clock::VClock;
use crate::tag::Tag;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A (serializable) element predicate used by wildcard removes.
pub trait Pattern<E>: Clone {
    fn matches(&self, e: &E) -> bool;
}

impl Pattern<crate::value::Val> for crate::value::ValPattern {
    fn matches(&self, e: &crate::value::Val) -> bool {
        // Resolves to the inherent method (inherent impls take precedence
        // over trait impls in path resolution).
        crate::value::ValPattern::matches(self, e)
    }
}

/// A pattern that never matches — for uses without wildcard removes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NoPattern;

impl<E> Pattern<E> for NoPattern {
    fn matches(&self, _: &E) -> bool {
        false
    }
}

/// Operation-based remove-wins set.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RWSet<E: Ord + Clone, P = NoPattern> {
    adds: BTreeMap<E, Vec<(Tag, VClock)>>,
    removes: BTreeMap<E, Vec<(Tag, VClock)>>,
    /// Wildcard removes: affect every matching element, including
    /// concurrently added ones.
    wild_removes: Vec<(P, Tag, VClock)>,
}

impl<E: Ord + Clone, P> Default for RWSet<E, P> {
    fn default() -> Self {
        RWSet {
            adds: BTreeMap::new(),
            removes: BTreeMap::new(),
            wild_removes: Vec::new(),
        }
    }
}

/// Effect operations. Every op carries the origin's vector clock
/// *including the op itself* so causality between adds and removes is
/// decidable at any replica.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RWSetOp<E, P> {
    Add { elem: E, tag: Tag, clock: VClock },
    Remove { elem: E, tag: Tag, clock: VClock },
    RemoveMatching { pattern: P, tag: Tag, clock: VClock },
}

impl<E: Ord + Clone, P: Pattern<E>> RWSet<E, P> {
    pub fn new() -> Self {
        Self::default()
    }

    /// Is an element present? Present iff some add dominates all its
    /// removes (element-specific and matching wildcards).
    pub fn contains(&self, e: &E) -> bool {
        let Some(adds) = self.adds.get(e) else {
            return false;
        };
        adds.iter().any(|(_, ac)| self.add_visible(e, ac))
    }

    fn add_visible(&self, e: &E, add_clock: &VClock) -> bool {
        let element_removes = self.removes.get(e).into_iter().flatten();
        let wild = self
            .wild_removes
            .iter()
            .filter(|(p, _, _)| p.matches(e))
            .map(|(_, t, c)| (t, c));
        element_removes
            .map(|(t, c)| (t, c))
            .chain(wild)
            .all(|(_, rc)| rc.le(add_clock) && rc != add_clock)
    }

    pub fn elements(&self) -> impl Iterator<Item = &E> {
        self.adds.keys().filter(move |e| self.contains(e))
    }

    pub fn len(&self) -> usize {
        self.elements().count()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    // ------------------------------------------------------------------
    // Prepare (origin side)
    // ------------------------------------------------------------------

    pub fn prepare_add(&self, elem: E, tag: Tag, clock: VClock) -> RWSetOp<E, P> {
        RWSetOp::Add { elem, tag, clock }
    }

    pub fn prepare_remove(&self, elem: E, tag: Tag, clock: VClock) -> RWSetOp<E, P> {
        RWSetOp::Remove { elem, tag, clock }
    }

    pub fn prepare_remove_matching(&self, pattern: P, tag: Tag, clock: VClock) -> RWSetOp<E, P> {
        RWSetOp::RemoveMatching {
            pattern,
            tag,
            clock,
        }
    }

    // ------------------------------------------------------------------
    // Apply
    // ------------------------------------------------------------------

    pub fn apply(&mut self, op: &RWSetOp<E, P>) {
        match op {
            RWSetOp::Add { elem, tag, clock } => {
                self.adds
                    .entry(elem.clone())
                    .or_default()
                    .push((*tag, clock.clone()));
            }
            RWSetOp::Remove { elem, tag, clock } => {
                self.removes
                    .entry(elem.clone())
                    .or_default()
                    .push((*tag, clock.clone()));
            }
            RWSetOp::RemoveMatching {
                pattern,
                tag,
                clock,
            } => {
                self.wild_removes
                    .push((pattern.clone(), *tag, clock.clone()));
            }
        }
    }

    // ------------------------------------------------------------------
    // Garbage collection
    // ------------------------------------------------------------------

    /// Compact entries under a causal-stability frontier.
    ///
    /// Contract (Baquero-style causal stability, provided by the store):
    /// every operation not yet delivered to this replica has a clock that
    /// **dominates** `stable`. Under that contract:
    ///
    /// * a *stable remove* can never defeat a future add (future clocks
    ///   dominate it), so once the presence of an element is decided among
    ///   stable entries, defeated stable adds and spent stable removes can
    ///   be dropped;
    /// * a surviving stable add is kept as a single representative.
    pub fn compact(&mut self, stable: &VClock) {
        // Decide presence per element using the full state first.
        let decided: Vec<E> = self.adds.keys().cloned().collect();
        for e in decided {
            let all_stable = self
                .adds
                .get(&e)
                .into_iter()
                .flatten()
                .chain(self.removes.get(&e).into_iter().flatten())
                .all(|(_, c)| c.le(stable));
            if !all_stable {
                continue;
            }
            let present = self.contains(&e);
            if present {
                // Keep one representative add — the causally latest
                // *visible* one. A defeated add must never become the
                // representative: a still-live wildcard remove would
                // defeat it again after the element's own removes are
                // dropped, flipping observable membership.
                let keep = self
                    .adds
                    .get(&e)
                    .into_iter()
                    .flatten()
                    .filter(|(_, ac)| self.add_visible(&e, ac))
                    .max_by(|a, b| a.1.total().cmp(&b.1.total()).then(a.0.cmp(&b.0)))
                    .cloned();
                if let Some(keep) = keep {
                    self.adds.insert(e.clone(), vec![keep]);
                }
                self.removes.remove(&e);
            } else {
                self.adds.remove(&e);
                self.removes.remove(&e);
            }
        }
        // A stable wildcard remove cannot defeat *future* adds (their
        // clocks dominate the frontier), but it may still be the only
        // thing defeating an already-delivered concurrent add that was
        // too fresh to compact above. Keep it until no retained add
        // depends on it.
        let adds = &self.adds;
        self.wild_removes.retain(|(p, _, rc)| {
            if !rc.le(stable) {
                return true;
            }
            adds.iter().any(|(e, entries)| {
                p.matches(e) && entries.iter().any(|(_, ac)| !(rc.le(ac) && rc != ac))
            })
        });
        // Defensive: drop empty buckets.
        self.adds.retain(|_, v| !v.is_empty());
        self.removes.retain(|_, v| !v.is_empty());
    }

    /// Rough memory footprint in entries (for GC tests/metrics).
    pub fn entry_count(&self) -> usize {
        self.adds.values().map(Vec::len).sum::<usize>()
            + self.removes.values().map(Vec::len).sum::<usize>()
            + self.wild_removes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tag::ReplicaId;

    fn tag(r: u16, s: u64) -> Tag {
        Tag::new(ReplicaId(r), s)
    }

    fn clock(entries: &[(u16, u64)]) -> VClock {
        entries.iter().map(|&(r, v)| (ReplicaId(r), v)).collect()
    }

    type StrSet = RWSet<&'static str, NoPattern>;

    #[test]
    fn sequential_add_remove_add() {
        let mut s = StrSet::new();
        s.apply(&s.prepare_add("x", tag(0, 1), clock(&[(0, 1)])));
        assert!(s.contains(&"x"));
        s.apply(&s.prepare_remove("x", tag(0, 2), clock(&[(0, 2)])));
        assert!(!s.contains(&"x"));
        s.apply(&s.prepare_add("x", tag(0, 3), clock(&[(0, 3)])));
        assert!(s.contains(&"x"), "a later add dominates the remove");
    }

    #[test]
    fn concurrent_remove_wins_over_add() {
        let mut a = StrSet::new();
        // Both replicas know x (added at clock [0:1]).
        let add0 = a.prepare_add("x", tag(0, 1), clock(&[(0, 1)]));
        a.apply(&add0);
        let mut b = a.clone();
        // A re-adds concurrently with B removing.
        let re_add = a.prepare_add("x", tag(0, 2), clock(&[(0, 2)]));
        let remove = b.prepare_remove("x", tag(1, 1), clock(&[(0, 1), (1, 1)]));
        a.apply(&re_add);
        a.apply(&remove);
        b.apply(&remove);
        b.apply(&re_add);
        assert!(!a.contains(&"x"), "remove must win over the concurrent add");
        assert_eq!(a, b);
    }

    #[test]
    fn wildcard_remove_defeats_concurrent_matching_add() {
        use crate::value::{Val, ValPattern};
        let mut a: RWSet<Val, ValPattern> = RWSet::new();
        let mut b = a.clone();
        // B enrolls p2 in t1 concurrently with A clearing (*, t1).
        let clear = a.prepare_remove_matching(
            ValPattern::pair(ValPattern::Any, ValPattern::exact("t1")),
            tag(0, 1),
            clock(&[(0, 1)]),
        );
        let enroll = b.prepare_add(Val::pair("p2", "t1"), tag(1, 1), clock(&[(1, 1)]));
        a.apply(&clear);
        a.apply(&enroll);
        b.apply(&enroll);
        b.apply(&clear);
        assert!(!a.contains(&Val::pair("p2", "t1")), "wildcard remove wins");
        assert_eq!(a, b);
        // Later (causally after) adds are unaffected.
        let late = a.prepare_add(Val::pair("p3", "t1"), tag(1, 2), clock(&[(0, 1), (1, 2)]));
        a.apply(&late);
        assert!(a.contains(&Val::pair("p3", "t1")));
    }

    /// Regression (found by the nemesis invariant oracle): a stable
    /// wildcard remove must survive compaction while an already-delivered
    /// *concurrent* add it defeats is still too fresh to compact —
    /// dropping the wildcard resurrected the defeated element.
    #[test]
    fn compact_keeps_wildcard_that_defeats_an_unstable_add() {
        use crate::value::{Val, ValPattern};
        let mut s: RWSet<Val, ValPattern> = RWSet::new();
        // Stable wildcard clear of (*, t1) at replica 0.
        s.apply(&s.prepare_remove_matching(
            ValPattern::pair(ValPattern::Any, ValPattern::exact("t1")),
            tag(0, 1),
            clock(&[(0, 1)]),
        ));
        // Concurrent add from replica 1, not yet causally stable.
        s.apply(&s.prepare_add(Val::pair("p", "t1"), tag(1, 1), clock(&[(1, 1)])));
        assert!(!s.contains(&Val::pair("p", "t1")), "remove wins");
        // Frontier covers the wildcard but not the add.
        s.compact(&clock(&[(0, 1)]));
        assert!(
            !s.contains(&Val::pair("p", "t1")),
            "compaction must not resurrect the defeated add"
        );
    }

    /// Regression: the representative add kept for a present element must
    /// be a *visible* one — keeping a defeated add (higher clock total)
    /// while a live wildcard remains flips membership at the next read.
    #[test]
    fn compact_keeps_a_visible_representative_add() {
        use crate::value::{Val, ValPattern};
        let mut s: RWSet<Val, ValPattern> = RWSet::new();
        let e = Val::pair("p", "t1");
        // Wildcard remove at [0:2].
        s.apply(&s.prepare_remove_matching(
            ValPattern::pair(ValPattern::Any, ValPattern::exact("t1")),
            tag(0, 2),
            clock(&[(0, 2)]),
        ));
        // Defeated concurrent add with a *larger* clock total…
        s.apply(&s.prepare_add(e.clone(), tag(1, 3), clock(&[(1, 3), (2, 3)])));
        // …and a surviving add causally after the wildcard.
        s.apply(&s.prepare_add(e.clone(), tag(0, 3), clock(&[(0, 3)])));
        assert!(s.contains(&e));
        // Everything stable: compaction decides the element.
        s.compact(&clock(&[(0, 3), (1, 3), (2, 3)]));
        assert!(
            s.contains(&e),
            "membership must be preserved across compaction"
        );
    }

    #[test]
    fn compact_drops_decided_entries() {
        let mut s = StrSet::new();
        s.apply(&s.prepare_add("gone", tag(0, 1), clock(&[(0, 1)])));
        s.apply(&s.prepare_remove("gone", tag(0, 2), clock(&[(0, 2)])));
        s.apply(&s.prepare_add("kept", tag(0, 3), clock(&[(0, 3)])));
        s.apply(&s.prepare_add("kept", tag(0, 4), clock(&[(0, 4)])));
        assert_eq!(s.entry_count(), 4);
        s.compact(&clock(&[(0, 4)]));
        assert_eq!(s.entry_count(), 1, "one representative add survives");
        assert!(!s.contains(&"gone"));
        assert!(s.contains(&"kept"));
        // Semantics preserved against future ops: a remove after the
        // frontier still removes the survivor.
        s.apply(&s.prepare_remove("kept", tag(1, 1), clock(&[(0, 4), (1, 1)])));
        assert!(!s.contains(&"kept"));
    }

    #[test]
    fn compact_keeps_unstable_entries() {
        let mut s = StrSet::new();
        s.apply(&s.prepare_add("x", tag(0, 5), clock(&[(0, 5)])));
        s.compact(&clock(&[(0, 3)]));
        assert_eq!(s.entry_count(), 1);
        assert!(s.contains(&"x"));
    }

    #[test]
    fn presence_requires_dominating_add() {
        let mut s = StrSet::new();
        // Remove arrives with a concurrent clock before any add: the later
        // concurrent add must lose.
        s.apply(&s.prepare_remove("x", tag(1, 1), clock(&[(1, 1)])));
        s.apply(&s.prepare_add("x", tag(0, 1), clock(&[(0, 1)])));
        assert!(!s.contains(&"x"));
    }
}
