//! # ipa-crdt — operation-based CRDTs with IPA's specialized convergence rules
//!
//! The data-type library backing the IPA runtime (§4.2 of the paper). All
//! types are **operation-based** CRDTs: an update is *prepared* at the
//! origin replica (capturing whatever causal context it needs — e.g. the
//! observed add-tags for an observed-remove) and the resulting effect
//! operation is applied at every replica under **causal delivery**, which
//! `ipa-store` provides.
//!
//! Highlights required by IPA:
//!
//! * [`AWSet`] / [`RWSet`] — add-wins and remove-wins sets: the per-predicate
//!   convergence rules that the analysis relies on for restoring operation
//!   preconditions (§3.2).
//! * **Wildcard operations** (§4.2.1): removes scoped by a [`ValPattern`],
//!   implementing effects like `enrolled(*, t) := false` without knowing the
//!   affected elements in advance.
//! * **`touch`** (§4.2.1): an add that restores an element's *presence*
//!   while preserving the payload associated with it
//!   ([`AWMap::prepare_touch`]).
//! * [`CompensationSet`] (§4.2.2): a set with an attached aggregation
//!   constraint whose violation is repaired *on read* by a deterministic,
//!   commutative, idempotent compensation.
//! * [`BCounter`] — an escrow-based bounded counter (Balegas et al.,
//!   SRDS'15), used by the Indigo baseline's escrow reservations.
//!
//! Tombstone growth is controlled through *causal stability* (§4.2.1): the
//! store tracks a stability frontier and calls each object's `compact`.

pub mod awmap;
pub mod awset;
pub mod bcounter;
pub mod clock;
pub mod compset;
pub mod counter;
pub mod lww;
pub mod mvreg;
pub mod object;
pub mod rwset;
pub mod tag;
pub mod value;

pub use awmap::{AWMap, AWMapOp};
pub use awset::{AWSet, AWSetOp};
pub use bcounter::{BCounter, BCounterOp};
pub use clock::VClock;
pub use compset::{CompensationSet, CompensationSetOp};
pub use counter::{PNCounter, PNCounterOp};
pub use lww::{LWWOp, LWWRegister};
pub use mvreg::{MVRegOp, MVRegister};
pub use object::{Object, ObjectKind, ObjectOp};
pub use rwset::{RWSet, RWSetOp};
pub use tag::{ReplicaId, Tag};
pub use value::{Val, ValPattern};
