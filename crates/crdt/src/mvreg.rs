//! Multi-value register: concurrent writes are all kept (the causally
//! maximal antichain), letting the application resolve.

use crate::clock::VClock;
use serde::{Deserialize, Serialize};

/// MV register state: the set of causally-maximal writes.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MVRegister<V: Clone + PartialEq> {
    versions: Vec<(VClock, V)>,
}

/// Effect operation: a write stamped with the origin's clock (including
/// the write itself).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MVRegOp<V> {
    pub clock: VClock,
    pub value: V,
}

impl<V: Clone + PartialEq> MVRegister<V> {
    pub fn new() -> Self {
        MVRegister {
            versions: Vec::new(),
        }
    }

    /// Current concurrent values (one when there is no conflict).
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.versions.iter().map(|(_, v)| v)
    }

    pub fn len(&self) -> usize {
        self.versions.len()
    }

    pub fn is_empty(&self) -> bool {
        self.versions.is_empty()
    }

    pub fn prepare_write(&self, clock: VClock, value: V) -> MVRegOp<V> {
        MVRegOp { clock, value }
    }

    pub fn apply(&mut self, op: &MVRegOp<V>) {
        // Drop versions dominated by the new write; ignore the write if it
        // is dominated by an existing version (stale redelivery).
        if self.versions.iter().any(|(c, _)| op.clock.le(c)) {
            return;
        }
        self.versions.retain(|(c, _)| !c.le(&op.clock));
        self.versions.push((op.clock.clone(), op.value.clone()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tag::ReplicaId;

    fn clock(entries: &[(u16, u64)]) -> VClock {
        entries.iter().map(|&(r, v)| (ReplicaId(r), v)).collect()
    }

    #[test]
    fn sequential_writes_overwrite() {
        let mut r = MVRegister::new();
        r.apply(&MVRegOp {
            clock: clock(&[(0, 1)]),
            value: 1,
        });
        r.apply(&MVRegOp {
            clock: clock(&[(0, 2)]),
            value: 2,
        });
        assert_eq!(r.values().copied().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn concurrent_writes_coexist() {
        let mut r = MVRegister::new();
        r.apply(&MVRegOp {
            clock: clock(&[(0, 1)]),
            value: 1,
        });
        r.apply(&MVRegOp {
            clock: clock(&[(1, 1)]),
            value: 2,
        });
        let mut vs: Vec<i32> = r.values().copied().collect();
        vs.sort_unstable();
        assert_eq!(vs, vec![1, 2]);
        // A write dominating both collapses the conflict.
        r.apply(&MVRegOp {
            clock: clock(&[(0, 1), (1, 1), (2, 1)]),
            value: 3,
        });
        assert_eq!(r.values().copied().collect::<Vec<_>>(), vec![3]);
    }

    #[test]
    fn stale_write_is_ignored() {
        let mut r = MVRegister::new();
        r.apply(&MVRegOp {
            clock: clock(&[(0, 2)]),
            value: 2,
        });
        r.apply(&MVRegOp {
            clock: clock(&[(0, 1)]),
            value: 1,
        });
        assert_eq!(r.values().copied().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn order_independence() {
        let ops = [
            MVRegOp {
                clock: clock(&[(0, 1)]),
                value: 1,
            },
            MVRegOp {
                clock: clock(&[(1, 1)]),
                value: 2,
            },
            MVRegOp {
                clock: clock(&[(0, 1), (1, 1)]),
                value: 3,
            },
        ];
        let mut a = MVRegister::new();
        let mut b = MVRegister::new();
        for op in &ops {
            a.apply(op);
        }
        for op in ops.iter().rev() {
            b.apply(op);
        }
        // Note: reverse order violates causal delivery for op 3, but MV
        // register apply is designed to be resilient to that too.
        let mut va: Vec<i32> = a.values().copied().collect();
        let mut vb: Vec<i32> = b.values().copied().collect();
        va.sort_unstable();
        vb.sort_unstable();
        assert_eq!(va, vb);
    }
}
