//! Add-wins map with `touch` (§4.2.1).
//!
//! Keys have add-wins presence (tags, like [`crate::AWSet`]); each key owns
//! a payload register. Removing a key clears its presence tags but **keeps
//! the payload**, so a later `touch` — "an add for determining if the
//! element is in the collection, but preserving the information that was
//! associated with the entity" — restores the entry with its old data.
//! Payloads of removed keys are garbage-collected once causally stable.

use crate::clock::VClock;
use crate::lww::{LWWOp, LWWRegister};
use crate::tag::Tag;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Per-key entry: presence tags + payload + last-modification clock
/// (for stability-based payload GC).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
struct Entry<V: Clone> {
    tags: BTreeSet<Tag>,
    payload: LWWRegister<V>,
    last_clock: VClock,
}

impl<V: Clone> Default for Entry<V> {
    fn default() -> Self {
        Entry {
            tags: BTreeSet::new(),
            payload: LWWRegister::new(),
            last_clock: VClock::new(),
        }
    }
}

/// Operation-based add-wins map with payload-preserving touch.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AWMap<K: Ord + Clone, V: Clone + PartialEq> {
    entries: BTreeMap<K, Entry<V>>,
}

impl<K: Ord + Clone, V: Clone + PartialEq> Default for AWMap<K, V> {
    fn default() -> Self {
        AWMap {
            entries: BTreeMap::new(),
        }
    }
}

/// Effect operations.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AWMapOp<K, V> {
    /// Add/touch the key (presence) and optionally write the payload.
    Put {
        key: K,
        tag: Tag,
        clock: VClock,
        write: Option<LWWOp<V>>,
    },
    /// Remove observed presence tags (payload is retained for touch).
    Remove {
        key: K,
        observed: Vec<Tag>,
        clock: VClock,
    },
}

impl<K: Ord + Clone, V: Clone + PartialEq> AWMap<K, V> {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn contains(&self, k: &K) -> bool {
        self.entries.get(k).is_some_and(|e| !e.tags.is_empty())
    }

    /// The payload of a key. Visible only while the key is present.
    pub fn get(&self, k: &K) -> Option<&V> {
        let e = self.entries.get(k)?;
        if e.tags.is_empty() {
            return None;
        }
        e.payload.get()
    }

    /// The retained payload of a key even if removed (what touch would
    /// restore).
    pub fn latent_payload(&self, k: &K) -> Option<&V> {
        self.entries.get(k)?.payload.get()
    }

    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.entries
            .iter()
            .filter(|(_, e)| !e.tags.is_empty())
            .map(|(k, _)| k)
    }

    pub fn len(&self) -> usize {
        self.entries.values().filter(|e| !e.tags.is_empty()).count()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    // ------------------------------------------------------------------
    // Prepare
    // ------------------------------------------------------------------

    /// Prepare an insert/update: presence + payload write.
    pub fn prepare_put(&self, key: K, tag: Tag, clock: VClock, ts: u64, value: V) -> AWMapOp<K, V> {
        AWMapOp::Put {
            key,
            tag,
            clock,
            write: Some(LWWOp { ts, tag, value }),
        }
    }

    /// Prepare a `touch`: restore presence, keep whatever payload exists
    /// (paper §4.2.1 — used instead of an add when the analysis adds a
    /// restoring effect to an operation).
    pub fn prepare_touch(&self, key: K, tag: Tag, clock: VClock) -> AWMapOp<K, V> {
        AWMapOp::Put {
            key,
            tag,
            clock,
            write: None,
        }
    }

    /// Prepare a remove of the observed presence tags.
    pub fn prepare_remove(&self, key: &K, clock: VClock) -> Option<AWMapOp<K, V>> {
        let e = self.entries.get(key)?;
        if e.tags.is_empty() {
            return None;
        }
        Some(AWMapOp::Remove {
            key: key.clone(),
            observed: e.tags.iter().copied().collect(),
            clock,
        })
    }

    // ------------------------------------------------------------------
    // Apply
    // ------------------------------------------------------------------

    pub fn apply(&mut self, op: &AWMapOp<K, V>) {
        match op {
            AWMapOp::Put {
                key,
                tag,
                clock,
                write,
            } => {
                let e = self.entries.entry(key.clone()).or_default();
                e.tags.insert(*tag);
                e.last_clock.merge(clock);
                if let Some(w) = write {
                    e.payload.apply(w);
                }
            }
            AWMapOp::Remove {
                key,
                observed,
                clock,
            } => {
                if let Some(e) = self.entries.get_mut(key) {
                    for t in observed {
                        e.tags.remove(t);
                    }
                    e.last_clock.merge(clock);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Garbage collection
    // ------------------------------------------------------------------

    /// Drop retained payloads of removed keys whose last modification is
    /// causally stable: no in-flight touch can still restore them
    /// (paper §4.2.1 — "keeping removed elements and using SwiftCloud
    /// stability information for garbage-collection").
    pub fn compact(&mut self, stable: &VClock) {
        self.entries
            .retain(|_, e| !e.tags.is_empty() || !e.last_clock.le(stable));
    }

    /// Total entries including retained tombstone payloads.
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tag::ReplicaId;

    fn tag(r: u16, s: u64) -> Tag {
        Tag::new(ReplicaId(r), s)
    }
    fn clock(entries: &[(u16, u64)]) -> VClock {
        entries.iter().map(|&(r, v)| (ReplicaId(r), v)).collect()
    }

    #[test]
    fn put_get_remove() {
        let mut m: AWMap<&'static str, i64> = AWMap::new();
        m.apply(&m.prepare_put("alice", tag(0, 1), clock(&[(0, 1)]), 1, 100));
        assert_eq!(m.get(&"alice"), Some(&100));
        let rm = m.prepare_remove(&"alice", clock(&[(0, 2)])).unwrap();
        m.apply(&rm);
        assert!(!m.contains(&"alice"));
        assert_eq!(m.get(&"alice"), None);
    }

    #[test]
    fn touch_restores_payload_after_remove() {
        let mut m: AWMap<&'static str, i64> = AWMap::new();
        m.apply(&m.prepare_put("alice", tag(0, 1), clock(&[(0, 1)]), 1, 100));
        let rm = m.prepare_remove(&"alice", clock(&[(0, 2)])).unwrap();
        m.apply(&rm);
        assert_eq!(m.latent_payload(&"alice"), Some(&100), "payload retained");
        // Touch (e.g. the analysis-added restore effect of ensureEnroll).
        m.apply(&m.prepare_touch("alice", tag(1, 1), clock(&[(0, 2), (1, 1)])));
        assert!(m.contains(&"alice"));
        assert_eq!(m.get(&"alice"), Some(&100), "old payload visible again");
    }

    #[test]
    fn concurrent_touch_wins_over_remove() {
        let mut a: AWMap<&'static str, i64> = AWMap::new();
        let put = a.prepare_put("x", tag(0, 1), clock(&[(0, 1)]), 1, 7);
        a.apply(&put);
        let mut b = a.clone();
        let rm = a.prepare_remove(&"x", clock(&[(0, 2)])).unwrap();
        let touch = b.prepare_touch("x", tag(1, 1), clock(&[(0, 1), (1, 1)]));
        a.apply(&rm);
        a.apply(&touch);
        b.apply(&touch);
        b.apply(&rm);
        assert_eq!(a, b);
        assert!(a.contains(&"x"), "touch's fresh tag survives the remove");
        assert_eq!(a.get(&"x"), Some(&7));
    }

    #[test]
    fn compact_drops_stable_tombstones_only() {
        let mut m: AWMap<&'static str, i64> = AWMap::new();
        m.apply(&m.prepare_put("gone", tag(0, 1), clock(&[(0, 1)]), 1, 1));
        m.apply(&m.prepare_put("kept", tag(0, 2), clock(&[(0, 2)]), 2, 2));
        let rm = m.prepare_remove(&"gone", clock(&[(0, 3)])).unwrap();
        m.apply(&rm);
        assert_eq!(m.entry_count(), 2);
        // Not yet stable: tombstone retained.
        m.compact(&clock(&[(0, 2)]));
        assert_eq!(m.entry_count(), 2);
        // Stable: tombstone dropped, live key kept.
        m.compact(&clock(&[(0, 3)]));
        assert_eq!(m.entry_count(), 1);
        assert!(m.contains(&"kept"));
        assert_eq!(m.latent_payload(&"gone"), None);
    }

    #[test]
    fn lww_payload_converges_across_orders() {
        let w1 = AWMapOp::Put {
            key: "k",
            tag: tag(0, 1),
            clock: clock(&[(0, 1)]),
            write: Some(crate::lww::LWWOp {
                ts: 1,
                tag: tag(0, 1),
                value: 10,
            }),
        };
        let w2 = AWMapOp::Put {
            key: "k",
            tag: tag(1, 1),
            clock: clock(&[(1, 1)]),
            write: Some(crate::lww::LWWOp {
                ts: 2,
                tag: tag(1, 1),
                value: 20,
            }),
        };
        let mut a: AWMap<&'static str, i64> = AWMap::new();
        let mut b: AWMap<&'static str, i64> = AWMap::new();
        a.apply(&w1);
        a.apply(&w2);
        b.apply(&w2);
        b.apply(&w1);
        assert_eq!(a, b);
        assert_eq!(a.get(&"k"), Some(&20));
    }
}
