//! Soak the four applications on the **threaded transport**: real
//! `std::thread` replicas, wall-clock races, a live fault injector —
//! and the same oracle suite the deterministic simulator answers to
//! (continuous invariants, double-apply, final invariants, convergence,
//! bounded liveness).
//!
//! Where `soak::run_soak` is a pure function of `(app, seed, plan)`
//! and is pinned by schedule digests, a threaded soak is
//! **quiesce-checked**: nothing about its interleaving is reproducible,
//! so correctness is judged entirely at (and after) quiescence, plus a
//! continuous auditor sampling live replicas mid-run. A red cell here
//! is a real concurrency bug that the deterministic schedule space
//! missed — see `ARCHITECTURE.md` for the split of guarantees between
//! the two transports.

use crate::oracle::{Oracle, Phase, DEFAULT_LIVENESS_BOUND};
use crate::soak::{fresh_workload, oracle_for, App, Failure, SoakWorkload};
use ipa_crdt::ReplicaId;
use ipa_sim::{ClientInfo, OpCtx, Region};
use ipa_store::{CommitInfo, StoreError, ThreadedCluster, ThreadedConfig, Transaction, Transport};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, RwLock};
use std::time::{Duration, Instant};

/// An [`OpCtx`] over a shared [`ThreadedCluster`]: many client threads
/// hold one of these each (it is only a borrow plus a private RNG) and
/// race their commits for real. WAN latency is not modeled — `rtt`
/// reports zero — and link state comes live from the cluster's matrix,
/// so partitioned coordination fails fast exactly as it does in the
/// simulator.
pub struct ThreadedCtx<'a> {
    cluster: &'a ThreadedCluster,
    rng: StdRng,
}

impl<'a> ThreadedCtx<'a> {
    /// A context over `cluster` whose decide-path RNG is seeded with
    /// `seed` (give every client thread a distinct seed).
    pub fn new(cluster: &'a ThreadedCluster, seed: u64) -> ThreadedCtx<'a> {
        ThreadedCtx {
            cluster,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl OpCtx for ThreadedCtx<'_> {
    fn regions(&self) -> usize {
        self.cluster.len()
    }

    fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    fn rtt(&mut self, _a: Region, _b: Region) -> f64 {
        0.0
    }

    fn link_up(&self, a: Region, b: Region) -> bool {
        self.cluster.link_is_up(a, b)
    }

    fn node_up(&self, region: Region) -> bool {
        !self.cluster.is_node_down(region)
    }

    fn commit<T>(
        &mut self,
        region: Region,
        f: impl FnOnce(&mut Transaction<'_>) -> Result<T, StoreError>,
    ) -> Result<(T, CommitInfo), StoreError> {
        self.cluster.commit_at(region, f)
    }
}

/// An [`OpCtx`] over *any* [`Transport`]: commits run on the region's
/// replica via [`Transport::with_node`] and ship immediately. This is
/// the bridge that lets one workload driver run unchanged against the
/// deterministic simulator, the synchronous cluster, and the threaded
/// cluster — the transport-equivalence tests are built on it. Links are
/// reported as always up and `rtt` as zero (drive benign runs through
/// it; fault-aware harnesses use richer contexts).
pub struct TransportCtx<'a, T: Transport> {
    transport: &'a mut T,
    rng: StdRng,
}

impl<'a, T: Transport> TransportCtx<'a, T> {
    /// A context over `transport` with a `seed`ed decide-path RNG.
    pub fn new(transport: &'a mut T, seed: u64) -> TransportCtx<'a, T> {
        TransportCtx {
            transport,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The wrapped transport (e.g. to quiesce between ops).
    pub fn transport(&mut self) -> &mut T {
        self.transport
    }
}

impl<T: Transport> OpCtx for TransportCtx<'_, T> {
    fn regions(&self) -> usize {
        self.transport.node_count()
    }

    fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    fn rtt(&mut self, _a: Region, _b: Region) -> f64 {
        0.0
    }

    fn link_up(&self, _a: Region, _b: Region) -> bool {
        true
    }

    fn commit<T2>(
        &mut self,
        region: Region,
        f: impl FnOnce(&mut Transaction<'_>) -> Result<T2, StoreError>,
    ) -> Result<(T2, CommitInfo), StoreError> {
        let node = ReplicaId(region);
        let (value, info) = self.transport.with_node(node, |replica| {
            let mut tx = replica.begin();
            let value = f(&mut tx)?;
            let info = tx.commit();
            Ok::<_, StoreError>((value, info))
        })?;
        self.transport.ship(node);
        Ok((value, info))
    }
}

/// Configuration of one threaded soak cell.
#[derive(Clone, Copy, Debug)]
pub struct ThreadedSoakConfig {
    /// Seeds the per-client decide RNGs and the fault injector.
    pub seed: u64,
    /// Wall-clock time the client threads run.
    pub duration: Duration,
    /// Client threads per replica (threads, not simulated clients).
    pub clients_per_region: usize,
    /// Run the live fault injector (crashes + link cuts) alongside the
    /// clients. Off = benign concurrency soak.
    pub faults: bool,
}

impl Default for ThreadedSoakConfig {
    fn default() -> Self {
        ThreadedSoakConfig {
            seed: 1,
            duration: Duration::from_millis(400),
            clients_per_region: 2,
            faults: true,
        }
    }
}

/// Outcome of one threaded soak cell.
#[derive(Debug)]
pub struct ThreadedSoakRun {
    /// First oracle failure, in the same fixed classification order as
    /// the simulator soak: continuous → double-apply → final →
    /// convergence → bounded-liveness. `None` = green.
    pub failure: Option<Failure>,
    /// Client operations completed across all threads.
    pub completed: u64,
    /// Productive anti-entropy rounds the recovery quiesce needed (the
    /// bounded-liveness oracle's input).
    pub quiesce_rounds: u64,
}

/// Run one app on the threaded transport under concurrent clients (and
/// optionally a live fault injector), then quiesce, repair, and audit
/// the full oracle suite.
///
/// Concurrency structure: client threads race `commit_at` calls against
/// the delivery threads and the background anti-entropy ticker; a
/// fault-injector thread crashes nodes and cuts links on live wall
/// clock; an auditor thread samples continuous invariants on live
/// replicas. Workload state (op mix counters, escrow/reservation
/// tables) is one shared [`Mutex`], so the *decide/execute* path is
/// serialized — exactly like the single-threaded simulator — while
/// replication races freely underneath it. A [`RwLock`] gate serializes
/// crashes against in-flight operations so a multi-commit op is never
/// torn by a crash between its commits (which no schedule the
/// deterministic transport produces can do either).
pub fn run_threaded_soak(app: App, cfg: ThreadedSoakConfig) -> ThreadedSoakRun {
    let cluster = ThreadedCluster::start(ThreadedConfig {
        nodes: 3,
        ae_interval: Some(Duration::from_millis(2)),
        ..Default::default()
    });
    let mut workload = fresh_workload(app);
    {
        let mut ctx = ThreadedCtx::new(&cluster, cfg.seed);
        workload.setup_in(&mut ctx);
    }
    // Spread the seed data everywhere before clients start, like the
    // simulator's warmup phase does.
    cluster.quiesce();

    // The event-dependent registries (ticket) have no continuous
    // checks, so the pre-run registry suffices for the live auditor.
    let auditor_oracle = match app {
        App::Tournament => Oracle::tournament(),
        App::Ticket => Oracle::ticket(Vec::new(), 0),
        App::TicketEscrow => Oracle::ticket_escrow(crate::ticket::sale::default_event_capacities()),
        App::Tpc => Oracle::tpc(Vec::new()),
        App::Twitter => Oracle::twitter(),
    };
    let bound = auditor_oracle
        .liveness_bound()
        .unwrap_or(DEFAULT_LIVENESS_BOUND);

    let workload = Mutex::new(workload);
    let crash_gate = RwLock::new(());
    let stop = AtomicBool::new(false);
    let completed = AtomicU64::new(0);
    let continuous_failure: Mutex<Option<Failure>> = Mutex::new(None);
    let n = cluster.len() as u16;

    std::thread::scope(|s| {
        for region in 0..n {
            for c in 0..cfg.clients_per_region {
                let cluster = &cluster;
                let workload = &workload;
                let crash_gate = &crash_gate;
                let stop = &stop;
                let completed = &completed;
                let client = ClientInfo {
                    id: region as usize * cfg.clients_per_region + c,
                    region,
                };
                let seed = cfg
                    .seed
                    .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                    .wrapping_add(client.id as u64);
                s.spawn(move || {
                    let mut ctx = ThreadedCtx::new(cluster, seed);
                    while !stop.load(Ordering::Relaxed) {
                        let gate = crash_gate.read().unwrap();
                        if cluster.is_node_down(region) {
                            drop(gate);
                            std::thread::sleep(Duration::from_micros(500));
                            continue;
                        }
                        let outcome = {
                            let mut w = workload.lock().unwrap();
                            w.op_in(&mut ctx, client)
                        };
                        drop(gate);
                        if outcome.ok {
                            completed.fetch_add(1, Ordering::Relaxed);
                        }
                        // A breath between ops so deliveries and faults
                        // interleave with the op stream.
                        std::thread::sleep(Duration::from_micros(100));
                    }
                });
            }
        }

        if cfg.faults {
            let cluster = &cluster;
            let crash_gate = &crash_gate;
            let stop = &stop;
            let seed = cfg.seed ^ 0x6e65_6d65_7369_7321; // same tag as the sim nemesis stream
            s.spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed);
                while !stop.load(Ordering::Relaxed) {
                    std::thread::sleep(Duration::from_millis(rng.gen_range(3..9)));
                    if rng.gen_bool(0.4) {
                        // Crash one node briefly. The write gate waits
                        // out in-flight ops; clients then see the down
                        // flag and sit out the outage.
                        let node = rng.gen_range(0..cluster.len()) as u16;
                        {
                            let _g = crash_gate.write().unwrap();
                            cluster.crash_node(node);
                        }
                        std::thread::sleep(Duration::from_millis(rng.gen_range(2..7)));
                        cluster.restart_node(node);
                    } else {
                        // Cut a random link; heal after an outage
                        // window. Ops run through cuts (coordination
                        // fails fast, commits stay local).
                        let a = rng.gen_range(0..cluster.len()) as u16;
                        let b = rng.gen_range(0..cluster.len()) as u16;
                        if a == b {
                            continue;
                        }
                        cluster.set_link_up(a, b, false);
                        std::thread::sleep(Duration::from_millis(rng.gen_range(2..7)));
                        cluster.set_link_up(a, b, true);
                    }
                }
            });
        }

        {
            let cluster = &cluster;
            let stop = &stop;
            let continuous_failure = &continuous_failure;
            let oracle = &auditor_oracle;
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    std::thread::sleep(Duration::from_millis(2));
                    for r in 0..cluster.len() as u16 {
                        if cluster.is_node_down(r) {
                            continue;
                        }
                        let report =
                            cluster.with_replica(r, |rep| oracle.audit(rep, Phase::Continuous));
                        if report.total() > 0 {
                            let mut slot = continuous_failure.lock().unwrap();
                            if slot.is_none() {
                                *slot = Some(Failure {
                                    check: format!("continuous:{}", report.violated()[0]),
                                    count: report.total(),
                                });
                            }
                        }
                    }
                }
            });
        }

        let deadline = Instant::now() + cfg.duration;
        while Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        stop.store(true, Ordering::Relaxed);
    });

    let quiesce_rounds = cluster.quiesce();
    let workload = workload.into_inner().unwrap();
    final_repair_threaded(app, &workload, &cluster);
    cluster.quiesce();

    let failure = classify_threaded(
        app,
        &workload,
        &cluster,
        continuous_failure.into_inner().unwrap(),
        quiesce_rounds,
        bound,
    );
    ThreadedSoakRun {
        failure,
        completed: completed.load(Ordering::Relaxed),
        quiesce_rounds,
    }
}

/// Two rounds of "read every entity at every replica, then pull
/// anti-entropy to a fixpoint": the threaded twin of the simulator's
/// read-side compensation sweep (reads repair, the fixpoint spreads the
/// repairs, the second round confirms).
fn view_sweep_threaded(
    cluster: &ThreadedCluster,
    names: &[String],
    view: impl Fn(&mut Transaction<'_>, &str) -> Result<(), StoreError>,
) {
    for _round in 0..2 {
        for region in 0..cluster.len() as u16 {
            cluster
                .commit_at(region, |tx| {
                    for name in names {
                        view(tx, name)?;
                    }
                    Ok(())
                })
                .expect("view sweep");
        }
        cluster.quiesce();
    }
}

/// Run the read-side compensations to a fixpoint (§3.4) on the threaded
/// cluster; mirrors `soak`'s per-app repair dispatch.
fn final_repair_threaded(app: App, w: &SoakWorkload, cluster: &ThreadedCluster) {
    match (app, w) {
        (App::Tournament, SoakWorkload::Tournament(w)) => {
            let app = w.app;
            view_sweep_threaded(cluster, w.tournaments(), |tx, t| {
                app.status(tx, t).map(|_| ())
            });
        }
        (App::Ticket, SoakWorkload::Ticket(w)) => {
            let app = w.app;
            view_sweep_threaded(cluster, &w.all_event_names(), |tx, e| {
                app.view(tx, e).map(|_| ())
            });
        }
        (App::Tpc, SoakWorkload::Tpc(w)) => {
            let app = w.app;
            view_sweep_threaded(cluster, w.products(), |tx, p| app.view(tx, p).map(|_| ()));
        }
        // Add-wins Twitter preserves its invariants in-line, and the
        // escrow sale's bound is continuous by construction; neither has
        // anything compensable to sweep.
        (App::Twitter, _) | (App::TicketEscrow, _) => {}
        _ => unreachable!("workload/app mismatch"),
    }
}

/// Classify the first failure of a quiesced, repaired threaded run, in
/// the same fixed order as the simulator soak.
fn classify_threaded(
    app: App,
    w: &SoakWorkload,
    cluster: &ThreadedCluster,
    continuous: Option<Failure>,
    quiesce_rounds: u64,
    bound: u64,
) -> Option<Failure> {
    if let Some(f) = continuous {
        return Some(f);
    }
    for r in 0..cluster.len() as u16 {
        let consistent = cluster.with_replica(r, |rep| rep.applied_consistent());
        if !consistent {
            return Some(Failure {
                check: "double-apply".into(),
                count: 1,
            });
        }
    }
    let oracle = oracle_for(app, w);
    for r in 0..cluster.len() as u16 {
        let report = cluster.with_replica(r, |rep| oracle.audit(rep, Phase::Final));
        if report.total() > 0 {
            return Some(Failure {
                check: format!("final:{}", report.violated()[0]),
                count: report.total(),
            });
        }
    }
    if !cluster.is_converged() {
        return Some(Failure {
            check: "convergence".into(),
            count: 1,
        });
    }
    if quiesce_rounds > bound {
        return Some(Failure {
            check: "bounded-liveness".into(),
            count: quiesce_rounds - bound,
        });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipa_crdt::{Object, ObjectKind, ObjectOp, VClock};
    use ipa_sim::{paper_topology, SimConfig, Simulation};
    use ipa_store::{Cluster, Key, UpdateBatch};
    use std::collections::BTreeMap;

    /// Drive `nops` ops of `app` through any transport, quiescing after
    /// every op so each transport sees the same fully-converged state at
    /// each decision point (and therefore executes the identical op
    /// sequence — the decide RNG streams are identical).
    fn drive<T: Transport>(app: App, seed: u64, nops: usize, transport: &mut T) -> SoakWorkload {
        let mut w = fresh_workload(app);
        let mut ctx = TransportCtx::new(transport, seed);
        w.setup_in(&mut ctx);
        ctx.transport().quiesce_transport();
        let regions = ctx.regions() as u16;
        for k in 0..nops {
            let client = ClientInfo {
                id: k % 6,
                region: (k % regions as usize) as u16,
            };
            w.op_in(&mut ctx, client);
            ctx.transport().quiesce_transport();
        }
        w
    }

    /// One batch's transport-independent identity: origin, seq, and
    /// updates. The `clock` snapshot, `lamport`, and `check` (sealed
    /// over both) are deliberately excluded — ops that commit at more
    /// than one node (the escrow borrow path) make them depend on
    /// intra-op delivery timing, which the [`Transport`] contract
    /// leaves to the implementation ("check quiescent properties,
    /// never schedules"). Semantic equivalence of the causal metadata
    /// is covered by the converged-state half of [`fingerprint`].
    type BatchKey = (ReplicaId, u64, Vec<(Key, ObjectKind, ObjectOp)>);

    fn batch_key(b: &UpdateBatch) -> BatchKey {
        (b.origin, b.seq, b.updates.clone())
    }

    /// Canonical per-node view of a quiesced transport: every batch
    /// ever applied (projected to its [`BatchKey`], sorted by
    /// (origin, seq)) plus the materialized state of every object any
    /// batch touched. Two transports that applied the same history
    /// produce equal fingerprints.
    fn fingerprint<T: Transport>(t: &mut T) -> Vec<(Vec<BatchKey>, BTreeMap<Key, Object>)> {
        t.quiesce_transport();
        assert!(t.converged(), "fingerprint requires convergence");
        (0..t.node_count())
            .map(|i| {
                t.with_node(ReplicaId(i as u16), |r| {
                    let mut log: Vec<BatchKey> = r
                        .batches_since(&VClock::default())
                        .iter()
                        .map(|b| batch_key(b))
                        .collect();
                    log.sort_by_key(|b| (b.0, b.1));
                    let state: BTreeMap<Key, Object> = log
                        .iter()
                        .flat_map(|(_, _, ups)| ups.iter().map(|(k, _, _)| k.clone()))
                        .filter_map(|k| r.object(&k).cloned().map(|o| (k, o)))
                        .collect();
                    (log, state)
                })
            })
            .collect()
    }

    /// The transport-equivalence matrix: for every app, the same seeded
    /// op stream driven through the deterministic simulator (as a
    /// transport), the synchronous cluster, and the threaded cluster
    /// converges to the identical batch-for-batch final state, and the
    /// final oracles are green on all three.
    #[test]
    fn all_transports_converge_to_identical_state_for_every_app() {
        for app in App::all() {
            let seed = 7;
            let nops = 60;

            let mut sim = Simulation::new(
                paper_topology(),
                SimConfig {
                    seed,
                    ..Default::default()
                },
            );
            let w_sim = drive(app, seed, nops, &mut sim);
            let fp_sim = fingerprint(&mut sim);

            let mut cluster = Cluster::new(3);
            let w_cluster = drive(app, seed, nops, &mut cluster);
            let fp_cluster = fingerprint(&mut cluster);

            let mut threaded = ThreadedCluster::start(ThreadedConfig {
                nodes: 3,
                ae_interval: None,
                ..Default::default()
            });
            let w_threaded = drive(app, seed, nops, &mut threaded);
            let fp_threaded = fingerprint(&mut threaded);

            assert_eq!(fp_sim, fp_cluster, "{app}: sim vs cluster state");
            assert_eq!(fp_sim, fp_threaded, "{app}: sim vs threaded state");

            // Final oracles green on every transport.
            let oracle = oracle_for(app, &w_sim);
            for r in 0..3u16 {
                let rep_sim = oracle.audit(sim.replica(r), Phase::Final);
                assert_eq!(rep_sim.total(), 0, "{app}: sim final oracle at {r}");
                let rep_thr =
                    threaded.with_replica(r, |rep| oracle.audit(rep, Phase::Final).total());
                assert_eq!(rep_thr, 0, "{app}: threaded final oracle at {r}");
            }
            let _ = (w_cluster, w_threaded);
        }
    }

    #[test]
    fn benign_threaded_soak_is_green_for_every_app() {
        for app in App::all() {
            let run = run_threaded_soak(
                app,
                ThreadedSoakConfig {
                    seed: 11,
                    duration: Duration::from_millis(150),
                    clients_per_region: 2,
                    faults: false,
                },
            );
            assert_eq!(run.failure, None, "{app}: {:?}", run.failure);
            assert!(run.completed > 20, "{app}: clients actually ran");
        }
    }
}
