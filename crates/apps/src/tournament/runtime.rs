//! Tournament runtime over the replicated store.
//!
//! Each operation is the transaction code of Fig. 1's interface; in
//! [`Mode::Ipa`] the operations additionally execute the paper's Fig. 3
//! `ensure*` helpers (touches that restore referential integrity under
//! the chosen add-wins rules, and the rem-wins `active` set that makes
//! `finish_tourn` prevail).

use crate::common::Mode;
use ipa_crdt::{ObjectKind, Val, ValPattern};
use ipa_store::{StoreError, Transaction};

/// Tournament capacity (the Fig. 1 aggregation constraint; enforced by
/// compensation in the Ticket benchmark, checked by the violation scanner
/// here).
pub const CAPACITY: usize = 16;

/// Object keys.
pub const PLAYERS: &str = "tournament/players";
pub const TOURNS: &str = "tournament/tourns";
pub const ENROLLED: &str = "tournament/enrolled";
pub const ACTIVE: &str = "tournament/active";
pub const FINISHED: &str = "tournament/finished";
pub const MATCHES: &str = "tournament/matches";

/// The Tournament application in one consistency mode.
#[derive(Clone, Copy, Debug)]
pub struct Tournament {
    pub mode: Mode,
}

/// Cost profile of an executed operation (drives the simulator's service
/// model): distinct objects touched and total updates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpCost {
    pub objects: usize,
    pub updates: usize,
}

impl Tournament {
    pub fn new(mode: Mode) -> Tournament {
        Tournament { mode }
    }

    /// The `active` set is rem-wins under IPA (so that `finish_tourn`'s
    /// and `rem_tourn`'s clears prevail over a concurrent `begin_tourn`),
    /// add-wins otherwise.
    fn active_kind(&self) -> ObjectKind {
        match self.mode {
            Mode::Ipa => ObjectKind::RWSet,
            _ => ObjectKind::AWSet,
        }
    }

    /// Matches are rem-wins under IPA: removing a tournament (or a
    /// player's enrollment) cancels its matches *including concurrent
    /// ones* — the Fig. 2c-style resolution for the `inMatch` invariant.
    fn matches_kind(&self) -> ObjectKind {
        match self.mode {
            Mode::Ipa => ObjectKind::RWSet,
            _ => ObjectKind::AWSet,
        }
    }

    /// Declare every object (first transaction per replica).
    pub fn ensure_schema(&self, tx: &mut Transaction<'_>) -> Result<(), StoreError> {
        tx.ensure(PLAYERS, ObjectKind::AWMap)?;
        tx.ensure(TOURNS, ObjectKind::AWMap)?;
        tx.ensure(ENROLLED, ObjectKind::AWSet)?;
        tx.ensure(ACTIVE, self.active_kind())?;
        tx.ensure(FINISHED, ObjectKind::AWSet)?;
        tx.ensure(MATCHES, self.matches_kind())?;
        Ok(())
    }

    fn matches_add(&self, tx: &mut Transaction<'_>, v: Val) -> Result<(), StoreError> {
        match self.matches_kind() {
            ObjectKind::RWSet => tx.rw_add(MATCHES, v),
            _ => tx.aw_add(MATCHES, v),
        }
    }

    fn matches_clear(&self, tx: &mut Transaction<'_>, pat: ValPattern) -> Result<(), StoreError> {
        match self.matches_kind() {
            ObjectKind::RWSet => tx.rw_remove_matching(MATCHES, pat),
            _ => tx.aw_remove_matching(MATCHES, &pat),
        }
    }

    fn active_remove(&self, tx: &mut Transaction<'_>, t: &str) -> Result<(), StoreError> {
        match self.active_kind() {
            ObjectKind::RWSet => tx.rw_remove(ACTIVE, Val::str(t)),
            _ => tx.aw_remove(ACTIVE, &Val::str(t)),
        }
    }

    // ------------------------------------------------------------------
    // Fig. 3 ensure* helpers (IPA mode only)
    // ------------------------------------------------------------------

    fn ensure_enroll(&self, tx: &mut Transaction<'_>, p: &str, t: &str) -> Result<(), StoreError> {
        // `touch` restores presence while preserving entity payload
        // (§4.2.1) — the add-wins rule makes it win over concurrent
        // removals.
        tx.map_touch(PLAYERS, Val::str(p))?;
        tx.map_touch(TOURNS, Val::str(t))?;
        Ok(())
    }

    fn ensure_begin(&self, tx: &mut Transaction<'_>, t: &str) -> Result<(), StoreError> {
        tx.map_touch(TOURNS, Val::str(t))
    }

    // ------------------------------------------------------------------
    // Operations
    // ------------------------------------------------------------------

    pub fn add_player(&self, tx: &mut Transaction<'_>, p: &str) -> Result<OpCost, StoreError> {
        self.ensure_schema(tx)?;
        tx.map_put(PLAYERS, Val::str(p), Val::str(format!("profile:{p}")))?;
        Ok(OpCost {
            objects: 1,
            updates: 1,
        })
    }

    pub fn rem_player(&self, tx: &mut Transaction<'_>, p: &str) -> Result<OpCost, StoreError> {
        self.ensure_schema(tx)?;
        // Sequential precondition restoration: clear the player's own
        // enrollments and matches (the operation's code maintains the
        // invariant locally, §2.2).
        tx.aw_remove_matching(
            ENROLLED,
            &ValPattern::pair(ValPattern::exact(p), ValPattern::Any),
        )?;
        self.matches_clear(
            tx,
            ValPattern::triple(ValPattern::exact(p), ValPattern::Any, ValPattern::Any),
        )?;
        self.matches_clear(
            tx,
            ValPattern::triple(ValPattern::Any, ValPattern::exact(p), ValPattern::Any),
        )?;
        tx.map_remove(PLAYERS, &Val::str(p))?;
        Ok(OpCost {
            objects: 3,
            updates: 4,
        })
    }

    pub fn add_tourn(&self, tx: &mut Transaction<'_>, t: &str) -> Result<OpCost, StoreError> {
        self.ensure_schema(tx)?;
        tx.map_put(TOURNS, Val::str(t), Val::str(format!("meta:{t}")))?;
        Ok(OpCost {
            objects: 1,
            updates: 1,
        })
    }

    pub fn rem_tourn(&self, tx: &mut Transaction<'_>, t: &str) -> Result<OpCost, StoreError> {
        self.ensure_schema(tx)?;
        // Local precondition restoration: every piece of state that
        // depends on the tournament is cleared (enrollments, matches,
        // phase marks). Under IPA the rem-wins matches/active clears also
        // defeat concurrent additions, while concurrent `enroll`s win via
        // their add-wins restore (the mixed per-predicate resolution the
        // analysis proposes for this operation).
        tx.aw_remove_matching(
            ENROLLED,
            &ValPattern::pair(ValPattern::Any, ValPattern::exact(t)),
        )?;
        self.matches_clear(
            tx,
            ValPattern::triple(ValPattern::Any, ValPattern::Any, ValPattern::exact(t)),
        )?;
        self.active_remove(tx, t)?;
        tx.aw_remove(FINISHED, &Val::str(t))?;
        tx.map_remove(TOURNS, &Val::str(t))?;
        Ok(OpCost {
            objects: 5,
            updates: 5,
        })
    }

    pub fn enroll(&self, tx: &mut Transaction<'_>, p: &str, t: &str) -> Result<OpCost, StoreError> {
        self.ensure_schema(tx)?;
        // Local precondition: the capacity constraint must hold in the
        // origin state (§2.2). Concurrent enrollments elsewhere can still
        // overshoot — that residue is repaired by the read-side
        // compensation in `status` (§3.4).
        let seats = tx
            .set_elements(ENROLLED)?
            .into_iter()
            .filter(|e| e.snd().and_then(Val::as_str) == Some(t))
            .count();
        if seats >= CAPACITY {
            return Ok(OpCost {
                objects: 1,
                updates: 0,
            });
        }
        tx.aw_add(ENROLLED, Val::pair(p, t))?;
        if self.mode == Mode::Ipa {
            self.ensure_enroll(tx, p, t)?;
            return Ok(OpCost {
                objects: 3,
                updates: 3,
            });
        }
        Ok(OpCost {
            objects: 1,
            updates: 1,
        })
    }

    pub fn disenroll(
        &self,
        tx: &mut Transaction<'_>,
        p: &str,
        t: &str,
    ) -> Result<OpCost, StoreError> {
        self.ensure_schema(tx)?;
        tx.aw_remove(ENROLLED, &Val::pair(p, t))?;
        // Leaving a tournament cancels the player's matches in it.
        self.matches_clear(
            tx,
            ValPattern::triple(ValPattern::exact(p), ValPattern::Any, ValPattern::exact(t)),
        )?;
        self.matches_clear(
            tx,
            ValPattern::triple(ValPattern::Any, ValPattern::exact(p), ValPattern::exact(t)),
        )?;
        Ok(OpCost {
            objects: 2,
            updates: 3,
        })
    }

    pub fn begin_tourn(&self, tx: &mut Transaction<'_>, t: &str) -> Result<OpCost, StoreError> {
        self.ensure_schema(tx)?;
        match self.active_kind() {
            ObjectKind::RWSet => tx.rw_add(ACTIVE, Val::str(t))?,
            _ => tx.aw_add(ACTIVE, Val::str(t))?,
        }
        // Restart semantics: a (re-)begun tournament is no longer
        // finished (observed-remove, so a concurrent finish still wins).
        tx.aw_remove(FINISHED, &Val::str(t))?;
        if self.mode == Mode::Ipa {
            self.ensure_begin(tx, t)?;
            return Ok(OpCost {
                objects: 3,
                updates: 3,
            });
        }
        Ok(OpCost {
            objects: 2,
            updates: 2,
        })
    }

    pub fn finish_tourn(&self, tx: &mut Transaction<'_>, t: &str) -> Result<OpCost, StoreError> {
        self.ensure_schema(tx)?;
        tx.aw_add(FINISHED, Val::str(t))?;
        // Rem-wins clear under IPA: finish prevails over a concurrent
        // begin (preserves `not(active(t) and finished(t))`).
        self.active_remove(tx, t)?;
        if self.mode == Mode::Ipa {
            self.ensure_begin(tx, t)?; // ensureEnd touches the tournament
            return Ok(OpCost {
                objects: 3,
                updates: 3,
            });
        }
        Ok(OpCost {
            objects: 2,
            updates: 2,
        })
    }

    /// Precondition (checked by the caller's transaction code): both
    /// players enrolled, tournament active. The IPA version restores the
    /// enrollments and entities; a concurrent `rem_tourn` cancels the
    /// match through the rem-wins matches set instead.
    pub fn do_match(
        &self,
        tx: &mut Transaction<'_>,
        p: &str,
        q: &str,
        t: &str,
    ) -> Result<OpCost, StoreError> {
        self.ensure_schema(tx)?;
        self.matches_add(tx, Val::triple(p, q, t))?;
        if self.mode == Mode::Ipa {
            // ensureDoMatch = ensureEnroll(p1) + ensureEnroll(p2) and the
            // enrollments themselves are restored.
            tx.aw_add(ENROLLED, Val::pair(p, t))?;
            tx.aw_add(ENROLLED, Val::pair(q, t))?;
            self.ensure_enroll(tx, p, t)?;
            self.ensure_enroll(tx, q, t)?;
            return Ok(OpCost {
                objects: 4,
                updates: 7,
            });
        }
        Ok(OpCost {
            objects: 1,
            updates: 1,
        })
    }

    /// Is the tournament currently active (as observed locally)?
    pub fn is_active(&self, tx: &mut Transaction<'_>, t: &str) -> Result<bool, StoreError> {
        self.ensure_schema(tx)?;
        tx.contains(ACTIVE, &Val::str(t))
    }

    /// Status read: tournament metadata + enrollment count + phase.
    ///
    /// Under IPA this read carries the capacity *compensation* (§3.4):
    /// when concurrent enrollments overshot the bound, the deterministic
    /// excess (largest elements) is disenrolled and committed alongside
    /// the read — the paper's "only disenroll a player if the size limit
    /// is actually exceeded".
    pub fn status(&self, tx: &mut Transaction<'_>, t: &str) -> Result<OpCost, StoreError> {
        self.ensure_schema(tx)?;
        let _meta = tx.map_get(TOURNS, &Val::str(t))?;
        let active = tx.contains(ACTIVE, &Val::str(t))?;
        if self.mode == Mode::Ipa && !active && !tx.contains(FINISHED, &Val::str(t))? {
            // Disjunction compensation (§3.4-style read repair): two
            // concurrent finish→begin(restart) chains can annihilate both
            // phase marks — each branch's begin observed-removes its own
            // `finished` tag while each rem-wins finish defeats the other
            // branch's `active` add — stranding matches in a tournament
            // that is neither running nor finished. Restore the
            // finish-prevails outcome the resolution is built around.
            let stranded = tx
                .set_elements(MATCHES)?
                .iter()
                .any(|m| matches!(m, Val::Triple(_, _, mt) if mt.as_str() == Some(t)));
            if stranded {
                tx.aw_add(FINISHED, Val::str(t))?;
            }
        }
        let mut enrolled: Vec<Val> = tx
            .set_elements(ENROLLED)?
            .into_iter()
            .filter(|e| e.snd().and_then(Val::as_str) == Some(t))
            .collect();
        if self.mode == Mode::Ipa && enrolled.len() > CAPACITY {
            // Deterministic choice: every replica observing the same
            // oversized state cancels the same (largest) elements, so the
            // compensations commute and converge.
            enrolled.sort();
            let excess: Vec<Val> = enrolled.split_off(CAPACITY);
            let n = excess.len();
            for e in &excess {
                tx.aw_remove(ENROLLED, e)?;
                if let (Some(p), Some(tt)) = (e.fst().cloned(), e.snd().cloned()) {
                    // Cascade: the disenrolled players' matches go too.
                    self.matches_clear(
                        tx,
                        ValPattern::triple(
                            ValPattern::Exact(p.clone()),
                            ValPattern::Any,
                            ValPattern::Exact(tt.clone()),
                        ),
                    )?;
                    self.matches_clear(
                        tx,
                        ValPattern::triple(
                            ValPattern::Any,
                            ValPattern::Exact(p),
                            ValPattern::Exact(tt),
                        ),
                    )?;
                }
            }
            return Ok(OpCost {
                objects: 3,
                updates: n,
            });
        }
        Ok(OpCost {
            objects: 3,
            updates: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipa_crdt::ReplicaId;
    use ipa_store::Cluster;

    fn run(mode: Mode, f: impl FnOnce(&Tournament, &mut Cluster)) {
        let app = Tournament::new(mode);
        let mut cluster = Cluster::new(2);
        f(&app, &mut cluster);
    }

    fn commit<T>(
        cluster: &mut Cluster,
        r: u16,
        f: impl FnOnce(&mut Transaction<'_>) -> Result<T, StoreError>,
    ) -> T {
        let replica = cluster.replica_mut(ReplicaId(r));
        let mut tx = replica.begin();
        let out = f(&mut tx).expect("op");
        tx.commit();
        out
    }

    #[test]
    fn sequential_lifecycle() {
        run(Mode::Causal, |app, cluster| {
            commit(cluster, 0, |tx| app.add_player(tx, "alice"));
            commit(cluster, 0, |tx| app.add_tourn(tx, "open"));
            commit(cluster, 0, |tx| app.enroll(tx, "alice", "open"));
            commit(cluster, 0, |tx| app.begin_tourn(tx, "open"));
            cluster.sync();
            let v = crate::violations::tournament_violations(cluster.replica(ReplicaId(1)));
            assert_eq!(v, 0);
        });
    }

    #[test]
    fn causal_concurrent_enroll_vs_rem_tourn_violates() {
        run(Mode::Causal, |app, cluster| {
            commit(cluster, 0, |tx| app.add_player(tx, "p1"));
            commit(cluster, 0, |tx| app.add_tourn(tx, "t1"));
            cluster.sync();
            // Concurrent: replica 0 removes t1, replica 1 enrolls p1.
            commit(cluster, 0, |tx| app.rem_tourn(tx, "t1"));
            commit(cluster, 1, |tx| app.enroll(tx, "p1", "t1"));
            cluster.sync();
            let v0 = crate::violations::tournament_violations(cluster.replica(ReplicaId(0)));
            let v1 = crate::violations::tournament_violations(cluster.replica(ReplicaId(1)));
            assert!(v0 > 0, "the Fig. 2a anomaly must appear under Causal");
            assert_eq!(v0, v1, "replicas converge (to an invalid state)");
        });
    }

    #[test]
    fn ipa_concurrent_enroll_vs_rem_tourn_preserves_invariant() {
        run(Mode::Ipa, |app, cluster| {
            commit(cluster, 0, |tx| app.add_player(tx, "p1"));
            commit(cluster, 0, |tx| app.add_tourn(tx, "t1"));
            cluster.sync();
            commit(cluster, 0, |tx| app.rem_tourn(tx, "t1"));
            commit(cluster, 1, |tx| app.enroll(tx, "p1", "t1"));
            cluster.sync();
            for r in 0..2 {
                let v = crate::violations::tournament_violations(cluster.replica(ReplicaId(r)));
                assert_eq!(v, 0, "replica {r}: IPA must preserve the invariant");
                // The Fig. 2b outcome: the tournament was restored.
                let tourns = cluster
                    .replica(ReplicaId(r))
                    .object(&TOURNS.into())
                    .unwrap();
                assert_eq!(tourns.set_contains(&Val::str("t1")), Some(true));
            }
        });
    }

    #[test]
    fn ipa_touch_preserves_tournament_payload() {
        run(Mode::Ipa, |app, cluster| {
            commit(cluster, 0, |tx| app.add_player(tx, "p1"));
            commit(cluster, 0, |tx| app.add_tourn(tx, "t1"));
            cluster.sync();
            commit(cluster, 0, |tx| app.rem_tourn(tx, "t1"));
            commit(cluster, 1, |tx| app.enroll(tx, "p1", "t1"));
            cluster.sync();
            let payload = cluster
                .replica(ReplicaId(0))
                .object(&TOURNS.into())
                .unwrap()
                .as_awmap()
                .unwrap()
                .get(&Val::str("t1"))
                .cloned();
            assert_eq!(
                payload,
                Some(Val::str("meta:t1")),
                "touch restored the old payload"
            );
        });
    }

    #[test]
    fn ipa_begin_finish_race_resolves_to_finished() {
        run(Mode::Ipa, |app, cluster| {
            commit(cluster, 0, |tx| app.add_tourn(tx, "t1"));
            commit(cluster, 0, |tx| app.begin_tourn(tx, "t1"));
            cluster.sync();
            // Concurrent: replica 0 restarts (begin), replica 1 finishes.
            commit(cluster, 0, |tx| app.begin_tourn(tx, "t1"));
            commit(cluster, 1, |tx| app.finish_tourn(tx, "t1"));
            cluster.sync();
            for r in 0..2 {
                let rep = cluster.replica(ReplicaId(r));
                let active = rep
                    .object(&ACTIVE.into())
                    .unwrap()
                    .set_contains(&Val::str("t1"));
                let finished = rep
                    .object(&FINISHED.into())
                    .unwrap()
                    .set_contains(&Val::str("t1"));
                assert_eq!(active, Some(false), "rem-wins: finish prevails");
                assert_eq!(finished, Some(true));
                assert_eq!(
                    crate::violations::tournament_violations(rep),
                    0,
                    "not(active and finished) holds"
                );
            }
        });
    }

    #[test]
    fn causal_begin_finish_race_can_violate_mutex() {
        run(Mode::Causal, |app, cluster| {
            commit(cluster, 0, |tx| app.add_tourn(tx, "t1"));
            cluster.sync();
            commit(cluster, 0, |tx| app.begin_tourn(tx, "t1"));
            commit(cluster, 1, |tx| app.finish_tourn(tx, "t1"));
            cluster.sync();
            let rep = cluster.replica(ReplicaId(0));
            let active = rep
                .object(&ACTIVE.into())
                .unwrap()
                .set_contains(&Val::str("t1"));
            let finished = rep
                .object(&FINISHED.into())
                .unwrap()
                .set_contains(&Val::str("t1"));
            // Add-wins keeps `active` despite the concurrent clear.
            assert_eq!(active, Some(true));
            assert_eq!(finished, Some(true));
            assert!(crate::violations::tournament_violations(rep) > 0);
        });
    }

    #[test]
    fn op_costs_reflect_ipa_overhead() {
        run(Mode::Ipa, |app, cluster| {
            let c = commit(cluster, 0, |tx| app.enroll(tx, "p", "t"));
            assert_eq!(
                c,
                OpCost {
                    objects: 3,
                    updates: 3
                }
            );
        });
        run(Mode::Causal, |app, cluster| {
            let c = commit(cluster, 0, |tx| app.enroll(tx, "p", "t"));
            assert_eq!(
                c,
                OpCost {
                    objects: 1,
                    updates: 1
                }
            );
        });
    }
}
