//! The Fig. 4/5 Tournament workload: 35 % writes, closed-loop clients,
//! entity locality that keeps Indigo reservations mostly resident.

use crate::common::{pick_local, Mode};
use crate::tournament::runtime::{OpCost, Tournament};
use ipa_coord::{CoordBackend, LockMode, ReservationTable, StrongCoordinator};
use ipa_sim::{AppOp, ClientInfo, OpCtx, OpOutcome, SimCtx, Workload};
use rand::Rng;
use std::fmt;
use std::str::FromStr;

/// One decided tournament operation, fully resolved (entity names, not
/// RNG state), so it serializes into an op-trace line and replays
/// without the workload RNG.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TournamentOp {
    Status { t: String },
    Enroll { p: String, t: String },
    Disenroll { p: String, t: String },
    DoMatch { p: String, q: String, t: String },
    Begin { t: String },
    Finish { t: String },
    Remove { t: String },
}

impl TournamentOp {
    /// The metrics label (identical to the pre-split `op()` labels).
    pub fn label(&self) -> &'static str {
        match self {
            TournamentOp::Status { .. } => "Status",
            TournamentOp::Enroll { .. } => "Enroll",
            TournamentOp::Disenroll { .. } => "Disenroll",
            TournamentOp::DoMatch { .. } => "DoMatch",
            TournamentOp::Begin { .. } => "Begin",
            TournamentOp::Finish { .. } => "Finish",
            TournamentOp::Remove { .. } => "Remove",
        }
    }
}

impl fmt::Display for TournamentOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TournamentOp::Status { t } => write!(f, "status {t}"),
            TournamentOp::Enroll { p, t } => write!(f, "enroll {p} {t}"),
            TournamentOp::Disenroll { p, t } => write!(f, "disenroll {p} {t}"),
            TournamentOp::DoMatch { p, q, t } => write!(f, "match {p} {q} {t}"),
            TournamentOp::Begin { t } => write!(f, "begin {t}"),
            TournamentOp::Finish { t } => write!(f, "finish {t}"),
            TournamentOp::Remove { t } => write!(f, "remove {t}"),
        }
    }
}

impl FromStr for TournamentOp {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let tok: Vec<&str> = s.split_whitespace().collect();
        let own = |i: usize| tok[i].to_owned();
        match (tok.first().copied(), tok.len()) {
            (Some("status"), 2) => Ok(TournamentOp::Status { t: own(1) }),
            (Some("enroll"), 3) => Ok(TournamentOp::Enroll {
                p: own(1),
                t: own(2),
            }),
            (Some("disenroll"), 3) => Ok(TournamentOp::Disenroll {
                p: own(1),
                t: own(2),
            }),
            (Some("match"), 4) => Ok(TournamentOp::DoMatch {
                p: own(1),
                q: own(2),
                t: own(3),
            }),
            (Some("begin"), 2) => Ok(TournamentOp::Begin { t: own(1) }),
            (Some("finish"), 2) => Ok(TournamentOp::Finish { t: own(1) }),
            (Some("remove"), 2) => Ok(TournamentOp::Remove { t: own(1) }),
            _ => Err(format!("bad tournament op {s:?}")),
        }
    }
}

/// Workload parameters.
#[derive(Clone, Debug)]
pub struct TournamentConfig {
    pub num_players: usize,
    pub num_tournaments: usize,
    /// Fraction of write operations (paper: 0.35).
    pub write_fraction: f64,
    /// Probability that a client works on a home-region tournament.
    pub locality: f64,
}

impl Default for TournamentConfig {
    fn default() -> Self {
        TournamentConfig {
            num_players: 60,
            num_tournaments: 12,
            write_fraction: 0.35,
            locality: 0.9,
        }
    }
}

/// The simulator workload for one consistency mode.
pub struct TournamentWorkload {
    pub app: Tournament,
    cfg: TournamentConfig,
    players: Vec<String>,
    tournaments: Vec<String>,
    reservations: ReservationTable,
    strong: StrongCoordinator,
    next_id: u64,
}

impl TournamentWorkload {
    pub fn new(mode: Mode, cfg: TournamentConfig) -> Self {
        let players = (0..cfg.num_players).map(|i| format!("p{i}")).collect();
        let tournaments = (0..cfg.num_tournaments).map(|i| format!("t{i}")).collect();
        TournamentWorkload {
            app: Tournament::new(mode),
            cfg,
            players,
            tournaments,
            reservations: ReservationTable::new(),
            strong: StrongCoordinator::new(0),
            next_id: 0,
        }
    }

    pub fn with_defaults(mode: Mode) -> Self {
        Self::new(mode, TournamentConfig::default())
    }

    fn mode(&self) -> Mode {
        self.app.mode
    }

    /// The tournament entity names this workload operates on (the
    /// final-repair status sweep iterates them).
    pub fn tournaments(&self) -> &[String] {
        &self.tournaments
    }

    /// Run the read-side compensations to a fixpoint after a simulation:
    /// every replica performs a `status` read of every tournament (reads
    /// repair observed capacity violations, §3.4/§4.2.2), replicating the
    /// compensations in between. No-op except under IPA.
    pub fn final_repair(&self, sim: &mut ipa_sim::Simulation) {
        let app = self.app;
        for _round in 0..2 {
            for region in 0..sim.regions() as u16 {
                let replica = sim.replica_mut(region);
                let mut tx = replica.begin();
                for t in &self.tournaments {
                    app.status(&mut tx, t).expect("status sweep");
                }
                tx.commit();
            }
            sim.sync_all();
        }
    }

    /// The typed coordination mechanism guarding one op label under this
    /// workload's mode — the per-op analogue of what
    /// [`ipa_coord::coordination_plan`] emits per flagged pair. Reads
    /// coordinate with nobody; Indigo writes take the per-tournament
    /// reservation (exclusive for structural removal, shared otherwise);
    /// Strong writes forward to the primary.
    pub fn op_backend(&self, label: &str) -> CoordBackend {
        match (self.mode(), label) {
            (_, "Status") => CoordBackend::None,
            (Mode::Indigo, "Remove") => CoordBackend::Reservation(LockMode::Exclusive),
            (Mode::Indigo, _) => CoordBackend::Reservation(LockMode::Shared),
            (Mode::Strong, _) => CoordBackend::Strong,
            _ => CoordBackend::None,
        }
    }
}

impl TournamentWorkload {
    /// Draw the next op from the workload RNG. Draw order (is_write,
    /// tournament, player, write-kind) is exactly the pre-split `op()`'s,
    /// so probabilistic schedules — and their digest pins — are
    /// unchanged.
    pub(crate) fn decide_op<C: OpCtx>(&mut self, ctx: &mut C, client: ClientInfo) -> TournamentOp {
        let regions = ctx.regions();
        let region = client.region;
        let is_write = ctx.rng().gen::<f64>() < self.cfg.write_fraction;
        let ti = pick_local(
            ctx.rng(),
            self.tournaments.len(),
            regions,
            region,
            self.cfg.locality,
        );
        let t = self.tournaments[ti].clone();
        let pi = ctx.rng().gen_range(0..self.players.len());
        let p = self.players[pi].clone();

        // Operation mix (writes sum to 1.0 within the write fraction).
        if !is_write {
            return TournamentOp::Status { t };
        }
        let x = ctx.rng().gen::<f64>();
        match x {
            x if x < 0.28 => TournamentOp::Enroll { p, t },
            x if x < 0.46 => TournamentOp::Disenroll { p, t },
            x if x < 0.70 => {
                let q = self.players[(pi + 1) % self.players.len()].clone();
                TournamentOp::DoMatch { p, q, t }
            }
            x if x < 0.82 => TournamentOp::Begin { t },
            x if x < 0.94 => TournamentOp::Finish { t },
            _ => TournamentOp::Remove { t },
        }
    }

    /// Execute a decided (or replayed) op. Deterministic: the only
    /// context draws are the commit-staging latencies, which replay from
    /// the recorded op trace.
    pub(crate) fn execute_op<C: OpCtx>(
        &mut self,
        ctx: &mut C,
        client: ClientInfo,
        op: &TournamentOp,
    ) -> OpOutcome {
        let region = client.region;
        let label = op.label();
        let t = match op {
            TournamentOp::Status { t }
            | TournamentOp::Enroll { t, .. }
            | TournamentOp::Disenroll { t, .. }
            | TournamentOp::DoMatch { t, .. }
            | TournamentOp::Begin { t }
            | TournamentOp::Finish { t }
            | TournamentOp::Remove { t } => t.clone(),
        };

        // Coordination cost first (reservations / the primary forward are
        // paid before executing), dispatched on the op's typed backend.
        let mut extra_wan = 0.0;
        let exec_region: u16 = match self.op_backend(label) {
            CoordBackend::Reservation(mode) => {
                match self
                    .reservations
                    .acquire(ctx, &format!("tourn:{t}"), region, mode)
                {
                    Some(c) => {
                        extra_wan += c;
                        region
                    }
                    None => return OpOutcome::unavailable(label),
                }
            }
            CoordBackend::Strong => match self.strong.forward_cost(ctx, region) {
                Some(c) => {
                    extra_wan += c;
                    self.strong.primary()
                }
                None => return OpOutcome::unavailable(label),
            },
            CoordBackend::None | CoordBackend::Escrow => region,
        };

        let app = self.app;
        self.next_id += 1;
        let (cost, _info) = ctx
            .commit(exec_region, |tx| match op {
                TournamentOp::Status { t } => app.status(tx, t),
                TournamentOp::Enroll { p, t } => app.enroll(tx, p, t),
                TournamentOp::Disenroll { p, t } => app.disenroll(tx, p, t),
                TournamentOp::DoMatch { p, q, t } => {
                    // The transaction code establishes the operation's
                    // preconditions locally (§2.2): both players enrolled
                    // and the tournament running.
                    let mut total = OpCost {
                        objects: 0,
                        updates: 0,
                    };
                    if !app.is_active(tx, t)? {
                        let c = app.begin_tourn(tx, t)?;
                        total.objects += c.objects;
                        total.updates += c.updates;
                    }
                    for player in [p, q] {
                        if !tx.contains(
                            crate::tournament::runtime::ENROLLED,
                            &ipa_crdt::Val::pair(player.as_str(), t.as_str()),
                        )? {
                            let c = app.enroll(tx, player, t)?;
                            total.objects += c.objects;
                            total.updates += c.updates;
                        }
                    }
                    let c = app.do_match(tx, p, q, t)?;
                    Ok(OpCost {
                        objects: (total.objects + c.objects).min(6),
                        updates: total.updates + c.updates,
                    })
                }
                TournamentOp::Begin { t } => app.begin_tourn(tx, t),
                TournamentOp::Finish { t } => app.finish_tourn(tx, t),
                TournamentOp::Remove { t } => app.rem_tourn(tx, t),
            })
            .expect("tournament op");
        let cost: OpCost = cost;

        // Removed tournaments come back quickly so the workload keeps its
        // entity population (matches the paper's steady-state runs).
        if matches!(op, TournamentOp::Remove { .. }) {
            let app = self.app;
            ctx.commit(exec_region, |tx| app.add_tourn(tx, &t).map(|_| ()))
                .expect("re-add tournament");
        }

        OpOutcome {
            label,
            objects: cost.objects,
            updates: cost.updates,
            extra_wan_ms: extra_wan,
            ok: true,
            violations: 0,
        }
    }
}

impl TournamentWorkload {
    /// Transport-agnostic setup body (seed data + initial reservation
    /// placement); [`Workload::setup`] and the threaded harness both
    /// call it.
    pub(crate) fn setup_in<C: OpCtx>(&mut self, ctx: &mut C) {
        let app = self.app;
        let players = self.players.clone();
        let tournaments = self.tournaments.clone();
        ctx.commit(0, |tx| {
            app.ensure_schema(tx)?;
            for p in &players {
                app.add_player(tx, p)?;
            }
            for t in &tournaments {
                app.add_tourn(tx, t)?;
                app.begin_tourn(tx, t)?;
            }
            Ok(())
        })
        .expect("seed data");
        // Indigo: tournament reservations start at their home region.
        let regions = ctx.regions() as u16;
        for (i, t) in self.tournaments.iter().enumerate() {
            self.reservations.grant(
                format!("tourn:{t}"),
                (i % regions as usize) as u16,
                LockMode::Shared,
            );
        }
    }
}

impl Workload for TournamentWorkload {
    fn setup(&mut self, ctx: &mut SimCtx<'_>) {
        self.setup_in(ctx);
    }

    fn op(&mut self, ctx: &mut SimCtx<'_>, client: ClientInfo) -> OpOutcome {
        let op = self.decide_op(ctx, client);
        self.execute_op(ctx, client, &op)
    }

    fn decide(&mut self, ctx: &mut SimCtx<'_>, client: ClientInfo) -> Option<AppOp> {
        Some(AppOp::new(self.decide_op(ctx, client).to_string()))
    }

    fn execute(&mut self, ctx: &mut SimCtx<'_>, client: ClientInfo, op: &AppOp) -> OpOutcome {
        let op: TournamentOp = op
            .as_str()
            .parse()
            .unwrap_or_else(|e| panic!("op trace: {e}"));
        self.execute_op(ctx, client, &op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipa_sim::{paper_topology, SimConfig, Simulation};

    fn run(mode: Mode, seed: u64) -> Simulation {
        let cfg = SimConfig {
            clients_per_region: 3,
            warmup_s: 0.5,
            duration_s: 3.0,
            seed,
            ..Default::default()
        };
        let mut sim = Simulation::new(paper_topology(), cfg);
        let mut w = TournamentWorkload::with_defaults(mode);
        sim.run(&mut w);
        sim.quiesce();
        sim
    }

    #[test]
    fn causal_is_fast_but_violates() {
        let sim = run(Mode::Causal, 11);
        let mean = sim.metrics.overall().unwrap().mean_ms;
        assert!(mean < 25.0, "causal ops are local: {mean}ms");
        let v: u64 = (0..3)
            .map(|r| crate::violations::tournament_violations(sim.replica(r)))
            .sum();
        assert!(v > 0, "contended causal run must violate invariants");
    }

    #[test]
    fn ipa_is_nearly_as_fast_and_never_violates() {
        let cfg = SimConfig {
            clients_per_region: 3,
            warmup_s: 0.5,
            duration_s: 3.0,
            seed: 11,
            ..Default::default()
        };
        let mut sim = Simulation::new(paper_topology(), cfg);
        let mut w = TournamentWorkload::with_defaults(Mode::Ipa);
        sim.run(&mut w);
        sim.quiesce();
        // Capacity is compensated on read (§3.4): a final status sweep
        // settles any residual overshoot before checking.
        w.final_repair(&mut sim);
        let mean = sim.metrics.overall().unwrap().mean_ms;
        assert!(mean < 30.0, "IPA ops stay local: {mean}ms");
        for r in 0..3 {
            assert_eq!(
                crate::violations::tournament_violations(sim.replica(r)),
                0,
                "replica {r} must satisfy all invariants"
            );
        }
    }

    #[test]
    fn strong_pays_wan_latency() {
        let causal = run(Mode::Causal, 13).metrics.overall().unwrap().mean_ms;
        let strong = run(Mode::Strong, 13).metrics.overall().unwrap().mean_ms;
        assert!(
            strong > causal + 10.0,
            "strong must be clearly slower: causal={causal} strong={strong}"
        );
    }

    #[test]
    fn indigo_sits_between_ipa_and_strong() {
        let ipa = run(Mode::Ipa, 17).metrics.overall().unwrap().mean_ms;
        let indigo = run(Mode::Indigo, 17).metrics.overall().unwrap().mean_ms;
        let strong = run(Mode::Strong, 17).metrics.overall().unwrap().mean_ms;
        assert!(indigo >= ipa * 0.8, "indigo ≥ ipa-ish: {indigo} vs {ipa}");
        assert!(indigo < strong, "indigo < strong: {indigo} vs {strong}");
    }
}
