//! The Tournament application — the paper's running example (Fig. 1).

pub mod runtime;
pub mod spec;
pub mod workload;

pub use runtime::{Tournament, CAPACITY};
pub use spec::tournament_spec;
pub use workload::TournamentWorkload;
