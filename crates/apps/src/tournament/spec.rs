//! The Tournament specification: a faithful transcription of the paper's
//! Figure 1 (annotated Java interface) into `ipa-spec`.

use ipa_spec::{AppSpec, AppSpecBuilder, ConvergencePolicy};

/// Build the Figure 1 specification.
///
/// Convergence rules follow the paper's chosen resolutions (§3.3, Fig. 3):
/// entity sets (`player`, `tournament`) are add-wins so restoring effects
/// win over concurrent removals; `enrolled` is add-wins (the Fig. 2b
/// "enroll prevails" choice); `active` is rem-wins so `finish_tourn`'s
/// clearing of `active` prevails over a concurrent `begin_tourn`.
pub fn tournament_spec() -> AppSpec {
    AppSpecBuilder::new("tournament")
        .sort("Player")
        .sort("Tournament")
        .predicate_bool("player", &["Player"])
        .predicate_bool("tournament", &["Tournament"])
        .predicate_bool("enrolled", &["Player", "Tournament"])
        .predicate_bool("active", &["Tournament"])
        .predicate_bool("finished", &["Tournament"])
        .predicate_bool("inMatch", &["Player", "Player", "Tournament"])
        .constant("Capacity", 16)
        .rule("player", ConvergencePolicy::AddWins)
        .rule("tournament", ConvergencePolicy::AddWins)
        .rule("enrolled", ConvergencePolicy::AddWins)
        .rule("inMatch", ConvergencePolicy::AddWins)
        .rule("active", ConvergencePolicy::RemWins)
        .rule("finished", ConvergencePolicy::AddWins)
        // @Inv lines 1–9 of Figure 1.
        .invariant_str(
            "forall(Player: p, Tournament: t) :- enrolled(p, t) => player(p) and tournament(t)",
        )
        .invariant_str(
            "forall(Player: p, q, Tournament: t) :- inMatch(p, q, t) => enrolled(p, t) and enrolled(q, t) and (active(t) or finished(t))",
        )
        .invariant_str("forall(Tournament: t) :- #enrolled(*, t) <= Capacity")
        .invariant_str("forall(Tournament: t) :- active(t) => tournament(t)")
        .invariant_str("forall(Tournament: t) :- finished(t) => tournament(t)")
        .invariant_str("forall(Tournament: t) :- not(active(t) and finished(t))")
        // Operations (Fig. 1 lines 12–35).
        .operation("add_player", &[("p", "Player")], |op| op.set_true("player", &["p"]))
        .operation("add_tourn", &[("t", "Tournament")], |op| {
            op.set_true("tournament", &["t"])
        })
        .operation("rem_tourn", &[("t", "Tournament")], |op| {
            op.set_false("tournament", &["t"])
        })
        .operation("enroll", &[("p", "Player"), ("t", "Tournament")], |op| {
            op.set_true("enrolled", &["p", "t"])
        })
        .operation("disenroll", &[("p", "Player"), ("t", "Tournament")], |op| {
            op.set_false("enrolled", &["p", "t"])
        })
        .operation("begin_tourn", &[("t", "Tournament")], |op| op.set_true("active", &["t"]))
        .operation("finish_tourn", &[("t", "Tournament")], |op| {
            op.set_true("finished", &["t"]).set_false("active", &["t"])
        })
        .operation(
            "do_match",
            &[("p", "Player"), ("q", "Player"), ("t", "Tournament")],
            |op| op.set_true("inMatch", &["p", "q", "t"]),
        )
        .build()
        .expect("the Figure 1 specification is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipa_core::classify::{classify, InvariantClass};

    #[test]
    fn spec_matches_figure_1() {
        let spec = tournament_spec();
        assert_eq!(spec.operations.len(), 8);
        assert_eq!(spec.invariants.len(), 6);
        assert!(spec.validate().is_ok());
        assert!(
            spec.operation("rem_player").is_none(),
            "Fig. 1 excerpt has no rem_player"
        );
    }

    #[test]
    fn invariant_classes_cover_table_1_rows() {
        let spec = tournament_spec();
        let classes: Vec<InvariantClass> = spec.invariants.iter().map(classify).collect();
        assert!(classes.contains(&InvariantClass::ReferentialIntegrity));
        assert!(classes.contains(&InvariantClass::Disjunction));
        assert!(classes.contains(&InvariantClass::AggregationConstraint));
    }
}
