//! Invariant-violation scanners: evaluate each application's invariants
//! against a replica's materialized state and count the broken instances.
//!
//! These are the "Inv. violations count" of the paper's Figure 7 and the
//! ground truth for the integration tests (Causal violates, IPA does not).

use crate::tournament::runtime as tourn;
use ipa_crdt::Val;
use ipa_store::{Key, Replica};
use std::collections::{BTreeMap, BTreeSet};

fn set_members(replica: &Replica, key: &str) -> Vec<Val> {
    let Some(obj) = replica.object(&Key::new(key)) else {
        return Vec::new();
    };
    match obj {
        ipa_crdt::Object::AWSet(s) => s.elements().cloned().collect(),
        ipa_crdt::Object::RWSet(s) => s.elements().cloned().collect(),
        ipa_crdt::Object::CompSet(s) => {
            // Raw view: includes excess not yet compensated.
            let mut out: Vec<Val> = Vec::new();
            for e in sorted_compset_elements(s) {
                out.push(e);
            }
            out
        }
        ipa_crdt::Object::AWMap(m) => m.keys().cloned().collect(),
        _ => Vec::new(),
    }
}

fn sorted_compset_elements(s: &ipa_crdt::CompensationSet<Val>) -> Vec<Val> {
    // CompensationSet only exposes contains/read; reconstruct raw
    // membership through its AWSet view helpers.
    let mut out = Vec::new();
    let mut probe = s.clone();
    let read = probe.read();
    out.extend(read.elements);
    out.extend(read.cancelled);
    out
}

fn contains(replica: &Replica, key: &str, v: &Val) -> bool {
    replica
        .object(&Key::new(key))
        .and_then(|o| o.set_contains(v))
        .unwrap_or(false)
}

/// Count violated invariant instances of the Tournament app (Fig. 1).
pub fn tournament_violations(replica: &Replica) -> u64 {
    let mut violations = 0u64;

    // enrolled(p, t) => player(p) and tournament(t)
    let enrolled = set_members(replica, tourn::ENROLLED);
    for e in &enrolled {
        let (Some(p), Some(t)) = (e.fst(), e.snd()) else {
            continue;
        };
        if !contains(replica, tourn::PLAYERS, p) || !contains(replica, tourn::TOURNS, t) {
            violations += 1;
        }
    }

    // inMatch(p, q, t) => enrolled(p,t) and enrolled(q,t) and (active or finished)
    for m in set_members(replica, tourn::MATCHES) {
        let Val::Triple(p, q, t) = &m else { continue };
        let ep = Val::Pair(p.clone(), t.clone());
        let eq = Val::Pair(q.clone(), t.clone());
        let phase_ok = contains(replica, tourn::ACTIVE, t) || contains(replica, tourn::FINISHED, t);
        if !contains(replica, tourn::ENROLLED, &ep)
            || !contains(replica, tourn::ENROLLED, &eq)
            || !phase_ok
        {
            violations += 1;
        }
    }

    // #enrolled(*, t) <= Capacity
    let mut per_tourn: BTreeMap<Val, usize> = BTreeMap::new();
    for e in &enrolled {
        if let Some(t) = e.snd() {
            *per_tourn.entry(t.clone()).or_insert(0) += 1;
        }
    }
    violations += per_tourn.values().filter(|&&n| n > tourn::CAPACITY).count() as u64;

    // active(t) => tournament(t); finished(t) => tournament(t);
    // not(active(t) and finished(t))
    let active: BTreeSet<Val> = set_members(replica, tourn::ACTIVE).into_iter().collect();
    let finished: BTreeSet<Val> = set_members(replica, tourn::FINISHED).into_iter().collect();
    for t in &active {
        if !contains(replica, tourn::TOURNS, t) {
            violations += 1;
        }
        if finished.contains(t) {
            violations += 1;
        }
    }
    for t in &finished {
        if !contains(replica, tourn::TOURNS, t) {
            violations += 1;
        }
    }
    violations
}

/// Count oversold events in the Ticket app: raw set size beyond capacity
/// (under Causal the set is a plain AWSet keyed per event).
pub fn ticket_violations(replica: &Replica, events: &[String], capacity: usize) -> u64 {
    let mut v = 0;
    for e in events {
        let key = format!("ticket/sold/{e}");
        let n = set_members(replica, &key).len();
        if n > capacity {
            v += 1;
        }
    }
    v
}

/// Count Twitter referential-integrity violations: timeline entries whose
/// tweet no longer exists, and follow edges with missing users.
pub fn twitter_violations(replica: &Replica) -> u64 {
    let mut v = 0;
    let entries = set_members(replica, crate::twitter::runtime::ENTRIES);
    for e in &entries {
        if let Val::Triple(_, tweet, _) = e {
            if !contains(replica, crate::twitter::runtime::TWEETS, tweet) {
                v += 1;
            }
        }
    }
    for f in set_members(replica, crate::twitter::runtime::FOLLOWS) {
        let (Some(a), Some(b)) = (f.fst(), f.snd()) else {
            continue;
        };
        if !contains(replica, crate::twitter::runtime::USERS, a)
            || !contains(replica, crate::twitter::runtime::USERS, b)
        {
            v += 1;
        }
    }
    v
}

/// Count TPC violations: negative stock values and orders referencing
/// missing products.
pub fn tpc_violations(replica: &Replica, items: &[String]) -> u64 {
    let mut v = 0;
    for i in items {
        let key = Key::new(format!("tpc/stock/{i}"));
        if let Some(obj) = replica.object(&key) {
            if let Some(c) = obj.as_pncounter() {
                if c.value() < 0 {
                    v += 1;
                }
            }
        }
    }
    for o in set_members(replica, crate::tpc::runtime::ORDERS) {
        if let Some(p) = o.snd() {
            if !contains(replica, crate::tpc::runtime::PRODUCTS, p) {
                v += 1;
            }
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipa_crdt::{ObjectKind, ReplicaId};

    #[test]
    fn empty_replica_has_no_violations() {
        let r = Replica::new(ReplicaId(0));
        assert_eq!(tournament_violations(&r), 0);
        assert_eq!(twitter_violations(&r), 0);
        assert_eq!(tpc_violations(&r, &["i1".into()]), 0);
    }

    #[test]
    fn orphan_enrollment_is_counted() {
        let mut r = Replica::new(ReplicaId(0));
        let mut tx = r.begin();
        tx.ensure(tourn::ENROLLED, ObjectKind::AWSet).unwrap();
        tx.aw_add(tourn::ENROLLED, Val::pair("p1", "ghost"))
            .unwrap();
        tx.commit();
        assert_eq!(tournament_violations(&r), 1);
    }

    #[test]
    fn capacity_violation_is_counted() {
        let mut r = Replica::new(ReplicaId(0));
        let mut tx = r.begin();
        tx.ensure(tourn::ENROLLED, ObjectKind::AWSet).unwrap();
        tx.ensure(tourn::PLAYERS, ObjectKind::AWMap).unwrap();
        tx.ensure(tourn::TOURNS, ObjectKind::AWMap).unwrap();
        tx.map_put(tourn::TOURNS, Val::str("t"), Val::str("m"))
            .unwrap();
        for i in 0..=tourn::CAPACITY {
            let p = format!("p{i}");
            tx.map_put(tourn::PLAYERS, Val::str(&p), Val::str("x"))
                .unwrap();
            tx.aw_add(tourn::ENROLLED, Val::pair(p, "t")).unwrap();
        }
        tx.commit();
        assert_eq!(tournament_violations(&r), 1, "one over-capacity tournament");
    }
}
