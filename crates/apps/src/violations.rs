//! Invariant-violation scanners: evaluate each application's invariants
//! against a replica's materialized state and count the broken instances.
//!
//! These are the "Inv. violations count" of the paper's Figure 7 and the
//! ground truth for the integration tests (Causal violates, IPA does not).

use crate::tournament::runtime as tourn;
use ipa_crdt::Val;
use ipa_store::{Key, Replica};
use std::collections::{BTreeMap, BTreeSet};

fn set_members(replica: &Replica, key: &str) -> Vec<Val> {
    let Some(obj) = replica.object(&Key::new(key)) else {
        return Vec::new();
    };
    match obj {
        ipa_crdt::Object::AWSet(s) => s.elements().cloned().collect(),
        ipa_crdt::Object::RWSet(s) => s.elements().cloned().collect(),
        ipa_crdt::Object::CompSet(s) => {
            // Raw view: includes excess not yet compensated.
            let mut out: Vec<Val> = Vec::new();
            for e in sorted_compset_elements(s) {
                out.push(e);
            }
            out
        }
        ipa_crdt::Object::AWMap(m) => m.keys().cloned().collect(),
        _ => Vec::new(),
    }
}

fn sorted_compset_elements(s: &ipa_crdt::CompensationSet<Val>) -> Vec<Val> {
    // CompensationSet only exposes contains/read; reconstruct raw
    // membership through its AWSet view helpers.
    let mut out = Vec::new();
    let mut probe = s.clone();
    let read = probe.read();
    out.extend(read.elements);
    out.extend(read.cancelled);
    out
}

fn contains(replica: &Replica, key: &str, v: &Val) -> bool {
    replica
        .object(&Key::new(key))
        .and_then(|o| o.set_contains(v))
        .unwrap_or(false)
}

/// `enrolled(p, t) ⇒ player(p) ∧ tournament(t)` — count of orphan
/// enrollments.
pub fn tournament_enrollment_referential(replica: &Replica) -> u64 {
    let mut violations = 0u64;
    for e in &set_members(replica, tourn::ENROLLED) {
        let (Some(p), Some(t)) = (e.fst(), e.snd()) else {
            continue;
        };
        if !contains(replica, tourn::PLAYERS, p) || !contains(replica, tourn::TOURNS, t) {
            violations += 1;
        }
    }
    violations
}

/// `inMatch(p, q, t) ⇒ enrolled(p,t) ∧ enrolled(q,t)` — count of
/// matches with missing enrollments (touch-protected under IPA, so this
/// part holds continuously).
pub fn tournament_match_referential(replica: &Replica) -> u64 {
    let mut violations = 0u64;
    for m in set_members(replica, tourn::MATCHES) {
        let Val::Triple(p, q, t) = &m else { continue };
        let ep = Val::Pair(p.clone(), t.clone());
        let eq = Val::Pair(q.clone(), t.clone());
        if !contains(replica, tourn::ENROLLED, &ep) || !contains(replica, tourn::ENROLLED, &eq) {
            violations += 1;
        }
    }
    violations
}

/// `inMatch(p, q, t) ⇒ active(t) ∨ finished(t)` — count of matches in a
/// tournament that is neither running nor finished. This disjunction is
/// *not* effect-preserved by the per-predicate resolution: two
/// concurrent finish→begin(restart) chains can annihilate both phase
/// marks (each begin observed-removes its own branch's `finished` tag,
/// each rem-wins finish defeats the other branch's concurrent `active`
/// add). IPA repairs it with the `status` read-side compensation, so it
/// is a final-phase invariant like capacity.
pub fn tournament_match_phase(replica: &Replica) -> u64 {
    let mut violations = 0u64;
    for m in set_members(replica, tourn::MATCHES) {
        let Val::Triple(_, _, t) = &m else { continue };
        if !contains(replica, tourn::ACTIVE, t) && !contains(replica, tourn::FINISHED, t) {
            violations += 1;
        }
    }
    violations
}

/// `#enrolled(*, t) ≤ Capacity` — count of over-capacity tournaments.
pub fn tournament_capacity(replica: &Replica) -> u64 {
    let mut per_tourn: BTreeMap<Val, usize> = BTreeMap::new();
    for e in &set_members(replica, tourn::ENROLLED) {
        if let Some(t) = e.snd() {
            *per_tourn.entry(t.clone()).or_insert(0) += 1;
        }
    }
    per_tourn.values().filter(|&&n| n > tourn::CAPACITY).count() as u64
}

/// `active(t) ⇒ tournament(t)`, `finished(t) ⇒ tournament(t)`,
/// `¬(active(t) ∧ finished(t))` — phase referential integrity and
/// mutual exclusion.
pub fn tournament_phase(replica: &Replica) -> u64 {
    let mut violations = 0u64;
    let active: BTreeSet<Val> = set_members(replica, tourn::ACTIVE).into_iter().collect();
    let finished: BTreeSet<Val> = set_members(replica, tourn::FINISHED).into_iter().collect();
    for t in &active {
        if !contains(replica, tourn::TOURNS, t) {
            violations += 1;
        }
        if finished.contains(t) {
            violations += 1;
        }
    }
    for t in &finished {
        if !contains(replica, tourn::TOURNS, t) {
            violations += 1;
        }
    }
    violations
}

/// Count violated invariant instances of the Tournament app (Fig. 1) —
/// the sum over the registry's individual checks.
pub fn tournament_violations(replica: &Replica) -> u64 {
    tournament_enrollment_referential(replica)
        + tournament_match_referential(replica)
        + tournament_match_phase(replica)
        + tournament_capacity(replica)
        + tournament_phase(replica)
}

/// Count oversold events in the Ticket app: raw set size beyond capacity
/// (under Causal the set is a plain AWSet keyed per event).
pub fn ticket_violations(replica: &Replica, events: &[String], capacity: usize) -> u64 {
    let mut v = 0;
    for e in events {
        let key = format!("ticket/sold/{e}");
        let n = set_members(replica, &key).len();
        if n > capacity {
            v += 1;
        }
    }
    v
}

/// Count oversold events in the escrow ticket-sale app, where each
/// event carries its own capacity (one contended hot event plus a cheap
/// tail). Unlike [`ticket_violations`] this is a *continuous* invariant
/// for the escrow backend: rights are consumed before a purchase
/// commits, so no causal replica state may ever exceed a capacity.
pub fn sale_violations(replica: &Replica, events: &[(String, usize)]) -> u64 {
    let mut v = 0;
    for (e, cap) in events {
        let key = format!("ticket/sold/{e}");
        if set_members(replica, &key).len() > *cap {
            v += 1;
        }
    }
    v
}

/// Timeline entries whose tweet no longer exists.
pub fn twitter_timeline_referential(replica: &Replica) -> u64 {
    let mut v = 0;
    for e in &set_members(replica, crate::twitter::runtime::ENTRIES) {
        if let Val::Triple(_, tweet, _) = e {
            if !contains(replica, crate::twitter::runtime::TWEETS, tweet) {
                v += 1;
            }
        }
    }
    v
}

/// Follow edges with missing users on either end.
pub fn twitter_follow_referential(replica: &Replica) -> u64 {
    let mut v = 0;
    for f in set_members(replica, crate::twitter::runtime::FOLLOWS) {
        let (Some(a), Some(b)) = (f.fst(), f.snd()) else {
            continue;
        };
        if !contains(replica, crate::twitter::runtime::USERS, a)
            || !contains(replica, crate::twitter::runtime::USERS, b)
        {
            v += 1;
        }
    }
    v
}

/// Count Twitter referential-integrity violations: timeline entries whose
/// tweet no longer exists, and follow edges with missing users.
pub fn twitter_violations(replica: &Replica) -> u64 {
    twitter_timeline_referential(replica) + twitter_follow_referential(replica)
}

/// Negative stock counters (the TPC numeric invariant).
pub fn tpc_stock_nonnegative(replica: &Replica, items: &[String]) -> u64 {
    let mut v = 0;
    for i in items {
        let key = Key::new(format!("tpc/stock/{i}"));
        if let Some(obj) = replica.object(&key) {
            if let Some(c) = obj.as_pncounter() {
                if c.value() < 0 {
                    v += 1;
                }
            }
        }
    }
    v
}

/// Orders referencing missing products (TPC referential integrity).
pub fn tpc_order_referential(replica: &Replica) -> u64 {
    let mut v = 0;
    for o in set_members(replica, crate::tpc::runtime::ORDERS) {
        if let Some(p) = o.snd() {
            if !contains(replica, crate::tpc::runtime::PRODUCTS, p) {
                v += 1;
            }
        }
    }
    v
}

/// Count TPC violations: negative stock values and orders referencing
/// missing products.
pub fn tpc_violations(replica: &Replica, items: &[String]) -> u64 {
    tpc_stock_nonnegative(replica, items) + tpc_order_referential(replica)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipa_crdt::{ObjectKind, ReplicaId};

    #[test]
    fn empty_replica_has_no_violations() {
        let r = Replica::new(ReplicaId(0));
        assert_eq!(tournament_violations(&r), 0);
        assert_eq!(twitter_violations(&r), 0);
        assert_eq!(tpc_violations(&r, &["i1".into()]), 0);
    }

    #[test]
    fn orphan_enrollment_is_counted() {
        let mut r = Replica::new(ReplicaId(0));
        let mut tx = r.begin();
        tx.ensure(tourn::ENROLLED, ObjectKind::AWSet).unwrap();
        tx.aw_add(tourn::ENROLLED, Val::pair("p1", "ghost"))
            .unwrap();
        tx.commit();
        assert_eq!(tournament_violations(&r), 1);
    }

    #[test]
    fn capacity_violation_is_counted() {
        let mut r = Replica::new(ReplicaId(0));
        let mut tx = r.begin();
        tx.ensure(tourn::ENROLLED, ObjectKind::AWSet).unwrap();
        tx.ensure(tourn::PLAYERS, ObjectKind::AWMap).unwrap();
        tx.ensure(tourn::TOURNS, ObjectKind::AWMap).unwrap();
        tx.map_put(tourn::TOURNS, Val::str("t"), Val::str("m"))
            .unwrap();
        for i in 0..=tourn::CAPACITY {
            let p = format!("p{i}");
            tx.map_put(tourn::PLAYERS, Val::str(&p), Val::str("x"))
                .unwrap();
            tx.aw_add(tourn::ENROLLED, Val::pair(p, "t")).unwrap();
        }
        tx.commit();
        assert_eq!(tournament_violations(&r), 1, "one over-capacity tournament");
    }
}
