//! The Fig. 6 Twitter workload: per-operation latency under the three
//! strategies.

use crate::twitter::runtime::{Strategy, Twitter};
use ipa_sim::{ClientInfo, OpOutcome, SimCtx, Workload};
use rand::Rng;

/// Workload parameters.
#[derive(Clone, Debug)]
pub struct TwitterConfig {
    pub num_users: usize,
    /// Follow edges seeded per user.
    pub follows_per_user: usize,
    /// Recent-tweet pool size for retweet/delete targets.
    pub recent_pool: usize,
}

impl Default for TwitterConfig {
    fn default() -> Self {
        TwitterConfig {
            num_users: 30,
            follows_per_user: 5,
            recent_pool: 64,
        }
    }
}

/// Simulator workload for one strategy.
pub struct TwitterWorkload {
    pub app: Twitter,
    cfg: TwitterConfig,
    users: Vec<String>,
    recent: Vec<String>,
    next_id: u64,
}

impl TwitterWorkload {
    pub fn new(strategy: Strategy, cfg: TwitterConfig) -> Self {
        let users = (0..cfg.num_users).map(|i| format!("u{i}")).collect();
        TwitterWorkload {
            app: Twitter::new(strategy),
            cfg,
            users,
            recent: Vec::new(),
            next_id: 0,
        }
    }

    pub fn with_defaults(strategy: Strategy) -> Self {
        Self::new(strategy, TwitterConfig::default())
    }

    fn fresh_tweet_id(&mut self) -> String {
        self.next_id += 1;
        let id = format!("tw{}", self.next_id);
        if self.recent.len() >= self.cfg.recent_pool {
            self.recent.remove(0);
        }
        self.recent.push(id.clone());
        id
    }
}

impl Workload for TwitterWorkload {
    fn setup(&mut self, ctx: &mut SimCtx<'_>) {
        let app = self.app;
        let users = self.users.clone();
        let fpu = self.cfg.follows_per_user;
        ctx.commit(0, |tx| {
            app.ensure_schema(tx)?;
            for u in &users {
                app.add_user(tx, u)?;
            }
            for (i, u) in users.iter().enumerate() {
                for k in 1..=fpu {
                    let followee = &users[(i + k) % users.len()];
                    app.follow(tx, u, followee)?;
                }
            }
            Ok(())
        })
        .expect("seed twitter");
    }

    fn op(&mut self, ctx: &mut SimCtx<'_>, client: ClientInfo) -> OpOutcome {
        let region = client.region;
        let u = self.users[ctx.rng().gen_range(0..self.users.len())].clone();
        let v = self.users[ctx.rng().gen_range(0..self.users.len())].clone();
        let x = ctx.rng().gen::<f64>();
        let app = self.app;

        // Mix: timeline-read heavy, like the application it models.
        let (label, target): (&'static str, Option<String>) = match x {
            x if x < 0.50 => ("Timeline", None),
            x if x < 0.70 => ("Tweet", Some(self.fresh_tweet_id())),
            x if x < 0.80 => {
                let t = self
                    .recent
                    .get(
                        ctx.rng()
                            .gen_range(0..self.recent.len().max(1))
                            .min(self.recent.len().saturating_sub(1)),
                    )
                    .cloned();
                match t {
                    Some(t) => ("Retweet", Some(t)),
                    None => ("Timeline", None),
                }
            }
            x if x < 0.85 => {
                let t = self.recent.pop();
                match t {
                    Some(t) => ("Del. Tweet", Some(t)),
                    None => ("Timeline", None),
                }
            }
            x if x < 0.91 => ("Follow", None),
            x if x < 0.95 => ("Unfollow", None),
            x if x < 0.975 => ("Add user", Some(format!("newu{}", self.next_id))),
            _ => ("Rem user", None),
        };

        let (cost, _info) = ctx
            .commit(region, |tx| match label {
                "Timeline" => app.timeline(tx, &u).map(|(_, c)| c),
                "Tweet" => app.tweet(tx, &u, target.as_deref().expect("id")),
                "Retweet" => app.retweet(tx, &u, target.as_deref().expect("id")),
                "Del. Tweet" => app.del_tweet(tx, target.as_deref().expect("id")),
                "Follow" => app.follow(tx, &u, &v),
                "Unfollow" => app.unfollow(tx, &u, &v),
                "Add user" => app.add_user(tx, target.as_deref().expect("id")),
                "Rem user" => app.rem_user(tx, &v),
                _ => unreachable!(),
            })
            .expect("twitter op");
        // Removed users come back so the population stays constant.
        if label == "Rem user" {
            let v2 = v.clone();
            ctx.commit(region, |tx| app.add_user(tx, &v2).map(|_| ()))
                .expect("re-add user");
        }

        OpOutcome {
            label,
            objects: cost.objects,
            updates: cost.updates,
            extra_wan_ms: 0.0,
            ok: true,
            violations: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipa_sim::{paper_topology, SimConfig, Simulation};

    fn run(strategy: Strategy, seed: u64) -> Simulation {
        let cfg = SimConfig {
            clients_per_region: 2,
            warmup_s: 0.5,
            duration_s: 3.0,
            seed,
            ..Default::default()
        };
        let mut sim = Simulation::new(paper_topology(), cfg);
        let mut w = TwitterWorkload::with_defaults(strategy);
        sim.run(&mut w);
        sim.quiesce();
        sim
    }

    #[test]
    fn all_strategies_run_and_stay_local() {
        for s in [Strategy::Causal, Strategy::AddWins, Strategy::RemWins] {
            let sim = run(s, 23);
            assert!(
                sim.metrics.completed > 100,
                "{s}: {}",
                sim.metrics.completed
            );
            let mean = sim.metrics.overall().unwrap().mean_ms;
            assert!(mean < 30.0, "{s}: all ops are local, mean={mean}");
        }
    }

    #[test]
    fn add_wins_write_ops_cost_more_than_causal() {
        let causal = run(Strategy::Causal, 31);
        let aw = run(Strategy::AddWins, 31);
        let c_tweet = causal.metrics.summary("Tweet").unwrap().mean_ms;
        let a_tweet = aw.metrics.summary("Tweet").unwrap().mean_ms;
        assert!(
            a_tweet > c_tweet,
            "add-wins tweet pays the restore cost: {a_tweet} vs {c_tweet}"
        );
    }

    #[test]
    fn rem_wins_reads_cost_more_than_causal() {
        let causal = run(Strategy::Causal, 37);
        let rw = run(Strategy::RemWins, 37);
        let c_tl = causal.metrics.summary("Timeline").unwrap().mean_ms;
        let r_tl = rw.metrics.summary("Timeline").unwrap().mean_ms;
        assert!(
            r_tl > c_tl,
            "rem-wins timeline pays the compensation check: {r_tl} vs {c_tl}"
        );
    }
}
