//! The Fig. 6 Twitter workload: per-operation latency under the three
//! strategies.

use crate::twitter::runtime::{Strategy, Twitter};
use ipa_sim::{AppOp, ClientInfo, OpCtx, OpOutcome, SimCtx, Workload};
use rand::Rng;
use std::fmt;
use std::str::FromStr;

/// One decided twitter operation, with fully resolved user and tweet
/// ids (the recent-tweet pool and the id counter are decide-time state;
/// replay never touches them).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TwitterOp {
    Timeline { u: String },
    Tweet { u: String, id: String },
    Retweet { u: String, id: String },
    DelTweet { id: String },
    Follow { u: String, v: String },
    Unfollow { u: String, v: String },
    AddUser { name: String },
    RemUser { v: String },
}

impl TwitterOp {
    /// The metrics label (identical to the pre-split `op()` labels).
    pub fn label(&self) -> &'static str {
        match self {
            TwitterOp::Timeline { .. } => "Timeline",
            TwitterOp::Tweet { .. } => "Tweet",
            TwitterOp::Retweet { .. } => "Retweet",
            TwitterOp::DelTweet { .. } => "Del. Tweet",
            TwitterOp::Follow { .. } => "Follow",
            TwitterOp::Unfollow { .. } => "Unfollow",
            TwitterOp::AddUser { .. } => "Add user",
            TwitterOp::RemUser { .. } => "Rem user",
        }
    }
}

impl fmt::Display for TwitterOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TwitterOp::Timeline { u } => write!(f, "timeline {u}"),
            TwitterOp::Tweet { u, id } => write!(f, "tweet {u} {id}"),
            TwitterOp::Retweet { u, id } => write!(f, "retweet {u} {id}"),
            TwitterOp::DelTweet { id } => write!(f, "deltweet {id}"),
            TwitterOp::Follow { u, v } => write!(f, "follow {u} {v}"),
            TwitterOp::Unfollow { u, v } => write!(f, "unfollow {u} {v}"),
            TwitterOp::AddUser { name } => write!(f, "adduser {name}"),
            TwitterOp::RemUser { v } => write!(f, "remuser {v}"),
        }
    }
}

impl FromStr for TwitterOp {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let tok: Vec<&str> = s.split_whitespace().collect();
        let own = |i: usize| tok[i].to_owned();
        match (tok.first().copied(), tok.len()) {
            (Some("timeline"), 2) => Ok(TwitterOp::Timeline { u: own(1) }),
            (Some("tweet"), 3) => Ok(TwitterOp::Tweet {
                u: own(1),
                id: own(2),
            }),
            (Some("retweet"), 3) => Ok(TwitterOp::Retweet {
                u: own(1),
                id: own(2),
            }),
            (Some("deltweet"), 2) => Ok(TwitterOp::DelTweet { id: own(1) }),
            (Some("follow"), 3) => Ok(TwitterOp::Follow {
                u: own(1),
                v: own(2),
            }),
            (Some("unfollow"), 3) => Ok(TwitterOp::Unfollow {
                u: own(1),
                v: own(2),
            }),
            (Some("adduser"), 2) => Ok(TwitterOp::AddUser { name: own(1) }),
            (Some("remuser"), 2) => Ok(TwitterOp::RemUser { v: own(1) }),
            _ => Err(format!("bad twitter op {s:?}")),
        }
    }
}

/// Workload parameters.
#[derive(Clone, Debug)]
pub struct TwitterConfig {
    pub num_users: usize,
    /// Follow edges seeded per user.
    pub follows_per_user: usize,
    /// Recent-tweet pool size for retweet/delete targets.
    pub recent_pool: usize,
}

impl Default for TwitterConfig {
    fn default() -> Self {
        TwitterConfig {
            num_users: 30,
            follows_per_user: 5,
            recent_pool: 64,
        }
    }
}

/// Simulator workload for one strategy.
pub struct TwitterWorkload {
    pub app: Twitter,
    cfg: TwitterConfig,
    users: Vec<String>,
    recent: Vec<String>,
    next_id: u64,
}

impl TwitterWorkload {
    pub fn new(strategy: Strategy, cfg: TwitterConfig) -> Self {
        let users = (0..cfg.num_users).map(|i| format!("u{i}")).collect();
        TwitterWorkload {
            app: Twitter::new(strategy),
            cfg,
            users,
            recent: Vec::new(),
            next_id: 0,
        }
    }

    pub fn with_defaults(strategy: Strategy) -> Self {
        Self::new(strategy, TwitterConfig::default())
    }

    fn fresh_tweet_id(&mut self) -> String {
        self.next_id += 1;
        let id = format!("tw{}", self.next_id);
        if self.recent.len() >= self.cfg.recent_pool {
            self.recent.remove(0);
        }
        self.recent.push(id.clone());
        id
    }
}

impl TwitterWorkload {
    /// Transport-agnostic setup body; [`Workload::setup`] and the
    /// threaded harness both call it.
    pub(crate) fn setup_in<C: OpCtx>(&mut self, ctx: &mut C) {
        let app = self.app;
        let users = self.users.clone();
        let fpu = self.cfg.follows_per_user;
        ctx.commit(0, |tx| {
            app.ensure_schema(tx)?;
            for u in &users {
                app.add_user(tx, u)?;
            }
            for (i, u) in users.iter().enumerate() {
                for k in 1..=fpu {
                    let followee = &users[(i + k) % users.len()];
                    app.follow(tx, u, followee)?;
                }
            }
            Ok(())
        })
        .expect("seed twitter");
    }
}

impl Workload for TwitterWorkload {
    fn setup(&mut self, ctx: &mut SimCtx<'_>) {
        self.setup_in(ctx);
    }

    fn op(&mut self, ctx: &mut SimCtx<'_>, client: ClientInfo) -> OpOutcome {
        let op = self.decide_op(ctx);
        self.execute_op(ctx, client, &op)
    }

    fn decide(&mut self, ctx: &mut SimCtx<'_>, _client: ClientInfo) -> Option<AppOp> {
        Some(AppOp::new(self.decide_op(ctx).to_string()))
    }

    fn execute(&mut self, ctx: &mut SimCtx<'_>, client: ClientInfo, op: &AppOp) -> OpOutcome {
        let op: TwitterOp = op
            .as_str()
            .parse()
            .unwrap_or_else(|e| panic!("op trace: {e}"));
        self.execute_op(ctx, client, &op)
    }
}

impl TwitterWorkload {
    /// Draw the next op (actor, target user, op-kind, then per-branch
    /// target draws — the pre-split order, so probabilistic schedules
    /// are unchanged).
    pub(crate) fn decide_op<C: OpCtx>(&mut self, ctx: &mut C) -> TwitterOp {
        let u = self.users[ctx.rng().gen_range(0..self.users.len())].clone();
        let v = self.users[ctx.rng().gen_range(0..self.users.len())].clone();
        let x = ctx.rng().gen::<f64>();

        // Mix: timeline-read heavy, like the application it models.
        match x {
            x if x < 0.50 => TwitterOp::Timeline { u },
            x if x < 0.70 => TwitterOp::Tweet {
                u,
                id: self.fresh_tweet_id(),
            },
            x if x < 0.80 => {
                let t = self
                    .recent
                    .get(
                        ctx.rng()
                            .gen_range(0..self.recent.len().max(1))
                            .min(self.recent.len().saturating_sub(1)),
                    )
                    .cloned();
                match t {
                    Some(id) => TwitterOp::Retweet { u, id },
                    None => TwitterOp::Timeline { u },
                }
            }
            x if x < 0.85 => match self.recent.pop() {
                Some(id) => TwitterOp::DelTweet { id },
                None => TwitterOp::Timeline { u },
            },
            x if x < 0.91 => TwitterOp::Follow { u, v },
            x if x < 0.95 => TwitterOp::Unfollow { u, v },
            x if x < 0.975 => TwitterOp::AddUser {
                name: format!("newu{}", self.next_id),
            },
            _ => TwitterOp::RemUser { v },
        }
    }

    /// Execute a decided (or replayed) op against the store. Pure: all
    /// ids come resolved in the op.
    pub(crate) fn execute_op<C: OpCtx>(
        &mut self,
        ctx: &mut C,
        client: ClientInfo,
        op: &TwitterOp,
    ) -> OpOutcome {
        let region = client.region;
        let app = self.app;
        let label = op.label();

        let (cost, _info) = ctx
            .commit(region, |tx| match op {
                TwitterOp::Timeline { u } => app.timeline(tx, u).map(|(_, c)| c),
                TwitterOp::Tweet { u, id } => app.tweet(tx, u, id),
                TwitterOp::Retweet { u, id } => app.retweet(tx, u, id),
                TwitterOp::DelTweet { id } => app.del_tweet(tx, id),
                TwitterOp::Follow { u, v } => app.follow(tx, u, v),
                TwitterOp::Unfollow { u, v } => app.unfollow(tx, u, v),
                TwitterOp::AddUser { name } => app.add_user(tx, name),
                TwitterOp::RemUser { v } => app.rem_user(tx, v),
            })
            .expect("twitter op");
        // Removed users come back so the population stays constant.
        if let TwitterOp::RemUser { v } = op {
            ctx.commit(region, |tx| app.add_user(tx, v).map(|_| ()))
                .expect("re-add user");
        }

        OpOutcome {
            label,
            objects: cost.objects,
            updates: cost.updates,
            extra_wan_ms: 0.0,
            ok: true,
            violations: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipa_sim::{paper_topology, SimConfig, Simulation};

    fn run(strategy: Strategy, seed: u64) -> Simulation {
        let cfg = SimConfig {
            clients_per_region: 2,
            warmup_s: 0.5,
            duration_s: 3.0,
            seed,
            ..Default::default()
        };
        let mut sim = Simulation::new(paper_topology(), cfg);
        let mut w = TwitterWorkload::with_defaults(strategy);
        sim.run(&mut w);
        sim.quiesce();
        sim
    }

    #[test]
    fn all_strategies_run_and_stay_local() {
        for s in [Strategy::Causal, Strategy::AddWins, Strategy::RemWins] {
            let sim = run(s, 23);
            assert!(
                sim.metrics.completed > 100,
                "{s}: {}",
                sim.metrics.completed
            );
            let mean = sim.metrics.overall().unwrap().mean_ms;
            assert!(mean < 30.0, "{s}: all ops are local, mean={mean}");
        }
    }

    #[test]
    fn add_wins_write_ops_cost_more_than_causal() {
        let causal = run(Strategy::Causal, 31);
        let aw = run(Strategy::AddWins, 31);
        let c_tweet = causal.metrics.summary("Tweet").unwrap().mean_ms;
        let a_tweet = aw.metrics.summary("Tweet").unwrap().mean_ms;
        assert!(
            a_tweet > c_tweet,
            "add-wins tweet pays the restore cost: {a_tweet} vs {c_tweet}"
        );
    }

    #[test]
    fn rem_wins_reads_cost_more_than_causal() {
        let causal = run(Strategy::Causal, 37);
        let rw = run(Strategy::RemWins, 37);
        let c_tl = causal.metrics.summary("Timeline").unwrap().mean_ms;
        let r_tl = rw.metrics.summary("Timeline").unwrap().mean_ms;
        assert!(
            r_tl > c_tl,
            "rem-wins timeline pays the compensation check: {r_tl} vs {c_tl}"
        );
    }
}
