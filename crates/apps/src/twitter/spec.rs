//! Twitter specification for the IPA analysis: the referential-integrity
//! core that drives the Fig. 6 strategies.

use ipa_spec::{AppSpec, AppSpecBuilder, ConvergencePolicy};

/// Twitter's invariants: timeline entries reference live tweets, tweets
/// have authors, follow edges connect live users.
pub fn twitter_spec(strategy_rem_wins: bool) -> AppSpec {
    let tweet_policy = if strategy_rem_wins {
        ConvergencePolicy::RemWins
    } else {
        ConvergencePolicy::AddWins
    };
    AppSpecBuilder::new(if strategy_rem_wins {
        "twitter-rw"
    } else {
        "twitter-aw"
    })
    .sort("User")
    .sort("Tweet")
    .predicate_bool("user", &["User"])
    .predicate_bool("tweet", &["Tweet"])
    .predicate_bool("inTimeline", &["Tweet", "User"])
    .predicate_bool("follows", &["User", "User"])
    .rule("user", ConvergencePolicy::AddWins)
    .rule("tweet", tweet_policy)
    .rule(
        "inTimeline",
        if strategy_rem_wins {
            ConvergencePolicy::RemWins
        } else {
            ConvergencePolicy::AddWins
        },
    )
    .rule("follows", ConvergencePolicy::AddWins)
    .invariant_str("forall(Tweet: t, User: u) :- inTimeline(t, u) => tweet(t)")
    .invariant_str("forall(User: a, b) :- follows(a, b) => user(a) and user(b)")
    .operation("add_user", &[("u", "User")], |op| {
        op.set_true("user", &["u"])
    })
    .operation("rem_user", &[("u", "User")], |op| {
        op.set_false("user", &["u"])
    })
    .operation("post_tweet", &[("t", "Tweet"), ("u", "User")], |op| {
        op.set_true("tweet", &["t"])
            .set_true("inTimeline", &["t", "u"])
    })
    .operation("retweet", &[("t", "Tweet"), ("u", "User")], |op| {
        op.set_true("inTimeline", &["t", "u"])
    })
    .operation("del_tweet", &[("t", "Tweet")], |op| {
        op.set_false("tweet", &["t"])
    })
    .operation("follow", &[("a", "User"), ("b", "User")], |op| {
        op.set_true("follows", &["a", "b"])
    })
    .operation("unfollow", &[("a", "User"), ("b", "User")], |op| {
        op.set_false("follows", &["a", "b"])
    })
    .build()
    .expect("twitter spec is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipa_core::{check_pair, AnalysisConfig};

    #[test]
    fn retweet_vs_del_tweet_conflicts() {
        let spec = twitter_spec(false);
        let cfg = AnalysisConfig::default();
        let retweet = spec.operation("retweet").unwrap();
        let del = spec.operation("del_tweet").unwrap();
        let w = check_pair(&spec, &cfg, retweet, del).unwrap();
        assert!(
            w.is_some(),
            "the paper's retweet/delete race must be flagged"
        );
    }

    #[test]
    fn specs_validate() {
        assert!(twitter_spec(false).validate().is_ok());
        assert!(twitter_spec(true).validate().is_ok());
    }
}
