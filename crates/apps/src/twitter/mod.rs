//! The Twitter clone (§5.1.2, §5.2.3): timelines materialized at tweet
//! time, with add-wins and rem-wins repair strategies compared in Fig. 6.

pub mod runtime;
pub mod spec;
pub mod workload;

pub use runtime::{Strategy, Twitter};
pub use spec::twitter_spec;
pub use workload::TwitterWorkload;
