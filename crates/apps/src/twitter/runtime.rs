//! Twitter runtime: tweets are written to all followers' timelines at
//! post time ("we opted for writing immediately to all followers
//! timelines", §5.1.2).

use ipa_crdt::{ObjectKind, Val, ValPattern};
use ipa_store::{StoreError, Transaction};

/// Fig. 6 compares the unmodified app against the two IPA strategies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Strategy {
    /// Unmodified (no repair; anomalies possible).
    Causal,
    /// Add-wins repairs: tweeting/retweeting restores the author/tweet.
    AddWins,
    /// Rem-wins repairs: deletions purge concurrent additions; removed
    /// content is hidden from timeline reads by compensation.
    RemWins,
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Strategy::Causal => write!(f, "Causal"),
            Strategy::AddWins => write!(f, "Add-Wins"),
            Strategy::RemWins => write!(f, "Rem-Wins"),
        }
    }
}

/// Object keys.
pub const USERS: &str = "twitter/users";
pub const TWEETS: &str = "twitter/tweets";
/// Timeline entries: triples `(timeline_owner, tweet_id, author)`.
pub const ENTRIES: &str = "twitter/entries";
pub const FOLLOWS: &str = "twitter/follows";

/// Per-op cost (objects touched, updates executed).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpCost {
    pub objects: usize,
    pub updates: usize,
}

/// The Twitter application under one strategy.
#[derive(Clone, Copy, Debug)]
pub struct Twitter {
    pub strategy: Strategy,
}

impl Twitter {
    pub fn new(strategy: Strategy) -> Twitter {
        Twitter { strategy }
    }

    fn entries_kind(&self) -> ObjectKind {
        match self.strategy {
            Strategy::RemWins => ObjectKind::RWSet,
            _ => ObjectKind::AWSet,
        }
    }

    pub fn ensure_schema(&self, tx: &mut Transaction<'_>) -> Result<(), StoreError> {
        tx.ensure(USERS, ObjectKind::AWMap)?;
        tx.ensure(TWEETS, ObjectKind::AWMap)?;
        tx.ensure(ENTRIES, self.entries_kind())?;
        tx.ensure(FOLLOWS, ObjectKind::AWSet)?;
        Ok(())
    }

    fn add_entry(
        &self,
        tx: &mut Transaction<'_>,
        owner: &str,
        tweet: &str,
        author: &str,
    ) -> Result<(), StoreError> {
        let e = Val::triple(owner, tweet, author);
        match self.entries_kind() {
            ObjectKind::RWSet => tx.rw_add(ENTRIES, e),
            _ => tx.aw_add(ENTRIES, e),
        }
    }

    pub fn add_user(&self, tx: &mut Transaction<'_>, u: &str) -> Result<OpCost, StoreError> {
        self.ensure_schema(tx)?;
        tx.map_put(USERS, Val::str(u), Val::str(format!("bio:{u}")))?;
        Ok(OpCost {
            objects: 1,
            updates: 1,
        })
    }

    pub fn rem_user(&self, tx: &mut Transaction<'_>, u: &str) -> Result<OpCost, StoreError> {
        self.ensure_schema(tx)?;
        tx.map_remove(USERS, &Val::str(u))?;
        // Sequential cleanup of the user's follow edges.
        tx.aw_remove_matching(
            FOLLOWS,
            &ValPattern::pair(ValPattern::exact(u), ValPattern::Any),
        )?;
        tx.aw_remove_matching(
            FOLLOWS,
            &ValPattern::pair(ValPattern::Any, ValPattern::exact(u)),
        )?;
        if self.strategy == Strategy::RemWins {
            // Purge the user's whole history from all timelines — the
            // rem-wins wildcard defeats concurrent tweets too (§5.1.2).
            tx.rw_remove_matching(
                ENTRIES,
                ValPattern::triple(ValPattern::Any, ValPattern::Any, ValPattern::exact(u)),
            )?;
            return Ok(OpCost {
                objects: 3,
                updates: 4,
            });
        }
        Ok(OpCost {
            objects: 2,
            updates: 3,
        })
    }

    /// Post a tweet: register it and write it to the author's and all
    /// followers' timelines.
    pub fn tweet(
        &self,
        tx: &mut Transaction<'_>,
        author: &str,
        id: &str,
    ) -> Result<OpCost, StoreError> {
        self.ensure_schema(tx)?;
        tx.map_put(TWEETS, Val::str(id), Val::str(author))?;
        let followers = self.followers_of(tx, author)?;
        self.add_entry(tx, author, id, author)?;
        let mut updates = 2 + followers.len();
        for f in &followers {
            self.add_entry(tx, f, id, author)?;
        }
        let mut objects = 2; // tweets + entries
        if self.strategy == Strategy::AddWins {
            // Restore the author against a concurrent rem_user.
            tx.map_touch(USERS, Val::str(author))?;
            objects += 1;
            updates += 1;
        }
        Ok(OpCost { objects, updates })
    }

    /// Retweet an existing tweet into the retweeter's followers'
    /// timelines.
    pub fn retweet(
        &self,
        tx: &mut Transaction<'_>,
        user: &str,
        id: &str,
    ) -> Result<OpCost, StoreError> {
        self.ensure_schema(tx)?;
        let author = tx
            .map_get(TWEETS, &Val::str(id))?
            .and_then(|v| v.as_str().map(str::to_owned))
            .unwrap_or_else(|| user.to_owned());
        let followers = self.followers_of(tx, user)?;
        self.add_entry(tx, user, id, &author)?;
        for f in &followers {
            self.add_entry(tx, f, id, &author)?;
        }
        let mut objects = 1;
        let mut updates = 1 + followers.len();
        if self.strategy == Strategy::AddWins {
            // "recover the deleted tweet": touch restores the tweet entity
            // with its payload against a concurrent deletion.
            tx.map_touch(TWEETS, Val::str(id))?;
            objects += 1;
            updates += 1;
        }
        Ok(OpCost { objects, updates })
    }

    pub fn del_tweet(&self, tx: &mut Transaction<'_>, id: &str) -> Result<OpCost, StoreError> {
        self.ensure_schema(tx)?;
        tx.map_remove(TWEETS, &Val::str(id))?;
        match self.strategy {
            Strategy::RemWins => {
                // One wildcard op kills every timeline entry of the tweet,
                // including concurrent retweets ("hide all of its
                // retweets from the followers timelines").
                tx.rw_remove_matching(
                    ENTRIES,
                    ValPattern::triple(ValPattern::Any, ValPattern::exact(id), ValPattern::Any),
                )?;
                Ok(OpCost {
                    objects: 2,
                    updates: 2,
                })
            }
            _ => {
                // Remove the observed entries only (concurrent retweets
                // survive — under Causal they become dangling).
                tx.aw_remove_matching(
                    ENTRIES,
                    &ValPattern::triple(ValPattern::Any, ValPattern::exact(id), ValPattern::Any),
                )?;
                Ok(OpCost {
                    objects: 2,
                    updates: 2,
                })
            }
        }
    }

    pub fn follow(&self, tx: &mut Transaction<'_>, a: &str, b: &str) -> Result<OpCost, StoreError> {
        self.ensure_schema(tx)?;
        tx.aw_add(FOLLOWS, Val::pair(a, b))?;
        if self.strategy == Strategy::AddWins {
            tx.map_touch(USERS, Val::str(a))?;
            tx.map_touch(USERS, Val::str(b))?;
            return Ok(OpCost {
                objects: 2,
                updates: 3,
            });
        }
        Ok(OpCost {
            objects: 1,
            updates: 1,
        })
    }

    pub fn unfollow(
        &self,
        tx: &mut Transaction<'_>,
        a: &str,
        b: &str,
    ) -> Result<OpCost, StoreError> {
        self.ensure_schema(tx)?;
        tx.aw_remove(FOLLOWS, &Val::pair(a, b))?;
        Ok(OpCost {
            objects: 1,
            updates: 1,
        })
    }

    /// Read a user's timeline. Under rem-wins, entries whose tweet was
    /// deleted concurrently are *hidden by compensation on read* rather
    /// than eagerly purged from every timeline — "trading a slightly
    /// higher latency in reads to prevent unnecessary writes" (§5.2.3).
    pub fn timeline(
        &self,
        tx: &mut Transaction<'_>,
        user: &str,
    ) -> Result<(Vec<String>, OpCost), StoreError> {
        self.ensure_schema(tx)?;
        let entries = tx.set_elements(ENTRIES)?;
        let mut ids: Vec<String> = Vec::new();
        let mut hidden = 0usize;
        for e in entries {
            let Val::Triple(owner, id, _) = &e else {
                continue;
            };
            if owner.as_str() != Some(user) {
                continue;
            }
            let id = id.as_str().unwrap_or_default().to_owned();
            if self.strategy == Strategy::RemWins {
                // Compensation: consult the tweets map and hide removed
                // tweets.
                if tx.map_get(TWEETS, &Val::str(&id))?.is_none() {
                    hidden += 1;
                    continue;
                }
            }
            ids.push(id);
        }
        let objects = if self.strategy == Strategy::RemWins {
            2
        } else {
            1
        };
        let _ = hidden;
        Ok((
            ids,
            OpCost {
                objects,
                updates: 0,
            },
        ))
    }

    fn followers_of(
        &self,
        tx: &mut Transaction<'_>,
        user: &str,
    ) -> Result<Vec<String>, StoreError> {
        Ok(tx
            .set_elements(FOLLOWS)?
            .into_iter()
            .filter_map(|f| {
                let (a, b) = (f.fst()?, f.snd()?);
                (b.as_str() == Some(user)).then(|| a.as_str().map(str::to_owned))?
            })
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipa_crdt::ReplicaId;
    use ipa_store::Cluster;

    fn commit<T>(
        cluster: &mut Cluster,
        r: u16,
        f: impl FnOnce(&mut Transaction<'_>) -> Result<T, StoreError>,
    ) -> T {
        let replica = cluster.replica_mut(ReplicaId(r));
        let mut tx = replica.begin();
        let out = f(&mut tx).expect("op");
        tx.commit();
        out
    }

    fn seed(app: Twitter, cluster: &mut Cluster) {
        commit(cluster, 0, |tx| {
            app.add_user(tx, "alice")?;
            app.add_user(tx, "bob")?;
            app.follow(tx, "bob", "alice")
        });
        cluster.sync();
    }

    #[test]
    fn tweet_fans_out_to_followers() {
        let app = Twitter::new(Strategy::Causal);
        let mut cluster = Cluster::new(2);
        seed(app, &mut cluster);
        commit(&mut cluster, 0, |tx| app.tweet(tx, "alice", "tw1"));
        cluster.sync();
        let (bob_tl, _) = commit(&mut cluster, 1, |tx| app.timeline(tx, "bob"));
        assert_eq!(bob_tl, vec!["tw1"]);
    }

    #[test]
    fn causal_concurrent_retweet_vs_delete_dangles() {
        let app = Twitter::new(Strategy::Causal);
        let mut cluster = Cluster::new(2);
        seed(app, &mut cluster);
        commit(&mut cluster, 0, |tx| app.tweet(tx, "alice", "tw1"));
        cluster.sync();
        // Concurrent: delete at 0, retweet at 1.
        commit(&mut cluster, 0, |tx| app.del_tweet(tx, "tw1"));
        commit(&mut cluster, 1, |tx| app.retweet(tx, "bob", "tw1"));
        cluster.sync();
        let v = crate::violations::twitter_violations(cluster.replica(ReplicaId(0)));
        assert!(v > 0, "dangling retweet entries under Causal");
    }

    #[test]
    fn add_wins_restores_the_deleted_tweet() {
        let app = Twitter::new(Strategy::AddWins);
        let mut cluster = Cluster::new(2);
        seed(app, &mut cluster);
        commit(&mut cluster, 0, |tx| app.tweet(tx, "alice", "tw1"));
        cluster.sync();
        commit(&mut cluster, 0, |tx| app.del_tweet(tx, "tw1"));
        commit(&mut cluster, 1, |tx| app.retweet(tx, "bob", "tw1"));
        cluster.sync();
        for r in 0..2 {
            let rep = cluster.replica(ReplicaId(r));
            assert_eq!(crate::violations::twitter_violations(rep), 0, "replica {r}");
            // The tweet is back (touch), with its original payload.
            let tweets = rep.object(&TWEETS.into()).unwrap().as_awmap().unwrap();
            assert_eq!(tweets.get(&Val::str("tw1")), Some(&Val::str("alice")));
        }
    }

    #[test]
    fn rem_wins_purges_concurrent_retweets() {
        let app = Twitter::new(Strategy::RemWins);
        let mut cluster = Cluster::new(2);
        seed(app, &mut cluster);
        commit(&mut cluster, 0, |tx| app.tweet(tx, "alice", "tw1"));
        cluster.sync();
        commit(&mut cluster, 0, |tx| app.del_tweet(tx, "tw1"));
        commit(&mut cluster, 1, |tx| app.retweet(tx, "bob", "tw1"));
        cluster.sync();
        for r in 0..2 {
            let rep = cluster.replica(ReplicaId(r));
            // The wildcard remove defeated the concurrent retweet.
            let entries = rep.object(&ENTRIES.into()).unwrap().as_rwset().unwrap();
            assert_eq!(entries.len(), 0, "replica {r}: all entries purged");
            assert_eq!(crate::violations::twitter_violations(rep), 0);
        }
    }

    #[test]
    fn rem_wins_timeline_hides_removed_tweets_on_read() {
        let app = Twitter::new(Strategy::RemWins);
        let mut cluster = Cluster::new(2);
        seed(app, &mut cluster);
        commit(&mut cluster, 0, |tx| app.tweet(tx, "alice", "tw1"));
        commit(&mut cluster, 0, |tx| app.tweet(tx, "alice", "tw2"));
        cluster.sync();
        // Delete tw1 at replica 0; replica 1 reads before the delete
        // arrives — suppose only the tweets-map removal arrived (model by
        // reading at replica 0 where both applied; the hidden path is the
        // `map_get == None` branch).
        commit(&mut cluster, 0, |tx| {
            tx.map_remove(TWEETS, &Val::str("tw1"))?;
            Ok(OpCost {
                objects: 1,
                updates: 1,
            })
        });
        let (tl, cost) = commit(&mut cluster, 0, |tx| app.timeline(tx, "bob"));
        assert_eq!(tl, vec!["tw2"], "tw1 hidden by the read compensation");
        assert_eq!(cost.objects, 2, "rem-wins reads pay the extra check");
    }

    #[test]
    fn rem_user_purges_history_under_rem_wins() {
        let app = Twitter::new(Strategy::RemWins);
        let mut cluster = Cluster::new(2);
        seed(app, &mut cluster);
        commit(&mut cluster, 0, |tx| app.tweet(tx, "alice", "tw1"));
        cluster.sync();
        // Concurrent: remove alice at 0 while she tweets at 1.
        commit(&mut cluster, 0, |tx| app.rem_user(tx, "alice"));
        commit(&mut cluster, 1, |tx| app.tweet(tx, "alice", "tw2"));
        cluster.sync();
        for r in 0..2 {
            let rep = cluster.replica(ReplicaId(r));
            let entries = rep.object(&ENTRIES.into()).unwrap().as_rwset().unwrap();
            let alice_entries = entries
                .elements()
                .filter(|e| matches!(e, Val::Triple(_, _, a) if a.as_str() == Some("alice")))
                .count();
            assert_eq!(alice_entries, 0, "replica {r}: alice's history purged");
        }
    }
}
