//! The invariant oracle: an explicit, named registry of every invariant
//! each application promises, auditable against any replica at any
//! point of a simulation.
//!
//! The paper distinguishes two repair disciplines, and the registry
//! encodes them as audit phases:
//!
//! * [`Phase::Continuous`] — invariant-preserving effects (touches,
//!   rem-wins resolutions) keep the invariant true in **every** causal
//!   replica state, so these checks must pass at every audit point of an
//!   IPA-mode run — including mid-run under drops, duplicates, reorders,
//!   partitions, and crashes. Under Causal mode they are the anomaly
//!   detectors.
//! * [`Phase::Final`] — compensation-based invariants (§3.4: capacity /
//!   numeric constraints repaired on read) may be transiently violated
//!   by design; they are only required to hold after the compensations
//!   have run to a fixpoint (quiescence + final repair sweep).
//!
//! The sim driver consumes an oracle through
//! [`Oracle::into_continuous_auditor`], which plugs into
//! [`ipa_sim::Simulation::set_auditor`] — so *any* simulation test gets
//! continuous invariant checking for free.

use crate::violations as v;
use ipa_sim::{Auditor, Region, Simulation};
use ipa_store::Replica;
use std::fmt;
use std::sync::Arc;

/// A positively named consistency anomaly — what a violated check
/// *means* in application terms, not just which predicate tripped. The
/// causal (unrepaired) soak axis runs the unpatched applications and
/// **expects** one of these; a hostile run that produces none is the
/// failure there, and gets shrunk to the minimal run that stays
/// anomaly-free.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Anomaly {
    /// A write observed, then silently unobserved (the default bucket
    /// for transient audit violations that no named check still owns).
    LostUpdate,
    /// A numeric cap exceeded: ticket oversell, tournament
    /// over-capacity, negative TPC stock.
    Oversell,
    /// A reference to an entity that no longer (or never) exists.
    ReferentialOrphan,
    /// A match stranded against the tournament phase machine
    /// (phase-exclusion or match-phase broken).
    StrandedMatch,
}

impl Anomaly {
    pub fn all() -> [Anomaly; 4] {
        [
            Anomaly::LostUpdate,
            Anomaly::Oversell,
            Anomaly::ReferentialOrphan,
            Anomaly::StrandedMatch,
        ]
    }

    pub fn name(self) -> &'static str {
        match self {
            Anomaly::LostUpdate => "lost-update",
            Anomaly::Oversell => "oversell",
            Anomaly::ReferentialOrphan => "referential-orphan",
            Anomaly::StrandedMatch => "stranded-match",
        }
    }

    /// Classify a violated check identifier (with or without its
    /// `continuous:`/`final:` phase prefix) into a named anomaly.
    pub fn classify(check: &str) -> Anomaly {
        let base = check.rsplit(':').next().unwrap_or(check);
        match base {
            "capacity" | "oversell" | "stock-nonnegative" => Anomaly::Oversell,
            "phase-exclusion" | "match-phase" => Anomaly::StrandedMatch,
            n if n.ends_with("referential") => Anomaly::ReferentialOrphan,
            _ => Anomaly::LostUpdate,
        }
    }
}

impl fmt::Display for Anomaly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// When a check is required to hold.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Must hold in every causal replica state (audited mid-run).
    Continuous,
    /// Compensable: must hold after repair reaches a fixpoint.
    Final,
    /// Whole-simulation liveness: audited against the run, not a single
    /// replica's state (e.g. bounded anti-entropy convergence).
    Liveness,
}

type CheckFn = Arc<dyn Fn(&Replica) -> u64 + Send + Sync>;
type SimCheckFn = Arc<dyn Fn(&Simulation) -> u64 + Send + Sync>;

/// One named whole-simulation check (the [`Phase::Liveness`] class):
/// unlike state checks it sees the run itself — round counts, gap
/// accounting, nemesis statistics.
#[derive(Clone)]
pub struct SimCheck {
    pub name: &'static str,
    f: SimCheckFn,
}

impl SimCheck {
    pub fn count(&self, sim: &Simulation) -> u64 {
        (self.f)(sim)
    }
}

impl fmt::Debug for SimCheck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimCheck({} @ Liveness)", self.name)
    }
}

/// One named invariant check.
#[derive(Clone)]
pub struct Check {
    pub name: &'static str,
    pub phase: Phase,
    f: CheckFn,
}

impl Check {
    pub fn count(&self, replica: &Replica) -> u64 {
        (self.f)(replica)
    }
}

impl fmt::Debug for Check {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Check({} @ {:?})", self.name, self.phase)
    }
}

/// Per-check audit outcome for one replica.
#[derive(Clone, Debug)]
pub struct AuditReport {
    pub app: &'static str,
    pub per_check: Vec<(&'static str, u64)>,
}

impl AuditReport {
    pub fn total(&self) -> u64 {
        self.per_check.iter().map(|(_, n)| n).sum()
    }

    /// Names of the checks that found violations.
    pub fn violated(&self) -> Vec<&'static str> {
        self.per_check
            .iter()
            .filter(|(_, n)| *n > 0)
            .map(|(name, _)| *name)
            .collect()
    }
}

/// Anti-entropy convergence bound every application registry ships
/// with: after a fault, each induced causal gap must close within this
/// many rounds of repair opportunity (and quiescence within as many
/// productive rounds). Generous against delivery latency — one pull
/// plus a WAN one-way fits in 2 — while still catching a repair path
/// that loops or starves.
pub const DEFAULT_LIVENESS_BOUND: u64 = 12;

/// The invariant registry of one application.
#[derive(Clone, Debug)]
pub struct Oracle {
    pub app: &'static str,
    checks: Vec<Check>,
    sim_checks: Vec<SimCheck>,
    liveness_bound: Option<u64>,
}

impl Oracle {
    pub fn new(app: &'static str) -> Oracle {
        Oracle {
            app,
            checks: Vec::new(),
            sim_checks: Vec::new(),
            liveness_bound: None,
        }
    }

    pub fn with_check(
        mut self,
        name: &'static str,
        phase: Phase,
        f: impl Fn(&Replica) -> u64 + Send + Sync + 'static,
    ) -> Oracle {
        assert!(
            phase != Phase::Liveness,
            "liveness checks audit the simulation; use with_sim_check"
        );
        self.checks.push(Check {
            name,
            phase,
            f: Arc::new(f),
        });
        self
    }

    /// Register a whole-simulation ([`Phase::Liveness`]) check.
    pub fn with_sim_check(
        mut self,
        name: &'static str,
        f: impl Fn(&Simulation) -> u64 + Send + Sync + 'static,
    ) -> Oracle {
        self.sim_checks.push(SimCheck {
            name,
            f: Arc::new(f),
        });
        self
    }

    /// Arm the bounded-liveness oracle: registers the `bounded-liveness`
    /// sim check (violations reported by the simulation's gap/round
    /// accounting) and remembers the bound the harness must install via
    /// [`ipa_sim::Simulation::set_liveness_bound`] before the run.
    pub fn with_liveness(mut self, bound: u64) -> Oracle {
        self.liveness_bound = Some(bound);
        self.with_sim_check("bounded-liveness", Simulation::liveness_violations)
    }

    /// The convergence bound to install on the simulation (None when
    /// [`Oracle::with_liveness`] was never called).
    pub fn liveness_bound(&self) -> Option<u64> {
        self.liveness_bound
    }

    pub fn checks(&self) -> &[Check] {
        &self.checks
    }

    pub fn sim_checks(&self) -> &[SimCheck] {
        &self.sim_checks
    }

    /// Audit the whole-simulation (liveness) checks.
    pub fn audit_sim(&self, sim: &Simulation) -> AuditReport {
        AuditReport {
            app: self.app,
            per_check: self
                .sim_checks
                .iter()
                .map(|c| (c.name, c.count(sim)))
                .collect(),
        }
    }

    /// Audit every check of the given phase (plus, for `Final`, the
    /// continuous ones — a final state must satisfy everything).
    pub fn audit(&self, replica: &Replica, phase: Phase) -> AuditReport {
        let per_check = self
            .checks
            .iter()
            .filter(|c| c.phase == phase || (phase == Phase::Final && c.phase == Phase::Continuous))
            .map(|c| (c.name, c.count(replica)))
            .collect();
        AuditReport {
            app: self.app,
            per_check,
        }
    }

    /// Total violations over the continuous checks only.
    pub fn continuous_violations(&self, replica: &Replica) -> u64 {
        self.audit(replica, Phase::Continuous).total()
    }

    /// Total violations over every check (final + continuous).
    pub fn final_violations(&self, replica: &Replica) -> u64 {
        self.audit(replica, Phase::Final).total()
    }

    /// Adapt the continuous checks into the sim driver's auditor hook.
    pub fn into_continuous_auditor(self) -> Auditor {
        Box::new(move |_region: Region, replica: &Replica| self.continuous_violations(replica))
    }

    // ------------------------------------------------------------------
    // The four applications' registries
    // ------------------------------------------------------------------

    /// Tournament (Fig. 1): referential integrity and phase exclusion
    /// hold continuously under IPA; capacity is compensated on read.
    pub fn tournament() -> Oracle {
        Oracle::new("tournament")
            .with_check("enrollment-referential", Phase::Continuous, |r| {
                v::tournament_enrollment_referential(r)
            })
            .with_check("match-referential", Phase::Continuous, |r| {
                v::tournament_match_referential(r)
            })
            .with_check("phase-exclusion", Phase::Continuous, |r| {
                v::tournament_phase(r)
            })
            // Compensable disjunction: two concurrent finish→begin chains
            // can annihilate both phase marks; the `status` read repair
            // restores the finish-prevails outcome.
            .with_check("match-phase", Phase::Final, |r| {
                v::tournament_match_phase(r)
            })
            .with_check("capacity", Phase::Final, v::tournament_capacity)
            .with_liveness(DEFAULT_LIVENESS_BOUND)
    }

    /// Twitter: pure referential integrity, all continuous.
    pub fn twitter() -> Oracle {
        Oracle::new("twitter")
            .with_check("timeline-referential", Phase::Continuous, |r| {
                v::twitter_timeline_referential(r)
            })
            .with_check("follow-referential", Phase::Continuous, |r| {
                v::twitter_follow_referential(r)
            })
            .with_liveness(DEFAULT_LIVENESS_BOUND)
    }

    /// Ticket: overselling is compensated on read (§3.4), so the
    /// capacity check is final-phase. `events` and `capacity` come from
    /// the workload configuration.
    pub fn ticket(events: Vec<String>, capacity: usize) -> Oracle {
        Oracle::new("ticket")
            .with_check("oversell", Phase::Final, move |r| {
                v::ticket_violations(r, &events, capacity)
            })
            .with_liveness(DEFAULT_LIVENESS_BOUND)
    }

    /// Escrow-sharded ticket sale: rights are consumed *before* a
    /// purchase commits, so the per-event capacity bound holds in every
    /// causal replica state — a continuous check, the strongest claim in
    /// the registry (compare [`Oracle::ticket`], whose compensation-based
    /// bound is final-phase only). On the causal axis the same check is
    /// the oversell anomaly detector.
    pub fn ticket_escrow(events: Vec<(String, usize)>) -> Oracle {
        Oracle::new("ticket-escrow")
            .with_check("oversell", Phase::Continuous, move |r| {
                v::sale_violations(r, &events)
            })
            .with_liveness(DEFAULT_LIVENESS_BOUND)
    }

    /// TPC subset: order referential integrity holds continuously;
    /// stock non-negativity is restocked by compensation.
    pub fn tpc(items: Vec<String>) -> Oracle {
        Oracle::new("tpc")
            .with_check("order-referential", Phase::Continuous, |r| {
                v::tpc_order_referential(r)
            })
            .with_check("stock-nonnegative", Phase::Final, move |r| {
                v::tpc_stock_nonnegative(r, &items)
            })
            .with_liveness(DEFAULT_LIVENESS_BOUND)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tournament::runtime as tourn;
    use ipa_crdt::{ObjectKind, ReplicaId, Val};

    #[test]
    fn every_registered_check_classifies_to_a_named_anomaly() {
        // Each registry check name maps to the anomaly the paper
        // attributes to it; the mapping is total (no panic, no honest
        // check silently landing in the default bucket unintentionally).
        let expect = |check: &str, anomaly: Anomaly| {
            assert_eq!(Anomaly::classify(check), anomaly, "{check}");
            // Phase prefixes never change the classification.
            assert_eq!(
                Anomaly::classify(&format!("continuous:{check}")),
                anomaly,
                "continuous:{check}"
            );
            assert_eq!(
                Anomaly::classify(&format!("final:{check}")),
                anomaly,
                "final:{check}"
            );
        };
        expect("enrollment-referential", Anomaly::ReferentialOrphan);
        expect("match-referential", Anomaly::ReferentialOrphan);
        expect("timeline-referential", Anomaly::ReferentialOrphan);
        expect("follow-referential", Anomaly::ReferentialOrphan);
        expect("order-referential", Anomaly::ReferentialOrphan);
        expect("phase-exclusion", Anomaly::StrandedMatch);
        expect("match-phase", Anomaly::StrandedMatch);
        expect("capacity", Anomaly::Oversell);
        expect("oversell", Anomaly::Oversell);
        expect("stock-nonnegative", Anomaly::Oversell);
        expect("transient", Anomaly::LostUpdate);
        assert_eq!(Anomaly::classify("convergence"), Anomaly::LostUpdate);
        for a in Anomaly::all() {
            assert!(!a.name().is_empty());
        }
    }

    #[test]
    fn clean_replica_passes_every_registry() {
        let r = Replica::new(ReplicaId(0));
        for oracle in [
            Oracle::tournament(),
            Oracle::twitter(),
            Oracle::ticket(vec!["e0".into()], 10),
            Oracle::ticket_escrow(vec![("s0".into(), 10)]),
            Oracle::tpc(vec!["i0".into()]),
        ] {
            assert_eq!(oracle.final_violations(&r), 0, "{}", oracle.app);
            assert_eq!(oracle.continuous_violations(&r), 0, "{}", oracle.app);
        }
    }

    #[test]
    fn orphan_enrollment_is_attributed_to_the_named_check() {
        let mut r = Replica::new(ReplicaId(0));
        let mut tx = r.begin();
        tx.ensure(tourn::ENROLLED, ObjectKind::AWSet).unwrap();
        tx.aw_add(tourn::ENROLLED, Val::pair("p1", "ghost"))
            .unwrap();
        tx.commit();
        let oracle = Oracle::tournament();
        let report = oracle.audit(&r, Phase::Continuous);
        assert_eq!(report.total(), 1);
        assert_eq!(report.violated(), vec!["enrollment-referential"]);
        assert_eq!(oracle.continuous_violations(&r), 1);
    }

    #[test]
    fn capacity_is_final_phase_only() {
        let mut r = Replica::new(ReplicaId(0));
        let mut tx = r.begin();
        tx.ensure(tourn::ENROLLED, ObjectKind::AWSet).unwrap();
        tx.ensure(tourn::PLAYERS, ObjectKind::AWMap).unwrap();
        tx.ensure(tourn::TOURNS, ObjectKind::AWMap).unwrap();
        tx.map_put(tourn::TOURNS, Val::str("t"), Val::str("m"))
            .unwrap();
        for i in 0..=tourn::CAPACITY {
            let p = format!("p{i}");
            tx.map_put(tourn::PLAYERS, Val::str(&p), Val::str("x"))
                .unwrap();
            tx.aw_add(tourn::ENROLLED, Val::pair(p, "t")).unwrap();
        }
        tx.commit();
        let oracle = Oracle::tournament();
        assert_eq!(
            oracle.continuous_violations(&r),
            0,
            "over-capacity is compensable, not a continuous violation"
        );
        let report = oracle.audit(&r, Phase::Final);
        assert_eq!(report.total(), 1);
        assert!(report.violated().contains(&"capacity"));
    }

    #[test]
    fn every_registry_arms_the_liveness_check() {
        use ipa_sim::{paper_topology, FaultPlan, SimConfig, Simulation};
        let sim = Simulation::new(
            paper_topology(),
            SimConfig {
                faults: FaultPlan::none(),
                ..Default::default()
            },
        );
        for oracle in [
            Oracle::tournament(),
            Oracle::twitter(),
            Oracle::ticket(vec!["e0".into()], 10),
            Oracle::ticket_escrow(vec![("s0".into(), 10)]),
            Oracle::tpc(vec!["i0".into()]),
        ] {
            assert_eq!(
                oracle.liveness_bound(),
                Some(DEFAULT_LIVENESS_BOUND),
                "{}",
                oracle.app
            );
            let report = oracle.audit_sim(&sim);
            assert_eq!(report.per_check, vec![("bounded-liveness", 0)]);
            // Liveness never leaks into the replica-state phases.
            assert!(oracle.checks().iter().all(|c| c.phase != Phase::Liveness));
        }
    }

    #[test]
    fn auditor_adapter_counts_continuous_checks() {
        let mut r = Replica::new(ReplicaId(0));
        let mut tx = r.begin();
        tx.ensure(tourn::ENROLLED, ObjectKind::AWSet).unwrap();
        tx.aw_add(tourn::ENROLLED, Val::pair("p", "ghost")).unwrap();
        tx.commit();
        let auditor = Oracle::tournament().into_continuous_auditor();
        assert_eq!(auditor(0, &r), 1);
    }
}
