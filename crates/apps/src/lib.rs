//! # ipa-apps — the IPA paper's evaluation applications
//!
//! Four applications, each with (a) a first-order **specification** that
//! the `ipa-core` analysis consumes, and (b) a **runtime** over the
//! replicated store that the simulator drives in four consistency
//! configurations (§5.2.1):
//!
//! | Mode | Meaning |
//! |------|---------|
//! | [`Mode::Causal`]  | unmodified application on causal consistency — fast but violates invariants |
//! | [`Mode::Ipa`]     | IPA-patched operations (the analysis' output wired in) |
//! | [`Mode::Indigo`]  | reservation-based conflict avoidance (`ipa-coord`) |
//! | [`Mode::Strong`]  | primary-forwarded updates |
//!
//! Applications:
//!
//! * [`tournament`] — the running example (Fig. 1): referential integrity,
//!   disjunctions, mutual exclusion; the Fig. 4/5 workload (35 % writes).
//! * [`twitter`] — timelines materialized on tweet; add-wins vs rem-wins
//!   repair strategies (Fig. 6).
//! * [`ticket`] — FusionTicket: overselling prevented by compensation
//!   (Fig. 7, with violation counting under Causal).
//! * [`tpc`] — TPC-W/TPC-C subset: product management (referential
//!   integrity) + stock (numeric invariant, compensation restock).

pub mod common;
pub mod oracle;
pub mod soak;
pub mod threaded_soak;
pub mod ticket;
pub mod tournament;
pub mod tpc;
pub mod twitter;
pub mod violations;

pub use common::Mode;
pub use oracle::{AuditReport, Oracle, Phase, SimCheck, DEFAULT_LIVENESS_BOUND};
