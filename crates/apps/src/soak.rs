//! Workload-parametric nemesis soak entry points: one uniform harness
//! that drives any of the paper's four applications under a hostile
//! schedule, audits its full [`Oracle`] registry (continuous, final,
//! bounded-liveness), classifies the first failure, and — on red —
//! feeds the run to the `ipa-sim` shrinker to produce a minimal,
//! replayable counterexample.
//!
//! `tests/nemesis_soak.rs` selects the application via
//! `IPA_NEMESIS_APP=tournament|ticket|tpc|twitter`; CI fans the product
//! `application × seed` out one cell per job.

use crate::oracle::{Anomaly, Oracle, Phase};
use crate::ticket::sale::{SaleBackend, SaleWorkload};
use crate::ticket::workload::TicketWorkload;
use crate::tournament::workload::TournamentWorkload;
use crate::tpc::workload::TpcWorkload;
use crate::twitter::runtime::Strategy;
use crate::twitter::workload::TwitterWorkload;
use crate::Mode;
use ipa_sim::{
    paper_topology, shrink_joint_with, AppOp, ClientInfo, ExplicitPlan, FaultPlan, JointOutcome,
    OpCtx, OpOutcome, OpTrace, RunVerdict, ShrinkBudget, SimConfig, SimCtx, Simulation, Workload,
};

/// One of the paper's four applications, as a soak-matrix coordinate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum App {
    Tournament,
    Ticket,
    /// The escrow-sharded ticket sale (`ticket::sale`): bounded counters
    /// whose rights are replicated store state; IPA mode runs the escrow
    /// backend, causal mode the uncoordinated one.
    TicketEscrow,
    Tpc,
    Twitter,
}

impl App {
    pub fn all() -> [App; 5] {
        [
            App::Tournament,
            App::Ticket,
            App::TicketEscrow,
            App::Tpc,
            App::Twitter,
        ]
    }

    pub fn name(self) -> &'static str {
        match self {
            App::Tournament => "tournament",
            App::Ticket => "ticket",
            App::TicketEscrow => "ticket-escrow",
            App::Tpc => "tpc",
            App::Twitter => "twitter",
        }
    }

    /// Parse an `IPA_NEMESIS_APP` value.
    pub fn parse(s: &str) -> Option<App> {
        App::all()
            .into_iter()
            .find(|a| a.name() == s.trim().to_lowercase())
    }
}

impl std::fmt::Display for App {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Which repair discipline the soak cell exercises
/// (`IPA_NEMESIS_MODE=ipa|causal`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SoakMode {
    /// The invariant-preserving apps: every oracle must stay green.
    #[default]
    Ipa,
    /// The *unrepaired* apps over plain causal delivery: the oracles
    /// are anomaly detectors, and a hostile run is **expected** to
    /// exhibit a named [`Anomaly`]. A run that stays clean is the
    /// failure on this axis.
    Causal,
}

impl SoakMode {
    pub fn name(self) -> &'static str {
        match self {
            SoakMode::Ipa => "ipa",
            SoakMode::Causal => "causal",
        }
    }

    /// Parse an `IPA_NEMESIS_MODE` value.
    pub fn parse(s: &str) -> Option<SoakMode> {
        match s.trim().to_lowercase().as_str() {
            "ipa" => Some(SoakMode::Ipa),
            "causal" => Some(SoakMode::Causal),
            _ => None,
        }
    }
}

impl std::fmt::Display for SoakMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The invariant-preserving configuration under soak: IPA mode for the
/// three Mode-driven apps; the add-wins repair strategy for Twitter
/// (its rem-wins variant repairs on read instead, which intentionally
/// violates the continuous referential checks mid-run).
pub(crate) enum SoakWorkload {
    Tournament(TournamentWorkload),
    Ticket(TicketWorkload),
    Sale(SaleWorkload),
    Tpc(TpcWorkload),
    Twitter(TwitterWorkload),
}

impl SoakWorkload {
    /// Transport-agnostic setup: seeds the app's schema and initial data
    /// through any [`OpCtx`].
    pub(crate) fn setup_in<C: OpCtx>(&mut self, ctx: &mut C) {
        match self {
            SoakWorkload::Tournament(w) => w.setup_in(ctx),
            SoakWorkload::Ticket(w) => w.setup_in(ctx),
            SoakWorkload::Sale(w) => w.setup_in(ctx),
            SoakWorkload::Tpc(w) => w.setup_in(ctx),
            SoakWorkload::Twitter(w) => w.setup_in(ctx),
        }
    }

    /// Transport-agnostic op: decide (drawing from the ctx RNG) then
    /// execute, through any [`OpCtx`].
    pub(crate) fn op_in<C: OpCtx>(&mut self, ctx: &mut C, client: ClientInfo) -> OpOutcome {
        match self {
            SoakWorkload::Tournament(w) => {
                let op = w.decide_op(ctx, client);
                w.execute_op(ctx, client, &op)
            }
            SoakWorkload::Ticket(w) => {
                let op = w.decide_op(ctx);
                w.execute_op(ctx, client, op)
            }
            SoakWorkload::Sale(w) => w.op_in(ctx, client),
            SoakWorkload::Tpc(w) => {
                let op = w.decide_op(ctx);
                w.execute_op(ctx, client, &op)
            }
            SoakWorkload::Twitter(w) => {
                let op = w.decide_op(ctx);
                w.execute_op(ctx, client, &op)
            }
        }
    }
}

impl Workload for SoakWorkload {
    fn setup(&mut self, ctx: &mut SimCtx<'_>) {
        match self {
            SoakWorkload::Tournament(w) => w.setup(ctx),
            SoakWorkload::Ticket(w) => w.setup(ctx),
            SoakWorkload::Sale(w) => w.setup(ctx),
            SoakWorkload::Tpc(w) => w.setup(ctx),
            SoakWorkload::Twitter(w) => w.setup(ctx),
        }
    }

    fn op(&mut self, ctx: &mut SimCtx<'_>, client: ClientInfo) -> OpOutcome {
        match self {
            SoakWorkload::Tournament(w) => w.op(ctx, client),
            SoakWorkload::Ticket(w) => w.op(ctx, client),
            SoakWorkload::Sale(w) => w.op(ctx, client),
            SoakWorkload::Tpc(w) => w.op(ctx, client),
            SoakWorkload::Twitter(w) => w.op(ctx, client),
        }
    }

    fn decide(&mut self, ctx: &mut SimCtx<'_>, client: ClientInfo) -> Option<AppOp> {
        match self {
            SoakWorkload::Tournament(w) => w.decide(ctx, client),
            SoakWorkload::Ticket(w) => w.decide(ctx, client),
            SoakWorkload::Sale(w) => w.decide(ctx, client),
            SoakWorkload::Tpc(w) => w.decide(ctx, client),
            SoakWorkload::Twitter(w) => w.decide(ctx, client),
        }
    }

    fn execute(&mut self, ctx: &mut SimCtx<'_>, client: ClientInfo, op: &AppOp) -> OpOutcome {
        match self {
            SoakWorkload::Tournament(w) => w.execute(ctx, client, op),
            SoakWorkload::Ticket(w) => w.execute(ctx, client, op),
            SoakWorkload::Sale(w) => w.execute(ctx, client, op),
            SoakWorkload::Tpc(w) => w.execute(ctx, client, op),
            SoakWorkload::Twitter(w) => w.execute(ctx, client, op),
        }
    }
}

/// The first oracle failure a soak run exhibited.
#[derive(Clone, Debug, PartialEq)]
pub struct Failure {
    /// Stable check identifier, e.g. `continuous:phase-exclusion`,
    /// `final:capacity`, `double-apply`, `convergence`,
    /// `bounded-liveness`. The shrinker minimizes against exactly this.
    pub check: String,
    pub count: u64,
}

impl Failure {
    /// The named anomaly this failure exhibits (the causal axis'
    /// positive expectation).
    pub fn anomaly(&self) -> Anomaly {
        Anomaly::classify(&self.check)
    }
}

impl std::fmt::Display for Failure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ({} violations; anomaly: {})",
            self.check,
            self.count,
            self.anomaly()
        )
    }
}

/// Outcome of one soaked run (quiesced, repaired, audited).
pub struct SoakRun {
    pub sim: Simulation,
    pub failure: Option<Failure>,
    pub digest: u64,
    /// The recorded fault trace, when recording was requested.
    pub trace: Option<ExplicitPlan>,
    /// The recorded op trace, when recording was requested.
    pub ops: Option<OpTrace>,
}

/// The nemesis/workload configuration of one soak run.
pub enum Nemesis<'a> {
    /// Probabilistic plan with RNG-driven clients (the CI matrix shape);
    /// `record` captures both the materialized fault trace and the
    /// executed op trace for joint shrinking.
    Plan { faults: &'a FaultPlan, record: bool },
    /// Sealed replay (shrink candidates, repro artifacts): an explicit
    /// fault plan, a recorded op trace, or both. `faults: None` keeps
    /// the benign transport; `ops: None` keeps the seeded closed-loop
    /// clients.
    Explicit {
        faults: Option<&'a ExplicitPlan>,
        ops: Option<&'a OpTrace>,
    },
}

/// The SimConfig every soak cell runs (kept in lockstep with the
/// digest-stability pins: clients 2, warmup 0.2 s, duration 1.8 s).
pub fn soak_config(seed: u64, faults: FaultPlan) -> SimConfig {
    SimConfig {
        clients_per_region: 2,
        warmup_s: 0.2,
        duration_s: 1.8,
        seed,
        faults,
        ..Default::default()
    }
}

pub(crate) fn fresh_workload(app: App) -> SoakWorkload {
    fresh_workload_mode(app, SoakMode::Ipa)
}

/// The workload for one soak-mode axis: the IPA-patched apps (add-wins
/// Twitter), or the unrepaired originals (rem-wins Twitter, whose
/// read-side repair intentionally leaves the continuous referential
/// checks violated mid-run — the Twitter-shaped causal anomaly).
pub(crate) fn fresh_workload_mode(app: App, mode: SoakMode) -> SoakWorkload {
    let app_mode = match mode {
        SoakMode::Ipa => Mode::Ipa,
        SoakMode::Causal => Mode::Causal,
    };
    match app {
        App::Tournament => SoakWorkload::Tournament(TournamentWorkload::with_defaults(app_mode)),
        App::Ticket => SoakWorkload::Ticket(TicketWorkload::with_defaults(app_mode)),
        App::TicketEscrow => SoakWorkload::Sale(SaleWorkload::with_defaults(match mode {
            SoakMode::Ipa => SaleBackend::Escrow,
            SoakMode::Causal => SaleBackend::Causal,
        })),
        App::Tpc => SoakWorkload::Tpc(TpcWorkload::with_defaults(app_mode)),
        App::Twitter => SoakWorkload::Twitter(TwitterWorkload::with_defaults(match mode {
            SoakMode::Ipa => Strategy::AddWins,
            SoakMode::Causal => Strategy::RemWins,
        })),
    }
}

/// The app's full registry. Ticket's oversell check enumerates event
/// generations, which only the finished workload knows — hence the
/// post-run handle.
pub(crate) fn oracle_for(app: App, w: &SoakWorkload) -> Oracle {
    match (app, w) {
        (App::Tournament, _) => Oracle::tournament(),
        (App::Ticket, SoakWorkload::Ticket(w)) => {
            Oracle::ticket(w.all_event_names(), w.app.capacity)
        }
        (App::TicketEscrow, SoakWorkload::Sale(w)) => Oracle::ticket_escrow(w.event_capacities()),
        (App::Tpc, SoakWorkload::Tpc(w)) => Oracle::tpc(w.products().to_vec()),
        (App::Twitter, _) => Oracle::twitter(),
        _ => unreachable!("workload/app mismatch"),
    }
}

/// Two rounds of "read every entity at every replica, then replicate":
/// the generic shape of a read-side compensation sweep (reads repair,
/// the sync spreads the repairs, the second round confirms a fixpoint).
fn view_sweep(
    sim: &mut Simulation,
    names: &[String],
    mut view: impl FnMut(&mut ipa_store::Transaction<'_>, &str),
) {
    for _round in 0..2 {
        for region in 0..sim.regions() as u16 {
            let replica = sim.replica_mut(region);
            let mut tx = replica.begin();
            for name in names {
                view(&mut tx, name);
            }
            tx.commit();
        }
        sim.sync_all();
    }
}

/// Run the read-side compensations to a fixpoint (§3.4): each app's
/// compensable invariants only promise to hold after their repairing
/// reads have run everywhere and replicated.
fn final_repair(app: App, w: &SoakWorkload, sim: &mut Simulation) {
    match (app, w) {
        (App::Tournament, SoakWorkload::Tournament(w)) => w.final_repair(sim),
        (App::Ticket, SoakWorkload::Ticket(w)) => {
            let app = w.app;
            view_sweep(sim, &w.all_event_names(), |tx, e| {
                app.view(tx, e).expect("view sweep");
            });
        }
        (App::Tpc, SoakWorkload::Tpc(w)) => {
            let app = w.app;
            view_sweep(sim, w.products(), |tx, p| {
                app.view(tx, p).expect("view sweep");
            });
        }
        // Add-wins Twitter preserves its invariants in-line, and the
        // escrow sale's bound is continuous by construction; neither has
        // anything compensable to sweep.
        (App::Twitter, _) | (App::TicketEscrow, _) => {}
        _ => unreachable!("workload/app mismatch"),
    }
}

/// Classify the first failure of a quiesced, repaired run. The order is
/// fixed so the same defect always reports the same check (the shrinker
/// keys on it): continuous → double-apply → final → convergence →
/// bounded-liveness.
fn classify(app: App, w: &SoakWorkload, sim: &Simulation) -> Option<Failure> {
    let oracle = oracle_for(app, w);
    if sim.metrics.audit_violations > 0 {
        // Attribute to the check still violated now if any (the final
        // audit below includes continuous checks); otherwise report the
        // transient class.
        for r in 0..sim.regions() as u16 {
            let report = oracle.audit(sim.replica(r), Phase::Continuous);
            if let Some(name) = report.violated().first() {
                return Some(Failure {
                    check: format!("continuous:{name}"),
                    count: sim.metrics.audit_violations,
                });
            }
        }
        return Some(Failure {
            check: "continuous:transient".into(),
            count: sim.metrics.audit_violations,
        });
    }
    let double = sim.double_apply_violations();
    if !double.is_empty() {
        return Some(Failure {
            check: "double-apply".into(),
            count: double.len() as u64,
        });
    }
    for r in 0..sim.regions() as u16 {
        let report = oracle.audit(sim.replica(r), Phase::Final);
        if report.total() > 0 {
            let name = report.violated()[0];
            return Some(Failure {
                check: format!("final:{name}"),
                count: report.total(),
            });
        }
    }
    let c0 = sim.replica(0).clock();
    for r in 1..sim.regions() as u16 {
        if sim.replica(r).clock() != c0 {
            return Some(Failure {
                check: "convergence".into(),
                count: 1,
            });
        }
    }
    let liveness = oracle.audit_sim(sim);
    if liveness.total() > 0 {
        let name = liveness.violated()[0];
        return Some(Failure {
            check: name.to_string(),
            count: liveness.total(),
        });
    }
    None
}

/// Per-run overrides for the soak harness (tests tighten the liveness
/// bound to force reproducible red cells; CI runs the defaults).
#[derive(Clone, Copy, Debug, Default)]
pub struct SoakTuning {
    /// Override the registry's bounded-liveness rounds.
    pub liveness_bound: Option<u64>,
    /// Which repair-discipline axis to run (default: IPA).
    pub mode: SoakMode,
}

/// One full soak cell: run the app under the nemesis, quiesce, repair,
/// audit everything, classify.
pub fn run_soak(app: App, seed: u64, nemesis: Nemesis<'_>) -> SoakRun {
    run_soak_tuned(app, seed, nemesis, SoakTuning::default())
}

/// [`run_soak`] with overrides.
pub fn run_soak_tuned(app: App, seed: u64, nemesis: Nemesis<'_>, tuning: SoakTuning) -> SoakRun {
    let faults = match &nemesis {
        Nemesis::Plan { faults, .. } => (*faults).clone(),
        Nemesis::Explicit { .. } => FaultPlan::none(),
    };
    let mut sim = Simulation::new(paper_topology(), soak_config(seed, faults));
    let mut workload = fresh_workload_mode(app, tuning.mode);
    // Continuous checks audited every 250 ms of simulated time; the
    // event-dependent registries (ticket) have no continuous checks, and
    // the escrow sale's events are static, so the pre-run registry is
    // always sufficient for the auditor.
    let auditor = match app {
        App::Tournament => Oracle::tournament(),
        App::Ticket => Oracle::ticket(Vec::new(), 0),
        App::TicketEscrow => Oracle::ticket_escrow(crate::ticket::sale::default_event_capacities()),
        App::Tpc => Oracle::tpc(Vec::new()),
        App::Twitter => Oracle::twitter(),
    };
    if let Some(bound) = tuning.liveness_bound.or(auditor.liveness_bound()) {
        sim.set_liveness_bound(bound);
    }
    sim.set_auditor(0.25, auditor.into_continuous_auditor());
    match nemesis {
        Nemesis::Plan { record: true, .. } => {
            sim.record_fault_trace();
            sim.record_op_trace();
        }
        Nemesis::Explicit { faults, ops } => {
            if let Some(plan) = faults {
                sim.set_explicit_faults(plan);
            }
            if let Some(trace) = ops {
                sim.set_explicit_ops(trace);
            }
        }
        _ => {}
    }
    sim.run(&mut workload);
    sim.quiesce();
    final_repair(app, &workload, &mut sim);
    let failure = classify(app, &workload, &sim);
    let digest = sim.schedule_digest();
    let recording = matches!(nemesis, Nemesis::Plan { record: true, .. });
    let trace = recording.then(|| sim.take_fault_trace());
    let ops = recording.then(|| sim.take_op_trace());
    SoakRun {
        sim,
        failure,
        digest,
        trace,
        ops,
    }
}

/// Per-app op weakening lattice for the joint shrinker: strictly weaker
/// replacements for an op line, strongest candidate first. "Weaker"
/// means fewer or smaller writes — every write descends toward its
/// read-only counterpart (which commits nothing, but keeps the client's
/// slot in the schedule), and multi-entity writes drop entities first
/// (`match p q t` → `enroll p t`). The shrinker keeps a replacement only
/// while the original oracle check still fails, so a surviving `match`
/// in a minimized trace *means* the match semantics were necessary.
pub fn weaken_op(app: App, op: &str) -> Vec<String> {
    let t: Vec<&str> = op.split_whitespace().collect();
    match (app, t.as_slice()) {
        (App::Tournament, ["match", p, q, t]) => {
            vec![format!("enroll {p} {t}"), format!("enroll {q} {t}")]
        }
        (App::Tournament, ["enroll" | "disenroll", _, t]) => vec![format!("status {t}")],
        (App::Tournament, ["begin" | "finish" | "remove", t]) => vec![format!("status {t}")],
        (App::Ticket | App::TicketEscrow, ["buy", slot]) => vec![format!("view {slot}")],
        (App::Tpc, ["purchase" | "restock" | "remproduct" | "addproduct", p]) => {
            vec![format!("view {p}")]
        }
        (App::Twitter, ["retweet", u, id]) => {
            vec![format!("tweet {u} {id}"), format!("timeline {u}")]
        }
        (App::Twitter, ["tweet" | "follow" | "unfollow", u, _]) => vec![format!("timeline {u}")],
        (App::Twitter, ["adduser" | "remuser" | "deltweet", _]) => Vec::new(),
        _ => Vec::new(),
    }
}

/// Shrink a red `(app, workload seed, fault plan)` cell to a minimal
/// explicit counterexample: record the failing run's fault trace *and*
/// op trace, seal the pair, and jointly delta-debug both against the
/// same classifier — the minimized artifact names the few client ops
/// that matter alongside the few faults (op events additionally descend
/// the [`weaken_op`] lattice, so surviving ops are as weak as the
/// violation allows). `None` when the probabilistic
/// run doesn't fail, or when its sealed trace pair no longer reproduces
/// any failure (never observed — the seal is exact — but the shrinker
/// refuses to "minimize" a green run rather than lie).
pub fn shrink_soak_failure(
    app: App,
    seed: u64,
    faults: &FaultPlan,
    budget: ShrinkBudget,
) -> Option<JointOutcome> {
    shrink_soak_failure_tuned(app, seed, faults, budget, SoakTuning::default())
}

/// [`shrink_soak_failure`] with overrides (the candidate runs are judged
/// under the same tuning as the recording run).
pub fn shrink_soak_failure_tuned(
    app: App,
    seed: u64,
    faults: &FaultPlan,
    budget: ShrinkBudget,
    tuning: SoakTuning,
) -> Option<JointOutcome> {
    let recorded = run_soak_tuned(
        app,
        seed,
        Nemesis::Plan {
            faults,
            record: true,
        },
        tuning,
    );
    recorded.failure.as_ref()?;
    let trace = recorded.trace.expect("recording was on");
    let ops = recorded.ops.expect("recording was on");
    shrink_joint_with(
        &trace,
        &ops,
        budget,
        |op| weaken_op(app, op),
        |cand_faults, cand_ops| {
            let run = run_soak_tuned(
                app,
                seed,
                Nemesis::Explicit {
                    faults: Some(cand_faults),
                    ops: Some(cand_ops),
                },
                tuning,
            );
            run.failure.map(|f| RunVerdict {
                check: f.check,
                digest: run.digest,
            })
        },
    )
}

/// One causal-axis cell: run the *unrepaired* app under the nemesis and
/// report the named anomaly it exhibited (`None` = the run stayed clean,
/// which is the failure on this axis).
pub fn run_causal_cell(app: App, seed: u64, faults: &FaultPlan) -> (Option<Anomaly>, SoakRun) {
    let tuning = SoakTuning {
        mode: SoakMode::Causal,
        ..SoakTuning::default()
    };
    let run = run_soak_tuned(
        app,
        seed,
        Nemesis::Plan {
            faults,
            record: false,
        },
        tuning,
    );
    (run.failure.as_ref().map(Failure::anomaly), run)
}

/// The causal axis' shrinker, with the verdict inverted: when the
/// unrepaired app *fails to produce* a named anomaly under a hostile
/// schedule, minimize the run that stays clean — the artifact names the
/// few ops and faults under which the expected anomaly is still absent,
/// which is exactly what a triager needs to see why the nemesis lost its
/// teeth. `None` when the recorded causal run did anomalize after all
/// (nothing to shrink — the axis is healthy).
pub fn shrink_missing_anomaly(
    app: App,
    seed: u64,
    faults: &FaultPlan,
    budget: ShrinkBudget,
) -> Option<JointOutcome> {
    let tuning = SoakTuning {
        mode: SoakMode::Causal,
        ..SoakTuning::default()
    };
    let recorded = run_soak_tuned(
        app,
        seed,
        Nemesis::Plan {
            faults,
            record: true,
        },
        tuning,
    );
    if recorded.failure.is_some() {
        return None;
    }
    let trace = recorded.trace.expect("recording was on");
    let ops = recorded.ops.expect("recording was on");
    shrink_joint_with(
        &trace,
        &ops,
        budget,
        |op| weaken_op(app, op),
        |cand_faults, cand_ops| {
            let run = run_soak_tuned(
                app,
                seed,
                Nemesis::Explicit {
                    faults: Some(cand_faults),
                    ops: Some(cand_ops),
                },
                tuning,
            );
            // Inverted verdict: a candidate "fails" (is kept) when it still
            // produces NO anomaly.
            run.failure.is_none().then(|| RunVerdict {
                check: "no-anomaly".into(),
                digest: run.digest,
            })
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn app_names_roundtrip() {
        for app in App::all() {
            assert_eq!(App::parse(app.name()), Some(app));
            assert_eq!(App::parse(&app.name().to_uppercase()), Some(app));
        }
        assert_eq!(App::parse("nonesuch"), None);
    }

    #[test]
    fn benign_soak_is_green_for_every_app() {
        for app in App::all() {
            let run = run_soak(
                app,
                5,
                Nemesis::Plan {
                    faults: &FaultPlan::none(),
                    record: false,
                },
            );
            assert_eq!(run.failure, None, "{app}: {:?}", run.failure);
            assert!(run.sim.metrics.completed > 50, "{app} actually ran");
        }
    }

    #[test]
    fn recording_a_soak_yields_a_sealed_trace() {
        let plan = FaultPlan::with_intensity(3, 0.6);
        let run = run_soak(
            App::Tournament,
            3,
            Nemesis::Plan {
                faults: &plan,
                record: true,
            },
        );
        let trace = run.trace.expect("recorded");
        assert!(!trace.events.is_empty());
        let replay = run_soak(
            App::Tournament,
            3,
            Nemesis::Explicit {
                faults: Some(&trace),
                ops: None,
            },
        );
        assert_eq!(
            replay.digest, run.digest,
            "sealed fault replay reproduces the probabilistic soak exactly"
        );
        assert_eq!(replay.failure, run.failure);
    }

    /// The op-replay seal, on every probed config: replaying the
    /// recorded `OpTrace` with `set_explicit_ops` — no workload RNG —
    /// reproduces the original schedule digest bit for bit, for all
    /// four applications, both with the fault plan kept probabilistic
    /// and with the fully sealed (ops + faults) pair.
    #[test]
    fn op_trace_seal_is_bit_exact_for_every_app() {
        for app in App::all() {
            for (seed, intensity) in [(3u64, 0.6), (11, 0.4)] {
                let plan = FaultPlan::with_intensity(seed, intensity);
                let run = run_soak(
                    app,
                    seed,
                    Nemesis::Plan {
                        faults: &plan,
                        record: true,
                    },
                );
                let ops = run.ops.expect("recorded");
                assert!(!ops.events.is_empty(), "{app}: ops were recorded");

                // Ops sealed, nemesis still probabilistic: the nemesis
                // stream is independent, so the digest must match.
                let mut sim =
                    ipa_sim::Simulation::new(paper_topology(), soak_config(seed, plan.clone()));
                let auditor = match app {
                    App::Tournament => Oracle::tournament(),
                    App::Ticket => Oracle::ticket(Vec::new(), 0),
                    App::TicketEscrow => {
                        Oracle::ticket_escrow(crate::ticket::sale::default_event_capacities())
                    }
                    App::Tpc => Oracle::tpc(Vec::new()),
                    App::Twitter => Oracle::twitter(),
                };
                if let Some(bound) = auditor.liveness_bound() {
                    sim.set_liveness_bound(bound);
                }
                sim.set_auditor(0.25, auditor.into_continuous_auditor());
                sim.set_explicit_ops(&ops);
                let mut workload = fresh_workload(app);
                sim.run(&mut workload);
                sim.quiesce();
                assert_eq!(
                    sim.schedule_digest(),
                    run.digest,
                    "{app} seed {seed}: ops-only seal must be bit-exact"
                );

                // Fully sealed pair (ops + faults): same digest, same
                // failure classification, and the text forms roundtrip.
                let faults = run.trace.expect("recorded");
                let ops2: OpTrace = ops.to_string().parse().expect("ops roundtrip");
                assert_eq!(ops2, ops);
                let sealed = run_soak(
                    app,
                    seed,
                    Nemesis::Explicit {
                        faults: Some(&faults),
                        ops: Some(&ops2),
                    },
                );
                assert_eq!(
                    sealed.digest, run.digest,
                    "{app} seed {seed}: full seal must be bit-exact"
                );
                assert_eq!(sealed.failure, run.failure);
            }
        }
    }

    /// The causal axis as the CI matrix runs it: each unrepaired app at
    /// the canonical first seed must name its signature anomaly.
    #[test]
    fn causal_cell_names_the_expected_anomaly_per_app() {
        let expect = [
            (App::Tournament, Anomaly::ReferentialOrphan),
            (App::Ticket, Anomaly::Oversell),
            (App::TicketEscrow, Anomaly::Oversell),
            (App::Tpc, Anomaly::ReferentialOrphan),
            (App::Twitter, Anomaly::LostUpdate),
        ];
        for (app, want) in expect {
            let plan = FaultPlan::with_intensity(11, 0.5);
            let (got, run) = run_causal_cell(app, 11, &plan);
            assert_eq!(
                got,
                Some(want),
                "{app} causal cell: failure {:?}",
                run.failure
            );
        }
    }

    /// The inverted shrink: a causal cell that stays clean minimizes the
    /// *clean* run (verdict `no-anomaly`), so the report names the
    /// smallest schedule under which the nemesis lost its teeth.
    #[test]
    fn clean_causal_cell_shrinks_to_a_minimal_no_anomaly_run() {
        let plan = FaultPlan::with_intensity(1, 0.0);
        let (a, _) = run_causal_cell(App::Twitter, 1, &plan);
        assert_eq!(a, None, "benign twitter causal cell at seed 1 is clean");
        let outcome = shrink_missing_anomaly(App::Twitter, 1, &plan, ShrinkBudget::default())
            .expect("the clean run reproduces from its recorded traces");
        assert_eq!(outcome.check, "no-anomaly");
        assert!(outcome.op_events() <= outcome.original_op_events);
    }

    /// Every lattice row must (a) parse under its app's op grammar and
    /// (b) terminate: repeated weakening reaches a fixpoint (no cycles).
    #[test]
    fn weakening_lattice_rows_parse_and_terminate() {
        use crate::ticket::workload::TicketOp;
        use crate::tournament::workload::TournamentOp;
        use crate::tpc::workload::TpcOp;
        use crate::twitter::workload::TwitterOp;
        let samples: [(App, &[&str]); 5] = [
            (
                App::Tournament,
                &[
                    "match p1 p2 t3",
                    "enroll p1 t3",
                    "disenroll p1 t3",
                    "begin t3",
                    "finish t3",
                    "remove t3",
                    "status t3",
                ],
            ),
            (App::Ticket, &["buy 1", "view 1"]),
            (App::TicketEscrow, &["buy 0", "view 0"]),
            (
                App::Tpc,
                &[
                    "purchase p1",
                    "restock p1",
                    "remproduct p1",
                    "addproduct p1",
                    "view p1",
                ],
            ),
            (
                App::Twitter,
                &[
                    "tweet u1 5",
                    "retweet u2 5",
                    "deltweet 5",
                    "follow u1 u2",
                    "unfollow u1 u2",
                    "adduser u9",
                    "remuser u1",
                    "timeline u1",
                ],
            ),
        ];
        let parses = |app: App, op: &str| match app {
            App::Tournament => op.parse::<TournamentOp>().map(|_| ()),
            App::Ticket | App::TicketEscrow => op.parse::<TicketOp>().map(|_| ()),
            App::Tpc => op.parse::<TpcOp>().map(|_| ()),
            App::Twitter => op.parse::<TwitterOp>().map(|_| ()),
        };
        for (app, ops) in samples {
            for &op in ops {
                // BFS the whole lattice below `op`, bounded to prove
                // termination.
                let mut frontier = vec![op.to_owned()];
                let mut steps = 0;
                while let Some(cur) = frontier.pop() {
                    steps += 1;
                    assert!(steps < 64, "{app}: lattice under {op:?} does not terminate");
                    for w in weaken_op(app, &cur) {
                        parses(app, &w).unwrap_or_else(|e| {
                            panic!("{app}: weakening {cur:?} produced invalid op {w:?}: {e}")
                        });
                        frontier.push(w);
                    }
                }
            }
        }
    }
}
