//! Shared application plumbing.

use rand::Rng;
use std::fmt;

/// The consistency configuration an application runs under (§5.2.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Mode {
    /// Unmodified application over causal consistency (no invariant
    /// preservation).
    Causal,
    /// IPA-patched operations: extra restoring effects / compensations.
    Ipa,
    /// Indigo-style reservations.
    Indigo,
    /// Primary-forwarded strong consistency.
    Strong,
}

impl Mode {
    pub fn all() -> [Mode; 4] {
        [Mode::Causal, Mode::Ipa, Mode::Indigo, Mode::Strong]
    }
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Mode::Causal => "Causal",
            Mode::Ipa => "IPA",
            Mode::Indigo => "Indigo",
            Mode::Strong => "Strong",
        };
        f.write_str(s)
    }
}

/// Pick an index in `0..n`, preferring `home`-affine entities with the
/// given probability (models the access locality that keeps Indigo's
/// reservations mostly resident).
pub fn pick_local(rng: &mut impl Rng, n: usize, regions: usize, home: u16, locality: f64) -> usize {
    assert!(n > 0);
    if regions <= 1 || rng.gen::<f64>() >= locality {
        return rng.gen_range(0..n);
    }
    // Entities are striped across regions by index.
    let local: Vec<usize> = (0..n)
        .filter(|i| (i % regions) as u16 == home % regions as u16)
        .collect();
    if local.is_empty() {
        rng.gen_range(0..n)
    } else {
        local[rng.gen_range(0..local.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn modes_display() {
        assert_eq!(Mode::Causal.to_string(), "Causal");
        assert_eq!(Mode::Ipa.to_string(), "IPA");
        assert_eq!(Mode::all().len(), 4);
    }

    #[test]
    fn locality_prefers_home_entities() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut home_hits = 0;
        let trials = 1000;
        for _ in 0..trials {
            let i = pick_local(&mut rng, 12, 3, 1, 0.9);
            if i % 3 == 1 {
                home_hits += 1;
            }
        }
        // ~0.9 + 0.1/3 ≈ 93 % expected.
        assert!(home_hits > 850, "{home_hits}");
    }

    #[test]
    fn zero_locality_is_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 3];
        for _ in 0..3000 {
            counts[pick_local(&mut rng, 3, 3, 0, 0.0)] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "{counts:?}");
        }
    }
}
