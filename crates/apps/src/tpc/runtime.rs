//! TPC runtime: catalogue, orders and per-product stock counters.

use crate::common::Mode;
use ipa_crdt::{ObjectKind, Val, ValPattern};
use ipa_store::{Key, StoreError, Transaction};

pub const PRODUCTS: &str = "tpc/products";
pub const ORDERS: &str = "tpc/orders";

pub fn stock_key(product: &str) -> String {
    format!("tpc/stock/{product}")
}

/// Per-op cost.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpCost {
    pub objects: usize,
    pub updates: usize,
}

/// The TPC application.
#[derive(Clone, Copy, Debug)]
pub struct TpcApp {
    pub mode: Mode,
    /// Units added by a (compensation) restock.
    pub restock_units: i64,
}

impl TpcApp {
    pub fn new(mode: Mode) -> TpcApp {
        TpcApp {
            mode,
            restock_units: 10,
        }
    }

    pub fn ensure_schema(&self, tx: &mut Transaction<'_>) -> Result<(), StoreError> {
        tx.ensure(PRODUCTS, ObjectKind::AWMap)?;
        tx.ensure(ORDERS, ObjectKind::AWSet)?;
        Ok(())
    }

    pub fn add_product(
        &self,
        tx: &mut Transaction<'_>,
        p: &str,
        initial_stock: i64,
    ) -> Result<OpCost, StoreError> {
        self.ensure_schema(tx)?;
        tx.map_put(PRODUCTS, Val::str(p), Val::str(format!("sku:{p}")))?;
        tx.ensure(stock_key(p), ObjectKind::PNCounter)?;
        tx.counter_add(stock_key(p), initial_stock)?;
        Ok(OpCost {
            objects: 2,
            updates: 2,
        })
    }

    pub fn rem_product(&self, tx: &mut Transaction<'_>, p: &str) -> Result<OpCost, StoreError> {
        self.ensure_schema(tx)?;
        // Local precondition restoration (mirrors the tournament's
        // `rem_tourn`): delisting a product also clears the observed
        // orders that reference it, so referential integrity holds in the
        // origin state. Concurrent purchases elsewhere still win via
        // add-wins (and, under IPA, their `touch` keeps the product
        // alive), which preserves the Causal-mode orphan anomaly.
        tx.aw_remove_matching(
            ORDERS,
            &ValPattern::pair(ValPattern::Any, ValPattern::exact(p)),
        )?;
        tx.map_remove(PRODUCTS, &Val::str(p))?;
        Ok(OpCost {
            objects: 2,
            updates: 2,
        })
    }

    /// Purchase one unit: records the order and decrements stock. The
    /// local precondition rejects when the locally observed stock is
    /// empty; concurrent purchases elsewhere can still drive it negative.
    pub fn purchase(
        &self,
        tx: &mut Transaction<'_>,
        order: &str,
        p: &str,
    ) -> Result<Option<OpCost>, StoreError> {
        self.ensure_schema(tx)?;
        tx.ensure(stock_key(p), ObjectKind::PNCounter)?;
        if tx.counter_value(stock_key(p))? <= 0 {
            return Ok(None);
        }
        tx.aw_add(ORDERS, Val::pair(order, p))?;
        tx.counter_add(stock_key(p), -1)?;
        if self.mode == Mode::Ipa {
            // The analysis-added restore: a purchase keeps its product
            // alive against a concurrent rem_product (add-wins touch).
            tx.map_touch(PRODUCTS, Val::str(p))?;
            return Ok(Some(OpCost {
                objects: 3,
                updates: 3,
            }));
        }
        Ok(Some(OpCost {
            objects: 2,
            updates: 2,
        }))
    }

    pub fn restock(&self, tx: &mut Transaction<'_>, p: &str) -> Result<OpCost, StoreError> {
        tx.ensure(stock_key(p), ObjectKind::PNCounter)?;
        tx.counter_add(stock_key(p), self.restock_units)?;
        Ok(OpCost {
            objects: 1,
            updates: 1,
        })
    }

    /// Product view. Under IPA a negative observed stock triggers the
    /// compensation: replenish back to a non-negative level (the
    /// TPC-specified behaviour, §5.1.2), committed with this read.
    pub fn view(
        &self,
        tx: &mut Transaction<'_>,
        p: &str,
    ) -> Result<(i64, bool, OpCost), StoreError> {
        self.ensure_schema(tx)?;
        tx.ensure(stock_key(p), ObjectKind::PNCounter)?;
        let stock = tx.counter_value(stock_key(p))?;
        let negative = stock < 0;
        if negative && self.mode == Mode::Ipa {
            tx.counter_add(stock_key(p), -stock + self.restock_units)?;
            return Ok((
                self.restock_units,
                true,
                OpCost {
                    objects: 2,
                    updates: 1,
                },
            ));
        }
        Ok((
            stock,
            negative,
            OpCost {
                objects: 2,
                updates: 0,
            },
        ))
    }

    /// Current stock of a product at a replica (test helper).
    pub fn stock_at(replica: &ipa_store::Replica, p: &str) -> i64 {
        replica
            .object(&Key::new(stock_key(p)))
            .and_then(|o| o.as_pncounter().map(|c| c.value()))
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipa_crdt::ReplicaId;
    use ipa_store::Cluster;

    fn commit<T>(
        cluster: &mut Cluster,
        r: u16,
        f: impl FnOnce(&mut Transaction<'_>) -> Result<T, StoreError>,
    ) -> T {
        let replica = cluster.replica_mut(ReplicaId(r));
        let mut tx = replica.begin();
        let out = f(&mut tx).expect("op");
        tx.commit();
        out
    }

    #[test]
    fn concurrent_purchases_drive_stock_negative_under_causal() {
        let app = TpcApp::new(Mode::Causal);
        let mut cluster = Cluster::new(2);
        commit(&mut cluster, 0, |tx| app.add_product(tx, "book", 1));
        cluster.sync();
        // Both replicas see stock 1 and purchase concurrently.
        assert!(commit(&mut cluster, 0, |tx| app.purchase(tx, "o1", "book")).is_some());
        assert!(commit(&mut cluster, 1, |tx| app.purchase(tx, "o2", "book")).is_some());
        cluster.sync();
        assert_eq!(TpcApp::stock_at(cluster.replica(ReplicaId(0)), "book"), -1);
        assert_eq!(
            crate::violations::tpc_violations(cluster.replica(ReplicaId(0)), &["book".to_owned()]),
            1
        );
    }

    #[test]
    fn ipa_view_compensates_negative_stock() {
        let app = TpcApp::new(Mode::Ipa);
        let mut cluster = Cluster::new(2);
        commit(&mut cluster, 0, |tx| app.add_product(tx, "book", 1));
        cluster.sync();
        assert!(commit(&mut cluster, 0, |tx| app.purchase(tx, "o1", "book")).is_some());
        assert!(commit(&mut cluster, 1, |tx| app.purchase(tx, "o2", "book")).is_some());
        cluster.sync();
        let (stock, was_negative, _) = commit(&mut cluster, 0, |tx| app.view(tx, "book"));
        assert!(was_negative);
        assert_eq!(stock, app.restock_units, "replenished to the restock level");
        cluster.sync();
        for r in 0..2 {
            assert!(
                TpcApp::stock_at(cluster.replica(ReplicaId(r)), "book") >= 0,
                "replica {r}"
            );
        }
    }

    #[test]
    fn ipa_purchase_restores_product_against_concurrent_removal() {
        let app = TpcApp::new(Mode::Ipa);
        let mut cluster = Cluster::new(2);
        commit(&mut cluster, 0, |tx| app.add_product(tx, "book", 10));
        cluster.sync();
        commit(&mut cluster, 0, |tx| app.rem_product(tx, "book"));
        assert!(commit(&mut cluster, 1, |tx| app.purchase(tx, "o1", "book")).is_some());
        cluster.sync();
        for r in 0..2 {
            let rep = cluster.replica(ReplicaId(r));
            assert_eq!(
                crate::violations::tpc_violations(rep, &["book".to_owned()]),
                0
            );
            let products = rep.object(&PRODUCTS.into()).unwrap();
            assert_eq!(
                products.set_contains(&Val::str("book")),
                Some(true),
                "replica {r}: the touch restored the product"
            );
        }
    }

    #[test]
    fn causal_purchase_vs_removal_orphans_the_order() {
        let app = TpcApp::new(Mode::Causal);
        let mut cluster = Cluster::new(2);
        commit(&mut cluster, 0, |tx| app.add_product(tx, "book", 10));
        cluster.sync();
        commit(&mut cluster, 0, |tx| app.rem_product(tx, "book"));
        assert!(commit(&mut cluster, 1, |tx| app.purchase(tx, "o1", "book")).is_some());
        cluster.sync();
        assert!(
            crate::violations::tpc_violations(cluster.replica(ReplicaId(0)), &["book".to_owned()])
                > 0
        );
    }
}
