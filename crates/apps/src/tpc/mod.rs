//! TPC-W / TPC-C subset (§5.1.2): product catalogue management
//! (referential integrity) plus stock levels (numeric invariant with
//! compensation restock, "as in the specification of the benchmark").

pub mod runtime;
pub mod spec;
pub mod workload;

pub use runtime::TpcApp;
pub use spec::tpc_spec;
pub use workload::TpcWorkload;
