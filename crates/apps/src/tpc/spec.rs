//! TPC-W/TPC-C specification: the invariants the paper adds when
//! extending the benchmarks with product-management operations.

use ipa_spec::{AppSpec, AppSpecBuilder, ConvergencePolicy};

pub fn tpc_spec() -> AppSpec {
    AppSpecBuilder::new("tpc")
        .sort("Product")
        .sort("Order")
        .predicate_bool("product", &["Product"])
        .predicate_bool("ordered", &["Order", "Product"])
        .predicate_num("stock", &["Product"])
        .rule("product", ConvergencePolicy::AddWins)
        .rule("ordered", ConvergencePolicy::AddWins)
        // Referential integrity introduced by the product-management ops.
        .invariant_str("forall(Order: o, Product: p) :- ordered(o, p) => product(p)")
        // The classic stock invariant.
        .invariant_str("forall(Product: p) :- stock(p) >= 0")
        .operation("add_product", &[("p", "Product")], |op| {
            op.set_true("product", &["p"])
        })
        .operation("rem_product", &[("p", "Product")], |op| {
            op.set_false("product", &["p"])
        })
        .operation("purchase", &[("o", "Order"), ("p", "Product")], |op| {
            op.set_true("ordered", &["o", "p"]).dec("stock", &["p"], 1)
        })
        .operation("restock", &[("p", "Product")], |op| {
            op.inc("stock", &["p"], 10)
        })
        .build()
        .expect("tpc spec is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipa_core::{Analyzer, BoundKind, CompAction};

    #[test]
    fn analysis_repairs_referential_integrity_and_compensates_stock() {
        let spec = tpc_spec();
        let report = Analyzer::for_spec(&spec).analyze(&spec).unwrap();
        assert!(report.converged);
        // purchase ∥ rem_product is repaired by a restoring effect.
        let purchase = report.patched.operation("purchase").unwrap();
        let restored = purchase
            .added_effects
            .iter()
            .any(|e| e.atom.pred.as_str() == "product");
        let rem = report.patched.operation("rem_product").unwrap();
        let cleared = rem
            .added_effects
            .iter()
            .any(|e| e.atom.pred.as_str() == "ordered" && e.atom.has_wildcard());
        assert!(
            restored || cleared,
            "one of the two paper resolutions must be applied: {report}"
        );
        // Stock is a numeric lower bound → compensation (replenish).
        let stock_comp = report
            .compensations
            .iter()
            .find(|c| c.pred.as_str() == "stock")
            .expect("stock compensation");
        assert_eq!(stock_comp.bound, BoundKind::Lower);
        assert!(matches!(stock_comp.action(), CompAction::Replenish { .. }));
    }
}
