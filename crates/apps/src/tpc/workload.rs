//! TPC workload: browsing-heavy mix with purchases, restocks and
//! occasional catalogue changes.

use crate::common::Mode;
use crate::tpc::runtime::TpcApp;
use ipa_sim::{AppOp, ClientInfo, OpCtx, OpOutcome, SimCtx, Workload};
use rand::Rng;
use std::fmt;
use std::str::FromStr;

/// One decided TPC operation (fully resolved product name). A
/// `Purchase` that finds the shelf empty restocks instead — that branch
/// is execute-time state, mirroring the pre-split workload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TpcOp {
    View { p: String },
    Purchase { p: String },
    Restock { p: String },
    RemProduct { p: String },
    AddProduct { p: String },
}

impl fmt::Display for TpcOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TpcOp::View { p } => write!(f, "view {p}"),
            TpcOp::Purchase { p } => write!(f, "purchase {p}"),
            TpcOp::Restock { p } => write!(f, "restock {p}"),
            TpcOp::RemProduct { p } => write!(f, "remproduct {p}"),
            TpcOp::AddProduct { p } => write!(f, "addproduct {p}"),
        }
    }
}

impl FromStr for TpcOp {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let tok: Vec<&str> = s.split_whitespace().collect();
        if tok.len() != 2 {
            return Err(format!("bad tpc op {s:?}"));
        }
        let p = tok[1].to_owned();
        match tok[0] {
            "view" => Ok(TpcOp::View { p }),
            "purchase" => Ok(TpcOp::Purchase { p }),
            "restock" => Ok(TpcOp::Restock { p }),
            "remproduct" => Ok(TpcOp::RemProduct { p }),
            "addproduct" => Ok(TpcOp::AddProduct { p }),
            _ => Err(format!("bad tpc op {s:?}")),
        }
    }
}

/// Workload parameters.
#[derive(Clone, Debug)]
pub struct TpcConfig {
    pub num_products: usize,
    pub initial_stock: i64,
}

impl Default for TpcConfig {
    fn default() -> Self {
        TpcConfig {
            num_products: 20,
            initial_stock: 10,
        }
    }
}

/// Simulator workload for one mode.
pub struct TpcWorkload {
    pub app: TpcApp,
    cfg: TpcConfig,
    products: Vec<String>,
    next_order: u64,
}

impl TpcWorkload {
    pub fn new(mode: Mode, cfg: TpcConfig) -> Self {
        let products = (0..cfg.num_products).map(|i| format!("sku{i}")).collect();
        TpcWorkload {
            app: TpcApp::new(mode),
            cfg,
            products,
            next_order: 0,
        }
    }

    pub fn with_defaults(mode: Mode) -> Self {
        Self::new(mode, TpcConfig::default())
    }

    pub fn products(&self) -> &[String] {
        &self.products
    }
}

impl TpcWorkload {
    /// Transport-agnostic setup body; [`Workload::setup`] and the
    /// threaded harness both call it.
    pub(crate) fn setup_in<C: OpCtx>(&mut self, ctx: &mut C) {
        let app = self.app;
        let products = self.products.clone();
        let stock = self.cfg.initial_stock;
        ctx.commit(0, |tx| {
            for p in &products {
                app.add_product(tx, p, stock)?;
            }
            Ok(())
        })
        .expect("seed products");
    }
}

impl Workload for TpcWorkload {
    fn setup(&mut self, ctx: &mut SimCtx<'_>) {
        self.setup_in(ctx);
    }

    fn op(&mut self, ctx: &mut SimCtx<'_>, client: ClientInfo) -> OpOutcome {
        let op = self.decide_op(ctx);
        self.execute_op(ctx, client, &op)
    }

    fn decide(&mut self, ctx: &mut SimCtx<'_>, _client: ClientInfo) -> Option<AppOp> {
        Some(AppOp::new(self.decide_op(ctx).to_string()))
    }

    fn execute(&mut self, ctx: &mut SimCtx<'_>, client: ClientInfo, op: &AppOp) -> OpOutcome {
        let op: TpcOp = op
            .as_str()
            .parse()
            .unwrap_or_else(|e| panic!("op trace: {e}"));
        self.execute_op(ctx, client, &op)
    }
}

impl TpcWorkload {
    /// Draw the next op (product, then op-kind — the pre-split order).
    pub(crate) fn decide_op<C: OpCtx>(&mut self, ctx: &mut C) -> TpcOp {
        let p = self.products[ctx.rng().gen_range(0..self.products.len())].clone();
        let x = ctx.rng().gen::<f64>();
        if x < 0.45 {
            TpcOp::View { p }
        } else if x < 0.85 {
            TpcOp::Purchase { p }
        } else if x < 0.93 {
            TpcOp::Restock { p }
        } else if x < 0.97 {
            TpcOp::RemProduct { p }
        } else {
            TpcOp::AddProduct { p }
        }
    }

    /// Execute a decided (or replayed) op. Order ids are execute-time
    /// state, so replays regenerate the identical order stream.
    pub(crate) fn execute_op<C: OpCtx>(
        &mut self,
        ctx: &mut C,
        client: ClientInfo,
        op: &TpcOp,
    ) -> OpOutcome {
        let region = client.region;
        let app = self.app;

        let (label, cost, violations): (&'static str, _, u64) = match op {
            TpcOp::View { p } => {
                let ((_, negative, cost), _info) =
                    ctx.commit(region, |tx| app.view(tx, p)).expect("view");
                (
                    "View",
                    cost,
                    u64::from(negative && app.mode == Mode::Causal),
                )
            }
            TpcOp::Purchase { p } => {
                self.next_order += 1;
                let order = format!("o{}", self.next_order);
                let (res, _info) = ctx
                    .commit(region, |tx| app.purchase(tx, &order, p))
                    .expect("purchase");
                match res {
                    Some(cost) => ("Purchase", cost, 0),
                    None => {
                        // Out of stock: restock (the admin path).
                        let (cost, _info) = ctx
                            .commit(region, |tx| app.restock(tx, p))
                            .expect("restock");
                        ("Restock", cost, 0)
                    }
                }
            }
            TpcOp::Restock { p } => {
                let (cost, _info) = ctx
                    .commit(region, |tx| app.restock(tx, p))
                    .expect("restock");
                ("Restock", cost, 0)
            }
            TpcOp::RemProduct { p } => {
                let (cost, _info) = ctx
                    .commit(region, |tx| app.rem_product(tx, p))
                    .expect("rem product");
                ("RemProduct", cost, 0)
            }
            TpcOp::AddProduct { p } => {
                let (cost, _info) = ctx
                    .commit(region, |tx| app.add_product(tx, p, self.cfg.initial_stock))
                    .expect("add product");
                ("AddProduct", cost, 0)
            }
        };

        OpOutcome {
            label,
            objects: cost.objects,
            updates: cost.updates,
            extra_wan_ms: 0.0,
            ok: true,
            violations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipa_sim::{paper_topology, SimConfig, Simulation};

    fn run(mode: Mode, seed: u64) -> (Simulation, TpcWorkload) {
        let cfg = SimConfig {
            clients_per_region: 4,
            think_time_ms: 4.0,
            warmup_s: 0.5,
            duration_s: 4.0,
            seed,
            ..Default::default()
        };
        let mut sim = Simulation::new(paper_topology(), cfg);
        let mut w = TpcWorkload::with_defaults(mode);
        sim.run(&mut w);
        sim.quiesce();
        (sim, w)
    }

    #[test]
    fn causal_run_produces_anomalies() {
        let (sim, w) = run(Mode::Causal, 51);
        let v: u64 = (0..3)
            .map(|r| crate::violations::tpc_violations(sim.replica(r), w.products()))
            .sum();
        assert!(
            v + sim.metrics.violations > 0,
            "contended TPC under causal should violate stock/ref-integrity"
        );
    }

    #[test]
    fn ipa_reads_never_observe_violations_and_orders_stay_valid() {
        let (sim, _w) = run(Mode::Ipa, 51);
        // IPA views either see valid stock or repair it in the same
        // transaction, so the metric stays zero.
        assert_eq!(sim.metrics.violations, 0);
        // Referential integrity: the purchase-side touch keeps every
        // ordered product alive — no orphan orders on any replica.
        for r in 0..3 {
            let orphans = crate::violations::tpc_violations(sim.replica(r), &[]);
            assert_eq!(orphans, 0, "replica {r}: no orphan orders");
        }
    }
}
