//! The Ticket application (FusionTicket, §5.1.2, §5.2.4): tickets for
//! events must not be oversold — a numeric invariant enforced by
//! compensation (cancel + reimburse) in IPA, and violated under Causal.

pub mod runtime;
pub mod sale;
pub mod spec;
pub mod workload;

pub use runtime::TicketApp;
pub use sale::{SaleBackend, SaleConfig, SaleWorkload};
pub use spec::ticket_spec;
pub use workload::TicketWorkload;
