//! The flagship escrow scenario: a high-contention ticket sale over the
//! redesigned [`BoundedCounter`] coordination surface.
//!
//! One hot event (a flash crowd chasing a small capacity) plus a cheap
//! tail, sold through one of four disciplines:
//!
//! * [`SaleBackend::Causal`] — uncoordinated add-wins pools: concurrent
//!   last-ticket purchases oversell silently (the anomaly detector on
//!   the causal soak axis).
//! * [`SaleBackend::IpaRepair`] — the paper's compensation sets: raw
//!   overshoot is allowed and repaired on read (§3.4).
//! * [`SaleBackend::Escrow`] — [`EscrowShard`](ipa_coord::EscrowShard):
//!   per-replica rights as *replicated store state*, local decrements
//!   while rights last, asynchronous rights-transfer messages riding
//!   ordinary update batches. Overselling is prevented outright, so the
//!   capacity bound is a **continuous** oracle check.
//! * [`SaleBackend::Strong`] — every purchase forwarded to the primary.
//!
//! Unlike [`TicketWorkload`](crate::ticket::workload::TicketWorkload),
//! events are static (no sold-out generation rolls): the pre-run
//! continuous auditor must know every pool up front, and a sold-out hot
//! event staying sold out is exactly the regime the escrow comparison
//! measures.

use crate::ticket::runtime::pool_key;
use crate::ticket::workload::TicketOp;
use ipa_coord::{BoundedCounter, CoordConfig, CoordError, CounterBackend, EscrowShardStats};
use ipa_crdt::{ObjectKind, Val};
use ipa_sim::{AppOp, ClientInfo, OpCtx, OpOutcome, SimCtx, Workload};
use rand::Rng;

/// Which coordination discipline sells the tickets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SaleBackend {
    Causal,
    IpaRepair,
    Escrow,
    Strong,
}

impl SaleBackend {
    pub fn all() -> [SaleBackend; 4] {
        [
            SaleBackend::Causal,
            SaleBackend::IpaRepair,
            SaleBackend::Escrow,
            SaleBackend::Strong,
        ]
    }

    pub fn name(self) -> &'static str {
        match self {
            SaleBackend::Causal => "causal",
            SaleBackend::IpaRepair => "ipa",
            SaleBackend::Escrow => "escrow",
            SaleBackend::Strong => "strong",
        }
    }
}

impl std::fmt::Display for SaleBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Workload parameters.
#[derive(Clone, Debug)]
pub struct SaleConfig {
    /// Event slots; slot 0 is the hot event.
    pub num_events: usize,
    /// Capacity of the hot event (small ⇒ the flash crowd contends).
    pub hot_capacity: usize,
    /// Capacity of every tail event.
    pub tail_capacity: usize,
    /// Fraction of buy operations (the rest are views).
    pub buy_fraction: f64,
    /// Probability an op targets the hot event.
    pub hot_fraction: f64,
}

impl Default for SaleConfig {
    fn default() -> Self {
        SaleConfig {
            num_events: 4,
            hot_capacity: 12,
            tail_capacity: 200,
            buy_fraction: 0.8,
            hot_fraction: 0.6,
        }
    }
}

/// The primary region the strong backend forwards to.
const PRIMARY: u16 = 0;

/// Event names and capacities of the default configuration — what the
/// pre-run continuous auditor registers (events are static, so the
/// pre-run registry is exact, not merely sufficient).
pub fn default_event_capacities() -> Vec<(String, usize)> {
    SaleWorkload::new(SaleBackend::Escrow, SaleConfig::default()).event_capacities()
}

/// Simulator workload for one sale backend.
pub struct SaleWorkload {
    pub backend: SaleBackend,
    cfg: SaleConfig,
    /// The bounded-counter backend (escrow / strong modes only), built
    /// against the deployment shape at setup time.
    counter: Option<CounterBackend>,
    next_user: u64,
}

impl SaleWorkload {
    pub fn new(backend: SaleBackend, cfg: SaleConfig) -> Self {
        SaleWorkload {
            backend,
            cfg,
            counter: None,
            next_user: 0,
        }
    }

    pub fn with_defaults(backend: SaleBackend) -> Self {
        Self::new(backend, SaleConfig::default())
    }

    fn event_name(&self, slot: usize) -> String {
        format!("s{slot}")
    }

    fn capacity(&self, slot: usize) -> usize {
        if slot == 0 {
            self.cfg.hot_capacity
        } else {
            self.cfg.tail_capacity
        }
    }

    fn pool_kind(&self, slot: usize) -> ObjectKind {
        match self.backend {
            SaleBackend::IpaRepair => ObjectKind::CompSet {
                capacity: self.capacity(slot),
            },
            _ => ObjectKind::AWSet,
        }
    }

    /// Every event with its capacity (the oracle registry's input).
    pub fn event_capacities(&self) -> Vec<(String, usize)> {
        (0..self.cfg.num_events)
            .map(|s| (self.event_name(s), self.capacity(s)))
            .collect()
    }

    /// Escrow provisioning statistics (escrow backend only).
    pub fn escrow_stats(&self) -> Option<&EscrowShardStats> {
        match &self.counter {
            Some(CounterBackend::Escrow(shard)) => Some(&shard.stats),
            _ => None,
        }
    }
}

impl SaleWorkload {
    /// Transport-agnostic setup body; [`Workload::setup`] and the
    /// threaded harness both call it.
    pub(crate) fn setup_in<C: OpCtx>(&mut self, ctx: &mut C) {
        let regions = ctx.regions() as u16;
        let pools: Vec<(String, ObjectKind)> = (0..self.cfg.num_events)
            .map(|s| (pool_key(&self.event_name(s)), self.pool_kind(s)))
            .collect();
        // Ensure the pools at *every* region up front. Object creation is
        // deterministic (fixed creation owner), so the independently
        // created replicas are identical and merge idempotently — a buy
        // at a remote region is safe before any batch has replicated.
        for r in 0..regions {
            ctx.commit(r, |tx| {
                for (key, kind) in &pools {
                    tx.ensure(key.as_str(), *kind)?;
                }
                Ok(())
            })
            .expect("seed sale pools");
        }
        let mut counter = match self.backend {
            SaleBackend::Escrow => CounterBackend::Escrow(CoordConfig::new(regions).build_escrow()),
            SaleBackend::Strong => {
                CounterBackend::Strong(CoordConfig::new(regions).primary(PRIMARY).build_strong())
            }
            _ => return,
        };
        for slot in 0..self.cfg.num_events {
            let e = self.event_name(slot);
            counter
                .create(ctx, &e, self.capacity(slot) as u64)
                .expect("create sale counter");
        }
        self.counter = Some(counter);
    }

    /// Transport-agnostic op body.
    pub(crate) fn op_in<C: OpCtx>(&mut self, ctx: &mut C, client: ClientInfo) -> OpOutcome {
        let op = self.decide_op(ctx);
        self.execute_op(ctx, client, op)
    }

    /// Draw the next op (hot?, tail slot, buy? — in that order).
    pub(crate) fn decide_op<C: OpCtx>(&mut self, ctx: &mut C) -> TicketOp {
        let hot = ctx.rng().gen::<f64>() < self.cfg.hot_fraction;
        let slot = if hot || self.cfg.num_events <= 1 {
            0
        } else {
            ctx.rng().gen_range(1..self.cfg.num_events)
        };
        let is_buy = ctx.rng().gen::<f64>() < self.cfg.buy_fraction;
        if is_buy {
            TicketOp::Buy { slot }
        } else {
            TicketOp::View { slot }
        }
    }

    /// Execute a decided (or replayed) op. User ids are execute-time
    /// state, so a replayed trace regenerates them identically.
    pub(crate) fn execute_op<C: OpCtx>(
        &mut self,
        ctx: &mut C,
        client: ClientInfo,
        op: TicketOp,
    ) -> OpOutcome {
        let region = client.region;
        let (slot, is_buy) = match op {
            TicketOp::Buy { slot } => (slot, true),
            TicketOp::View { slot } => (slot, false),
        };
        assert!(
            slot < self.cfg.num_events,
            "op trace slot {slot} out of range (config has {})",
            self.cfg.num_events
        );
        let event = self.event_name(slot);
        let key = pool_key(&event);
        let kind = self.pool_kind(slot);

        if !is_buy {
            let updates = match self.backend {
                SaleBackend::IpaRepair => {
                    let (read, _info) = ctx
                        .commit(region, |tx| {
                            tx.ensure(key.as_str(), kind)?;
                            tx.compset_read(key.as_str())
                        })
                        .expect("sale view");
                    usize::from(!read.cancelled.is_empty())
                }
                _ => {
                    ctx.commit(region, |tx| {
                        tx.ensure(key.as_str(), kind)?;
                        tx.set_elements(key.as_str()).map(|_| ())
                    })
                    .expect("sale view");
                    0
                }
            };
            return OpOutcome::ok("View", 1, updates);
        }

        self.next_user += 1;
        let user = format!("u{}", self.next_user);
        match self.backend {
            SaleBackend::Causal | SaleBackend::IpaRepair => {
                let cap = self.capacity(slot);
                let ipa = self.backend == SaleBackend::IpaRepair;
                let (bought, _info) = ctx
                    .commit(region, |tx| {
                        tx.ensure(key.as_str(), kind)?;
                        // Local precondition only: concurrent remote buys
                        // can still oversell — that is the anomaly the
                        // escrow comparison measures.
                        if tx.set_elements(key.as_str())?.len() >= cap {
                            return Ok(false);
                        }
                        if ipa {
                            tx.compset_add(key.as_str(), Val::str(&user))?;
                        } else {
                            tx.aw_add(key.as_str(), Val::str(&user))?;
                        }
                        Ok(true)
                    })
                    .expect("sale buy");
                if bought {
                    OpOutcome::ok("Buy", 1, 1)
                } else {
                    OpOutcome::ok("SoldOut", 1, 0)
                }
            }
            SaleBackend::Escrow | SaleBackend::Strong => {
                // A decrement right must be consumed *before* the
                // purchase commits; the pool add then lands at the same
                // replica the right was spent at, so no causal state can
                // show more purchases than spent rights.
                let commit_region = match self.backend {
                    SaleBackend::Strong => PRIMARY,
                    _ => region,
                };
                let counter = self.counter.as_mut().expect("setup built the counter");
                match counter.decrement(ctx, &event, region, 1) {
                    Ok(acq) => {
                        ctx.commit(commit_region, |tx| {
                            tx.ensure(key.as_str(), kind)?;
                            tx.aw_add(key.as_str(), Val::str(&user))
                        })
                        .expect("sale buy");
                        OpOutcome {
                            label: "Buy",
                            objects: 2,
                            updates: 1,
                            extra_wan_ms: acq.wan_ms,
                            ok: true,
                            violations: 0,
                        }
                    }
                    // Correctly sold out everywhere: a completed (and
                    // correct) rejection, not an error.
                    Err(CoordError::WouldOversell { .. }) => OpOutcome::ok("SoldOut", 1, 0),
                    Err(CoordError::PeerUnreachable { .. })
                    | Err(CoordError::InsufficientRights { .. }) => OpOutcome::unavailable("Buy"),
                }
            }
        }
    }
}

impl Workload for SaleWorkload {
    fn setup(&mut self, ctx: &mut SimCtx<'_>) {
        self.setup_in(ctx);
    }

    fn op(&mut self, ctx: &mut SimCtx<'_>, client: ClientInfo) -> OpOutcome {
        self.op_in(ctx, client)
    }

    fn decide(&mut self, ctx: &mut SimCtx<'_>, _client: ClientInfo) -> Option<AppOp> {
        Some(AppOp::new(self.decide_op(ctx).to_string()))
    }

    fn execute(&mut self, ctx: &mut SimCtx<'_>, client: ClientInfo, op: &AppOp) -> OpOutcome {
        let op: TicketOp = op
            .as_str()
            .parse()
            .unwrap_or_else(|e| panic!("op trace: {e}"));
        self.execute_op(ctx, client, op)
    }
}

/// Post-run raw oversell count at one replica: total tickets beyond
/// capacity, summed over events (the benchmark's correctness column).
pub fn raw_oversell(sim: &ipa_sim::Simulation, workload: &SaleWorkload) -> u64 {
    let r = sim.replica(0);
    let mut total = 0u64;
    for (e, cap) in workload.event_capacities() {
        let n = r
            .object(&pool_key(&e).as_str().into())
            .map(|o| match o {
                ipa_crdt::Object::AWSet(s) => s.len(),
                ipa_crdt::Object::CompSet(s) => s.raw_len(),
                _ => 0,
            })
            .unwrap_or(0);
        total += n.saturating_sub(cap) as u64;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::Oracle;
    use ipa_sim::{paper_topology, FaultPlan, SimConfig, Simulation};

    fn run(backend: SaleBackend, seed: u64, faults: FaultPlan) -> (Simulation, SaleWorkload) {
        let cfg = SimConfig {
            clients_per_region: 2,
            warmup_s: 0.2,
            duration_s: 1.8,
            seed,
            faults,
            ..Default::default()
        };
        let mut sim = Simulation::new(paper_topology(), cfg);
        let mut w = SaleWorkload::with_defaults(backend);
        sim.run(&mut w);
        sim.quiesce();
        (sim, w)
    }

    #[test]
    fn causal_flash_crowd_oversells_the_hot_event() {
        let (sim, w) = run(SaleBackend::Causal, 7, FaultPlan::none());
        assert!(
            raw_oversell(&sim, &w) > 0,
            "three regions each selling the last tickets locally must oversell"
        );
    }

    #[test]
    fn escrow_never_oversells_and_stays_mostly_local() {
        let (sim, w) = run(SaleBackend::Escrow, 7, FaultPlan::none());
        assert_eq!(raw_oversell(&sim, &w), 0, "rights are spent before adds");
        let stats = w.escrow_stats().expect("escrow backend");
        assert!(
            stats.local_decs > stats.borrows,
            "most purchases ride pre-provisioned local rights: {stats:?}"
        );
        // The continuous oracle agrees on every replica.
        let oracle = Oracle::ticket_escrow(w.event_capacities());
        for r in 0..3 {
            assert_eq!(oracle.continuous_violations(sim.replica(r)), 0);
        }
        assert!(sim.metrics.completed > 100, "the sale actually ran");
    }

    #[test]
    fn escrow_stays_safe_under_a_lossy_nemesis() {
        let (sim, w) = run(SaleBackend::Escrow, 11, FaultPlan::with_intensity(11, 0.6));
        assert_eq!(
            raw_oversell(&sim, &w),
            0,
            "dropped/duplicated/delayed transfer batches never mint rights"
        );
    }

    #[test]
    fn strong_is_safe_but_pays_the_wan_every_time() {
        let (strong_sim, w) = run(SaleBackend::Strong, 7, FaultPlan::none());
        assert_eq!(raw_oversell(&strong_sim, &w), 0);
        let (escrow_sim, _) = run(SaleBackend::Escrow, 7, FaultPlan::none());
        let strong_mean = strong_sim.metrics.overall().unwrap().mean_ms;
        let escrow_mean = escrow_sim.metrics.overall().unwrap().mean_ms;
        assert!(
            strong_mean > escrow_mean,
            "escrow buys are mostly local, strong buys always forward: \
             escrow={escrow_mean}ms strong={strong_mean}ms"
        );
    }

    #[test]
    fn ipa_repair_settles_within_capacity_after_view_sweeps() {
        let (mut sim, w) = run(SaleBackend::IpaRepair, 7, FaultPlan::none());
        // Raw overshoot may exist; two rounds of constrained reads
        // (repair + replicate) settle every pool within its bound.
        for _round in 0..2 {
            for region in 0..sim.regions() as u16 {
                let replica = sim.replica_mut(region);
                let mut tx = replica.begin();
                for (e, _) in w.event_capacities() {
                    tx.compset_read(pool_key(&e).as_str()).expect("view sweep");
                }
                tx.commit();
            }
            sim.sync_all();
        }
        let oracle = Oracle::ticket_escrow(w.event_capacities());
        for r in 0..3 {
            assert_eq!(oracle.final_violations(sim.replica(r)), 0, "replica {r}");
        }
    }

    #[test]
    fn default_event_capacities_match_the_workload() {
        let w = SaleWorkload::with_defaults(SaleBackend::Causal);
        assert_eq!(default_event_capacities(), w.event_capacities());
        let caps = default_event_capacities();
        assert_eq!(caps.len(), SaleConfig::default().num_events);
        assert!(caps[0].1 < caps[1].1, "slot 0 is the contended hot event");
    }
}
