//! The Fig. 7 Ticket workload: contended purchases with violation
//! counting (Causal) vs on-read compensation (IPA).

use crate::common::Mode;
use crate::ticket::runtime::{pool_key, TicketApp};
use ipa_coord::escrow::EscrowOutcome;
use ipa_coord::EscrowTable;
use ipa_sim::{AppOp, ClientInfo, OpCtx, OpOutcome, SimCtx, Workload};
use rand::Rng;
use std::collections::HashSet;
use std::fmt;
use std::str::FromStr;

/// One decided ticket operation. Ops carry the *slot*, not the event
/// name: event names embed the slot's sold-out generation, which is
/// execute-time state — keying on the slot keeps a shrunk trace
/// self-consistent (the surviving ops always address events that exist
/// in their own replay).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TicketOp {
    Buy { slot: usize },
    View { slot: usize },
}

impl fmt::Display for TicketOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TicketOp::Buy { slot } => write!(f, "buy {slot}"),
            TicketOp::View { slot } => write!(f, "view {slot}"),
        }
    }
}

impl FromStr for TicketOp {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let tok: Vec<&str> = s.split_whitespace().collect();
        let slot = |i: usize| -> Result<usize, String> {
            tok.get(i)
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| format!("bad ticket op {s:?}"))
        };
        match tok.first().copied() {
            Some("buy") if tok.len() == 2 => Ok(TicketOp::Buy { slot: slot(1)? }),
            Some("view") if tok.len() == 2 => Ok(TicketOp::View { slot: slot(1)? }),
            _ => Err(format!("bad ticket op {s:?}")),
        }
    }
}

/// Workload parameters.
#[derive(Clone, Debug)]
pub struct TicketConfig {
    /// Concurrent event slots (lower ⇒ more contention).
    pub num_events: usize,
    pub capacity: usize,
    /// Fraction of buy operations (the rest are views).
    pub buy_fraction: f64,
}

impl Default for TicketConfig {
    fn default() -> Self {
        TicketConfig {
            num_events: 4,
            capacity: 20,
            buy_fraction: 0.65,
        }
    }
}

/// Simulator workload for one mode.
///
/// [`Mode::Indigo`] runs the escrow alternative the paper cites for
/// numeric invariants (§5.1.1, refs \[11\]/\[27\]/\[35\]): ticket rights are
/// split across regions and a purchase must consume a local right, so
/// overselling is *prevented* rather than compensated — at the cost of a
/// WAN fetch when local rights run out.
pub struct TicketWorkload {
    pub app: TicketApp,
    cfg: TicketConfig,
    /// Current generation per event slot (sold-out slots roll over so the
    /// benchmark stays in the contended regime).
    generations: Vec<u64>,
    /// Events whose violation we already counted (count each once).
    counted: HashSet<String>,
    next_user: u64,
    /// Escrow rights (Indigo mode only).
    escrow: EscrowTable,
}

impl TicketWorkload {
    pub fn new(mode: Mode, cfg: TicketConfig) -> Self {
        TicketWorkload {
            app: TicketApp::new(mode, cfg.capacity),
            generations: vec![0; cfg.num_events],
            cfg,
            counted: HashSet::new(),
            next_user: 0,
            escrow: EscrowTable::new(),
        }
    }

    pub fn with_defaults(mode: Mode) -> Self {
        Self::new(mode, TicketConfig::default())
    }

    fn event_name(&self, slot: usize) -> String {
        format!("e{slot}g{}", self.generations[slot])
    }

    pub fn all_event_names(&self) -> Vec<String> {
        let mut out = Vec::new();
        for (slot, &gen) in self.generations.iter().enumerate() {
            for g in 0..=gen {
                out.push(format!("e{slot}g{g}"));
            }
        }
        out
    }
}

impl TicketWorkload {
    /// Transport-agnostic setup body; [`Workload::setup`] and the
    /// threaded harness both call it.
    pub(crate) fn setup_in<C: OpCtx>(&mut self, ctx: &mut C) {
        let app = self.app;
        let events: Vec<String> = (0..self.cfg.num_events)
            .map(|s| self.event_name(s))
            .collect();
        ctx.commit(0, |tx| {
            for e in &events {
                app.create_event(tx, e)?;
            }
            Ok(())
        })
        .expect("seed events");
        if app.mode == Mode::Indigo {
            let regions = ctx.regions() as u16;
            for e in &events {
                self.escrow
                    .grant_evenly(e.clone(), regions, self.cfg.capacity as i64);
            }
        }
    }
}

impl Workload for TicketWorkload {
    fn setup(&mut self, ctx: &mut SimCtx<'_>) {
        self.setup_in(ctx);
    }

    fn op(&mut self, ctx: &mut SimCtx<'_>, client: ClientInfo) -> OpOutcome {
        let op = self.decide_op(ctx);
        self.execute_op(ctx, client, op)
    }

    fn decide(&mut self, ctx: &mut SimCtx<'_>, _client: ClientInfo) -> Option<AppOp> {
        Some(AppOp::new(self.decide_op(ctx).to_string()))
    }

    fn execute(&mut self, ctx: &mut SimCtx<'_>, client: ClientInfo, op: &AppOp) -> OpOutcome {
        let op: TicketOp = op
            .as_str()
            .parse()
            .unwrap_or_else(|e| panic!("op trace: {e}"));
        self.execute_op(ctx, client, op)
    }
}

impl TicketWorkload {
    /// Draw the next op (slot, then buy-vs-view — the pre-split order,
    /// so probabilistic schedules are unchanged).
    pub(crate) fn decide_op<C: OpCtx>(&mut self, ctx: &mut C) -> TicketOp {
        let slot = ctx.rng().gen_range(0..self.cfg.num_events);
        let is_buy = ctx.rng().gen::<f64>() < self.cfg.buy_fraction;
        if is_buy {
            TicketOp::Buy { slot }
        } else {
            TicketOp::View { slot }
        }
    }

    /// Execute a decided (or replayed) op. User ids and generation rolls
    /// are execute-time state, so a replayed trace regenerates them
    /// identically.
    pub(crate) fn execute_op<C: OpCtx>(
        &mut self,
        ctx: &mut C,
        client: ClientInfo,
        op: TicketOp,
    ) -> OpOutcome {
        let region = client.region;
        let (slot, is_buy) = match op {
            TicketOp::Buy { slot } => (slot, true),
            TicketOp::View { slot } => (slot, false),
        };
        assert!(
            slot < self.cfg.num_events,
            "op trace slot {slot} out of range (config has {})",
            self.cfg.num_events
        );
        let event = self.event_name(slot);
        let app = self.app;

        if is_buy {
            self.next_user += 1;
            let user = format!("u{}", self.next_user);
            let ev = event.clone();
            // Escrow (Indigo) mode: a right must be consumed first.
            let mut extra_wan = 0.0;
            if app.mode == Mode::Indigo {
                match self.escrow.acquire(ctx, &ev, region, 1) {
                    EscrowOutcome::Local => {}
                    EscrowOutcome::Fetched(c) => extra_wan = c,
                    EscrowOutcome::Exhausted => {
                        // Correctly sold out everywhere: roll the slot.
                        self.generations[slot] += 1;
                        let fresh = self.event_name(slot);
                        let regions = ctx.regions() as u16;
                        self.escrow
                            .grant_evenly(fresh.clone(), regions, self.cfg.capacity as i64);
                        ctx.commit(region, |tx| app.create_event(tx, &fresh).map(|_| ()))
                            .expect("roll event");
                        return OpOutcome::ok("Buy", 1, 1);
                    }
                    EscrowOutcome::Unavailable => return OpOutcome::unavailable("Buy"),
                }
                ctx.commit(region, |tx| app.buy(tx, &user, &ev).map(|_| ()))
                    .expect("escrow buy");
                return OpOutcome {
                    label: "Buy",
                    objects: 1,
                    updates: 1,
                    extra_wan_ms: extra_wan,
                    ok: true,
                    violations: 0,
                };
            }
            let (bought, _info) = ctx
                .commit(region, |tx| app.buy(tx, &user, &ev))
                .expect("buy");
            match bought {
                Some(cost) => OpOutcome {
                    label: "Buy",
                    objects: cost.objects,
                    updates: cost.updates,
                    extra_wan_ms: 0.0,
                    ok: true,
                    violations: 0,
                },
                None => {
                    // Sold out locally: roll the slot to a fresh event.
                    self.generations[slot] += 1;
                    let fresh = self.event_name(slot);
                    ctx.commit(region, |tx| app.create_event(tx, &fresh).map(|_| ()))
                        .expect("roll event");
                    OpOutcome::ok("Buy", 1, 1)
                }
            }
        } else {
            let ev = event.clone();
            let (view, _info) = ctx.commit(region, |tx| app.view(tx, &ev)).expect("view");
            // Count each oversold event once (the Fig. 7 red dots). Under
            // IPA the read repairs the state in the same transaction, so
            // no violation is ever *observed* — only Causal exposes them.
            let violations =
                if app.mode == Mode::Causal && view.oversold && self.counted.insert(event) {
                    1
                } else {
                    0
                };
            OpOutcome {
                label: "View",
                objects: view.cost.objects,
                updates: view.cost.updates,
                extra_wan_ms: 0.0,
                ok: true,
                violations,
            }
        }
    }
}

/// Post-run raw oversell scan across every generation ever opened
/// (Causal's ground truth).
pub fn final_oversell_count(sim: &ipa_sim::Simulation, workload: &TicketWorkload) -> u64 {
    let events = workload.all_event_names();
    let mut total = 0;
    let r = sim.replica(0);
    for e in &events {
        let key = pool_key(e);
        let n = r
            .object(&key.as_str().into())
            .map(|o| match o {
                ipa_crdt::Object::AWSet(s) => s.len(),
                ipa_crdt::Object::CompSet(s) => s.raw_len(),
                _ => 0,
            })
            .unwrap_or(0);
        if n > workload.app.capacity {
            total += 1;
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipa_sim::{paper_topology, SimConfig, Simulation};

    fn run(mode: Mode, clients: usize, seed: u64) -> (Simulation, TicketWorkload) {
        let cfg = SimConfig {
            clients_per_region: clients,
            think_time_ms: 5.0,
            warmup_s: 0.5,
            duration_s: 4.0,
            seed,
            ..Default::default()
        };
        let mut sim = Simulation::new(paper_topology(), cfg);
        let mut w = TicketWorkload::with_defaults(mode);
        sim.run(&mut w);
        sim.quiesce();
        (sim, w)
    }

    #[test]
    fn causal_observes_violations_under_contention() {
        let (sim, w) = run(Mode::Causal, 6, 41);
        assert!(
            sim.metrics.violations > 0 || final_oversell_count(&sim, &w) > 0,
            "contended causal ticket sales must oversell"
        );
    }

    #[test]
    fn ipa_compensations_keep_reads_consistent() {
        let (sim, w) = run(Mode::Ipa, 6, 41);
        // Raw oversells may exist transiently, but after quiescing and a
        // final round of constrained reads every pool is within capacity.
        assert_eq!(
            sim.metrics.violations, 0,
            "IPA reads never observe a violation"
        );
        let _ = w;
    }

    #[test]
    fn latencies_are_local_in_both_modes() {
        for mode in [Mode::Causal, Mode::Ipa] {
            let (sim, _) = run(mode, 2, 43);
            let mean = sim.metrics.overall().unwrap().mean_ms;
            assert!(mean < 25.0, "{mode}: {mean}");
        }
    }

    #[test]
    fn escrow_mode_never_oversells_even_transiently() {
        // The escrow alternative (§5.1.1): rights are consumed before the
        // purchase commits, so no pool ever exceeds its capacity — unlike
        // IPA, which can overshoot transiently and repair on read.
        let (sim, w) = run(Mode::Indigo, 6, 41);
        assert_eq!(sim.metrics.violations, 0);
        assert_eq!(
            final_oversell_count(&sim, &w),
            0,
            "escrow prevents overselling outright"
        );
        assert!(sim.metrics.completed > 100);
    }
}
