//! Ticket runtime: per-event ticket pools.
//!
//! Under [`Mode::Causal`] a pool is a plain add-wins set — concurrent
//! purchases oversell it silently. Under [`Mode::Ipa`] the pool is the
//! Compensation Set of §4.2.2: reads repair observed overselling by
//! cancelling the deterministic excess (the cancelled purchases are
//! reimbursed — "the transfer of money ... must use a different
//! mechanism", modeled by the returned cancellation list).

use crate::common::Mode;
use ipa_crdt::{ObjectKind, Val};
use ipa_store::{StoreError, Transaction};

/// Per-op cost.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpCost {
    pub objects: usize,
    pub updates: usize,
}

/// Result of a view: remaining capacity observed plus overselling info.
#[derive(Clone, Debug)]
pub struct EventView {
    pub sold: usize,
    pub cancelled: Vec<String>,
    /// True when the raw state was oversold at read time (a violation
    /// under Causal; a compensated event under IPA).
    pub oversold: bool,
    pub cost: OpCost,
}

/// The ticket application.
#[derive(Clone, Copy, Debug)]
pub struct TicketApp {
    pub mode: Mode,
    pub capacity: usize,
}

pub fn pool_key(event: &str) -> String {
    format!("ticket/sold/{event}")
}

impl TicketApp {
    pub fn new(mode: Mode, capacity: usize) -> TicketApp {
        TicketApp { mode, capacity }
    }

    fn pool_kind(&self) -> ObjectKind {
        match self.mode {
            Mode::Ipa => ObjectKind::CompSet {
                capacity: self.capacity,
            },
            _ => ObjectKind::AWSet,
        }
    }

    pub fn create_event(
        &self,
        tx: &mut Transaction<'_>,
        event: &str,
    ) -> Result<OpCost, StoreError> {
        tx.ensure(pool_key(event), self.pool_kind())?;
        Ok(OpCost {
            objects: 1,
            updates: 0,
        })
    }

    /// Buy a ticket. The local precondition (pool not full *as observed
    /// here*) is checked; concurrent buys at other replicas can still
    /// oversell — that is the anomaly the benchmark measures.
    pub fn buy(
        &self,
        tx: &mut Transaction<'_>,
        user: &str,
        event: &str,
    ) -> Result<Option<OpCost>, StoreError> {
        let key = pool_key(event);
        tx.ensure(key.clone(), self.pool_kind())?;
        let sold = tx.set_elements(key.clone())?.len();
        if sold >= self.capacity {
            return Ok(None); // correctly rejected locally
        }
        match self.mode {
            Mode::Ipa => tx.compset_add(key, Val::str(user))?,
            _ => tx.aw_add(key, Val::str(user))?,
        }
        Ok(Some(OpCost {
            objects: 1,
            updates: 1,
        }))
    }

    /// View an event's sales. Under IPA this is the constrained read that
    /// triggers compensations; under Causal it merely *observes* the
    /// violation.
    pub fn view(&self, tx: &mut Transaction<'_>, event: &str) -> Result<EventView, StoreError> {
        let key = pool_key(event);
        tx.ensure(key.clone(), self.pool_kind())?;
        match self.mode {
            Mode::Ipa => {
                let read = tx.compset_read(key)?;
                let oversold = !read.cancelled.is_empty();
                Ok(EventView {
                    sold: read.elements.len(),
                    cancelled: read
                        .cancelled
                        .iter()
                        .filter_map(|v| v.as_str().map(str::to_owned))
                        .collect(),
                    oversold,
                    cost: OpCost {
                        objects: 1,
                        updates: usize::from(oversold),
                    },
                })
            }
            _ => {
                let sold = tx.set_elements(key)?.len();
                Ok(EventView {
                    sold,
                    cancelled: Vec::new(),
                    oversold: sold > self.capacity,
                    cost: OpCost {
                        objects: 1,
                        updates: 0,
                    },
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipa_crdt::ReplicaId;
    use ipa_store::Cluster;

    fn commit<T>(
        cluster: &mut Cluster,
        r: u16,
        f: impl FnOnce(&mut Transaction<'_>) -> Result<T, StoreError>,
    ) -> T {
        let replica = cluster.replica_mut(ReplicaId(r));
        let mut tx = replica.begin();
        let out = f(&mut tx).expect("op");
        tx.commit();
        out
    }

    fn oversell(mode: Mode) -> (Cluster, TicketApp) {
        let app = TicketApp::new(mode, 1);
        let mut cluster = Cluster::new(2);
        commit(&mut cluster, 0, |tx| app.create_event(tx, "gig"));
        cluster.sync();
        // Concurrent last-ticket purchases at both replicas.
        let a = commit(&mut cluster, 0, |tx| app.buy(tx, "alice", "gig"));
        let b = commit(&mut cluster, 1, |tx| app.buy(tx, "bob", "gig"));
        assert!(a.is_some() && b.is_some(), "both locally admissible");
        cluster.sync();
        (cluster, app)
    }

    #[test]
    fn causal_oversells_and_observes_violation() {
        let (mut cluster, app) = oversell(Mode::Causal);
        let view = commit(&mut cluster, 0, |tx| app.view(tx, "gig"));
        assert!(view.oversold);
        assert_eq!(view.sold, 2, "both tickets visible: invariant broken");
        assert_eq!(
            crate::violations::ticket_violations(
                cluster.replica(ReplicaId(0)),
                &["gig".to_owned()],
                1
            ),
            1
        );
    }

    #[test]
    fn ipa_compensates_on_read_and_converges() {
        let (mut cluster, app) = oversell(Mode::Ipa);
        let v0 = commit(&mut cluster, 0, |tx| app.view(tx, "gig"));
        assert!(v0.oversold, "the violation happened…");
        assert_eq!(v0.sold, 1, "…but the read observes a consistent state");
        assert_eq!(v0.cancelled, vec!["bob"], "deterministic newest-cancelled");
        cluster.sync();
        // Both replicas converge to exactly one ticket sold.
        for r in 0..2 {
            let raw = cluster
                .replica(ReplicaId(r))
                .object(&pool_key("gig").into())
                .unwrap()
                .as_compset()
                .unwrap()
                .raw_len();
            assert_eq!(raw, 1, "replica {r}");
        }
        // A second read finds nothing left to compensate.
        let v1 = commit(&mut cluster, 1, |tx| app.view(tx, "gig"));
        assert!(!v1.oversold);
        assert_eq!(v1.sold, 1);
    }

    #[test]
    fn local_precondition_rejects_when_full() {
        let app = TicketApp::new(Mode::Causal, 1);
        let mut cluster = Cluster::new(1);
        commit(&mut cluster, 0, |tx| app.create_event(tx, "gig"));
        assert!(commit(&mut cluster, 0, |tx| app.buy(tx, "u1", "gig")).is_some());
        assert!(
            commit(&mut cluster, 0, |tx| app.buy(tx, "u2", "gig")).is_none(),
            "sequential oversell is rejected locally"
        );
    }
}
