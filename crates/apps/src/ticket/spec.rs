//! Ticket specification: the oversell constraint.

use ipa_spec::{AppSpec, AppSpecBuilder};

/// `#sold(*, e) <= Capacity` — an aggregation constraint that the IPA
/// analysis routes to a compensation (Table 1: "Aggreg. const. → Comp.").
pub fn ticket_spec() -> AppSpec {
    AppSpecBuilder::new("ticket")
        .sort("User")
        .sort("Event")
        .predicate_bool("sold", &["User", "Event"])
        .predicate_bool("event", &["Event"])
        .constant("Capacity", 20)
        .invariant_str("forall(Event: e) :- #sold(*, e) <= Capacity")
        .invariant_str("forall(User: u, Event: e) :- sold(u, e) => event(e)")
        .operation("create_event", &[("e", "Event")], |op| {
            op.set_true("event", &["e"])
        })
        .operation("buy_ticket", &[("u", "User"), ("e", "Event")], |op| {
            op.set_true("sold", &["u", "e"])
        })
        .operation("refund", &[("u", "User"), ("e", "Event")], |op| {
            op.set_false("sold", &["u", "e"])
        })
        .build()
        .expect("ticket spec is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipa_core::{numeric_conflicts, Analyzer, BoundKind, CompAction};

    #[test]
    fn oversell_is_a_numeric_conflict_with_compensation() {
        let spec = ticket_spec();
        let ncs = numeric_conflicts(&spec);
        let cap = ncs.iter().find(|c| c.is_count).expect("capacity conflict");
        assert_eq!(cap.bound, BoundKind::Upper);
        assert_eq!(cap.risky_ops.len(), 1);
        assert_eq!(cap.risky_ops[0].0.as_str(), "buy_ticket");

        let report = Analyzer::for_spec(&spec).analyze(&spec).unwrap();
        assert!(!report.compensations.is_empty());
        let comp = &report.compensations[0];
        assert!(matches!(comp.action(), CompAction::RemoveExcess { .. }));
    }
}
