//! Soundness cross-validation: every conflict witness the SAT-based
//! detector returns must check out under the *reference* semantics — the
//! pre-state satisfies the invariant and both preconditions, and the
//! merged state violates it (evaluated directly with
//! `ipa_spec::Interpretation`, no solver involved).

use ipa_apps::ticket::ticket_spec;
use ipa_apps::tournament::tournament_spec;
use ipa_apps::tpc::tpc_spec;
use ipa_apps::twitter::twitter_spec;
use ipa_core::{check_pair, AnalysisConfig};
use ipa_spec::AppSpec;

fn validate_all_pairs(spec: &AppSpec) -> (usize, usize) {
    let cfg = AnalysisConfig::tuned_for(spec);
    let mut conflicts = 0;
    let mut checked = 0;
    for i in 0..spec.operations.len() {
        for j in i..spec.operations.len() {
            let op1 = &spec.operations[i];
            let op2 = &spec.operations[j];
            checked += 1;
            let Some(w) = check_pair(spec, &cfg, op1, op2).expect("analysis") else {
                continue;
            };
            conflicts += 1;
            // Reference check 1: the pre-state is I-valid.
            for inv in &spec.invariants {
                assert!(
                    w.pre.eval(inv).unwrap_or(true),
                    "{}: witness pre-state violates `{inv}` for {}",
                    spec.name,
                    w.label()
                );
            }
            // Reference check 2: the merged state is I-invalid.
            let violated = spec
                .invariants
                .iter()
                .any(|inv| !w.merged.eval(inv).unwrap_or(true));
            assert!(
                violated,
                "{}: witness merged state does not violate any invariant for {}",
                spec.name,
                w.label()
            );
            // Reference check 3: the reported violated clauses are real.
            for v in &w.violated {
                assert!(
                    !w.merged.eval(v).unwrap_or(true),
                    "{}: clause `{v}` reported violated but holds",
                    spec.name
                );
            }
        }
    }
    (checked, conflicts)
}

#[test]
fn tournament_witnesses_are_sound() {
    let (checked, conflicts) = validate_all_pairs(&tournament_spec());
    assert_eq!(checked, 36, "8 ops → 36 unordered pairs incl. self-pairs");
    assert!(
        conflicts >= 3,
        "the paper's conflicts must be found: {conflicts}"
    );
}

#[test]
fn twitter_witnesses_are_sound() {
    let (_, conflicts) = validate_all_pairs(&twitter_spec(false));
    assert!(conflicts >= 1, "retweet/del_tweet must conflict");
    let (_, conflicts_rw) = validate_all_pairs(&twitter_spec(true));
    assert!(conflicts_rw >= 1);
}

#[test]
fn ticket_and_tpc_witnesses_are_sound() {
    validate_all_pairs(&ticket_spec());
    validate_all_pairs(&tpc_spec());
}
